// Command mc-demand runs the dynamic-demand Monte Carlo evaluation
// (paper §6.3 and §7.1, Figure 7): randomly generated workload schedules
// are attributed by the RUP baseline, the demand-proportional baseline and
// Fair-CO2's Temporal Shapley, and each is scored by its deviation from
// the exact Shapley ground truth.
//
// Defaults are laptop-scale; the paper-scale run is
//
//	mc-demand -trials 10000 -max-workloads 22
//
// (expect hours: the exact ground truth is O(2^n)).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fairco2/internal/montecarlo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mc-demand: ")

	cfg := montecarlo.DefaultDemandConfig()
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "number of random schedules")
	flag.IntVar(&cfg.Generator.MaxWorkloads, "max-workloads", cfg.Generator.MaxWorkloads, "workload cap per schedule (paper: 22)")
	flag.IntVar(&cfg.Generator.MinSlices, "min-time-slices", cfg.Generator.MinSlices, "minimum schedule length")
	flag.IntVar(&cfg.Generator.MaxSlices, "max-time-slices", cfg.Generator.MaxSlices, "maximum schedule length")
	flag.IntVar(&cfg.Workers, "num-workers", cfg.Workers, "worker goroutines (0 = GOMAXPROCS)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "experiment seed")
	out := flag.String("out", "", "also export per-trial results to this CSV file")
	flag.Parse()

	start := time.Now()
	result, err := montecarlo.RunDemand(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(montecarlo.FormatFigure7(result))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := result.WriteDemandCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote per-trial results to %s\n", *out)
	}
	fmt.Printf("\ncompleted %d trials in %v\n", cfg.Trials, time.Since(start).Round(time.Millisecond))
}
