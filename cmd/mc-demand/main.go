// Command mc-demand runs the dynamic-demand Monte Carlo evaluation
// (paper §6.3 and §7.1, Figure 7): randomly generated workload schedules
// are attributed by the RUP baseline, the demand-proportional baseline and
// Fair-CO2's Temporal Shapley, and each is scored by its deviation from
// the exact Shapley ground truth.
//
// Defaults are laptop-scale; the paper-scale run is
//
//	mc-demand -trials 10000 -max-workloads 22
//
// (expect hours: the exact ground truth is O(2^n)). Paper-scale runs
// should add -checkpoint-dir: progress is snapshotted crash-safely every
// -checkpoint-every completed trials and on SIGINT/SIGTERM, and rerunning
// with the same flags resumes the sweep with byte-for-byte identical
// results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairco2/internal/checkpoint"
	"fairco2/internal/montecarlo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mc-demand: ")

	cfg := montecarlo.DefaultDemandConfig()
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "number of random schedules")
	flag.IntVar(&cfg.Generator.MaxWorkloads, "max-workloads", cfg.Generator.MaxWorkloads, "workload cap per schedule (paper: 22)")
	flag.IntVar(&cfg.Generator.MinSlices, "min-time-slices", cfg.Generator.MinSlices, "minimum schedule length")
	flag.IntVar(&cfg.Generator.MaxSlices, "max-time-slices", cfg.Generator.MaxSlices, "maximum schedule length")
	flag.IntVar(&cfg.Workers, "num-workers", cfg.Workers, "worker goroutines (0 = GOMAXPROCS)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "experiment seed")
	out := flag.String("out", "", "also export per-trial results to this CSV file (written atomically)")
	ckDir := flag.String("checkpoint-dir", "", "crash-safe checkpoint directory (empty disables checkpoint/resume)")
	ckEvery := flag.Int("checkpoint-every", 100, "completed trials between checkpoint snapshots")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	result, resumed, err := montecarlo.RunDemandCheckpointed(ctx, cfg,
		checkpoint.Spec{Dir: *ckDir, Every: *ckEvery})
	if resumed > 0 {
		log.Printf("resumed %d completed trials from %s", resumed, *ckDir)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckDir != "" {
			log.Printf("interrupted; progress checkpointed in %s — rerun with the same flags to resume", *ckDir)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	fmt.Print(montecarlo.FormatFigure7(result))
	if *out != "" {
		if err := result.ExportDemandCSVFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote per-trial results to %s\n", *out)
	}
	fmt.Printf("\ncompleted %d trials in %v\n", cfg.Trials, time.Since(start).Round(time.Millisecond))
}
