// Crash-injection harness for the checkpoint/resume pipeline: the CLI runs
// as a subprocess and is SIGKILLed at three scripted points — mid-sweep,
// mid-checkpoint-write (after the temp file is written but before the
// rename), and mid-export — using the FAIRCO2_* hold hooks, which park the
// process at the chosen instant and drop a marker file the parent polls for.
// After each kill the run is resumed; the final exported CSV must be
// byte-for-byte identical to an uninterrupted golden run.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"fairco2/internal/checkpoint"
)

// sweepFlags is the experiment configuration shared by the golden run and
// every interrupted attempt. Worker counts deliberately differ between runs:
// scheduling must never change results.
var sweepFlags = []string{
	"-trials", "40",
	"-max-workloads", "12",
	"-gt-samples", "300",
	"-seed", "99",
}

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mc-colocation")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runToCompletion runs the CLI with the shared sweep flags and waits for it.
func runToCompletion(t *testing.T, bin string, workers int, extra ...string) (stdout, stderr string) {
	t.Helper()
	args := append(append([]string{}, sweepFlags...), "-num-workers", fmt.Sprint(workers))
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("run %v: %v\nstdout:\n%s\nstderr:\n%s", args, err, outBuf.String(), errBuf.String())
	}
	return outBuf.String(), errBuf.String()
}

// killAtMarker starts the CLI with a hold hook armed, waits for the marker
// file the hook drops when the process reaches the scripted point, and
// SIGKILLs it there.
func killAtMarker(t *testing.T, bin string, workers int, env []string, marker string, extra ...string) {
	t.Helper()
	args := append(append([]string{}, sweepFlags...), "-num-workers", fmt.Sprint(workers))
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var outBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("marker %s never appeared\noutput:\n%s", marker, outBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The process is parked in the hold hook: kill it mid-operation.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the signal is the test
	os.Remove(marker)
}

func TestCrashResumeProducesIdenticalReport(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL crash injection requires unix process semantics")
	}
	if testing.Short() {
		t.Skip("subprocess crash harness skipped in -short mode")
	}
	bin := buildCLI(t)
	work := t.TempDir()
	ckDir := filepath.Join(work, "ck")
	outCSV := filepath.Join(work, "out.csv")
	goldenCSV := filepath.Join(work, "golden.csv")
	ckFlags := []string{"-checkpoint-dir", ckDir, "-checkpoint-every", "4"}

	// Golden: one uninterrupted run, no checkpointing at all.
	runToCompletion(t, bin, 3, "-out", goldenCSV)
	golden, err := os.ReadFile(goldenCSV)
	if err != nil {
		t.Fatal(err)
	}

	// Kill point 1 — mid-sweep: park after 10 completed trials and SIGKILL.
	// The periodic snapshots (every 4 trials) have persisted part of the
	// sweep.
	killAtMarker(t, bin, 2,
		[]string{checkpoint.EnvHoldAfterUnits + "=10"},
		filepath.Join(ckDir, "run.hold"), ckFlags...)
	if snaps := checkpointFiles(t, ckDir); len(snaps) == 0 {
		t.Fatal("no snapshot survived the mid-sweep kill")
	}

	// Kill point 2 — mid-checkpoint-write: resume, then park this process's
	// second save after its temp file is fully written but before the
	// rename, and SIGKILL in that window. The torn write must leave the
	// previous intact snapshot as the winner.
	killAtMarker(t, bin, 4,
		[]string{checkpoint.EnvHoldSaveWrite + "=2"},
		filepath.Join(ckDir, "mc-colocation.hold"), ckFlags...)
	tmps := 0
	for _, name := range dirNames(t, ckDir) {
		if strings.Contains(name, ".ckpt.tmp-") {
			tmps++
		}
	}
	if tmps == 0 {
		t.Fatal("mid-write kill left no torn temp file; the hold hook did not fire in the write window")
	}

	// Kill point 3 — mid-export: resume to completion, then park the -out
	// export before its rename and SIGKILL. The destination must not exist
	// afterwards (the bytes are still under the temp name).
	killAtMarker(t, bin, 2,
		[]string{checkpoint.EnvHoldExport + "=1"},
		outCSV+".hold", append(append([]string{}, ckFlags...), "-out", outCSV)...)
	if _, err := os.Stat(outCSV); !os.IsNotExist(err) {
		t.Fatalf("export destination exists after mid-export kill: %v", err)
	}

	// Final run: resume and finish cleanly. Everything was already computed
	// by kill point 3, so the sweep must restore, not recompute.
	stdout, stderr := runToCompletion(t, bin, 3, append(append([]string{}, ckFlags...), "-out", outCSV)...)
	if !strings.Contains(stderr, "resumed") {
		t.Errorf("final run did not report a resume\nstderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "completed 40 trials") {
		t.Errorf("unexpected final stdout:\n%s", stdout)
	}

	final, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, golden) {
		t.Fatal("thrice-crashed resumed run is not byte-for-byte identical to the golden run")
	}
}

// TestInterruptCheckpointsAndExits130 covers the signal path the SIGKILL
// scenarios bypass: a SIGTERM mid-sweep must let in-flight trials finish,
// flush a final snapshot, print the resume hint and exit with status 130.
func TestInterruptCheckpointsAndExits130(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM handling requires unix process semantics")
	}
	if testing.Short() {
		t.Skip("subprocess harness skipped in -short mode")
	}
	bin := buildCLI(t)
	ckDir := filepath.Join(t.TempDir(), "ck")

	// A sweep large enough that the signal reliably lands mid-run; the
	// parent sends SIGTERM as soon as the first snapshot file appears.
	cmd := exec.Command(bin,
		"-trials", "600", "-max-workloads", "12", "-gt-samples", "300", "-seed", "7",
		"-num-workers", "2", "-checkpoint-dir", ckDir, "-checkpoint-every", "4")
	var outBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	deadline := time.Now().Add(60 * time.Second)
	for len(checkpointFilesOrNone(ckDir)) == 0 {
		select {
		case <-done:
			t.Skipf("sweep finished before the signal could land\noutput:\n%s", outBuf.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			<-done
			t.Fatalf("no snapshot appeared\noutput:\n%s", outBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := <-done
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
		t.Fatalf("exit status: %v\noutput:\n%s", err, outBuf.String())
	}
	if !strings.Contains(outBuf.String(), "interrupted; progress checkpointed") {
		t.Errorf("missing resume hint in output:\n%s", outBuf.String())
	}
	if len(checkpointFilesOrNone(ckDir)) == 0 {
		t.Error("no snapshot on disk after the interrupt")
	}
}

// checkpointFilesOrNone is checkpointFiles for directories that may not
// exist yet.
func checkpointFilesOrNone(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var snaps []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			snaps = append(snaps, e.Name())
		}
	}
	return snaps
}

func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	var snaps []string
	for _, name := range dirNames(t, dir) {
		if strings.HasSuffix(name, ".ckpt") {
			snaps = append(snaps, name)
		}
	}
	return snaps
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}
