// Command mc-colocation runs the colocation Monte Carlo evaluation (paper
// §6.3 and §7.2, Figures 8 and 9): random sets of pairwise-colocated
// workloads attributed by the RUP baseline and Fair-CO2's
// interference-aware method, scored against the permutation ground truth.
//
// Paper scale:
//
//	mc-colocation -trials 10000 -min-workloads 4 -max-workloads 100 \
//	  -min-grid-ci 0 -max-grid-ci 1000 -min-samples 1 -max-samples 15
//
// Long sweeps should run with -checkpoint-dir: progress is snapshotted
// crash-safely every -checkpoint-every completed trials and on SIGINT or
// SIGTERM, and rerunning with the same flags resumes where the sweep
// stopped, producing output byte-for-byte identical to an uninterrupted
// run (every trial derives its RNG from the seed and the trial index).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairco2/internal/checkpoint"
	"fairco2/internal/montecarlo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mc-colocation: ")

	cfg := montecarlo.DefaultColocationConfig()
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "number of random scenarios")
	flag.IntVar(&cfg.MinWorkloads, "min-workloads", cfg.MinWorkloads, "minimum scenario size")
	flag.IntVar(&cfg.MaxWorkloads, "max-workloads", cfg.MaxWorkloads, "maximum scenario size (paper: 100)")
	flag.Float64Var(&cfg.MinGridCI, "min-grid-ci", cfg.MinGridCI, "minimum grid carbon intensity (gCO2e/kWh)")
	flag.Float64Var(&cfg.MaxGridCI, "max-grid-ci", cfg.MaxGridCI, "maximum grid carbon intensity (gCO2e/kWh)")
	flag.IntVar(&cfg.MinSamples, "min-samples", cfg.MinSamples, "minimum historical partners per profile")
	flag.IntVar(&cfg.MaxSamples, "max-samples", cfg.MaxSamples, "maximum historical partners per profile")
	flag.IntVar(&cfg.GroundTruthSamples, "gt-samples", cfg.GroundTruthSamples, "permutation samples for large scenarios")
	flag.IntVar(&cfg.NodeCapacity, "capacity", 0, "tenants per node (0 or 2 = paper's pairwise; >2 uses the k-way extension)")
	flag.IntVar(&cfg.FactorDraws, "factor-draws", 500, "historical colocations per k-way factor (capacity > 2)")
	flag.IntVar(&cfg.Workers, "num-workers", cfg.Workers, "worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.ShapleyParallelism, "shapley-parallelism", cfg.ShapleyParallelism,
		"workers sharding each trial's ground-truth permutation samples (0 or 1 = serial; trials already run in parallel, so raise this only for few large scenarios)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "experiment seed")
	perWorkload := flag.Bool("per-workload", false, "also print Figure 9 per-workload/per-partner distributions")
	out := flag.String("out", "", "also export per-trial results to this CSV file (written atomically)")
	ckDir := flag.String("checkpoint-dir", "", "crash-safe checkpoint directory (empty disables checkpoint/resume)")
	ckEvery := flag.Int("checkpoint-every", 100, "completed trials between checkpoint snapshots")
	flag.Parse()

	cfg.CollectPerWorkload = *perWorkload
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	result, resumed, err := montecarlo.RunColocationCheckpointed(ctx, cfg,
		checkpoint.Spec{Dir: *ckDir, Every: *ckEvery})
	if resumed > 0 {
		log.Printf("resumed %d completed trials from %s", resumed, *ckDir)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckDir != "" {
			log.Printf("interrupted; progress checkpointed in %s — rerun with the same flags to resume", *ckDir)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	fmt.Print(montecarlo.FormatFigure8(result))
	if *perWorkload {
		fmt.Println()
		fmt.Print(montecarlo.FormatFigure9(result))
	}
	if *out != "" {
		if err := result.ExportColocationCSVFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote per-trial results to %s\n", *out)
	}
	fmt.Printf("\ncompleted %d trials in %v\n", cfg.Trials, time.Since(start).Round(time.Millisecond))
}
