// Command mc-colocation runs the colocation Monte Carlo evaluation (paper
// §6.3 and §7.2, Figures 8 and 9): random sets of pairwise-colocated
// workloads attributed by the RUP baseline and Fair-CO2's
// interference-aware method, scored against the permutation ground truth.
//
// Paper scale:
//
//	mc-colocation -trials 10000 -min-workloads 4 -max-workloads 100 \
//	  -min-grid-ci 0 -max-grid-ci 1000 -min-samples 1 -max-samples 15
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fairco2/internal/montecarlo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mc-colocation: ")

	cfg := montecarlo.DefaultColocationConfig()
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "number of random scenarios")
	flag.IntVar(&cfg.MinWorkloads, "min-workloads", cfg.MinWorkloads, "minimum scenario size")
	flag.IntVar(&cfg.MaxWorkloads, "max-workloads", cfg.MaxWorkloads, "maximum scenario size (paper: 100)")
	flag.Float64Var(&cfg.MinGridCI, "min-grid-ci", cfg.MinGridCI, "minimum grid carbon intensity (gCO2e/kWh)")
	flag.Float64Var(&cfg.MaxGridCI, "max-grid-ci", cfg.MaxGridCI, "maximum grid carbon intensity (gCO2e/kWh)")
	flag.IntVar(&cfg.MinSamples, "min-samples", cfg.MinSamples, "minimum historical partners per profile")
	flag.IntVar(&cfg.MaxSamples, "max-samples", cfg.MaxSamples, "maximum historical partners per profile")
	flag.IntVar(&cfg.GroundTruthSamples, "gt-samples", cfg.GroundTruthSamples, "permutation samples for large scenarios")
	flag.IntVar(&cfg.NodeCapacity, "capacity", 0, "tenants per node (0 or 2 = paper's pairwise; >2 uses the k-way extension)")
	flag.IntVar(&cfg.FactorDraws, "factor-draws", 500, "historical colocations per k-way factor (capacity > 2)")
	flag.IntVar(&cfg.Workers, "num-workers", cfg.Workers, "worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.ShapleyParallelism, "shapley-parallelism", cfg.ShapleyParallelism,
		"workers sharding each trial's ground-truth permutation samples (0 or 1 = serial; trials already run in parallel, so raise this only for few large scenarios)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "experiment seed")
	perWorkload := flag.Bool("per-workload", false, "also print Figure 9 per-workload/per-partner distributions")
	out := flag.String("out", "", "also export per-trial results to this CSV file")
	flag.Parse()

	cfg.CollectPerWorkload = *perWorkload
	start := time.Now()
	result, err := montecarlo.RunColocation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(montecarlo.FormatFigure8(result))
	if *perWorkload {
		fmt.Println()
		fmt.Print(montecarlo.FormatFigure9(result))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := result.WriteColocationCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote per-trial results to %s\n", *out)
	}
	fmt.Printf("\ncompleted %d trials in %v\n", cfg.Trials, time.Since(start).Round(time.Millisecond))
}
