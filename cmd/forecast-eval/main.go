// Command forecast-eval reproduces the paper's forecasting figures:
//
//   - Figure 4: the hierarchical Temporal Shapley embodied-carbon intensity
//     signal over a 30-day Azure-like trace (splits 10*9*8*12), with the
//     operation counts of the naive and closed-form solvers.
//   - Figure 5: 21 days of demand history forecasting the remaining 9 days.
//   - Figure 11: the live intensity signal's error under forecast error.
//
// Optionally reads a real demand trace CSV (timestamp_seconds,value) via
// -trace; otherwise generates the synthetic Azure-like trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fairco2/internal/livesignal"
	"fairco2/internal/temporal"
	"fairco2/internal/textplot"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forecast-eval: ")

	var (
		traceCSV = flag.String("trace", "", "30-day 5-minute demand trace CSV (default: synthetic Azure-like)")
		budget   = flag.Float64("budget", 1e7, "embodied carbon budget over the window (gCO2e)")
		fitDays  = flag.Int("fit-days", 21, "history window in days (paper: 21)")
		signal   = flag.Bool("signal", false, "print the Figure 4 intensity signal summary")
	)
	flag.Parse()

	demand, err := loadDemand(*traceCSV)
	if err != nil {
		log.Fatal(err)
	}

	if *signal {
		printFigure4(demand, *budget)
		fmt.Println()
	}

	cfg := livesignal.DefaultConfig()
	cfg.FitDays = *fitDays
	cfg.Budget = units.GramsCO2e(*budget)
	res, err := livesignal.Evaluate(demand, cfg)
	if err != nil {
		log.Fatal(err)
	}
	horizon := 30 - *fitDays
	fmt.Printf("Figure 5 — demand forecast (%d days history -> %d days forecast)\n", *fitDays, horizon)
	fmt.Printf("  demand MAPE:      %6.2f%%\n", res.Demand.MAPE)
	fmt.Printf("  demand worst APE: %6.2f%%\n", res.Demand.WorstAPE)
	fmt.Println()
	fmt.Println("Figure 11 — live embodied carbon intensity signal under forecast error")
	fmt.Printf("  intensity MAPE:      %6.2f%%   (paper: 2.30%%)\n", res.IntensityMAPE)
	fmt.Printf("  intensity worst APE: %6.2f%%   (paper: 15.72%%)\n", res.IntensityWorstAPE)
	fmt.Println("\n  true intensity signal (30 days):")
	fmt.Printf("  %s\n", textplot.Sparkline(res.TrueIntensity.Values, 90))
	fmt.Println("  live (forecast-extended) intensity signal:")
	fmt.Printf("  %s\n", textplot.Sparkline(res.LiveIntensity.Values, 90))
}

func loadDemand(path string) (*timeseries.Series, error) {
	if path == "" {
		return trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f)
}

func printFigure4(demand *timeseries.Series, budget float64) {
	splits := temporal.PaperSplits()
	sig, err := temporal.IntensitySignal(demand, units.GramsCO2e(budget), temporal.Config{SplitRatios: splits})
	if err != nil {
		log.Fatal(err)
	}
	min, max := sig.Values[0], sig.Values[0]
	for _, v := range sig.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	fmt.Println("Figure 4 — Temporal Shapley 30 d -> 5 min intensity signal (splits 10*9*8*12)")
	fmt.Printf("  samples: %d, intensity min %.3g / mean %.3g / max %.3g gCO2e per core-second\n",
		sig.Len(), min, sig.Mean(), max)
	fmt.Printf("  naive (Eq. 6) operations:    %.4g\n", temporal.NaiveOps(splits))
	fmt.Printf("  closed-form operations:      %.4g\n", temporal.ClosedFormOps(splits))
	fmt.Printf("  exact ground truth over 2M VMs: 2^2000000 coalitions (astronomically larger)\n")
}
