// Command colocation-profile reproduces the paper's Figure 2: the pairwise
// colocation characterization of the 15-workload suite — percent runtime
// increase and percent dynamic-energy increase of every victim/aggressor
// pair versus isolated execution.
package main

import (
	"flag"
	"fmt"
	"log"

	"fairco2/internal/interference"
	"fairco2/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("colocation-profile: ")
	profiles := flag.Bool("profiles", false, "also print per-workload alpha/beta interference profiles")
	flag.Parse()

	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 2(a): runtime increase under pairwise colocation")
	fmt.Print(workload.FormatMatrix(char.Profiles, char.RuntimeFactor, "Runtime"))
	fmt.Println()
	fmt.Println("Figure 2(b): dynamic-energy increase under pairwise colocation")
	fmt.Print(workload.FormatMatrix(char.Profiles, char.DynEnergyFactor, "Dynamic energy"))

	if *profiles {
		fmt.Println()
		fmt.Println("Interference profiles (alpha = mean factor suffered, beta = mean factor inflicted)")
		fmt.Printf("%-8s %8s %8s %8s %8s\n", "workload", "alphaT", "betaT", "alphaP", "betaP")
		all, err := interference.EstimateAll(char)
		if err != nil {
			log.Fatal(err)
		}
		for i, p := range all {
			fmt.Printf("%-8s %8.3f %8.3f %8.3f %8.3f\n", char.Profiles[i].Name, p.AlphaT, p.BetaT, p.AlphaP, p.BetaP)
		}
	}
}
