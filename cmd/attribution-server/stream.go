package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/stream"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

// streamOptions configure the -stream replay mode: a windowed streaming
// attribution engine fed by a scripted replay of an Azure-like demand
// trace, exposed through /v1/stream/ next to the batch query endpoints.
type streamOptions struct {
	// Enabled turns the streaming engine on; Once runs the replay to
	// completion at maximum speed, prints a summary report and exits
	// (the reproduce.sh demo path).
	Enabled, Once bool
	// Days and Seed parameterize the generated Azure-like replay trace.
	Days int
	Seed int64
	// Rate is the replay pacing: event-time seconds played per wall-clock
	// second (0 = as fast as the engine can ingest).
	Rate float64
	// Scenario is a trace.ParseScenario script layered over the trace
	// (bursts, ramps, outage gaps).
	Scenario string
	// Disorder is the fraction of events delivered out of order; MaxDefer
	// bounds their displacement in samples (0 = auto: half the engine's
	// reorder+lateness horizon, which keeps every deferral inside the
	// lateness budget).
	Disorder float64
	MaxDefer int
	// Splits, Step, Budget, MaxDelay and Lateness mirror stream.Config.
	Splits   string
	Step     float64
	Budget   float64
	MaxDelay float64
	Lateness float64
}

func defaultStreamOptions() streamOptions {
	return streamOptions{
		Days:     2,
		Seed:     1,
		Rate:     60,
		Disorder: 0.01,
		Splits:   "4,3,2",
		Step:     300,
		Budget:   1e4,
		MaxDelay: 600,
		Lateness: 1800,
	}
}

// parseSplits parses a comma-separated split-ratio list like "4,3,2".
func parseSplits(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("split ratios %q: %w", spec, err)
		}
		out[i] = v
	}
	return out, nil
}

// engineConfig translates the flag-level options into a stream.Config.
func (o streamOptions) engineConfig() (stream.Config, error) {
	splits, err := parseSplits(o.Splits)
	if err != nil {
		return stream.Config{}, err
	}
	return stream.Config{
		Step:            units.Seconds(o.Step),
		SplitRatios:     splits,
		BudgetPerWindow: units.GramsCO2e(o.Budget),
		MaxDelay:        units.Seconds(o.MaxDelay),
		AllowedLateness: units.Seconds(o.Lateness),
	}, nil
}

// streamRuntime is a built streaming mode: the engine serving /v1/stream/
// and the scripted replay that feeds it.
type streamRuntime struct {
	engine *stream.Engine
	replay *stream.Replay
	cfg    stream.Config
}

// buildStream generates the replay trace (Azure-like shape plus the
// scenario script), the disordered replay source and the engine. feed may
// be nil (static per-window budgets).
func buildStream(o streamOptions, feed *livesignal.Feed, reg *metrics.Registry) (*streamRuntime, error) {
	if o.Days < 1 {
		return nil, errors.New("stream replay needs at least one day of trace")
	}
	cfg, err := o.engineConfig()
	if err != nil {
		return nil, err
	}
	cfg.Feed = feed
	eng, err := stream.New(cfg, stream.NewInstruments(reg))
	if err != nil {
		return nil, err
	}

	tcfg := trace.DefaultAzureLikeConfig()
	tcfg.Days = o.Days
	tcfg.Step = units.Seconds(o.Step)
	tcfg.Seed = o.Seed
	series, err := trace.GenerateAzureLike(tcfg)
	if err != nil {
		return nil, fmt.Errorf("generating replay trace: %w", err)
	}
	sc, err := trace.ParseScenario(o.Scenario)
	if err != nil {
		return nil, err
	}
	if !sc.IsZero() {
		if series, err = sc.Apply(series); err != nil {
			return nil, err
		}
	}

	maxDefer := o.MaxDefer
	if maxDefer == 0 {
		if maxDefer = int((o.MaxDelay + o.Lateness) / o.Step / 2); maxDefer < 1 {
			maxDefer = 1
		}
	}
	rep, err := stream.NewReplay(series, stream.ReplayConfig{
		RateMultiplier:   o.Rate,
		Seed:             o.Seed,
		DisorderFraction: o.Disorder,
		MinDefer:         1,
		MaxDefer:         maxDefer,
	})
	if err != nil {
		return nil, err
	}
	return &streamRuntime{engine: eng, replay: rep, cfg: cfg}, nil
}

// runStreamOnce replays the scripted trace to completion at maximum speed
// and writes the demo report: window counts, late/dropped accounting
// against the script's oracle, and watermark close-lag percentiles.
func runStreamOnce(o streamOptions, reg *metrics.Registry, w io.Writer) error {
	o.Rate = 0
	rt, err := buildStream(o, nil, reg)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := rt.replay.Run(context.Background(), rt.engine.Ingest); err != nil {
		return err
	}
	elapsed := time.Since(start)

	st := rt.engine.Stats()
	exp := rt.replay.Expected(rt.cfg)
	span := float64(o.Days) * units.SecondsPerDay
	fmt.Fprintf(w, "streaming replay: %d events over %d day(s) of event time in %s (%.0fx real-time)\n",
		st.Events, o.Days, elapsed.Round(time.Millisecond), span/elapsed.Seconds())
	fmt.Fprintf(w, "window: %d bins x %.0fs = %.0fs, max delay %.0fs, allowed lateness %.0fs\n",
		rt.cfg.Samples(), o.Step, float64(rt.cfg.WindowDuration()), o.MaxDelay, o.Lateness)
	if o.Scenario != "" {
		fmt.Fprintf(w, "scenario script: %s\n", o.Scenario)
	}
	fmt.Fprintf(w, "windows closed: %d   re-emissions: %d\n", st.WindowsClosed, st.Reemissions)
	fmt.Fprintf(w, "late events: %d (script expected %d)   dropped events: %d (script expected %d)\n",
		st.Late, exp.Late, st.Dropped, exp.Dropped)
	if st.Late != exp.Late || st.Dropped != exp.Dropped {
		return fmt.Errorf("engine accounting disagrees with the replay oracle: %s", exp.Summary())
	}
	if qs := rt.engine.CloseLagQuantiles(0.5, 0.9, 0.99); qs != nil {
		fmt.Fprintf(w, "watermark close lag p50/p90/p99: %.0fs / %.0fs / %.0fs\n",
			float64(qs[0]), float64(qs[1]), float64(qs[2]))
	}
	if res, ok := rt.engine.Latest(); ok {
		fmt.Fprintf(w, "latest window %d [%.0fs, %.0fs): quality=%s budget=%.1f gCO2e revision=%d\n",
			res.Index, float64(res.Start), float64(res.End), res.Quality, res.Budget, res.Revision)
	}
	return nil
}
