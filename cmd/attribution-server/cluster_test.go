package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fairco2/internal/metrics"
)

func TestParsePeerSpec(t *testing.T) {
	peers, err := parsePeerSpec("0=http://a:9103, 1=http://b:9103 ,2=http://c:9103")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"0": "http://a:9103", "1": "http://b:9103", "2": "http://c:9103"}
	if len(peers) != len(want) {
		t.Fatalf("parsed %v, want %v", peers, want)
	}
	for id, url := range want {
		if peers[id] != url {
			t.Errorf("peer %s = %q, want %q", id, peers[id], url)
		}
	}

	if peers, err = parsePeerSpec(""); err != nil || len(peers) != 0 {
		t.Errorf("empty spec: %v, %v", peers, err)
	}
	if peers, err = parsePeerSpec(" , "); err != nil || len(peers) != 0 {
		t.Errorf("blank entries: %v, %v", peers, err)
	}
	for _, bad := range []string{"0", "=http://a", "0=", "0=u,0=v"} {
		if _, err := parsePeerSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestWrapClusterServes builds a single-replica cluster daemon end to end
// through the flag-level config and checks the cluster surface answers.
func TestWrapClusterServes(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := defaultDaemonConfig()
	cfg.Cluster = clusterOptions{
		ReplicaID: "a", AdmitRate: 100, MaxQueue: 8,
		ProbeInterval: 100 * time.Millisecond, HedgeSuccessors: 1,
	}
	srv, _, err := buildServer(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	node, err := wrapCluster(cfg.Cluster, srv, reg)
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Stop()
	ts := httptest.NewServer(node.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Replica string   `json:"replica"`
		Peers   []string `json:"peers"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	if info.Replica != "a" || len(info.Peers) != 1 {
		t.Errorf("cluster info = %+v", info)
	}

	resp, err = http.Get(ts.URL + "/v1/attribution?method=rup")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("attribution through cluster handler: status %d", resp.StatusCode)
	}
	// The attrserver metrics carry the replica label from -replica-id.
	found := false
	for _, fam := range reg.Gather() {
		if fam.Name != "fairco2_attrserver_computations_total" {
			continue
		}
		for _, s := range fam.Samples {
			for _, v := range s.LabelValues {
				if v == "a" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no attrserver series labeled with replica \"a\"")
	}

	// BeginDrain is the SIGTERM sequence main runs before Shutdown:
	// /healthz flips to 503 while queries keep being served.
	node.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/attribution?method=rup")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("query during drain: status %d, want 200", resp.StatusCode)
	}

	if _, err := wrapCluster(clusterOptions{}, srv, reg); err == nil {
		t.Error("cluster mode without -replica-id accepted")
	}
	if _, err := wrapCluster(clusterOptions{ReplicaID: "a", Peers: "junk"}, srv, reg); err == nil {
		t.Error("malformed -cluster-peers accepted")
	}
}
