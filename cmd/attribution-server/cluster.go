package main

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/clusterserve"
	"fairco2/internal/metrics"
)

// clusterOptions is the flag-level cluster configuration. Cluster mode is
// on when ReplicaID is set; the daemon then routes queries across the
// peer set by consistent hash and admits requests through the per-tenant
// token buckets and the queue-depth bound.
type clusterOptions struct {
	// ReplicaID names this replica; it must appear in Peers unless the
	// replica runs alone.
	ReplicaID string
	// Peers is the cluster membership as "id=url,id=url,...".
	Peers string
	// VNodes is the virtual-node count per replica (0 = default).
	VNodes int
	// AdmitRate and AdmitBurst shape the per-tenant token buckets
	// (rate 0 disables tenant admission).
	AdmitRate  float64
	AdmitBurst float64
	// AdmitMaxTenants bounds the tracked-tenant table.
	AdmitMaxTenants int
	// MaxQueue bounds concurrently computing requests (0 = unbounded).
	MaxQueue int
	// RetryAfter is the pause a queue-depth 429 asks clients to take.
	RetryAfter time.Duration

	// ProbeInterval / ProbeTimeout / ProbeFail / ProbeUp tune the health
	// prober (zero = clusterserve defaults: 500ms, interval/2, 3, 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbeFail     int
	ProbeUp       int
	// HedgeSuccessors / HedgeLatency tune hedged failover (zero =
	// clusterserve defaults: 2 successors, 150ms budget).
	HedgeSuccessors int
	HedgeLatency    time.Duration
	// DrainWait is how long a SIGTERM'd replica keeps serving with a
	// failing /healthz before shutting its listener, so every peer's
	// prober evicts it first and no request races the socket closing.
	DrainWait time.Duration
}

// enabled reports whether any cluster flag was set.
func (c clusterOptions) enabled() bool { return c.ReplicaID != "" || c.Peers != "" }

// parsePeerSpec parses "id=url,id=url" into a peer map.
func parsePeerSpec(spec string) (map[string]string, error) {
	peers := map[string]string{}
	if strings.TrimSpace(spec) == "" {
		return peers, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("peer entry %q is not id=url", entry)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q", id)
		}
		peers[id] = url
	}
	return peers, nil
}

// wrapCluster layers the cluster node over the attrserver handler. The
// caller owns the node's lifecycle: Start launches the self-healing
// probers, BeginDrain + Stop sequence the graceful exit.
func wrapCluster(opts clusterOptions, srv *attrserver.Server, reg *metrics.Registry) (*clusterserve.Node, error) {
	if opts.ReplicaID == "" {
		return nil, errors.New("cluster mode needs -replica-id")
	}
	peers, err := parsePeerSpec(opts.Peers)
	if err != nil {
		return nil, fmt.Errorf("parsing -cluster-peers: %w", err)
	}
	return clusterserve.New(clusterserve.Config{
		ReplicaID: opts.ReplicaID,
		Peers:     peers,
		VNodes:    opts.VNodes,
		Server:    srv,
		Admission: clusterserve.AdmissionConfig{
			Rate:       opts.AdmitRate,
			Burst:      opts.AdmitBurst,
			MaxTenants: opts.AdmitMaxTenants,
			MaxQueue:   opts.MaxQueue,
			RetryAfter: opts.RetryAfter,
		},
		Probe: clusterserve.ProbeConfig{
			Interval:      opts.ProbeInterval,
			Timeout:       opts.ProbeTimeout,
			FailThreshold: opts.ProbeFail,
			UpThreshold:   opts.ProbeUp,
		},
		Hedge: clusterserve.HedgeConfig{
			Successors:    opts.HedgeSuccessors,
			LatencyBudget: opts.HedgeLatency,
		},
	}, reg)
}
