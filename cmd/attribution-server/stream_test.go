package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairco2/internal/metrics"
)

// fastStreamOptions is a small replay the tests can run to completion:
// one day of 5-minute samples in 2-hour windows, no pacing.
func fastStreamOptions() streamOptions {
	o := defaultStreamOptions()
	o.Enabled = true
	o.Days = 1
	o.Rate = 0
	return o
}

func TestParseSplits(t *testing.T) {
	got, err := parseSplits(" 4, 3 ,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[1] != 3 || got[2] != 2 {
		t.Errorf("parseSplits = %v", got)
	}
	for _, bad := range []string{"", "4,,2", "4,x", "4;3"} {
		if _, err := parseSplits(bad); err == nil {
			t.Errorf("splits %q accepted", bad)
		}
	}
}

func TestBuildStreamRejectsBadOptions(t *testing.T) {
	bad := []func(*streamOptions){
		func(o *streamOptions) { o.Days = 0 },
		func(o *streamOptions) { o.Splits = "4,zero" },
		func(o *streamOptions) { o.Splits = "4,0" },
		func(o *streamOptions) { o.Budget = 0 },
		func(o *streamOptions) { o.Scenario = "burst:1,2" },
		func(o *streamOptions) { o.Disorder = 2 },
	}
	for i, mutate := range bad {
		o := fastStreamOptions()
		mutate(&o)
		if _, err := buildStream(o, nil, metrics.NewRegistry()); err == nil {
			t.Errorf("case %d: invalid stream options accepted", i)
		}
	}
}

func TestBuildServerStreamModeServesWindows(t *testing.T) {
	cfg := defaultDaemonConfig()
	cfg.Stream = fastStreamOptions()
	srv, rt, err := buildServer(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if rt == nil {
		t.Fatal("stream mode built no runtime")
	}
	if err := rt.replay.Run(context.Background(), rt.engine.Ingest); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream/window")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream window status %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	// One day of 5-minute samples in 24-bin windows = 12 windows; the
	// last cannot close (the watermark never passes the trace end).
	if idx := raw["index"].(float64); idx != 10 {
		t.Errorf("latest window = %v, want 10", idx)
	}
	if n := len(raw["intensity_g_per_core_second"].([]any)); n != 24 {
		t.Errorf("window has %d bins, want 24", n)
	}

	resp2, err := http.Get(ts.URL + "/v1/stream/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st struct {
		Events        uint64 `json:"events"`
		WindowsClosed uint64 `json:"windows_closed"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Events != 288 || st.WindowsClosed != 11 {
		t.Errorf("stats = %+v, want 288 events and 11 closed windows", st)
	}

	// The batch endpoints keep serving next to the stream.
	if resp, err := http.Get(ts.URL + "/v1/attribution?method=rup"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("batch endpoint broken in stream mode: (%v, %v)", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestRunStreamOnceReport(t *testing.T) {
	o := fastStreamOptions()
	o.Scenario = "burst:21600,7200,1.8;outage:50400,3600,5000"
	o.Disorder = 0.05
	var buf strings.Builder
	if err := runStreamOnce(o, metrics.NewRegistry(), &buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{
		"streaming replay: 288 events",
		"windows closed: 11",
		"late events:",
		"dropped events:",
		"watermark close lag p50/p90/p99:",
		"scenario script: burst:21600,7200,1.8;outage:50400,3600,5000",
		"latest window 10",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunStreamOnceRejectsBadScript(t *testing.T) {
	o := fastStreamOptions()
	o.Scenario = "nonsense"
	var buf strings.Builder
	if err := runStreamOnce(o, metrics.NewRegistry(), &buf); err == nil {
		t.Error("bad scenario script accepted")
	}
}
