package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairco2/internal/metrics"
	"fairco2/internal/schedule"
)

func TestConfigValidation(t *testing.T) {
	ok := defaultDaemonConfig()
	if err := ok.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := ok
	bad.Budget = 0
	if err := bad.validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = ok
	bad.MaxWorkloads = 0
	if err := bad.validate(); err == nil {
		t.Error("zero workload cap accepted for a generated schedule")
	}
	bad = ok
	bad.SignalURL = "http://signal"
	bad.SignalMaxStale = 0
	if err := bad.validate(); err == nil {
		t.Error("signal mode with zero max-stale accepted")
	}
}

func TestLoadScheduleGeneratedIsReproducible(t *testing.T) {
	a, err := loadSchedule("", 7, 14)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadSchedule("", 7, 14)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices != b.Slices || len(a.Workloads) != len(b.Workloads) {
		t.Errorf("same seed generated different schedules: %d/%d slices, %d/%d workloads",
			a.Slices, b.Slices, len(a.Workloads), len(b.Workloads))
	}
}

func TestLoadScheduleFromCSV(t *testing.T) {
	src := &schedule.Schedule{
		Slices:        4,
		SliceDuration: 3600,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 2},
			{ID: 1, Cores: 16, Start: 1, Duration: 3},
		},
	}
	path := filepath.Join(t.TempDir(), "sched.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := loadSchedule(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slices != 4 || len(got.Workloads) != 2 {
		t.Errorf("round-tripped schedule = %d slices, %d workloads", got.Slices, len(got.Workloads))
	}

	if _, err := loadSchedule(filepath.Join(t.TempDir(), "missing.csv"), 0, 0); err == nil {
		t.Error("missing CSV accepted")
	}
}

func TestBuildServerServesQueries(t *testing.T) {
	cfg := defaultDaemonConfig()
	cfg.Seed = 3
	srv, _, err := buildServer(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/attribution?method=rup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Method    string `json:"method"`
		Workloads []struct {
			ID    int     `json:"id"`
			Grams float64 `json:"gco2e"`
		} `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Method != "rup" || len(out.Workloads) == 0 {
		t.Errorf("response = %+v", out)
	}
	total := 0.0
	for _, w := range out.Workloads {
		total += w.Grams
	}
	if diff := total - float64(cfg.Budget); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("whole-window attribution sums to %v, want the budget %v", total, float64(cfg.Budget))
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = (%v, %v)", resp, err)
	} else {
		resp.Body.Close()
	}
}

func TestBuildServerRejectsBadConfig(t *testing.T) {
	cfg := defaultDaemonConfig()
	cfg.Budget = -1
	if _, _, err := buildServer(cfg, metrics.NewRegistry()); err == nil {
		t.Error("negative budget accepted")
	}
	cfg = defaultDaemonConfig()
	cfg.SchedulePath = "/nonexistent/sched.csv"
	if _, _, err := buildServer(cfg, metrics.NewRegistry()); err == nil {
		t.Error("unreadable schedule path accepted")
	}
}

func TestBuildServerServesDemandDelta(t *testing.T) {
	cfg := defaultDaemonConfig()
	cfg.Seed = 3
	if !cfg.Delta {
		t.Fatal("delta endpoint should default on")
	}
	srv, _, err := buildServer(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := strings.NewReader(`{"tenant":0,"cores":7,"method":"ground-truth"}`)
	resp, err := http.Post(ts.URL+"/v1/demand/delta", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Method    string `json:"method"`
		Committed bool   `json:"committed"`
		Workloads []struct {
			ID    int     `json:"id"`
			Grams float64 `json:"gco2e"`
		} `json:"workloads"`
		Delta struct {
			Coalitions int `json:"shapley_coalitions_reevaluated"`
		} `json:"delta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Method != "ground-truth" || out.Committed || len(out.Workloads) == 0 {
		t.Errorf("response = %+v", out)
	}
	if out.Delta.Coalitions == 0 {
		t.Error("delta reported zero re-evaluated coalitions")
	}
	total := 0.0
	for _, w := range out.Workloads {
		total += w.Grams
	}
	if diff := total - float64(cfg.Budget); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("what-if attribution sums to %v, want the budget %v", total, float64(cfg.Budget))
	}

	// The disabled path: no route registered.
	cfg.Delta = false
	srvOff, _, err := buildServer(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	tsOff := httptest.NewServer(srvOff.Handler())
	defer tsOff.Close()
	respOff, err := http.Post(tsOff.URL+"/v1/demand/delta", "application/json", strings.NewReader(`{"tenant":0}`))
	if err != nil {
		t.Fatal(err)
	}
	respOff.Body.Close()
	if respOff.StatusCode != http.StatusNotFound {
		t.Errorf("-delta=false endpoint: status %d, want 404", respOff.StatusCode)
	}
}
