// Command attribution-server is Fair-CO2's query daemon: a long-lived
// HTTP service that answers per-tenant attribution, share and billing
// queries over one configured schedule. Expensive Shapley computations
// are amortized behind a sharded result cache, request coalescing (N
// concurrent identical queries cost one computation) and batched
// evaluation (queries inside a small window merge into one attribution
// call), so the service survives dashboard fan-out and scrape storms.
//
//	GET /v1/attribution?method=fair-co2&period=0:6&tenant=3
//	GET /v1/share?period=0:6
//	GET /v1/billing?period=2:5
//	GET /metrics   -> Prometheus text format
//	GET /healthz   -> {"status":"ok", ...}
//
// The schedule comes from a CSV (-schedule, the schedule.WriteCSV
// format) or is generated with the paper's §6.3 parameters (-seed).
// With -signal-url set, period budgets are priced against the live
// embodied intensity through the resilient signal client, and cache
// TTLs follow the signal's staleness ladder.
//
// With -stream set, the daemon additionally runs the windowed streaming
// attribution engine: a scripted replay of an Azure-like demand trace
// (bursts, ramps and outage gaps via -stream-scenario, out-of-order
// delivery via -stream-disorder) feeds tumbling windows whose Temporal
// Shapley results are served live:
//
//	GET /v1/stream/window           -> latest closed window
//	GET /v1/stream/window?index=4   -> a retained window by ordinal
//	GET /v1/stream/stats            -> watermark, late/dropped counters
//
// -stream-once replays the whole script at maximum speed, prints the
// summary report (windows closed, late/dropped accounting against the
// script's oracle, watermark lag percentiles) and exits.
//
// With -replica-id set, the daemon joins a scale-out cluster: queries
// are routed by consistent hash over the -cluster-peers membership to
// the replica owning each computation (so identical queries compute once
// cluster-wide), delta commits replicate to every peer, and admission
// control (-admit-rate per-tenant token buckets, -max-queue depth bound)
// sheds overload with 429 + Retry-After:
//
//	attribution-server -replica-id 0 \
//	  -cluster-peers '0=http://h0:9103,1=http://h1:9103' \
//	  -admit-rate 50 -max-queue 64
//
//	GET /v1/cluster   -> membership, ring and admission introspection
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairco2/internal/attrserver"
	"fairco2/internal/clusterserve"
	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/multiregion"
	"fairco2/internal/resilience"
	"fairco2/internal/schedule"
	"fairco2/internal/signalserver"
	"fairco2/internal/units"
)

// daemonConfig is the flag-level configuration: where the schedule comes
// from, how to price it, and the serving knobs forwarded to attrserver.
type daemonConfig struct {
	// SchedulePath is a schedule CSV; empty generates one from Seed.
	SchedulePath string
	// Seed drives schedule generation when SchedulePath is empty.
	Seed int64
	// MaxWorkloads caps the generated schedule (exact Shapley needs <= 24).
	MaxWorkloads int
	// Budget is the embodied budget over the whole schedule window.
	Budget units.GramsCO2e
	// Parallelism is forwarded to the Shapley engines.
	Parallelism int
	// Delta serves POST /v1/demand/delta: what-if and committed demand
	// updates answered incrementally by the delta engines.
	Delta bool

	// Serving knobs, forwarded to attrserver.Config.
	CacheBytes    int64
	CacheTTL      time.Duration
	BatchWindow   time.Duration
	QueryTimeout  time.Duration
	PricePerTonne float64

	// SignalURL, when set, prices periods against a remote live signal
	// through the resilient client + last-known-good feed.
	SignalURL        string
	SignalResilience resilience.Config
	SignalMaxStale   time.Duration

	// Regions enables the multi-region scenario endpoints (GET
	// /v1/regions and GET /v1/placement/whatif) over a fleet discovered
	// deterministically from RegionSeed.
	Regions bool
	// RegionSeed seeds provider/fleet discovery in regions mode.
	RegionSeed int64

	// Stream configures the windowed streaming replay mode.
	Stream streamOptions

	// Cluster configures scale-out sharding: with -replica-id set the
	// daemon joins a consistent-hash cluster, forwarding queries to their
	// owning replica and admitting work through token buckets and a
	// queue-depth bound.
	Cluster clusterOptions
}

func defaultDaemonConfig() daemonConfig {
	def := attrserver.DefaultConfig()
	return daemonConfig{
		Seed:             1,
		RegionSeed:       1,
		MaxWorkloads:     14,
		Budget:           1e6,
		Delta:            def.EnableDelta,
		CacheBytes:       def.CacheBytes,
		CacheTTL:         def.CacheTTL,
		BatchWindow:      def.BatchWindow,
		QueryTimeout:     def.QueryTimeout,
		PricePerTonne:    def.PricePerTonne,
		SignalResilience: resilience.DefaultConfig(),
		SignalMaxStale:   livesignal.DefaultMaxStale,
		Stream:           defaultStreamOptions(),
	}
}

func (c daemonConfig) validate() error {
	switch {
	case c.Budget <= 0:
		return errors.New("budget must be positive")
	case c.SchedulePath == "" && c.MaxWorkloads < 1:
		return errors.New("max workloads must be positive")
	}
	if c.SignalURL != "" {
		if err := c.SignalResilience.Validate(); err != nil {
			return err
		}
		if c.SignalMaxStale <= 0 {
			return errors.New("signal max-stale must be positive")
		}
	}
	return nil
}

// loadSchedule reads the CSV at path, or generates a schedule with the
// paper's parameters when path is empty.
func loadSchedule(path string, seed int64, maxWorkloads int) (*schedule.Schedule, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return schedule.ReadCSV(f)
	}
	gen := schedule.DefaultGeneratorConfig()
	gen.MaxWorkloads = maxWorkloads
	return schedule.Generate(gen, rand.New(rand.NewSource(seed)))
}

// buildServer wires the daemon config into a serving attrserver.Server,
// registering its instruments (and, in signal mode, the client and feed
// instruments) on reg. In stream mode the returned runtime carries the
// engine and its replay source; the caller starts the replay.
func buildServer(cfg daemonConfig, reg *metrics.Registry) (*attrserver.Server, *streamRuntime, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	sched, err := loadSchedule(cfg.SchedulePath, cfg.Seed, cfg.MaxWorkloads)
	if err != nil {
		return nil, nil, fmt.Errorf("loading schedule: %w", err)
	}
	scfg := attrserver.DefaultConfig()
	scfg.Schedule = sched
	scfg.Budget = cfg.Budget
	scfg.Parallelism = cfg.Parallelism
	scfg.EnableDelta = cfg.Delta
	scfg.CacheBytes = cfg.CacheBytes
	scfg.CacheTTL = cfg.CacheTTL
	scfg.BatchWindow = cfg.BatchWindow
	scfg.QueryTimeout = cfg.QueryTimeout
	scfg.PricePerTonne = cfg.PricePerTonne
	scfg.Replica = cfg.Cluster.ReplicaID
	if cfg.SignalURL != "" {
		client := (&signalserver.Client{BaseURL: cfg.SignalURL}).
			WithResilience(cfg.SignalResilience, cfg.Seed, signalserver.NewClientInstruments(reg))
		scfg.Feed = livesignal.NewFeed(client,
			livesignal.FeedConfig{MaxStale: cfg.SignalMaxStale},
			livesignal.NewFeedInstruments(reg))
		scfg.SignalMaxStale = cfg.SignalMaxStale
	}
	if cfg.Regions {
		mcfg := multiregion.DefaultConfig()
		scenario, err := multiregion.Discover(mcfg, cfg.RegionSeed)
		if err != nil {
			return nil, nil, fmt.Errorf("discovering regions: %w", err)
		}
		scfg.Scenario = scenario
	}
	var rt *streamRuntime
	if cfg.Stream.Enabled {
		if rt, err = buildStream(cfg.Stream, scfg.Feed, reg); err != nil {
			return nil, nil, fmt.Errorf("building stream mode: %w", err)
		}
		scfg.Stream = rt.engine
	}
	srv, err := attrserver.New(scfg, reg)
	if err != nil {
		return nil, nil, err
	}
	return srv, rt, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("attribution-server: ")

	def := defaultDaemonConfig()
	var (
		addr     = flag.String("addr", ":9103", "listen address")
		schedCSV = flag.String("schedule", def.SchedulePath, "schedule CSV (empty = generate from -seed)")
		seed     = flag.Int64("seed", def.Seed, "generation seed when no schedule CSV is given")
		maxWl    = flag.Int("max-workloads", def.MaxWorkloads, "generated schedule workload cap")
		budget   = flag.Float64("budget", float64(def.Budget), "embodied budget over the schedule window (gCO2e)")
		workers  = flag.Int("parallelism", def.Parallelism, "Shapley engine workers (0 auto, 1 serial)")
		deltaOn  = flag.Bool("delta", def.Delta, "serve POST /v1/demand/delta what-if and commit queries via the incremental delta engines")
		cacheB   = flag.Int64("cache-bytes", def.CacheBytes, "result cache byte budget")
		cacheTTL = flag.Duration("cache-ttl", def.CacheTTL, "result lifetime (fresh signal or static budget)")
		window   = flag.Duration("batch-window", def.BatchWindow, "batching window gathering queries into one computation")
		qTimeout = flag.Duration("query-timeout", def.QueryTimeout, "per-query timeout")
		price    = flag.Float64("price-per-tonne", def.PricePerTonne, "billing price in USD per tonne CO2e")
		sigURL   = flag.String("signal-url", def.SignalURL, "base URL of a remote signal server (empty = static budget)")
		maxStale = flag.Duration("signal-max-stale", def.SignalMaxStale, "how long a cached signal sample may substitute for a live one")

		regionsOn  = flag.Bool("regions", def.Regions, "serve the multi-region scenario endpoints (/v1/regions, /v1/placement/whatif)")
		regionSeed = flag.Int64("region-seed", def.RegionSeed, "deterministic seed for provider/fleet discovery in -regions mode")

		streamOn       = flag.Bool("stream", def.Stream.Enabled, "run the windowed streaming attribution engine fed by a trace replay")
		streamOnce     = flag.Bool("stream-once", def.Stream.Once, "replay the stream script to completion, print the summary report and exit")
		streamDays     = flag.Int("stream-days", def.Stream.Days, "replay trace length in days")
		streamSeed     = flag.Int64("stream-seed", def.Stream.Seed, "replay trace + disorder script seed")
		streamRate     = flag.Float64("stream-rate", def.Stream.Rate, "replay pacing: event-time seconds per wall second (0 = max speed)")
		streamScenario = flag.String("stream-scenario", def.Stream.Scenario, "scenario script, e.g. burst:21600,7200,1.8;outage:50400,3600,5000")
		streamDisorder = flag.Float64("stream-disorder", def.Stream.Disorder, "fraction of replay events delivered out of order")
		streamDefer    = flag.Int("stream-max-defer", def.Stream.MaxDefer, "max displacement of disordered events in samples (0 = auto, stays inside the lateness budget)")
		streamSplits   = flag.String("stream-splits", def.Stream.Splits, "per-window Temporal Shapley split ratios (product = bins per window)")
		streamStep     = flag.Float64("stream-step", def.Stream.Step, "demand bin width in seconds")
		streamBudget   = flag.Float64("stream-budget", def.Stream.Budget, "static carbon budget per window (gCO2e) when no -signal-url is set")
		streamDelay    = flag.Float64("stream-max-delay", def.Stream.MaxDelay, "watermark slack in seconds: how far out of order events may arrive and still be on time")
		streamLate     = flag.Float64("stream-lateness", def.Stream.Lateness, "allowed lateness in seconds: late events inside it re-emit a corrected window, beyond it they drop")

		replicaID    = flag.String("replica-id", def.Cluster.ReplicaID, "this replica's cluster ID (set to enable cluster mode)")
		clusterPeers = flag.String("cluster-peers", def.Cluster.Peers, `cluster membership as "id=url,id=url" (must include -replica-id unless running alone)`)
		vnodes       = flag.Int("cluster-vnodes", def.Cluster.VNodes, "virtual nodes per replica on the hash ring (0 = default)")
		admitRate    = flag.Float64("admit-rate", def.Cluster.AdmitRate, "per-tenant admitted requests per second (0 = no tenant limit)")
		admitBurst   = flag.Float64("admit-burst", def.Cluster.AdmitBurst, "per-tenant burst capacity (0 = same as -admit-rate)")
		admitTenants = flag.Int("admit-max-tenants", def.Cluster.AdmitMaxTenants, "bound on tracked tenant buckets (0 = default)")
		maxQueue     = flag.Int("max-queue", def.Cluster.MaxQueue, "bound on concurrently computing requests; beyond it requests shed with 429 (0 = unbounded)")
		retryAfter   = flag.Duration("retry-after", def.Cluster.RetryAfter, "pause a queue-depth 429 asks clients to take")

		probeInterval = flag.Duration("probe-interval", def.Cluster.ProbeInterval, "health probe period per peer (0 = 500ms default)")
		probeTimeout  = flag.Duration("probe-timeout", def.Cluster.ProbeTimeout, "health probe timeout; a stalling peer counts as failed (0 = interval/2)")
		probeFail     = flag.Int("probe-fail-threshold", def.Cluster.ProbeFail, "consecutive probe failures before a peer goes Down (0 = 3)")
		probeUp       = flag.Int("probe-up-threshold", def.Cluster.ProbeUp, "consecutive ok probes before a peer rejoins the ring (0 = 2)")
		hedgeSucc     = flag.Int("hedge-successors", def.Cluster.HedgeSuccessors, "ring successors tried when the owner fails or stalls (0 = 2)")
		hedgeLatency  = flag.Duration("hedge-latency", def.Cluster.HedgeLatency, "latency budget before a read hedges to the next successor (0 = 150ms)")
		drainWait     = flag.Duration("drain-wait", 3*time.Second, "on SIGTERM, how long to keep serving with a failing /healthz so peers evict this replica before the listener closes")
	)
	resil := def.SignalResilience
	resil.RegisterFlags(flag.CommandLine, "signal")
	flag.Parse()

	cfg := def
	cfg.SchedulePath = *schedCSV
	cfg.Seed = *seed
	cfg.MaxWorkloads = *maxWl
	cfg.Budget = units.GramsCO2e(*budget)
	cfg.Parallelism = *workers
	cfg.Delta = *deltaOn
	cfg.CacheBytes = *cacheB
	cfg.CacheTTL = *cacheTTL
	cfg.BatchWindow = *window
	cfg.QueryTimeout = *qTimeout
	cfg.PricePerTonne = *price
	cfg.SignalURL = *sigURL
	cfg.SignalMaxStale = *maxStale
	cfg.SignalResilience = resil
	cfg.Regions = *regionsOn
	cfg.RegionSeed = *regionSeed
	cfg.Stream = streamOptions{
		Enabled:  *streamOn || *streamOnce,
		Once:     *streamOnce,
		Days:     *streamDays,
		Seed:     *streamSeed,
		Rate:     *streamRate,
		Scenario: *streamScenario,
		Disorder: *streamDisorder,
		MaxDefer: *streamDefer,
		Splits:   *streamSplits,
		Step:     *streamStep,
		Budget:   *streamBudget,
		MaxDelay: *streamDelay,
		Lateness: *streamLate,
	}
	cfg.Cluster = clusterOptions{
		ReplicaID:       *replicaID,
		Peers:           *clusterPeers,
		VNodes:          *vnodes,
		AdmitRate:       *admitRate,
		AdmitBurst:      *admitBurst,
		AdmitMaxTenants: *admitTenants,
		MaxQueue:        *maxQueue,
		RetryAfter:      *retryAfter,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		ProbeFail:       *probeFail,
		ProbeUp:         *probeUp,
		HedgeSuccessors: *hedgeSucc,
		HedgeLatency:    *hedgeLatency,
		DrainWait:       *drainWait,
	}

	if cfg.Stream.Once {
		if err := runStreamOnce(cfg.Stream, metrics.Default(), os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv, streamRT, err := buildServer(cfg, metrics.Default())
	if err != nil {
		log.Fatal(err)
	}

	handler := http.Handler(srv.Handler())
	var node *clusterserve.Node
	if cfg.Cluster.enabled() {
		if node, err = wrapCluster(cfg.Cluster, srv, metrics.Default()); err != nil {
			log.Fatal(err)
		}
		handler = node.Handler()
		node.Start()
		defer node.Stop()
		log.Printf("cluster mode: replica %s, peers %q", cfg.Cluster.ReplicaID, cfg.Cluster.Peers)
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      *qTimeout + 10*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()
	fmt.Printf("attribution-server serving on %s\n", *addr)

	if streamRT != nil {
		go func() {
			log.Printf("stream replay: %d events at %gx real-time", len(streamRT.replay.Events), cfg.Stream.Rate)
			if err := streamRT.replay.Run(ctx, streamRT.engine.Ingest); err != nil {
				if ctx.Err() == nil {
					log.Printf("stream replay failed: %v", err)
				}
				return
			}
			st := streamRT.engine.Stats()
			log.Printf("stream replay finished: %d windows closed, %d late, %d dropped",
				st.WindowsClosed, st.Late, st.Dropped)
		}()
	}

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	if node != nil && cfg.Cluster.DrainWait > 0 {
		// Graceful drain: fail /healthz first so every peer's prober
		// evicts this replica from its ring, keep serving (and finishing
		// in-flight forwards) through the eviction window, then close the
		// listener. Peers see an orderly departure, not a blackout.
		log.Printf("draining: failing /healthz for %v so peers evict this replica", cfg.Cluster.DrainWait)
		node.BeginDrain()
		time.Sleep(cfg.Cluster.DrainWait)
	}
	log.Print("shutting down (draining in-flight queries)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *qTimeout+5*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
