// Command cluster-sim runs the end-to-end pipeline on a simulated
// datacenter cluster: a random VM fleet arrives over a day, a first-fit
// scheduler places it onto reference servers, the resulting telemetry
// feeds Temporal Shapley, and every VM receives an embodied-carbon bill —
// side by side with the flat (RUP/SCI-style) per-core-second bill, showing
// how peak-time VMs pay more under Fair-CO2.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"fairco2/internal/carbon"
	"fairco2/internal/cluster"
	"fairco2/internal/temporal"
	"fairco2/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-sim: ")

	var (
		vms  = flag.Int("vms", 300, "fleet size")
		seed = flag.Int64("seed", 1, "fleet seed")
		top  = flag.Int("top", 10, "show the N most expensive VMs")
	)
	flag.Parse()

	cfg := cluster.DefaultFleetConfig()
	cfg.VMs = *vms
	fleet, err := cluster.RandomFleet(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Simulate(fleet, cluster.DefaultNodeSpec(), 300)
	if err != nil {
		log.Fatal(err)
	}

	srv := carbon.NewReferenceServer()
	// The day's embodied budget: what the provisioned nodes amortize over
	// the simulated window.
	window := res.Demand.Duration()
	budget := units.GramsCO2e(float64(res.NodesProvisioned) * srv.EmbodiedRate() * float64(window))

	fmt.Printf("fleet: %d VMs over %v; provisioned %d nodes (peak concurrent %d)\n",
		len(fleet), window, res.NodesProvisioned, res.PeakConcurrentNodes)
	fmt.Printf("embodied budget for the window: %s\n\n", budget)

	sig, err := temporal.IntensitySignal(res.Demand, budget, temporal.Config{SplitRatios: []int{res.Demand.Len()}})
	if err != nil {
		log.Fatal(err)
	}
	flat, err := temporal.FlatIntensity(res.Demand, budget)
	if err != nil {
		log.Fatal(err)
	}

	type bill struct {
		id         int
		cores      int
		fair, flat float64
	}
	bills := make([]bill, 0, len(fleet))
	var fairTotal, flatTotal float64
	for _, vm := range fleet {
		usage, err := res.UsageOf(vm.ID)
		if err != nil {
			log.Fatal(err)
		}
		fair, err := temporal.AttributeUsage(sig, usage)
		if err != nil {
			log.Fatal(err)
		}
		rup, err := temporal.AttributeUsage(flat, usage)
		if err != nil {
			log.Fatal(err)
		}
		bills = append(bills, bill{id: vm.ID, cores: vm.Cores, fair: float64(fair), flat: float64(rup)})
		fairTotal += float64(fair)
		flatTotal += float64(rup)
	}
	fmt.Printf("attributed totals: fair-co2 %.1f g, flat %.1f g (both = budget %.1f g)\n\n",
		fairTotal, flatTotal, float64(budget))

	sort.Slice(bills, func(i, j int) bool { return bills[i].fair > bills[j].fair })
	fmt.Printf("%6s %6s %14s %14s %10s\n", "vm", "cores", "fair-co2", "flat (RUP)", "ratio")
	n := *top
	if n > len(bills) {
		n = len(bills)
	}
	for _, b := range bills[:n] {
		ratio := 0.0
		if b.flat > 0 {
			ratio = b.fair / b.flat
		}
		fmt.Printf("%6d %6d %12.2f g %12.2f g %9.2fx\n", b.id, b.cores, b.fair, b.flat, ratio)
	}
}
