// Command fairco2 attributes the embodied carbon of a dynamic-demand
// schedule to its workloads, comparing any of the four attribution
// methods, and prints the paper's Table 1 component data.
//
// Usage:
//
//	fairco2 -table1
//	fairco2 -schedule sched.csv -budget 1e6 [-method all|ground-truth|rup|demand-proportional|fair-co2]
//	fairco2 -demo
//
// The schedule CSV format is one "#slice_duration_seconds,<v>" row, a
// header row "id,cores,start,duration", then one row per workload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fairco2"
	"fairco2/internal/attribution"
	"fairco2/internal/axioms"
	"fairco2/internal/carbon"
	"fairco2/internal/schedule"
	"fairco2/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fairco2: ")

	var (
		table1   = flag.Bool("table1", false, "print the paper's Table 1 (TDP vs embodied carbon)")
		demo     = flag.Bool("demo", false, "attribute a built-in demo schedule")
		schedCSV = flag.String("schedule", "", "schedule CSV file to attribute")
		budget   = flag.Float64("budget", 1e6, "embodied carbon budget in gCO2e")
		method   = flag.String("method", "all", "attribution method (all, ground-truth, rup, demand-proportional, fair-co2)")
		colocate = flag.String("colocate", "", "comma-separated workload names to attribute as a colocation scenario (e.g. NBODY,CH,SA,PG-10)")
		gridCI   = flag.Float64("grid-ci", 250, "grid carbon intensity for -colocate (gCO2e/kWh)")
		suite    = flag.Bool("suite", false, "print the benchmark workload suite")
		axiomsF  = flag.Bool("axioms", false, "check the four Shapley fairness axioms against every method")
		workers  = flag.Int("parallelism", 0, "Shapley solver workers (0 = all CPUs, 1 = serial); the attribution is identical either way")
		ckDir    = flag.String("checkpoint-dir", "", "crash-safe checkpoint directory for the exact ground-truth solve (empty disables checkpoint/resume)")
		ckEvery  = flag.Int("checkpoint-every", 4, "completed coalition-table blocks between checkpoint snapshots")
	)
	flag.Parse()

	if *axiomsF {
		runAxioms(*workers)
		return
	}

	if *table1 {
		fmt.Print(carbon.FormatTable1(carbon.Table1()))
		return
	}
	if *suite {
		fmt.Printf("%-8s %7s %7s %12s %10s\n", "name", "cores", "mem", "runtime", "dyn power")
		for _, p := range fairco2.WorkloadSuite() {
			fmt.Printf("%-8s %7d %5.0fGB %12s %10s\n",
				p.Name, p.Cores, float64(p.MemoryGB), p.IsolatedRuntime, p.IsolatedDynPower)
		}
		return
	}
	if *colocate != "" {
		runColocation(*colocate, *gridCI)
		return
	}

	var sched *fairco2.Schedule
	switch {
	case *demo:
		sched = demoSchedule()
	case *schedCSV != "":
		f, err := os.Open(*schedCSV)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		s, err := schedule.ReadCSV(f)
		if err != nil {
			log.Fatal(err)
		}
		sched = s
	default:
		flag.Usage()
		os.Exit(2)
	}

	methods := []string{fairco2.MethodGroundTruth, fairco2.MethodRUP, fairco2.MethodDemandProportional, fairco2.MethodFairCO2}
	if *method != "all" {
		methods = []string{*method}
	}

	fmt.Printf("schedule: %d slices x %v, %d workloads, peak demand %.0f cores\n\n",
		sched.Slices, sched.SliceDuration, len(sched.Workloads), sched.Peak())
	fmt.Printf("%-10s", "workload")
	for _, m := range methods {
		fmt.Printf(" %22s", m)
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results := make(map[string][]float64, len(methods))
	for _, m := range methods {
		attr, err := fairco2.AttributeScheduleCheckpointed(ctx, m, sched, fairco2.GramsCO2e(*budget), *workers, *ckDir, *ckEvery)
		if err != nil {
			if errors.Is(err, context.Canceled) && *ckDir != "" {
				log.Printf("interrupted; ground-truth progress checkpointed in %s — rerun with the same flags to resume", *ckDir)
				os.Exit(130)
			}
			log.Fatalf("%s: %v", m, err)
		}
		results[m] = attr
	}
	for i := range sched.Workloads {
		fmt.Printf("w%-9d", i)
		for _, m := range methods {
			fmt.Printf(" %15.1f gCO2e", results[m][i])
		}
		fmt.Println()
	}
}

func runAxioms(workers int) {
	cfg := axioms.DefaultConfig()
	methods := []attribution.Method{
		attribution.GroundTruth{Parallelism: workers},
		attribution.RUPBaseline{},
		attribution.DemandProportional{},
		attribution.TemporalShapley{Parallelism: workers},
	}
	fmt.Println("Shapley fairness axioms (§4) checked on randomized schedules:")
	fmt.Printf("%-28s %12s %10s %12s %10s\n", "method", "efficiency", "symmetry", "null-player", "linearity")
	for _, m := range methods {
		report := axioms.CheckAll(m, cfg)
		counts := report.ByAxiom()
		mark := func(axiom string) string {
			if counts[axiom] == 0 {
				return "ok"
			}
			return fmt.Sprintf("%d violations", counts[axiom])
		}
		fmt.Printf("%-28s %12s %10s %12s %10s\n", m.Name(),
			mark("efficiency"), mark("symmetry"), mark("null-player"), mark("linearity"))
	}
	fmt.Println("\nnull-player: the long-running off-peak idler test — resource-time")
	fmt.Println("that never drives peak capacity must not be billed (§3.1's gap).")
}

func runColocation(spec string, gridCI float64) {
	var names []workload.Name
	for _, part := range strings.Split(spec, ",") {
		names = append(names, workload.Name(strings.TrimSpace(part)))
	}
	methods := []string{fairco2.MethodGroundTruth, fairco2.MethodRUP, fairco2.MethodFairCO2}
	results := make(map[string][]fairco2.ColocationAttribution, len(methods))
	for _, m := range methods {
		attr, err := fairco2.AttributeColocation(m, names, fairco2.CarbonIntensity(gridCI), 1)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		results[m] = attr
	}
	fmt.Printf("colocation scenario (%d workloads, pairwise nodes, grid %.0f gCO2e/kWh)\n\n", len(names), gridCI)
	fmt.Printf("%-10s", "workload")
	for _, m := range methods {
		fmt.Printf(" %16s", m)
	}
	fmt.Println()
	for i, n := range names {
		fmt.Printf("%-10s", n)
		for _, m := range methods {
			fmt.Printf(" %14.2f g", float64(results[m][i].Carbon))
		}
		fmt.Println()
	}
}

func demoSchedule() *fairco2.Schedule {
	return &fairco2.Schedule{
		Slices:        4,
		SliceDuration: 3600,
		Workloads: []fairco2.ScheduledWorkload{
			{ID: 0, Cores: 16, Start: 0, Duration: 3},
			{ID: 1, Cores: 48, Start: 1, Duration: 1},
			{ID: 2, Cores: 32, Start: 1, Duration: 2},
			{ID: 3, Cores: 8, Start: 3, Duration: 1},
		},
	}
}
