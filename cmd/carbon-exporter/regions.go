package main

import (
	"fmt"

	"fairco2/internal/attribution"
	"fairco2/internal/metrics"
	"fairco2/internal/multiregion"
	"fairco2/internal/units"
)

// regionPublisher publishes the multi-region scenario as region-labeled
// gauges next to the single-cluster families. Fleet shape and attributed
// shares are fixed by the discovery seed, so they publish once; the
// per-region grid intensity follows a rotating clock over each region's
// trace, so every scrape interval sees the regional diurnal shapes move
// in lockstep.
type regionPublisher struct {
	scenario *multiregion.Scenario

	gIntensity  metrics.GaugeVec
	gAttributed metrics.GaugeVec
	gCores      metrics.GaugeVec
	gEmbodied   metrics.GaugeVec
	gBudget     metrics.GaugeVec
}

// newRegionPublisher discovers the scenario from seed, attributes every
// region's embodied budget with Temporal Shapley, registers the region
// gauge families on reg and publishes the static ones.
func newRegionPublisher(seed int64, reg *metrics.Registry) (*regionPublisher, error) {
	sc, err := multiregion.Discover(multiregion.DefaultConfig(), seed)
	if err != nil {
		return nil, fmt.Errorf("discovering regions: %w", err)
	}
	p := &regionPublisher{
		scenario: sc,
		gIntensity: reg.NewGaugeVec(
			"fairco2_region_grid_intensity_g_per_kwh",
			"Regional operational grid intensity at the current scenario clock.",
			"provider", "region"),
		gAttributed: reg.NewGaugeVec(
			"fairco2_region_attributed_gco2e",
			"Embodied carbon attributed to the tenant over the regional scenario window (Temporal Shapley).",
			"region", "tenant"),
		gCores: reg.NewGaugeVec(
			"fairco2_region_fleet_cores",
			"Schedulable (logical) cores discovered in the regional fleet.",
			"provider", "region"),
		gEmbodied: reg.NewGaugeVec(
			"fairco2_region_embodied_rate_g_per_second",
			"Amortized embodied emission rate of the regional fleet.",
			"provider", "region"),
		gBudget: reg.NewGaugeVec(
			"fairco2_region_budget_gco2e",
			"Embodied budget the regional fleet amortizes over the scenario window.",
			"provider", "region"),
	}
	shares, err := sc.Attribute(attribution.TemporalShapley{})
	if err != nil {
		return nil, fmt.Errorf("attributing regions: %w", err)
	}
	for _, s := range shares {
		p.gAttributed.With(s.Region, s.Tenant).Set(s.Grams)
	}
	for i := range sc.Regions {
		r := &sc.Regions[i]
		p.gCores.With(r.Provider, r.Name).Set(float64(r.FleetLogicalCores()))
		p.gEmbodied.With(r.Provider, r.Name).Set(r.FleetEmbodiedRate())
		p.gBudget.With(r.Provider, r.Name).Set(float64(r.Budget))
	}
	p.publish(0)
	return p, nil
}

// publish republishes the clock-dependent gauges at scenario time now
// (the trace sources wrap, so any non-negative clock value is valid).
func (p *regionPublisher) publish(now units.Seconds) {
	for i := range p.scenario.Regions {
		r := &p.scenario.Regions[i]
		span := float64(r.Trace.Duration())
		t := float64(now)
		for t >= span {
			t -= span
		}
		p.gIntensity.With(r.Provider, r.Name).Set(r.Trace.Interp(units.Seconds(t)))
	}
}
