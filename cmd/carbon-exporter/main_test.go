package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairco2/internal/metrics"
)

func testExporter(t *testing.T) (*exporter, *metrics.Registry) {
	t.Helper()
	cfg := defaultExporterConfig()
	cfg.Tenants = 4
	cfg.VMs = 80
	cfg.WindowDays = 1
	cfg.ShapleySamples = 50
	reg := metrics.NewRegistry()
	e, err := newExporter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, reg
}

// scrape fetches /metrics and returns the body plus the per-tenant
// fairco2_attributed_gco2e values parsed out of it.
func scrape(t *testing.T, url string) (string, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	attributed := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, `fairco2_attributed_gco2e{tenant="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `fairco2_attributed_gco2e{tenant="`)
		end := strings.Index(rest, `"`)
		if end < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		attributed[rest[:end]] = strings.TrimSpace(rest[end:][strings.Index(rest[end:], " ")+1:])
	}
	return string(body), attributed
}

// TestExporterEndToEnd is the acceptance test for the tentpole: the
// exporter's /metrics output parses as valid Prometheus text format,
// includes per-tenant fairco2_attributed_gco2e gauges, and those gauges
// change across scrape intervals of the simulated cluster.
func TestExporterEndToEnd(t *testing.T) {
	e, reg := testExporter(t)
	if err := e.step(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(e.handler(reg))
	defer ts.Close()

	body1, attr1 := scrape(t, ts.URL)
	if n, err := metrics.LintText(strings.NewReader(body1)); err != nil {
		t.Fatalf("scrape is not valid text format: %v\n%s", err, body1)
	} else if n == 0 {
		t.Fatal("scrape contained no samples")
	}
	if len(attr1) != 4 {
		t.Fatalf("want 4 tenants in fairco2_attributed_gco2e, got %v", attr1)
	}
	// Early windows precede most arrivals, so some tenants can be
	// legitimately attributed zero — but not all of them.
	nonzero := 0
	for _, v := range attr1 {
		if v != "0" {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Errorf("every tenant attributed 0 gCO2e: %v", attr1)
	}
	for _, want := range []string{
		"# TYPE fairco2_attributed_gco2e gauge",
		"# TYPE fairco2_shapley_share gauge",
		"# TYPE fairco2_attributed_component_gco2e gauge",
		`component="embodied"`,
		"fairco2_exporter_ticks_total 1",
	} {
		if !strings.Contains(body1, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Advance the simulated cluster a few intervals; attribution over the
	// longer window must move every tenant's gauge.
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	body2, attr2 := scrape(t, ts.URL)
	if _, err := metrics.LintText(strings.NewReader(body2)); err != nil {
		t.Fatalf("second scrape invalid: %v", err)
	}
	changed := 0
	for tenant, v1 := range attr1 {
		if v2, ok := attr2[tenant]; !ok {
			t.Errorf("tenant %s vanished from second scrape", tenant)
		} else if v1 != v2 {
			changed++
		}
	}
	if changed == 0 {
		t.Errorf("no fairco2_attributed_gco2e gauge changed across scrapes:\nfirst %v\nsecond %v", attr1, attr2)
	}
}

// TestExporterSharesSumToOne checks the sampled Shapley shares the
// exporter publishes form a distribution.
func TestExporterSharesSumToOne(t *testing.T) {
	e, reg := testExporter(t)
	for i := 0; i < 2; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	for _, f := range reg.Gather() {
		if f.Name != "fairco2_shapley_share" {
			continue
		}
		if len(f.Samples) != 4 {
			t.Fatalf("want 4 share samples, got %d", len(f.Samples))
		}
		for _, s := range f.Samples {
			if s.Value < 0 || s.Value > 1 {
				t.Errorf("share %v out of range", s.Value)
			}
			sum += s.Value
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

// TestExporterWraps runs the loop past the end of the trace and checks it
// restarts at the minimum window instead of failing.
func TestExporterWraps(t *testing.T) {
	cfg := defaultExporterConfig()
	cfg.Tenants = 2
	cfg.VMs = 20
	cfg.WindowDays = 0.05 // a ~15-sample trace
	cfg.MinWindow = 4
	cfg.ShapleySamples = 10
	reg := metrics.NewRegistry()
	e, err := newExporter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.samples+5; i++ {
		if err := e.step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if e.cWraps.Value() < 1 {
		t.Error("loop never wrapped")
	}
}

// TestExporterHealthz checks the daemon's health endpoint.
func TestExporterHealthz(t *testing.T) {
	e, reg := testExporter(t)
	if err := e.step(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(e.handler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status        string `json:"status"`
		Ticks         int64  `json:"ticks"`
		Tenants       int    `json:"tenants"`
		WindowSamples int64  `json:"window_samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Ticks != 1 || h.Tenants != 4 || h.WindowSamples == 0 {
		t.Errorf("healthz %+v", h)
	}
}

func TestExporterConfigValidation(t *testing.T) {
	bad := []func(*exporterConfig){
		func(c *exporterConfig) { c.Tenants = 0 },
		func(c *exporterConfig) { c.Tenants = 64 },
		func(c *exporterConfig) { c.VMs = 1; c.Tenants = 2 },
		func(c *exporterConfig) { c.WindowDays = 0 },
		func(c *exporterConfig) { c.Step = 0 },
		func(c *exporterConfig) { c.ShapleySamples = 0 },
		func(c *exporterConfig) { c.MinWindow = 1 },
		func(c *exporterConfig) { c.ForecastEvery = 0 },
	}
	for i, mutate := range bad {
		cfg := defaultExporterConfig()
		mutate(&cfg)
		if _, err := newExporter(cfg, metrics.NewRegistry()); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
