package main

import (
	"sort"
	"strings"
	"testing"

	"fairco2/internal/metrics"
)

func testRegionExporter(t *testing.T, seed int64) (*exporter, *metrics.Registry) {
	t.Helper()
	cfg := defaultExporterConfig()
	cfg.Tenants = 4
	cfg.VMs = 80
	cfg.WindowDays = 1
	cfg.ShapleySamples = 50
	cfg.Regions = true
	cfg.RegionSeed = seed
	reg := metrics.NewRegistry()
	e, err := newExporter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, reg
}

// regionLines returns the exposition's sample lines for one region metric
// family, sorted for order-independent comparison.
func regionLines(t *testing.T, reg *metrics.Registry, family string) []string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, family+"{") {
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return lines
}

// The -regions flag must add the region-labeled families next to the
// single-cluster ones: every discovered region appears in the intensity,
// fleet and embodied-rate gauges, and every regional tenant appears in
// the attributed gauge.
func TestExporterRegionGauges(t *testing.T) {
	e, reg := testRegionExporter(t, 3)

	for _, family := range []string{
		"fairco2_region_grid_intensity_g_per_kwh",
		"fairco2_region_fleet_cores",
		"fairco2_region_embodied_rate_g_per_second",
		"fairco2_region_budget_gco2e",
	} {
		lines := regionLines(t, reg, family)
		if len(lines) != len(e.regions.scenario.Regions) {
			t.Errorf("%s: %d samples, want one per region (%d)",
				family, len(lines), len(e.regions.scenario.Regions))
		}
	}
	attributed := regionLines(t, reg, "fairco2_region_attributed_gco2e")
	tenants := 0
	for i := range e.regions.scenario.Regions {
		tenants += len(e.regions.scenario.Regions[i].Tenants)
	}
	if len(attributed) != tenants {
		t.Errorf("attributed gauge has %d samples, want one per regional tenant (%d)", len(attributed), tenants)
	}
	for _, line := range regionLines(t, reg, "fairco2_region_grid_intensity_g_per_kwh") {
		if !strings.Contains(line, `provider="`) || !strings.Contains(line, `region="`) {
			t.Errorf("intensity sample missing provider/region labels: %q", line)
		}
	}
}

// Ticks advance the regional scenario clock, so the per-region intensity
// gauges must trace the diurnal shapes while the fleet gauges stay fixed.
func TestExporterRegionClockAdvances(t *testing.T) {
	e, reg := testRegionExporter(t, 3)
	before := regionLines(t, reg, "fairco2_region_grid_intensity_g_per_kwh")
	cores := regionLines(t, reg, "fairco2_region_fleet_cores")
	// 12 ticks x 300 s = one hour of scenario time: past the next hourly
	// trace sample, so interpolation must land on different values.
	for i := 0; i < 12; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	after := regionLines(t, reg, "fairco2_region_grid_intensity_g_per_kwh")
	if strings.Join(before, "\n") == strings.Join(after, "\n") {
		t.Error("region intensity gauges did not move after an hour of ticks")
	}
	if got := regionLines(t, reg, "fairco2_region_fleet_cores"); strings.Join(got, "\n") != strings.Join(cores, "\n") {
		t.Error("fleet gauges changed across ticks; discovery must be static")
	}
}

// Equal region seeds must publish identical region gauges; different seeds
// must not.
func TestExporterRegionSeedStable(t *testing.T) {
	_, regA := testRegionExporter(t, 9)
	_, regB := testRegionExporter(t, 9)
	_, regC := testRegionExporter(t, 10)
	for _, family := range []string{
		"fairco2_region_attributed_gco2e",
		"fairco2_region_fleet_cores",
		"fairco2_region_budget_gco2e",
	} {
		a := strings.Join(regionLines(t, regA, family), "\n")
		b := strings.Join(regionLines(t, regB, family), "\n")
		c := strings.Join(regionLines(t, regC, family), "\n")
		if a != b {
			t.Errorf("%s: equal seeds published different gauges", family)
		}
		if family != "fairco2_region_fleet_cores" && a == c {
			t.Errorf("%s: different seeds published identical gauges", family)
		}
	}
}

// Without -regions the exposition must not mention the region families.
func TestExporterRegionsGated(t *testing.T) {
	_, reg := testExporter(t)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fairco2_region_") {
		t.Error("region families published without -regions")
	}
}
