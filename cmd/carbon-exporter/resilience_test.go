package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
	"fairco2/internal/resilience/faultserver"
	"fairco2/internal/signalserver"
	"fairco2/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// resilientExporter builds an exporter sourcing its intensity from a real
// signal server fronted by a programmable fault-injection proxy, tuned so
// faults resolve in milliseconds: two attempts backing off 1..5ms, a
// breaker opening after two consecutive failures and never probing on its
// own (one-hour interval), and a staleness bound so tight any fetch
// failure degrades immediately.
func resilientExporter(t *testing.T) (*exporter, *faultserver.Server, *metrics.Registry) {
	t.Helper()
	histCfg := trace.DefaultAzureLikeConfig()
	histCfg.Days = 7
	history, err := trace.GenerateAzureLike(histCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := signalserver.New(history, signalserver.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := faultserver.New(srv.Handler())
	t.Cleanup(fs.Close)

	cfg := defaultExporterConfig()
	cfg.Tenants = 4
	cfg.VMs = 80
	cfg.WindowDays = 1
	cfg.ShapleySamples = 50
	cfg.MinWindow = 100 // start deep enough that every tenant has arrived
	cfg.SignalURL = fs.URL()
	cfg.SignalMaxStale = time.Nanosecond
	cfg.SignalResilience = resilience.Config{
		MaxAttempts:     2,
		BackoffBase:     time.Millisecond,
		BackoffCap:      5 * time.Millisecond,
		AttemptTimeout:  2 * time.Second,
		BreakerFailures: 2,
		ProbeInterval:   time.Hour,
		ProbeSuccesses:  1,
	}
	reg := metrics.NewRegistry()
	e, err := newExporter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, fs, reg
}

// gaugeValue reads a single-sample family out of the registry.
func gaugeValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
		if len(f.Samples) != 1 {
			t.Fatalf("family %s has %d samples", name, len(f.Samples))
		}
		return f.Samples[0].Value
	}
	t.Fatalf("family %s not gathered", name)
	return 0
}

// TestExporterDegradesGracefully is the sustained-outage acceptance test:
// the signal server dies mid-run and the exporter keeps publishing —
// no crash, no zero-intensity period — with the breaker open, the quality
// gauge stamped degraded, and the intensity pinned to the trace-driven
// average model. The per-tenant attribution totals across the outage are
// pinned bit-for-bit by a golden file: graceful degradation must not
// perturb what tenants are billed.
func TestExporterDegradesGracefully(t *testing.T) {
	e, fs, reg := resilientExporter(t)

	// Phase 1: healthy feed. Every period prices fresh off the remote
	// signal.
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			t.Fatalf("healthy step %d: %v", i, err)
		}
	}
	if q := gaugeValue(t, reg, "fairco2_exporter_signal_quality"); q != float64(livesignal.QualityFresh) {
		t.Fatalf("healthy quality %v, want fresh", q)
	}
	freshIntensity := e.gForecast.Value()
	if freshIntensity <= 0 {
		t.Fatalf("healthy intensity %v, want > 0", freshIntensity)
	}
	if st := gaugeValue(t, reg, "fairco2_signal_breaker_state"); st != float64(resilience.StateClosed) {
		t.Fatalf("healthy breaker state %v, want closed", st)
	}

	// Phase 2: the signal server goes down hard and stays down.
	fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
	var attributed map[string]float64
	for i := 0; i < 5; i++ {
		if err := e.step(); err != nil {
			t.Fatalf("outage step %d: %v", i, err)
		}
		if v := e.gForecast.Value(); v <= 0 {
			t.Fatalf("outage step %d published intensity %v; zero reads as carbon-free", i, v)
		}
		attributed = map[string]float64{}
		for _, f := range reg.Gather() {
			if f.Name != "fairco2_attributed_gco2e" {
				continue
			}
			for _, s := range f.Samples {
				attributed[strings.Join(s.LabelValues, ",")] = s.Value
			}
		}
	}

	if q := gaugeValue(t, reg, "fairco2_exporter_signal_quality"); q != float64(livesignal.QualityDegraded) {
		t.Errorf("outage quality %v, want degraded", q)
	}
	if st := gaugeValue(t, reg, "fairco2_signal_breaker_state"); st != float64(resilience.StateOpen) {
		t.Errorf("outage breaker state %v, want open", st)
	}
	if v := e.gForecast.Value(); v != e.avgIntensity {
		t.Errorf("degraded intensity %v, want the average model %v", v, e.avgIntensity)
	}
	if e.avgIntensity <= 0 {
		t.Errorf("average-model fallback %v, want > 0", e.avgIntensity)
	}
	if v := gaugeValue(t, reg, "fairco2_signal_degraded_periods_total"); v < 1 {
		t.Errorf("degraded periods %v, want >= 1", v)
	}
	if v := gaugeValue(t, reg, "fairco2_signal_retry_total"); v < 1 {
		t.Errorf("retry counter %v, want >= 1 (the outage was retried before the breaker opened)", v)
	}
	// The open breaker fast-fails: the faults seen by the server stop
	// growing even though the loop keeps ticking.
	before := fs.Hits()
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if after := fs.Hits(); after != before {
		t.Errorf("open breaker still reached the server: %d -> %d hits", before, after)
	}

	// The attribution totals across the outage are deterministic: the
	// degradation ladder changes the published intensity's provenance, not
	// what tenants are billed for the window.
	tenants := make([]string, 0, len(attributed))
	for tenant := range attributed {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	var b strings.Builder
	for _, tenant := range tenants {
		fmt.Fprintf(&b, "%s %s\n", tenant, strconv.FormatFloat(attributed[tenant], 'g', -1, 64))
	}
	golden := filepath.Join("testdata", "degraded_attribution.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("attribution across the outage diverged from golden:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestExporterRecoversAfterOutage closes the loop on the ladder: once the
// fault clears and the breaker's probe interval elapses, the exporter
// returns to pricing fresh remote samples.
func TestExporterRecoversAfterOutage(t *testing.T) {
	e, fs, reg := resilientExporter(t)
	// Recovery needs probes: re-tune the breaker to probe quickly by
	// rebuilding the exporter's policy via config.
	e.cfg.SignalResilience.ProbeInterval = 20 * time.Millisecond
	reg2 := metrics.NewRegistry()
	client := (&signalserver.Client{BaseURL: fs.URL()}).
		WithResilience(e.cfg.SignalResilience, e.cfg.Seed, signalserver.NewClientInstruments(reg2))
	e.feed = livesignal.NewFeed(client,
		livesignal.FeedConfig{MaxStale: e.cfg.SignalMaxStale},
		livesignal.NewFeedInstruments(reg2))

	if err := e.step(); err != nil {
		t.Fatal(err)
	}
	fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if st := gaugeValue(t, reg2, "fairco2_signal_breaker_state"); st != float64(resilience.StateOpen) {
		t.Fatalf("breaker state %v after outage, want open", st)
	}

	// Outage ends; after the probe interval the next fetch half-opens the
	// breaker, succeeds, and closes it.
	fs.Clear()
	time.Sleep(50 * time.Millisecond)
	if err := e.step(); err != nil {
		t.Fatal(err)
	}
	if q := gaugeValue(t, reg, "fairco2_exporter_signal_quality"); q != float64(livesignal.QualityFresh) {
		t.Errorf("post-recovery quality %v, want fresh", q)
	}
	if st := gaugeValue(t, reg2, "fairco2_signal_breaker_state"); st != float64(resilience.StateClosed) {
		t.Errorf("post-recovery breaker state %v, want closed", st)
	}
	if v := e.gForecast.Value(); v <= 0 || v == e.avgIntensity {
		t.Errorf("post-recovery intensity %v, want a live value (avg model is %v)", v, e.avgIntensity)
	}
}

// TestExporterLocalFallbackNeverZero is the satellite bug fix at the
// exporter layer: before, a trace prefix too short to fit the in-process
// forecaster published intensity 0 — indistinguishable from carbon-free
// power. Now those periods price at the average model and stamp degraded.
func TestExporterLocalFallbackNeverZero(t *testing.T) {
	cfg := defaultExporterConfig()
	cfg.Tenants = 2
	cfg.VMs = 20
	cfg.WindowDays = 0.05 // a ~15-sample trace: far too short to fit
	cfg.MinWindow = 4
	cfg.ShapleySamples = 10
	reg := metrics.NewRegistry()
	e, err := newExporter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if v := e.gForecast.Value(); v != e.avgIntensity || v <= 0 {
		t.Errorf("short-prefix intensity %v, want the average model %v", v, e.avgIntensity)
	}
	if q := gaugeValue(t, reg, "fairco2_exporter_signal_quality"); q != float64(livesignal.QualityDegraded) {
		t.Errorf("short-prefix quality %v, want degraded", q)
	}
}

// TestExporterSignalConfigValidation covers the remote-signal knobs.
func TestExporterSignalConfigValidation(t *testing.T) {
	bad := []func(*exporterConfig){
		func(c *exporterConfig) { c.SignalURL = "http://x"; c.SignalMaxStale = 0 },
		func(c *exporterConfig) { c.SignalURL = "http://x"; c.SignalResilience.MaxAttempts = 0 },
		func(c *exporterConfig) { c.SignalURL = "http://x"; c.SignalResilience.BackoffBase = 0 },
	}
	for i, mutate := range bad {
		cfg := defaultExporterConfig()
		mutate(&cfg)
		if _, err := newExporter(cfg, metrics.NewRegistry()); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// A bad resilience config without a SignalURL is ignored: the local
	// forecaster path has no fetch to protect.
	cfg := defaultExporterConfig()
	cfg.SignalResilience.MaxAttempts = 0
	if _, err := newExporter(cfg, metrics.NewRegistry()); err != nil {
		t.Errorf("resilience config validated without a signal URL: %v", err)
	}
}
