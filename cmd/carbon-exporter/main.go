// Command carbon-exporter is Fair-CO2's Prometheus exporter: a daemon
// that runs a simulated datacenter cluster, continuously re-prices the
// tenants' carbon with the live attribution machinery, and publishes the
// results as scrapeable metrics. It is the deployable form of the paper's
// end goal — tenants acting on fair attribution in real time — in the
// shape production fleets already consume (a /metrics endpoint).
//
//	GET /metrics  -> Prometheus text format (see README "Observability")
//	GET /healthz  -> {"status":"ok", ...}
//
// Each tick reveals one more telemetry sample of the simulated cluster,
// closes a billing period over the window so far, re-estimates per-tenant
// Shapley shares by permutation sampling, and refreshes the forecast-based
// intensity signal, so every scrape interval sees the per-tenant
// fairco2_attributed_gco2e gauges move the way a real fleet's would.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"fairco2/internal/billing"
	"fairco2/internal/carbon"
	"fairco2/internal/cluster"
	"fairco2/internal/grid"
	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
	"fairco2/internal/shapley"
	"fairco2/internal/signalserver"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// exporterConfig parameterizes the simulated fleet and the publishing loop.
type exporterConfig struct {
	// Tenants is the number of tenants VMs are grouped into.
	Tenants int
	// VMs is the simulated fleet size.
	VMs int
	// WindowDays is the VM arrival window in days.
	WindowDays float64
	// Step is the telemetry grid resolution.
	Step units.Seconds
	// Seed makes the simulation reproducible.
	Seed int64
	// ShapleySamples is the permutation budget per share re-estimate.
	ShapleySamples int
	// ShapleyParallelism shards each share re-estimate across workers
	// (0 or 1 = serial single stream, n > 1 = n workers, negative =
	// GOMAXPROCS). Shares stay deterministic for a fixed seed and
	// parallelism.
	ShapleyParallelism int
	// SignalBudget is the embodied budget behind the forecast signal.
	SignalBudget units.GramsCO2e
	// HorizonSamples is the forecast horizon of the intensity signal.
	HorizonSamples int
	// MinWindow is the smallest billing window (samples) priced; the loop
	// starts here and wraps back here after consuming the whole trace.
	MinWindow int
	// ForecastEvery re-fits the forecaster every N ticks (it is the
	// expensive part of a tick).
	ForecastEvery int
	// SignalURL, when set, sources the live intensity from a remote
	// signal server through the resilient client + last-known-good feed
	// instead of the in-process forecaster. When the feed degrades, the
	// exporter falls back to the trace-driven average-intensity model and
	// stamps the published periods with the quality level.
	SignalURL string
	// SignalResilience tunes the remote fetch retry/breaker policy.
	SignalResilience resilience.Config
	// SignalMaxStale bounds how long a cached remote sample may substitute
	// for a live one before the exporter degrades to the average model.
	SignalMaxStale time.Duration
	// Regions enables the multi-region scenario gauges: the exporter
	// discovers a provider fleet from RegionSeed and publishes per-region
	// grid intensity, fleet shape and attributed carbon next to the
	// single-cluster families.
	Regions bool
	// RegionSeed reproduces the discovered multi-region scenario.
	RegionSeed int64
}

func defaultExporterConfig() exporterConfig {
	return exporterConfig{
		Tenants:        8,
		VMs:            400,
		WindowDays:     3,
		Step:           300,
		Seed:           1,
		ShapleySamples: 200,
		SignalBudget:   1e7,
		HorizonSamples: 288,
		MinWindow:      12,
		ForecastEvery:  6,

		SignalResilience: resilience.DefaultConfig(),
		SignalMaxStale:   livesignal.DefaultMaxStale,
		RegionSeed:       1,
	}
}

func (c exporterConfig) validate() error {
	switch {
	case c.Tenants < 1:
		return errors.New("need at least one tenant")
	case c.Tenants > 63:
		return errors.New("shapley sampling supports at most 63 tenants")
	case c.VMs < c.Tenants:
		return errors.New("need at least one VM per tenant")
	case c.WindowDays <= 0:
		return errors.New("window must be positive")
	case c.Step <= 0:
		return errors.New("step must be positive")
	case c.ShapleySamples < 1:
		return errors.New("need at least one shapley sample")
	case c.MinWindow < 2:
		return errors.New("minimum window must be at least 2 samples")
	case c.ForecastEvery < 1:
		return errors.New("forecast cadence must be positive")
	}
	if c.SignalURL != "" {
		if err := c.SignalResilience.Validate(); err != nil {
			return err
		}
		if c.SignalMaxStale <= 0 {
			return errors.New("signal max-stale must be positive")
		}
	}
	return nil
}

// exporter owns the simulated fleet, the live attribution loop, and the
// gauges it publishes.
type exporter struct {
	cfg     exporterConfig
	server  *carbon.Server
	gridSig grid.Signal
	rng     *rand.Rand

	tenants []string
	usage   []*timeseries.Series // per-tenant allocated cores, full trace
	demand  *timeseries.Series   // aggregate of usage
	samples int
	watts   float64 // dynamic watts per allocated core

	window    int // samples currently revealed; loop goroutine only
	curWindow atomic.Int64
	ticks     atomic.Int64
	forecast  *signalserver.Server

	// Remote-signal mode (cfg.SignalURL set): the resilient feed and the
	// degraded-mode fallback intensity — the embodied budget spread evenly
	// over the whole trace's resource-seconds, the model the paper prices
	// against when no temporal signal exists.
	feed         *livesignal.Feed
	avgIntensity float64

	gAttributed    metrics.GaugeVec
	gComponent     metrics.GaugeVec
	gShare         metrics.GaugeVec
	gForecast      *metrics.Gauge
	gDemand        *metrics.Gauge
	gWindow        *metrics.Gauge
	gNodes         *metrics.Gauge
	cTicks         *metrics.Counter
	cWraps         *metrics.Counter
	hTickSeconds   *metrics.Histogram
	gShapleyStderr *metrics.Gauge
	gQuality       *metrics.Gauge

	// regions publishes the multi-region scenario gauges when enabled.
	regions *regionPublisher
}

// newExporter simulates the fleet once and registers the exporter's gauges
// on reg (the daemon passes metrics.Default(); tests pass a fresh one).
func newExporter(cfg exporterConfig, reg *metrics.Registry) (*exporter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleetCfg := cluster.DefaultFleetConfig()
	fleetCfg.VMs = cfg.VMs
	fleetCfg.Window = units.Seconds(cfg.WindowDays * units.SecondsPerDay)
	fleet, err := cluster.RandomFleet(fleetCfg, rng)
	if err != nil {
		return nil, err
	}
	sim, err := cluster.Simulate(fleet, cluster.DefaultNodeSpec(), cfg.Step)
	if err != nil {
		return nil, err
	}

	e := &exporter{
		cfg:     cfg,
		server:  carbon.NewReferenceServer(),
		gridSig: grid.California,
		rng:     rng,
		demand:  sim.Demand,
		samples: sim.Demand.Len(),
		window:  cfg.MinWindow - 1,
	}
	if e.samples <= cfg.MinWindow {
		return nil, fmt.Errorf("trace of %d samples shorter than the minimum window %d", e.samples, cfg.MinWindow)
	}
	// Dynamic power model: allocated cores drive utilization linearly.
	logicalCores := float64(e.server.Cores * 2)
	e.watts = float64(e.server.MaxDynamicPower) / logicalCores

	// Group VMs into tenants and accumulate per-tenant usage series.
	e.tenants = make([]string, cfg.Tenants)
	e.usage = make([]*timeseries.Series, cfg.Tenants)
	for i := range e.tenants {
		e.tenants[i] = fmt.Sprintf("tenant-%02d", i)
		e.usage[i] = timeseries.Zeros(0, cfg.Step, e.samples)
	}
	for _, vm := range sim.VMs {
		u, err := sim.UsageOf(vm.ID)
		if err != nil {
			return nil, err
		}
		t := vm.ID % cfg.Tenants
		for j, v := range u.Values {
			e.usage[t].Values[j] += v
		}
	}

	e.gAttributed = reg.NewGaugeVec(
		"fairco2_attributed_gco2e",
		"Carbon attributed to the tenant over the current billing window (all components).",
		"tenant")
	e.gComponent = reg.NewGaugeVec(
		"fairco2_attributed_component_gco2e",
		"Carbon attributed to the tenant over the current billing window, by component.",
		"tenant", "component")
	e.gShare = reg.NewGaugeVec(
		"fairco2_shapley_share",
		"Tenant's sampled Shapley share of the peak-demand game over the current window (sums to 1).",
		"tenant")
	e.gForecast = reg.NewGauge(
		"fairco2_forecast_intensity_g_per_core_second",
		"Forecast-based live embodied carbon intensity at the window boundary.")
	e.gDemand = reg.NewGauge(
		"fairco2_cluster_demand_cores",
		"Aggregate allocated cores at the newest revealed telemetry sample.")
	e.gWindow = reg.NewGauge(
		"fairco2_exporter_window_samples",
		"Telemetry samples in the current billing window.")
	e.gNodes = reg.NewGauge(
		"fairco2_cluster_nodes_provisioned",
		"Nodes the simulated cluster ever provisioned (embodied carbon driver).")
	e.cTicks = reg.NewCounter(
		"fairco2_exporter_ticks_total",
		"Attribution loop ticks completed.")
	e.cWraps = reg.NewCounter(
		"fairco2_exporter_trace_wraps_total",
		"Times the loop consumed the whole simulated trace and restarted.")
	e.hTickSeconds = reg.NewHistogram(
		"fairco2_exporter_tick_seconds",
		"Wall-clock duration of one attribution loop tick.",
		nil)
	e.gShapleyStderr = reg.NewGauge(
		"fairco2_exporter_share_stderr",
		"Standard error proxy: half-spread between two independent half-budget share estimates, averaged over tenants.")
	e.gQuality = reg.NewGauge(
		"fairco2_exporter_signal_quality",
		"Quality of the signal behind the published intensity (0 = fresh, 1 = stale, 2 = degraded).")

	// The degraded-mode fallback: the signal budget spread uniformly over
	// the trace's total resource-seconds. It is never zero, so a dead feed
	// can not silently price tenants as carbon-free.
	total := 0.0
	for _, v := range e.demand.Values {
		total += v * float64(cfg.Step)
	}
	if total <= 0 {
		// A zero-demand trace cannot happen with the fleet simulator, but
		// the fallback must stay finite and positive regardless.
		total = float64(e.samples) * float64(cfg.Step)
	}
	e.avgIntensity = float64(cfg.SignalBudget) / total

	if cfg.SignalURL != "" {
		client := (&signalserver.Client{BaseURL: cfg.SignalURL}).
			WithResilience(cfg.SignalResilience, cfg.Seed, signalserver.NewClientInstruments(reg))
		e.feed = livesignal.NewFeed(client,
			livesignal.FeedConfig{MaxStale: cfg.SignalMaxStale},
			livesignal.NewFeedInstruments(reg))
	}

	if cfg.Regions {
		e.regions, err = newRegionPublisher(cfg.RegionSeed, reg)
		if err != nil {
			return nil, err
		}
	}

	e.gNodes.Set(float64(sim.NodesProvisioned))
	return e, nil
}

// step advances the loop by one telemetry sample: grow the billing window,
// close a period over it, re-estimate Shapley shares, refresh the forecast
// signal, and republish every gauge.
func (e *exporter) step() error {
	start := time.Now()
	e.window++
	if e.window > e.samples {
		e.window = e.cfg.MinWindow
		e.cWraps.Inc()
	}
	k := e.window

	if err := e.priceWindow(k); err != nil {
		return err
	}
	e.publishShares(k)
	e.refreshSignal(k)

	if e.regions != nil {
		// Advance the regional scenario clock one telemetry step per tick so
		// the per-region intensity gauges trace their diurnal shapes.
		e.regions.publish(units.Seconds(float64(e.ticks.Load()+1) * float64(e.cfg.Step)))
	}

	e.gDemand.Set(e.demand.Values[k-1])
	e.gWindow.Set(float64(k))
	e.cTicks.Inc()
	e.curWindow.Store(int64(k))
	e.ticks.Add(1)
	e.hTickSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// priceWindow closes a billing period over the first k samples and
// publishes per-tenant attribution gauges.
func (e *exporter) priceWindow(k int) error {
	acct, err := billing.NewAccountant(billing.Config{
		Server:      e.server,
		Grid:        e.gridSig,
		PeriodStart: 0,
		Step:        e.cfg.Step,
		Samples:     k,
	})
	if err != nil {
		return err
	}
	for i, tenant := range e.tenants {
		cores, err := e.usage[i].Head(k)
		if err != nil {
			return err
		}
		if err := acct.RecordUsage(tenant, cores, cores.Scale(e.watts)); err != nil {
			return err
		}
	}
	statements, _, err := acct.Close()
	if err != nil {
		return err
	}
	for _, st := range statements {
		e.gAttributed.With(st.Tenant).Set(float64(st.Total()))
		e.gComponent.With(st.Tenant, "embodied").Set(float64(st.Embodied))
		e.gComponent.With(st.Tenant, "static").Set(float64(st.Static))
		e.gComponent.With(st.Tenant, "dynamic").Set(float64(st.Dynamic))
	}
	return nil
}

// publishShares re-estimates each tenant's Shapley share of the window's
// peak-demand game by permutation sampling (tenants as players, coalition
// value = peak of the summed demand). Two independent half-budget
// estimates are published as share + a convergence spread, so a dashboard
// can see sampling error next to the value.
func (e *exporter) publishShares(k int) {
	n := len(e.tenants)
	v := func(mask uint64) float64 {
		peak := 0.0
		for t := 0; t < k; t++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					sum += e.usage[i].Values[t]
				}
			}
			if sum > peak {
				peak = sum
			}
		}
		return peak
	}
	half := (e.cfg.ShapleySamples + 1) / 2
	var a, b []float64
	var errA, errB error
	if p := e.cfg.ShapleyParallelism; p == 0 || p == 1 {
		a, errA = shapley.MonteCarlo(n, v, half, e.rng)
		b, errB = shapley.MonteCarlo(n, v, half, e.rng)
	} else {
		// Sharded estimation: each half-budget estimate gets one seed
		// drawn from the loop's rng, so the tick sequence stays
		// reproducible for a fixed simulation seed and parallelism.
		a, errA = shapley.MonteCarloParallel(n, v, half, e.rng.Int63(), p)
		b, errB = shapley.MonteCarloParallel(n, v, half, e.rng.Int63(), p)
	}
	if errA != nil || errB != nil {
		return // sampling params are validated at construction; unreachable
	}
	totals, spread := 0.0, 0.0
	phi := make([]float64, n)
	for i := range phi {
		phi[i] = (a[i] + b[i]) / 2
		totals += phi[i]
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		spread += d / 2
	}
	if totals <= 0 {
		return
	}
	for i, tenant := range e.tenants {
		e.gShare.With(tenant).Set(phi[i] / totals)
	}
	e.gShapleyStderr.Set(spread / float64(n) / totals)
}

// refreshSignal publishes the intensity gauge for the tick, walking the
// degradation ladder instead of ever failing the loop or publishing zero:
// the remote feed when configured (falling back to the trace-driven
// average-intensity model once the feed degrades), otherwise the local
// forecaster (same fallback while the revealed prefix is too short to
// fit). Every period is stamped with the quality level it was priced at.
func (e *exporter) refreshSignal(k int) {
	if e.feed != nil {
		s, err := e.feed.Intensity()
		if err != nil || s.Quality == livesignal.QualityDegraded {
			e.gForecast.Set(e.avgIntensity)
			e.gQuality.Set(float64(livesignal.QualityDegraded))
			return
		}
		e.gForecast.Set(s.Intensity)
		e.gQuality.Set(float64(s.Quality))
		return
	}
	if err := e.refreshForecast(k); err != nil {
		// A short or degenerate prefix cannot be fit yet; that is expected
		// early in the trace, not a loop failure — but pricing those
		// periods at zero would read as carbon-free, so degrade to the
		// average model instead.
		e.gForecast.Set(e.avgIntensity)
		e.gQuality.Set(float64(livesignal.QualityDegraded))
		return
	}
	e.gQuality.Set(float64(livesignal.QualityFresh))
}

// refreshForecast re-fits the live intensity signal on the revealed demand
// prefix (every ForecastEvery ticks once enough history exists) and
// publishes the boundary intensity.
func (e *exporter) refreshForecast(k int) error {
	if int(e.ticks.Load())%e.cfg.ForecastEvery != 0 && e.forecast != nil {
		e.gForecast.Set(e.forecast.CurrentIntensity())
		return nil
	}
	history, err := e.demand.Head(k)
	if err != nil {
		return err
	}
	if e.forecast == nil {
		cfg := signalserver.DefaultConfig()
		cfg.HorizonSamples = e.cfg.HorizonSamples
		cfg.Budget = e.cfg.SignalBudget
		srv, err := signalserver.New(history, cfg)
		if err != nil {
			return err
		}
		e.forecast = srv
	} else if err := e.forecast.Refresh(history); err != nil {
		return err
	}
	e.gForecast.Set(e.forecast.CurrentIntensity())
	return nil
}

// run ticks the attribution loop until ctx is cancelled.
func (e *exporter) run(ctx context.Context, interval time.Duration) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := e.step(); err != nil {
				return err
			}
		}
	}
}

// handler returns the daemon's routes: the registry exposition plus a
// health endpoint reporting loop progress.
func (e *exporter) handler(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"ticks":          e.ticks.Load(),
			"tenants":        len(e.tenants),
			"trace_samples":  e.samples,
			"window_samples": e.curWindow.Load(),
		})
	})
	return mux
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("carbon-exporter: ")

	def := defaultExporterConfig()
	var (
		addr     = flag.String("addr", ":9102", "listen address")
		interval = flag.Duration("interval", 2*time.Second, "attribution loop tick interval")
		tenants  = flag.Int("tenants", def.Tenants, "simulated tenants")
		vms      = flag.Int("vms", def.VMs, "simulated VMs")
		days     = flag.Float64("days", def.WindowDays, "simulated arrival window in days")
		step     = flag.Float64("step", float64(def.Step), "telemetry step in seconds")
		seed     = flag.Int64("seed", def.Seed, "simulation seed")
		samples  = flag.Int("shapley-samples", def.ShapleySamples, "permutations per share re-estimate")
		budget   = flag.Float64("signal-budget", float64(def.SignalBudget), "embodied budget behind the forecast signal (gCO2e)")
		workers  = flag.Int("parallelism", def.ShapleyParallelism, "workers sharding each Shapley share re-estimate (0 or 1 = serial, -1 = all CPUs)")
		sigURL   = flag.String("signal-url", def.SignalURL, "base URL of a remote signal server (empty = in-process forecaster)")
		maxStale = flag.Duration("signal-max-stale", def.SignalMaxStale, "how long a cached remote sample may substitute for a live one before degrading")
		regions  = flag.Bool("regions", def.Regions, "publish multi-region scenario gauges (provider fleets, per-region grid intensity, region-tagged attribution)")
		rgSeed   = flag.Int64("region-seed", def.RegionSeed, "seed reproducing the discovered multi-region scenario")
	)
	resil := def.SignalResilience
	resil.RegisterFlags(flag.CommandLine, "signal")
	flag.Parse()

	cfg := def
	cfg.Tenants = *tenants
	cfg.VMs = *vms
	cfg.WindowDays = *days
	cfg.Step = units.Seconds(*step)
	cfg.Seed = *seed
	cfg.ShapleySamples = *samples
	cfg.SignalBudget = units.GramsCO2e(*budget)
	cfg.ShapleyParallelism = *workers
	cfg.SignalURL = *sigURL
	cfg.SignalMaxStale = *maxStale
	cfg.SignalResilience = resil
	cfg.Regions = *regions
	cfg.RegionSeed = *rgSeed

	reg := metrics.Default()
	exp, err := newExporter(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	// Publish a full set of gauges before the first scrape can arrive.
	if err := exp.step(); err != nil {
		log.Fatal(err)
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           exp.handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	loopErr := make(chan error, 1)
	go func() { loopErr <- exp.run(ctx, *interval) }()
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()

	fmt.Printf("carbon-exporter serving %d tenants (%d VMs, %d samples) on %s\n",
		len(exp.tenants), cfg.VMs, exp.samples, *addr)

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case err := <-loopErr:
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
	case <-ctx.Done():
	}
	log.Print("shutting down (draining in-flight scrapes)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
