// Command cluster-load measures how attribution throughput scales with
// replica count. For each requested cluster size it starts an in-process
// fleet (the same harness the clusterserve load suite uses: one
// attrserver + cluster node per replica over loopback listeners), drives
// it closed-loop with workers that honor 429 back-pressure, and prints
// one line per size plus the scaling ratio of the largest size over the
// smallest.
//
// Computations use the sleep-backed synthetic method, so the measured
// quantity is the cluster's admission capacity (slots per replica over
// service time) rather than host CPU — replicas add capacity even on a
// single-core machine, which is what makes the curve reproducible
// anywhere. Every request is a distinct query period, so nothing is
// served from cache.
//
//	cluster-load -replicas 1,2,4 -service-time 100ms -duration 1.5s
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"fairco2/internal/clusterserve"
)

func parseReplicaList(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("replica count %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replica counts in %q", spec)
	}
	return out, nil
}

// measure runs one closed-loop load pass against a fresh fleet.
func measure(replicas int, serviceTime, duration time.Duration, maxQueue, workersPer int) (clusterserve.LoadStats, error) {
	fleet, err := clusterserve.StartFleet(clusterserve.FleetConfig{
		Replicas:    replicas,
		VNodes:      256,
		Schedule:    clusterserve.FleetSchedule(96),
		ServiceTime: serviceTime,
		Admission: clusterserve.AdmissionConfig{
			MaxQueue:   maxQueue,
			RetryAfter: 25 * time.Millisecond,
		},
	})
	if err != nil {
		return clusterserve.LoadStats{}, err
	}
	defer fleet.Close()
	periods := clusterserve.DistinctPeriods(96, 4000)
	stats := clusterserve.RunLoad(clusterserve.LoadConfig{
		Entries:  fleet.URLs,
		Workers:  workersPer * replicas,
		Duration: duration,
		Path: func(seq int) string {
			return "/v1/attribution?method=" + clusterserve.SyntheticMethod + "&period=" + periods[seq%len(periods)]
		},
	})
	if stats.Errors > 0 {
		return stats, fmt.Errorf("%d-replica run saw %d errors", replicas, stats.Errors)
	}
	return stats, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-load: ")

	var (
		replicaSpec = flag.String("replicas", "1,2,4", "comma-separated cluster sizes to measure")
		serviceTime = flag.Duration("service-time", 100*time.Millisecond, "synthetic per-computation service time")
		duration    = flag.Duration("duration", 1500*time.Millisecond, "measurement window per cluster size")
		maxQueue    = flag.Int("max-queue", 8, "admission slots per replica")
		workersPer  = flag.Int("workers-per-replica", 6, "closed-loop workers per replica")
	)
	flag.Parse()

	sizes, err := parseReplicaList(*replicaSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# cluster scaling: service-time=%v max-queue=%d workers/replica=%d duration=%v\n",
		*serviceTime, *maxQueue, *workersPer, *duration)
	throughputs := make([]float64, len(sizes))
	for i, n := range sizes {
		stats, err := measure(n, *serviceTime, *duration, *maxQueue, *workersPer)
		if err != nil {
			log.Fatal(err)
		}
		throughputs[i] = stats.Throughput()
		fmt.Printf("replicas=%d done=%d shed=%d elapsed=%v throughput=%.1f rps\n",
			n, stats.Done, stats.Shed, stats.Elapsed.Round(time.Millisecond), stats.Throughput())
	}
	if len(sizes) > 1 {
		first, last := throughputs[0], throughputs[len(throughputs)-1]
		if first <= 0 {
			log.Fatal("baseline run completed no requests")
		}
		fmt.Printf("scaling %dx->%dx replicas: %.2fx throughput\n", sizes[0], sizes[len(sizes)-1], last/first)
	}
}
