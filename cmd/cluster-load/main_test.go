package main

import (
	"testing"
	"time"
)

func TestParseReplicaList(t *testing.T) {
	got, err := parseReplicaList("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %d, want %d", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "0", "-1", "two", "1,x"} {
		if _, err := parseReplicaList(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestMeasureSmallFleet(t *testing.T) {
	stats, err := measure(1, 20*time.Millisecond, 300*time.Millisecond, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done == 0 {
		t.Error("measurement completed no requests")
	}
}
