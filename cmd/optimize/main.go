// Command optimize runs the paper's §8 workload carbon-optimization case
// study:
//
//	optimize -summary   Figure 10: carbon-optimal configuration vs grid CI
//	                    for the PBBS/Spark batch workloads
//	optimize -pareto    Figure 12: FAISS latency-carbon Pareto fronts at a
//	                    low-carbon (Sweden) and a high-carbon grid
//	optimize -dynamic   Figure 13: one week of dynamic FAISS
//	                    reconfiguration against live grid and embodied
//	                    carbon intensity signals under a 2 s SLO
//	optimize -placement Cross-region placement sweep: the Pareto front of
//	                    migration count vs total fleet carbon over a
//	                    discovered multi-region scenario, with per-move
//	                    deltas against the keep-everything-home baseline
package main

import (
	"flag"
	"fmt"
	"log"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/multiregion"
	"fairco2/internal/optimize"
	"fairco2/internal/temporal"
	"fairco2/internal/textplot"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimize: ")

	var (
		summary   = flag.Bool("summary", false, "print the Figure 10 batch-workload summary")
		pareto    = flag.Bool("pareto", false, "print the Figure 12 FAISS Pareto fronts")
		dynamic   = flag.Bool("dynamic", false, "run the Figure 13 dynamic week")
		slo       = flag.Float64("slo", 2, "tail-latency SLO in seconds for -dynamic")
		placement = flag.Bool("placement", false, "print the cross-region placement sweep")
		rgSeed    = flag.Int64("region-seed", 1, "seed reproducing the multi-region scenario for -placement")
		maxMoves  = flag.Int("max-moves", 16, "migration cap for -placement")
	)
	flag.Parse()
	if !*summary && !*pareto && !*dynamic && !*placement {
		*summary, *pareto, *dynamic = true, true, true
	}

	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		log.Fatal(err)
	}
	if *summary {
		printFigure10(cost)
	}
	if *pareto {
		printFigure12(cost)
	}
	if *dynamic {
		printFigure13(cost, units.Seconds(*slo))
	}
	if *placement {
		printPlacement(*rgSeed, *maxMoves)
	}
}

func printFigure10(cost *optimize.CostModel) {
	fmt.Println("Figure 10 — carbon-optimal configuration vs grid carbon intensity")
	fmt.Printf("%-8s %28s %28s %28s %10s\n", "workload",
		"optimal @ 50 gCO2e/kWh", "optimal @ 300 gCO2e/kWh", "optimal @ 800 gCO2e/kWh", "max saving")
	cis := optimize.DefaultCISweep()
	for _, m := range optimize.BatchModels() {
		rows, err := optimize.Figure10(m, cost, cis)
		if err != nil {
			log.Fatal(err)
		}
		pick := func(target float64) optimize.Figure10Row {
			for _, r := range rows {
				if float64(r.GridCI) >= target {
					return r
				}
			}
			return rows[len(rows)-1]
		}
		fmtRow := func(r optimize.Figure10Row) string {
			return fmt.Sprintf("%2dc/%3.0fGB (%.2fx perf-opt)", r.CarbonOpt.Cores, r.CarbonOpt.MemoryGB, r.NormCarbonOpt)
		}
		fmt.Printf("%-8s %28s %28s %28s %9.1f%%\n", m.Name,
			fmtRow(pick(50)), fmtRow(pick(300)), fmtRow(pick(800)), optimize.MaxSavings(rows)*100)
	}
	fmt.Println()

	// Figure 10's shaded regions for one representative workload.
	spark := optimize.BatchModels()[len(optimize.BatchModels())-1]
	rows, err := optimize.Figure10(spark, cost, cis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carbon-optimal configuration regions for %s:\n", spark.Name)
	for _, r := range optimize.Regions(rows) {
		fmt.Printf("  %4.0f - %4.0f gCO2e/kWh: %2d cores / %3.0f GB\n",
			float64(r.FromCI), float64(r.ToCI), r.Config.Cores, r.Config.MemoryGB)
	}
	fmt.Println()
}

func printFigure12(cost *optimize.CostModel) {
	fmt.Println("Figure 12 — FAISS latency-carbon Pareto fronts")
	for _, scenario := range []struct {
		name string
		ci   units.CarbonIntensity
	}{
		{"Sweden (25 gCO2e/kWh)", 25},
		{"California mean (230 gCO2e/kWh)", 230},
	} {
		points, err := optimize.SweepServing(optimize.ServingModels(), optimize.ServingSweepSpace(), cost, scenario.ci, 1)
		if err != nil {
			log.Fatal(err)
		}
		front := optimize.Pareto(points)
		fmt.Printf("\n[%s] %d Pareto-optimal configurations:\n", scenario.name, len(front))
		fmt.Printf("  %-6s %6s %6s %14s %18s\n", "algo", "cores", "batch", "tail latency", "carbon per query")
		for _, p := range front {
			fmt.Printf("  %-6s %6d %6d %11.3f s  %15.4g g\n",
				p.Algorithm, p.Cores, p.Batch, float64(p.TailLatency), float64(p.CarbonPerQuery))
		}
	}
	cross, err := optimize.AlgorithmCrossover(optimize.ServingModels(), optimize.ServingSweepSpace(), cost, 2, 0, 400, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncarbon-optimal algorithm under a 2 s SLO switches IVF -> HNSW at ~%.0f gCO2e/kWh (paper: ~90)\n\n", float64(cross))
}

func printFigure13(cost *optimize.CostModel, slo units.Seconds) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		log.Fatal(err)
	}
	sig, err := temporal.IntensitySignal(demand, 1e7, temporal.Config{SplitRatios: temporal.PaperSplits()})
	if err != nil {
		log.Fatal(err)
	}
	shape, err := optimize.NormalizedEmbodiedShape(sig)
	if err != nil {
		log.Fatal(err)
	}
	ciTrace, err := grid.NewSyntheticCAISO(grid.DefaultCAISOConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := optimize.DefaultDynamicConfig()
	cfg.SLO = slo
	res, err := optimize.DynamicWeek(cost, grid.Trace{Series: ciTrace}, shape, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 13 — one week of dynamic FAISS reconfiguration (SLO %.1f s)\n", float64(slo))
	fmt.Printf("  static performance-optimal carbon/query: %.4g g\n", float64(res.StaticCarbonPerQuery))
	fmt.Printf("  dynamically optimized carbon/query:       %.4g g\n", float64(res.OptimizedCarbonPerQuery))
	fmt.Printf("  savings: %.1f%%   (paper: 38.4%%)\n", res.Savings*100)
	fmt.Printf("  algorithm switches over the week: %d\n", res.AlgorithmSwitches)

	gridVals := make([]float64, len(res.Steps))
	carbonVals := make([]float64, len(res.Steps))
	for i, s := range res.Steps {
		gridVals[i] = float64(s.GridCI)
		carbonVals[i] = float64(s.Chosen.CarbonPerQuery)
	}
	fmt.Println("\n  grid carbon intensity over the week:")
	fmt.Printf("  %s\n", textplot.Sparkline(gridVals, 90))
	fmt.Println("  optimized carbon per query over the week:")
	fmt.Printf("  %s\n", textplot.Sparkline(carbonVals, 90))

	// Daily timeline: dominant algorithm and mean grid CI per day.
	fmt.Println("  day  dominant-algo  mean-grid-ci  mean-embodied-scale")
	steps := len(res.Steps)
	perDay := steps / 7
	for d := 0; d < 7; d++ {
		ivf := 0
		var ciSum, scaleSum float64
		for i := d * perDay; i < (d+1)*perDay; i++ {
			s := res.Steps[i]
			if s.Chosen.Algorithm == "IVF" {
				ivf++
			}
			ciSum += float64(s.GridCI)
			scaleSum += s.EmbodiedScale
		}
		algo := "HNSW"
		if ivf > perDay/2 {
			algo = "IVF"
		}
		fmt.Printf("  %3d  %13s  %12.0f  %19.2f\n", d+1, algo, ciSum/float64(perDay), scaleSum/float64(perDay))
	}
}

// printPlacement discovers the multi-region scenario from seed and prints
// the placement sweep: where each tenant's carbon price sits per region
// and how much moving the cheapest-to-fix tenants saves against the
// keep-everything-home (single-region attribution) baseline. Everything
// here is deterministic in the seed.
func printPlacement(seed int64, maxMoves int) {
	sc, err := multiregion.Discover(multiregion.DefaultConfig(), seed)
	if err != nil {
		log.Fatal(err)
	}
	costs, err := sc.RegionCosts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cross-region placement sweep (seed %d, %d regions)\n", seed, len(sc.Regions))
	fmt.Printf("  %-10s %-14s %12s %10s %16s\n", "provider", "region", "mean gCO2e/kWh", "PUE", "gCO2e/core-s")
	for _, c := range costs {
		fmt.Printf("  %-10s %-14s %14.0f %10.2f %16.3e\n",
			c.Provider, c.Region, float64(c.MeanCI), c.PUE, c.CarbonPerCoreSecond())
	}

	front, err := sc.Placement(maxMoves)
	if err != nil {
		log.Fatal(err)
	}
	baseline := front[0].TotalGrams
	fmt.Printf("\n  baseline (no moves): %.4g gCO2e over the %0.0f s window\n",
		baseline, float64(sc.Window))
	fmt.Printf("  %-6s %16s %14s %9s\n", "moves", "total gCO2e", "saving gCO2e", "saving")
	for _, p := range front {
		fmt.Printf("  %6d %16.4g %14.4g %8.2f%%\n",
			p.Moves, p.TotalGrams, baseline-p.TotalGrams, (baseline-p.TotalGrams)/baseline*100)
	}

	best := front[len(front)-1]
	if len(best.Plan) > 0 {
		fmt.Println("\n  migration plan (greedy order):")
		for _, m := range best.Plan {
			fmt.Printf("    %-14s %-14s -> %-14s saves %10.4g gCO2e\n", m.Tenant, m.From, m.To, m.SavingGrams)
		}
	}
	fmt.Println()
}
