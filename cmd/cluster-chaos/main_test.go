package main

import (
	"testing"
	"time"

	"fairco2/internal/clusterserve"
)

// TestShortChaosRun drives the harness end to end on a compressed
// timeline — kill, flap, restart, converge — asserting the run itself is
// healthy. The full acceptance thresholds live in the clusterserve chaos
// test; this pins the command's wiring.
func TestShortChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes over a second")
	}
	rep, err := clusterserve.RunChaos(clusterserve.ChaosConfig{
		Replicas:    3,
		Duration:    1200 * time.Millisecond,
		Workers:     4,
		CommitEvery: 20 * time.Millisecond,
		Probe:       clusterserve.ProbeConfig{Interval: 30 * time.Millisecond},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.Done == 0 {
		t.Error("chaos run completed no queries")
	}
	if rep.Commits == 0 {
		t.Error("chaos run committed no deltas")
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}
