// Command cluster-chaos runs the self-healing acceptance scenario
// against an in-process fleet and prints the report: kill one replica
// mid-load, latency-spike another, restart the victim, and require zero
// lost requests beyond shed-and-retry, prober eviction inside the
// hysteresis window, commit-log catch-up on rejoin, and post-recovery
// answers bitwise-identical to a single-process oracle that applied the
// same commit sequence.
//
//	cluster-chaos -replicas 3 -duration 3s -workers 6
//
// Exit status is non-zero when the scenario fails, so the command slots
// directly into CI and scripts/reproduce.sh.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fairco2/internal/clusterserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-chaos: ")

	var (
		replicas = flag.Int("replicas", 3, "fleet size")
		slices   = flag.Int("slices", 16, "schedule time slices")
		duration = flag.Duration("duration", 3*time.Second, "query load duration")
		workers  = flag.Int("workers", 6, "closed-loop load workers")
		victim   = flag.Int("victim", 1, "replica killed mid-load and restarted (1..replicas-1)")
		flap     = flag.Int("flap", 2, "replica latency-spiked around the restart (-1 disables)")
		commitMs = flag.Duration("commit-every", 25*time.Millisecond, "pace of the sequential commit stream")
		probeMs  = flag.Duration("probe-interval", 40*time.Millisecond, "health probe period (fast, so eviction and rejoin fit the run)")
		quiet    = flag.Bool("quiet", false, "suppress the timeline narration")
	)
	flag.Parse()

	cfg := clusterserve.ChaosConfig{
		Replicas:    *replicas,
		Slices:      *slices,
		Duration:    *duration,
		Workers:     *workers,
		Victim:      *victim,
		Flap:        *flap,
		CommitEvery: *commitMs,
		Probe:       clusterserve.ProbeConfig{Interval: *probeMs},
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	rep, err := clusterserve.RunChaos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	if !rep.Passed() {
		os.Exit(1)
	}
}
