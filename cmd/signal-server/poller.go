package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"fairco2/internal/resilience"
	"fairco2/internal/signalserver"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// maxTelemetryBytes caps a telemetry response; anything larger is treated
// as a lying upstream, not decoded into memory.
const maxTelemetryBytes = 32 << 20

// demandSeries is the wire form a telemetry endpoint serves: the demand
// history the forecaster re-fits on.
type demandSeries struct {
	StartSeconds float64   `json:"start_seconds"`
	StepSeconds  float64   `json:"step_seconds"`
	DemandCores  []float64 `json:"demand_cores"`
}

// telemetryPoller periodically fetches a fresh demand history from a
// remote telemetry endpoint under the resilience policy and re-fits the
// signal server on it. Every failure mode degrades gracefully: the server
// keeps serving the last-fitted signal, the poller retries on the next
// tick, and a sustained outage trips the breaker so the dead endpoint is
// probed instead of hammered.
type telemetryPoller struct {
	url    string
	srv    *signalserver.Server
	policy *resilience.Policy
	client *http.Client
	logf   func(format string, args ...any)

	refreshes atomic.Int64
	failures  atomic.Int64
}

// newTelemetryPoller wires a poller to srv. inst may be nil; when set, the
// poller publishes retry/breaker activity on the same instruments the
// exporter's client uses, so both daemons' resilience reads identically.
func newTelemetryPoller(url string, srv *signalserver.Server, cfg resilience.Config, seed int64, inst *signalserver.ClientInstruments) (*telemetryPoller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var hooks resilience.Hooks
	if inst != nil {
		hooks.OnRetry = func(int, error, time.Duration) { inst.Retries.Inc() }
		hooks.OnBreakerChange = func(_, to resilience.State) { inst.BreakerState.Set(float64(to)) }
	}
	policy, _ := cfg.NewPolicyHooked(seed, hooks)
	return &telemetryPoller{
		url:    url,
		srv:    srv,
		policy: policy,
		client: &http.Client{},
		logf:   log.Printf,
	}, nil
}

// run polls every interval until ctx is cancelled. Poll failures are
// logged, never fatal: a signal served off stale history beats no signal.
func (p *telemetryPoller) run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if err := p.poll(ctx); err != nil && !errors.Is(err, context.Canceled) {
				p.logf("telemetry poll: %v (serving last-fitted signal)", err)
			}
		}
	}
}

// poll fetches the telemetry once under the policy and re-fits the server.
func (p *telemetryPoller) poll(ctx context.Context) error {
	var series demandSeries
	op := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url, nil)
		if err != nil {
			return resilience.Permanent(err)
		}
		resp, err := p.client.Do(req)
		if err != nil {
			return err // transport failure: transient
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("telemetry: status %d", resp.StatusCode)
			if resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests {
				return err
			}
			return resilience.Permanent(err)
		}
		series = demandSeries{}
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxTelemetryBytes)).Decode(&series); err != nil {
			return fmt.Errorf("telemetry: decoding: %w", err)
		}
		return nil
	}
	if err := p.policy.Do(ctx, op); err != nil {
		p.failures.Add(1)
		return err
	}
	history, err := series.toSeries()
	if err != nil {
		p.failures.Add(1)
		return err
	}
	if err := p.srv.Refresh(history); err != nil {
		p.failures.Add(1)
		return fmt.Errorf("refitting on polled telemetry: %w", err)
	}
	p.refreshes.Add(1)
	return nil
}

// toSeries validates the wire form into a demand history. A lying
// telemetry endpoint (NaN, negative demand, zero step) must not reach the
// forecaster.
func (d demandSeries) toSeries() (*timeseries.Series, error) {
	switch {
	case len(d.DemandCores) == 0:
		return nil, errors.New("telemetry: empty demand series")
	case !(d.StepSeconds > 0) || math.IsInf(d.StepSeconds, 0):
		return nil, fmt.Errorf("telemetry: invalid step %v", d.StepSeconds)
	case math.IsNaN(d.StartSeconds) || math.IsInf(d.StartSeconds, 0):
		return nil, fmt.Errorf("telemetry: invalid start %v", d.StartSeconds)
	}
	for i, v := range d.DemandCores {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("telemetry: invalid demand[%d] = %v", i, v)
		}
	}
	return timeseries.New(units.Seconds(d.StartSeconds), units.Seconds(d.StepSeconds), d.DemandCores), nil
}
