package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
	"fairco2/internal/resilience/faultserver"
	"fairco2/internal/signalserver"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

// fakeTelemetry serves a growing prefix of a generated demand trace in the
// poller's wire form, so each successful poll re-fits on longer history.
type fakeTelemetry struct {
	mu   sync.Mutex
	hist *timeseries.Series
	n    int
}

func (f *fakeTelemetry) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n+12 <= f.hist.Len() {
		f.n += 12
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(demandSeries{
		StartSeconds: float64(f.hist.Start),
		StepSeconds:  float64(f.hist.Step),
		DemandCores:  f.hist.Values[:f.n],
	})
}

func fastResilience() resilience.Config {
	return resilience.Config{
		MaxAttempts:     2,
		BackoffBase:     time.Millisecond,
		BackoffCap:      5 * time.Millisecond,
		AttemptTimeout:  2 * time.Second,
		BreakerFailures: 2,
		ProbeInterval:   20 * time.Millisecond,
		ProbeSuccesses:  1,
	}
}

// pollerHarness stands up a signal server plus a poller whose telemetry
// endpoint sits behind a fault-injection proxy.
func pollerHarness(t *testing.T) (*telemetryPoller, *signalserver.Server, *faultserver.Server, *signalserver.ClientInstruments) {
	t.Helper()
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Days = 14
	hist, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := signalserver.New(hist, signalserver.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Serve prefixes starting at 12 days so every re-fit has enough
	// history for the forecaster.
	perDay := int(units.SecondsPerDay / float64(hist.Step))
	tel := &fakeTelemetry{hist: hist, n: 12 * perDay}
	fs := faultserver.New(tel)
	t.Cleanup(fs.Close)
	inst := signalserver.NewClientInstruments(metrics.NewRegistry())
	p, err := newTelemetryPoller(fs.URL(), srv, fastResilience(), 1, inst)
	if err != nil {
		t.Fatal(err)
	}
	p.logf = t.Logf
	return p, srv, fs, inst
}

func TestPollerRefreshes(t *testing.T) {
	p, srv, _, _ := pollerHarness(t)
	before := srv.CurrentIntensity()
	if err := p.poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.refreshes.Load() != 1 || p.failures.Load() != 0 {
		t.Errorf("refreshes %d failures %d", p.refreshes.Load(), p.failures.Load())
	}
	if v := srv.CurrentIntensity(); !(v > 0) {
		t.Errorf("intensity %v after re-fit", v)
	} else if v == before {
		t.Errorf("intensity unchanged (%v) after re-fitting on a different prefix", v)
	}
}

// TestPollerOutageKeepsServing is the graceful-degradation contract: a
// dead telemetry endpoint fails polls, opens the breaker, and leaves the
// last-fitted signal serving untouched.
func TestPollerOutageKeepsServing(t *testing.T) {
	p, srv, fs, inst := pollerHarness(t)
	if err := p.poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := srv.CurrentIntensity()

	fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
	if err := p.poll(context.Background()); !errors.Is(err, resilience.ErrRetriesExhausted) {
		t.Fatalf("outage poll error %v, want retries exhausted", err)
	}
	// Two failed attempts opened the breaker; later polls fast-fail
	// without touching the endpoint.
	if st := inst.BreakerState.Value(); st != float64(resilience.StateOpen) {
		t.Fatalf("breaker state %v, want open", st)
	}
	hits := fs.Hits()
	if err := p.poll(context.Background()); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("poll under open breaker: %v", err)
	}
	if fs.Hits() != hits {
		t.Error("open breaker still reached the telemetry endpoint")
	}
	if got := srv.CurrentIntensity(); got != before {
		t.Errorf("outage moved the served signal: %v -> %v", before, got)
	}
	if v := inst.Retries.Value(); v < 1 {
		t.Errorf("retry counter %v, want >= 1", v)
	}

	// Recovery: the endpoint comes back, the probe interval elapses, and
	// the next poll closes the breaker and re-fits.
	fs.Clear()
	time.Sleep(50 * time.Millisecond)
	if err := p.poll(context.Background()); err != nil {
		t.Fatalf("post-recovery poll: %v", err)
	}
	if st := inst.BreakerState.Value(); st != float64(resilience.StateClosed) {
		t.Errorf("breaker state %v after recovery, want closed", st)
	}
	if p.refreshes.Load() != 2 {
		t.Errorf("refreshes %d, want 2", p.refreshes.Load())
	}
}

// TestPollerRejectsLyingTelemetry holds the validation rail: corrupt JSON
// and degenerate series fail the poll without perturbing the server.
func TestPollerRejectsLyingTelemetry(t *testing.T) {
	bodies := []string{
		`{"start_seconds": 0, "step_seconds": 300, "demand_cores": [1,`, // truncated
		`{"start_seconds": 0, "step_seconds": 300, "demand_cores": []}`,
		`{"start_seconds": 0, "step_seconds": 0, "demand_cores": [1,2]}`,
		`{"start_seconds": 0, "step_seconds": 300, "demand_cores": [1,-2]}`,
		`{"start_seconds": 1e999, "step_seconds": 300, "demand_cores": [1,2]}`, // start overflows to +Inf
	}
	for i, body := range bodies {
		p, srv, fs, _ := pollerHarness(t)
		before := srv.CurrentIntensity()
		// Serve the lie until the retries give up, then assert the poll
		// failed closed.
		fs.Program(faultserver.Step{Status: http.StatusOK, Body: body, Sticky: true})
		if err := p.poll(context.Background()); err == nil {
			t.Errorf("case %d: lying telemetry accepted", i)
		}
		if got := srv.CurrentIntensity(); got != before {
			t.Errorf("case %d: lying telemetry moved the signal: %v -> %v", i, before, got)
		}
		if p.refreshes.Load() != 0 {
			t.Errorf("case %d: refreshes %d, want 0", i, p.refreshes.Load())
		}
	}
}

// TestPollerRunLoop drives the background loop end to end: it polls on the
// interval and stops when the context is cancelled.
func TestPollerRunLoop(t *testing.T) {
	p, _, _, _ := pollerHarness(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.run(ctx, 5*time.Millisecond)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for p.refreshes.Load() < 2 {
		select {
		case <-deadline:
			t.Fatal("loop never polled twice")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop on cancel")
	}
}

func TestPollerConfigValidation(t *testing.T) {
	cfg := fastResilience()
	cfg.MaxAttempts = 0
	if _, err := newTelemetryPoller("http://x", nil, cfg, 1, nil); err == nil {
		t.Error("invalid resilience config accepted")
	}
}
