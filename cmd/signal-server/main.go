// Command signal-server serves Fair-CO2's live embodied carbon-intensity
// signal over HTTP (§5.3 as a service). It fits the forecaster on a
// demand history (a CSV trace or the synthetic Azure-like default),
// projects the configured horizon, and exposes:
//
//	GET /healthz
//	GET /metrics
//	GET /v1/intensity/current
//	GET /v1/intensity/window?hours=N
//	GET /v1/intensity/series
//
// Tenants poll the window endpoint to place deferrable work where the
// projected embodied intensity is lowest (see examples/batchshift).
// /metrics exposes the process-wide registry (request counters, refit
// latency, the live intensity gauge) in Prometheus text format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
	"fairco2/internal/signalserver"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("signal-server: ")

	var (
		addr      = flag.String("addr", ":8585", "listen address")
		traceCSV  = flag.String("trace", "", "demand history CSV (default: synthetic 21-day Azure-like trace)")
		horizon   = flag.Int("horizon-hours", 48, "forecast horizon in hours")
		budget    = flag.Float64("budget", 1e7, "embodied carbon budget over history+horizon (gCO2e)")
		telemetry = flag.String("telemetry-url", "", "demand telemetry endpoint to re-fit from periodically (empty = static history)")
		refresh   = flag.Duration("refresh-every", 5*time.Minute, "how often to poll -telemetry-url")
		seed      = flag.Int64("seed", 1, "seed for the retry jitter schedule")
	)
	resil := resilience.DefaultConfig()
	resil.RegisterFlags(flag.CommandLine, "signal")
	flag.Parse()

	history, err := loadHistory(*traceCSV)
	if err != nil {
		log.Fatal(err)
	}
	cfg := signalserver.DefaultConfig()
	cfg.HorizonSamples = int(float64(*horizon) * units.SecondsPerHour / float64(history.Step))
	cfg.Budget = units.GramsCO2e(*budget)
	srv, err := signalserver.New(history, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A bare ListenAndServe has no timeouts: one slow scraper can pin a
	// connection forever. Bound every phase of the exchange and drain
	// in-flight requests on SIGINT/SIGTERM.
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *telemetry != "" {
		if *refresh <= 0 {
			log.Fatal("refresh interval must be positive")
		}
		poller, err := newTelemetryPoller(*telemetry, srv, resil, *seed,
			signalserver.NewClientInstruments(metrics.Default()))
		if err != nil {
			log.Fatal(err)
		}
		go poller.run(ctx, *refresh)
		fmt.Printf("re-fitting from %s every %s\n", *telemetry, *refresh)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()

	fmt.Printf("serving live embodied carbon intensity on %s (history %d samples, horizon %d)\n",
		*addr, history.Len(), cfg.HorizonSamples)

	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
	}
	log.Print("shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}

func loadHistory(path string) (*timeseries.Series, error) {
	if path == "" {
		cfg := trace.DefaultAzureLikeConfig()
		cfg.Days = 21
		return trace.GenerateAzureLike(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f)
}
