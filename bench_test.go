package fairco2

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus ablations of Fair-CO2's design choices. Each benchmark
// regenerates its experiment at a laptop-friendly scale and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the rows/series the paper reports (shape, not absolute
// hardware numbers). EXPERIMENTS.md records paper-vs-measured values.

import (
	"math/rand"
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/forecast"
	"fairco2/internal/grid"
	"fairco2/internal/livesignal"
	"fairco2/internal/montecarlo"
	"fairco2/internal/optimize"
	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/temporal"
	"fairco2/internal/trace"
	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// BenchmarkTable1Components regenerates Table 1: the TDP-to-embodied-carbon
// ratios showing power is a poor proxy for embodied carbon.
func BenchmarkTable1Components(b *testing.B) {
	var rows []carbon.Table1Row
	for i := 0; i < b.N; i++ {
		rows = carbon.Table1()
	}
	b.ReportMetric(rows[0].RatioKgPerWatt, "dram-kg/W")
	b.ReportMetric(rows[1].RatioKgPerWatt, "cpu-kg/W")
	b.ReportMetric(rows[0].RatioKgPerWatt/rows[1].RatioKgPerWatt, "ratio-gap-x")
}

// BenchmarkFigure1MinimumCapacity evaluates the Figure 1 observation:
// differently-shaped demand curves with the same peak require the same
// minimum provisioned capacity.
func BenchmarkFigure1MinimumCapacity(b *testing.B) {
	flat := &schedule.Schedule{Slices: 3, SliceDuration: 1, Workloads: []schedule.Workload{
		{ID: 0, Cores: 48, Start: 0, Duration: 3},
	}}
	spike := &schedule.Schedule{Slices: 3, SliceDuration: 1, Workloads: []schedule.Workload{
		{ID: 0, Cores: 16, Start: 0, Duration: 3},
		{ID: 1, Cores: 32, Start: 1, Duration: 1},
	}}
	var peakFlat, peakSpike float64
	for i := 0; i < b.N; i++ {
		peakFlat, peakSpike = flat.Peak(), spike.Peak()
	}
	b.ReportMetric(peakFlat, "flat-peak-cores")
	b.ReportMetric(peakSpike, "spike-peak-cores")
}

// BenchmarkFigure2ColocationCharacterization regenerates the pairwise
// colocation matrices and reports the NBODY/CH asymmetry.
func BenchmarkFigure2ColocationCharacterization(b *testing.B) {
	var char *workload.Characterization
	var err error
	for i := 0; i < b.N; i++ {
		char, err = workload.Characterize(workload.Suite())
		if err != nil {
			b.Fatal(err)
		}
	}
	nbody, _ := char.Index(workload.NBODY)
	ch, _ := char.Index(workload.CH)
	b.ReportMetric((char.RuntimeFactor[nbody][ch]-1)*100, "nbody-with-ch-%")
	b.ReportMetric((char.RuntimeFactor[ch][nbody]-1)*100, "ch-with-nbody-%")
}

// BenchmarkFigure4TemporalShapleySignal generates the 30-day -> 5-minute
// hierarchical intensity signal with the paper's split ratios and reports
// the dynamic range of the signal.
func BenchmarkFigure4TemporalShapleySignal(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := temporal.Config{SplitRatios: temporal.PaperSplits()}
	b.ResetTimer()
	var sig = new(struct{ min, max float64 })
	for i := 0; i < b.N; i++ {
		s, err := temporal.IntensitySignal(demand, 1e7, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sig.min, sig.max = s.Values[0], s.Values[0]
		for _, v := range s.Values {
			if v < sig.min {
				sig.min = v
			}
			if v > sig.max {
				sig.max = v
			}
		}
	}
	b.ReportMetric(sig.max/sig.min, "intensity-dynamic-range-x")
}

// BenchmarkFigure5DemandForecast fits the Prophet-style forecaster on 21
// days and forecasts 9, reporting demand MAPE.
func BenchmarkFigure5DemandForecast(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var eval forecast.Evaluation
	for i := 0; i < b.N; i++ {
		_, eval, err = forecast.Backtest(demand, 21, forecast.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eval.MAPE, "demand-mape-%")
	b.ReportMetric(eval.WorstAPE, "demand-worst-ape-%")
}

// BenchmarkFigure7DemandMonteCarlo runs a scaled dynamic-demand Monte
// Carlo (paper: 10,000 trials, <=22 workloads) and reports each method's
// average deviation from the exact Shapley ground truth.
func BenchmarkFigure7DemandMonteCarlo(b *testing.B) {
	cfg := montecarlo.DefaultDemandConfig()
	cfg.Trials = 120
	var result *montecarlo.DemandResult
	var err error
	for i := 0; i < b.N; i++ {
		result, err = montecarlo.RunDemand(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(result.Overall(montecarlo.MethodRUP).Mean*100, "rup-dev-%")
	b.ReportMetric(result.Overall(montecarlo.MethodDemand).Mean*100, "demandprop-dev-%")
	b.ReportMetric(result.Overall(montecarlo.MethodFairCO2).Mean*100, "fairco2-dev-%")
	b.ReportMetric(result.OverallWorst(montecarlo.MethodRUP).Mean*100, "rup-worst-%")
	b.ReportMetric(result.OverallWorst(montecarlo.MethodFairCO2).Mean*100, "fairco2-worst-%")
}

// BenchmarkFigure8ColocationMonteCarlo runs a scaled colocation Monte
// Carlo (paper: 10,000 scenarios of 4-100 workloads) and reports mean and
// worst-case deviations.
func BenchmarkFigure8ColocationMonteCarlo(b *testing.B) {
	cfg := montecarlo.DefaultColocationConfig()
	cfg.Trials = 100
	cfg.GroundTruthSamples = 800
	var result *montecarlo.ColocationResult
	var err error
	for i := 0; i < b.N; i++ {
		result, err = montecarlo.RunColocation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(result.Overall(montecarlo.MethodRUP).Mean*100, "rup-dev-%")
	b.ReportMetric(result.Overall(montecarlo.MethodFairCO2).Mean*100, "fairco2-dev-%")
	b.ReportMetric(result.OverallWorst(montecarlo.MethodRUP).Mean*100, "rup-worst-%")
	b.ReportMetric(result.OverallWorst(montecarlo.MethodFairCO2).Mean*100, "fairco2-worst-%")
}

// BenchmarkFigure9PerWorkloadDistributions collects the per-workload and
// per-partner deviation distributions and reports how much Fair-CO2
// narrows the spread across partners versus RUP.
func BenchmarkFigure9PerWorkloadDistributions(b *testing.B) {
	cfg := montecarlo.DefaultColocationConfig()
	cfg.Trials = 80
	cfg.GroundTruthSamples = 800
	cfg.CollectPerWorkload = true
	var result *montecarlo.ColocationResult
	var err error
	for i := 0; i < b.N; i++ {
		result, err = montecarlo.RunColocation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	spread := func(m map[workload.Name][]float64) float64 {
		// Spread across partner identities: max minus min of per-partner
		// mean deviation. RUP's partner effect makes this wide; Fair-CO2
		// collapses it (Figure 9 bottom row).
		min, max := 1e18, -1e18
		for _, devs := range m {
			sum := 0.0
			for _, d := range devs {
				sum += d
			}
			mean := sum / float64(len(devs))
			if mean < min {
				min = mean
			}
			if mean > max {
				max = mean
			}
		}
		return max - min
	}
	b.ReportMetric(spread(result.PerPartnerDeviations(montecarlo.MethodRUP))*100, "rup-partner-spread-%")
	b.ReportMetric(spread(result.PerPartnerDeviations(montecarlo.MethodFairCO2))*100, "fairco2-partner-spread-%")
}

// BenchmarkFigure10ConfigSweep sweeps all nine batch workloads over the
// configuration grid and the 0-1000 gCO2e/kWh intensity axis, reporting
// the maximum saving of carbon-optimal over performance-optimal.
func BenchmarkFigure10ConfigSweep(b *testing.B) {
	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		b.Fatal(err)
	}
	cis := optimize.DefaultCISweep()
	var maxSavings float64
	for i := 0; i < b.N; i++ {
		maxSavings = 0
		for _, m := range optimize.BatchModels() {
			rows, err := optimize.Figure10(m, cost, cis)
			if err != nil {
				b.Fatal(err)
			}
			if s := optimize.MaxSavings(rows); s > maxSavings {
				maxSavings = s
			}
		}
	}
	b.ReportMetric(maxSavings*100, "max-savings-%")
}

// BenchmarkFigure11LiveSignal evaluates the live intensity signal under
// forecast error, reporting the paper's two headline errors.
func BenchmarkFigure11LiveSignal(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *livesignal.Result
	for i := 0; i < b.N; i++ {
		res, err = livesignal.Evaluate(demand, livesignal.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IntensityMAPE, "intensity-mape-%")
	b.ReportMetric(res.IntensityWorstAPE, "intensity-worst-ape-%")
}

// BenchmarkFigure12ParetoFront builds the FAISS latency-carbon Pareto
// fronts and locates the IVF -> HNSW crossover intensity.
func BenchmarkFigure12ParetoFront(b *testing.B) {
	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		b.Fatal(err)
	}
	var cross units.CarbonIntensity
	var frontLen int
	for i := 0; i < b.N; i++ {
		points, err := optimize.SweepServing(optimize.ServingModels(), optimize.ServingSweepSpace(), cost, 230, 1)
		if err != nil {
			b.Fatal(err)
		}
		frontLen = len(optimize.Pareto(points))
		cross, err = optimize.AlgorithmCrossover(optimize.ServingModels(), optimize.ServingSweepSpace(), cost, 2, 0, 400, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cross), "crossover-gco2e/kWh")
	b.ReportMetric(float64(frontLen), "pareto-points")
}

// BenchmarkFigure13DynamicWeek simulates the week of dynamic FAISS
// reconfiguration and reports the carbon savings (paper: 38.4%).
func BenchmarkFigure13DynamicWeek(b *testing.B) {
	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		b.Fatal(err)
	}
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	sig, err := temporal.IntensitySignal(demand, 1e7, temporal.Config{SplitRatios: temporal.PaperSplits()})
	if err != nil {
		b.Fatal(err)
	}
	shape, err := optimize.NormalizedEmbodiedShape(sig)
	if err != nil {
		b.Fatal(err)
	}
	ciTrace, err := grid.NewSyntheticCAISO(grid.DefaultCAISOConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *optimize.DynamicResult
	for i := 0; i < b.N; i++ {
		res, err = optimize.DynamicWeek(cost, grid.Trace{Series: ciTrace}, shape, optimize.DefaultDynamicConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Savings*100, "savings-%")
	b.ReportMetric(float64(res.AlgorithmSwitches), "algo-switches")
}

// BenchmarkGroundTruthExactScaling measures the exponential cost of the
// exact Shapley ground truth as schedules grow — the scalability argument
// motivating Temporal Shapley (§4.2).
func BenchmarkGroundTruthExactScaling(b *testing.B) {
	for _, n := range []int{8, 12, 16, 18} {
		b.Run(benchName("workloads", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cfg := schedule.DefaultGeneratorConfig()
			cfg.MaxWorkloads = n
			cfg.MinSlices, cfg.MaxSlices = 9, 9
			cfg.MaxConcurrent = 5
			var s *schedule.Schedule
			for {
				var err error
				s, err = schedule.Generate(cfg, rng)
				if err != nil {
					b.Fatal(err)
				}
				if len(s.Workloads) == n {
					break
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				table, err := shapley.BuildTableIncremental(n, func(int) {}, func(int) {}, func() float64 { return 0 })
				_ = table
				if err != nil {
					b.Fatal(err)
				}
				// Full exact attribution over the real peak game.
				phi, err := shapley.Exact(n, s.PeakOfSubset)
				if err != nil {
					b.Fatal(err)
				}
				_ = phi
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
