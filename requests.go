package fairco2

import (
	"fmt"

	"fairco2/internal/carbon"
	"fairco2/internal/optimize"
	"fairco2/internal/requests"
)

// Request-level attribution surface (the paper's §10 future-work
// direction, implemented in internal/requests).
type (
	// Request is one serving request.
	Request = requests.Request
	// RequestBatch is a dispatched batch of requests.
	RequestBatch = requests.Batch
	// RequestLedger prices batches against live carbon signals.
	RequestLedger = requests.Ledger
	// RequestAttribution is one request's carbon share.
	RequestAttribution = requests.Attribution
)

// NewRequestLedger builds a request-pricing ledger for a FAISS-style
// serving deployment: algorithm is "IVF" or "HNSW", cores the allocation,
// grid the live intensity signal.
func NewRequestLedger(algorithm string, cores int, grid GridSignal) (*RequestLedger, error) {
	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		return nil, err
	}
	for _, m := range optimize.ServingModels() {
		if m.Algorithm == algorithm {
			return &requests.Ledger{Cost: cost, Model: m, Cores: cores, Grid: grid}, nil
		}
	}
	return nil, fmt.Errorf("fairco2: unknown serving algorithm %q", algorithm)
}

// BatchRequests groups requests into batches by count and wait bounds.
func BatchRequests(reqs []Request, maxBatch int, maxWait Seconds) ([]RequestBatch, error) {
	return requests.BatchRequests(reqs, maxBatch, maxWait)
}
