package fairco2

import (
	"fairco2/internal/carbon"
	"fairco2/internal/sci"
	"fairco2/internal/units"
)

// Hardware-modeling surface: ACT-style server construction and the SCI
// baseline metric, re-exported for library consumers.

type (
	// ServerSpec describes a server for the ACT-style embodied-carbon
	// builder.
	ServerSpec = carbon.ServerSpec
	// ProcessNode is a logic fabrication technology (e.g. carbon.Node7nm).
	ProcessNode = carbon.ProcessNode
	// FabLocation selects a fab's electricity carbon intensity.
	FabLocation = carbon.FabLocation
	// MemoryTech is a DRAM generation.
	MemoryTech = carbon.MemoryTech
	// SCIInput collects the Software Carbon Intensity formula's terms.
	SCIInput = sci.Input
	// SCIReport is an SCI score with its breakdown.
	SCIReport = sci.Report
)

// BuildServer assembles a hardware carbon model from an ACT-style
// specification (die area, process node, fab location, DRAM generation).
func BuildServer(spec ServerSpec) (*Server, error) { return carbon.BuildServer(spec) }

// SCI computes the Green Software Foundation's Software Carbon Intensity
// score — the paper's embodied-attribution baseline. Use it to compare a
// workload's SCI bill against its Fair-CO2 attribution.
func SCI(in SCIInput) (SCIReport, error) { return sci.Compute(in) }

// Table1 returns the paper's Table 1 component data.
func Table1() []carbon.Table1Row { return carbon.Table1() }

// EmissionsOf converts energy to operational carbon at a grid intensity.
func EmissionsOf(energy units.Joules, ci CarbonIntensity) GramsCO2e {
	return units.Emissions(energy, ci)
}
