// Colocation example: the paper's motivating Figure 2 pair. NBODY and CH
// share a node; CH slows NBODY by ~87% while suffering only ~39% itself.
// The RUP baseline charges the victim for its inflated occupancy; the
// ground-truth Shapley value and Fair-CO2's interference-aware attribution
// push that cost back to the aggressor.
package main

import (
	"fmt"
	"log"

	"fairco2"
	"fairco2/internal/workload"
)

func main() {
	log.SetFlags(0)

	pair := []workload.Name{workload.NBODY, workload.CH}
	const gridCI = fairco2.CarbonIntensity(250) // a mid-carbon grid

	fmt.Println("NBODY + CH colocated on one node (250 gCO2e/kWh grid):")
	fmt.Printf("%-14s %14s %14s\n", "method", "NBODY", "CH")
	for _, method := range []string{fairco2.MethodGroundTruth, fairco2.MethodRUP, fairco2.MethodFairCO2} {
		attr, err := fairco2.AttributeColocation(method, pair, gridCI, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %11.2f g %11.2f g\n", method, float64(attr[0].Carbon), float64(attr[1].Carbon))
	}

	fmt.Println()
	fmt.Println("The RUP row overcharges NBODY relative to the ground truth —")
	fmt.Println("the victim pays for slowdown its neighbour caused. Fair-CO2's")
	fmt.Println("history-based factors track the ground truth instead.")

	// A larger scenario shows the same effect across many pairs.
	many := []workload.Name{
		workload.NBODY, workload.CH,
		workload.SA, workload.PG10,
		workload.LLAMA, workload.WC,
		workload.FAISS, workload.SPARK,
	}
	fmt.Println("\nEight workloads, four nodes:")
	fmt.Printf("%-10s", "workload")
	methods := []string{fairco2.MethodGroundTruth, fairco2.MethodRUP, fairco2.MethodFairCO2}
	results := map[string][]fairco2.ColocationAttribution{}
	for _, m := range methods {
		attr, err := fairco2.AttributeColocation(m, many, gridCI, 1)
		if err != nil {
			log.Fatal(err)
		}
		results[m] = attr
		fmt.Printf(" %14s", m)
	}
	fmt.Println()
	for i, n := range many {
		fmt.Printf("%-10s", n)
		for _, m := range methods {
			fmt.Printf(" %12.1f g", float64(results[m][i].Carbon))
		}
		fmt.Println()
	}
}
