// Billing: a cloud operator's monthly workflow through the public API.
// Three tenants share a small fleet for a day; the Accountant collects
// core, memory, and power telemetry and closes the period into per-tenant
// carbon statements with embodied (CPU + DRAM), static-energy, and
// dynamic-energy components — Fair-CO2's answer to the carbon dashboards
// of AWS/Azure/GCP described in the paper's introduction.
package main

import (
	"fmt"
	"log"

	"fairco2"
	"fairco2/internal/timeseries"
)

func main() {
	log.SetFlags(0)

	const hours = 24
	acct, err := fairco2.NewAccountant(fairco2.BillingConfig{
		Server:      fairco2.ReferenceServer(),
		Grid:        fairco2.GridCalifornia,
		PeriodStart: 0,
		Step:        3600,
		Samples:     hours,
	})
	if err != nil {
		log.Fatal(err)
	}

	mk := func(fill func(hour int) float64) *timeseries.Series {
		s := timeseries.Zeros(0, 3600, hours)
		for h := range s.Values {
			s.Values[h] = fill(h)
		}
		return s
	}

	// Tenant "webshop": business-hours web tier, CPU-heavy.
	webCores := mk(func(h int) float64 {
		if h >= 8 && h < 20 {
			return 128
		}
		return 16
	})
	webPower := mk(func(h int) float64 {
		if h >= 8 && h < 20 {
			return 320
		}
		return 40
	})
	must(acct.RecordUsage("webshop", webCores, webPower))
	must(acct.RecordMemory("webshop", mk(func(h int) float64 { return 48 })))

	// Tenant "ml-train": overnight batch training, runs off-peak.
	mlCores := mk(func(h int) float64 {
		if h < 6 {
			return 64
		}
		return 0
	})
	mlPower := mk(func(h int) float64 {
		if h < 6 {
			return 200
		}
		return 0
	})
	must(acct.RecordUsage("ml-train", mlCores, mlPower))
	must(acct.RecordMemory("ml-train", mk(func(h int) float64 {
		if h < 6 {
			return 160
		}
		return 0
	})))

	// Tenant "cache": small but always-on, memory-hungry.
	must(acct.RecordUsage("cache", mk(func(int) float64 { return 8 }), mk(func(int) float64 { return 20 })))
	must(acct.RecordMemory("cache", mk(func(int) float64 { return 120 })))

	statements, total, err := acct.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daily carbon statements (gCO2e):")
	fmt.Print(fairco2.FormatStatements(statements, total))

	fmt.Println("\nper-tenant embodied split and effective CPU-side rate:")
	for _, s := range statements {
		rate := 0.0
		if s.CoreSeconds > 0 {
			rate = float64(s.EmbodiedCPU) / float64(s.CoreSeconds) * 3600
		}
		fmt.Printf("  %-10s cpu-side %8.2f g, dram-side %8.2f g, %7.4f g per core-hour\n",
			s.Tenant, float64(s.EmbodiedCPU), float64(s.EmbodiedDRAM), rate)
	}
	fmt.Println("\nml-train runs at night when aggregate demand is low, so its")
	fmt.Println("per-core-hour CPU-embodied rate undercuts the business-hours web")
	fmt.Println("tier — the demand-aware pricing RUP-style dashboards cannot express.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
