// Quickstart: attribute the embodied carbon of a small dynamic-demand
// schedule with every method the library offers, then derive a carbon
// intensity signal and price an individual workload's usage with it.
package main

import (
	"fmt"
	"log"

	"fairco2"
)

func main() {
	log.SetFlags(0)

	// A day of four hour-long slices: a steady service, a peak-hour batch
	// job, a mid-day analytics query, and a late-night cron job.
	sched := &fairco2.Schedule{
		Slices:        4,
		SliceDuration: 3600,
		Workloads: []fairco2.ScheduledWorkload{
			{ID: 0, Cores: 16, Start: 0, Duration: 4}, // steady service
			{ID: 1, Cores: 64, Start: 1, Duration: 1}, // peak-hour batch
			{ID: 2, Cores: 32, Start: 1, Duration: 2}, // analytics
			{ID: 3, Cores: 8, Start: 3, Duration: 1},  // night cron
		},
	}
	// One day's amortized share of a rack's embodied carbon.
	const budget = fairco2.GramsCO2e(5000)

	fmt.Printf("peak demand: %.0f cores (the capacity this schedule forces the operator to provision)\n\n", sched.Peak())
	names := []string{"steady service", "peak-hour batch", "analytics", "night cron"}
	for _, method := range []string{
		fairco2.MethodGroundTruth,
		fairco2.MethodRUP,
		fairco2.MethodDemandProportional,
		fairco2.MethodFairCO2,
	} {
		attr, err := fairco2.AttributeSchedule(method, sched, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s", method)
		for i, v := range attr {
			fmt.Printf("  %s %6.0f g", names[i], v)
		}
		fmt.Println()
	}

	// The same attribution via the intensity-signal route: Temporal
	// Shapley prices each core-second by when it was consumed.
	demand := sched.Demand()
	signal, err := fairco2.EmbodiedIntensitySignal(demand, budget, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nembodied carbon intensity per slice (gCO2e per core-second):")
	for i, v := range signal.Values {
		fmt.Printf("  slice %d: %.6f  (demand %.0f cores)\n", i, v, demand.Values[i])
	}

	batchUsage := sched.DemandOf(1)
	carbon, err := fairco2.AttributeUsage(signal, batchUsage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeak-hour batch priced through the signal: %.0f gCO2e (matches the fair-co2 row)\n", float64(carbon))
}
