// Batchshift: temporal workload shifting guided by Fair-CO2's live
// embodied carbon intensity signal (§5.3). A deferrable batch job needs 4
// contiguous hours of 32 cores within the next 48 hours. We fit a
// forecaster on three weeks of demand history, project the next two days,
// derive the live intensity signal, and pick the cheapest start hour —
// then verify the choice against the signal computed from the realized
// demand.
package main

import (
	"fmt"
	"log"
	"math"

	"fairco2"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

const (
	jobCores    = 32
	jobHours    = 4
	horizonDays = 2
)

func main() {
	log.SetFlags(0)

	// 23 days of 5-minute demand samples: 21 for history, 2 held out as
	// the "future" that actually materializes.
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Days = 23
	full, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		log.Fatal(err)
	}
	perDay := int(units.SecondsPerDay / float64(full.Step))
	history, err := full.Head(21 * perDay)
	if err != nil {
		log.Fatal(err)
	}

	// Live signal: history + 2-day forecast, attributed a fleet-scale
	// budget. One hierarchical level keeps the example simple.
	horizon := horizonDays * perDay
	budget := fairco2.GramsCO2e(1e7)
	live, err := fairco2.LiveIntensitySignal(history, horizon, budget, nil)
	if err != nil {
		log.Fatal(err)
	}
	futureSignal, err := live.Tail(horizon)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate every possible start hour in the horizon.
	samplesPerHour := perDay / 24
	jobSamples := jobHours * samplesPerHour
	bestStart, bestCost := 0, math.Inf(1)
	var worstCost float64
	for start := 0; start+jobSamples <= futureSignal.Len(); start += samplesPerHour {
		cost := 0.0
		for i := start; i < start+jobSamples; i++ {
			cost += jobCores * futureSignal.Values[i] * float64(futureSignal.Step)
		}
		if cost < bestCost {
			bestCost, bestStart = cost, start
		}
		if cost > worstCost {
			worstCost = cost
		}
	}
	fmt.Printf("projected embodied cost of the job: best start hour %d (%.1f g), worst %.1f g\n",
		bestStart/samplesPerHour, bestCost, worstCost)
	fmt.Printf("projected saving from shifting: %.1f%%\n", (1-bestCost/worstCost)*100)

	// What actually happens: recompute the signal from realized demand
	// and compare the chosen slot against the naive "run immediately".
	trueSignal, err := fairco2.EmbodiedIntensitySignal(full, budget, nil)
	if err != nil {
		log.Fatal(err)
	}
	futureTrue, err := trueSignal.Tail(horizon)
	if err != nil {
		log.Fatal(err)
	}
	cost := func(start int) float64 {
		total := 0.0
		for i := start; i < start+jobSamples; i++ {
			total += jobCores * futureTrue.Values[i] * float64(futureTrue.Step)
		}
		return total
	}
	realized := cost(bestStart)
	immediate := cost(0)
	worstRealized, meanRealized, slots := 0.0, 0.0, 0
	for start := 0; start+jobSamples <= futureTrue.Len(); start += samplesPerHour {
		c := cost(start)
		meanRealized += c
		if c > worstRealized {
			worstRealized = c
		}
		slots++
	}
	meanRealized /= float64(slots)
	fmt.Printf("\nrealized cost at the chosen slot:        %.1f g\n", realized)
	fmt.Printf("realized cost of running immediately:    %.1f g\n", immediate)
	fmt.Printf("realized cost of an average start hour:  %.1f g\n", meanRealized)
	fmt.Printf("realized cost of the worst start hour:   %.1f g\n", worstRealized)
	fmt.Printf("realized saving vs average/worst: %.1f%% / %.1f%%\n",
		(1-realized/meanRealized)*100, (1-realized/worstRealized)*100)
}
