// Peakshave: the §3 peak-pricing insight turned into an operator policy.
// A fleet's embodied carbon scales with the capacity its demand peak
// forces it to buy. Deferring flexible batch VMs with the carbon-aware
// scheduler flattens the peak, shrinks provisioning, and — because
// Temporal Shapley prices peak-time usage highest — cuts the bills of the
// very workloads that moved.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairco2/internal/carbon"
	"fairco2/internal/cluster"
	"fairco2/internal/temporal"
	"fairco2/internal/textplot"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

func main() {
	log.SetFlags(0)

	// A day-long fleet of hour-scale VMs (no week-long tail — those
	// cannot be deferred meaningfully) where half are deferrable batch
	// jobs. Arrivals peak mid-window, so the unshifted demand spikes.
	cfg := cluster.DefaultFleetConfig()
	cfg.VMs = 250
	cfg.Lifetimes = trace.LifetimeConfig{
		ShortFraction: 1.0,
		ShortMean:     2 * units.SecondsPerHour,
		LongMean:      4 * units.SecondsPerHour,
	}
	fleet, err := cluster.RandomFleet(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	deferrable := map[int]bool{}
	for _, vm := range fleet {
		if vm.ID%2 == 0 {
			deferrable[vm.ID] = true
		}
	}

	before, err := cluster.Simulate(fleet, cluster.DefaultNodeSpec(), 300)
	if err != nil {
		log.Fatal(err)
	}
	shift, err := cluster.ShiftDeferrable(fleet, deferrable, cluster.DefaultDeferralPolicy(), 300)
	if err != nil {
		log.Fatal(err)
	}
	after, err := cluster.Simulate(shift.VMs, cluster.DefaultNodeSpec(), 300)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deferred %d of %d VMs (up to 12 h of slack)\n", shift.Deferred, len(fleet))
	fmt.Printf("demand peak:      %6.0f -> %6.0f cores (-%.0f%%)\n",
		shift.PeakBefore, shift.PeakAfter, (1-shift.PeakAfter/shift.PeakBefore)*100)
	fmt.Printf("nodes provisioned: %5d -> %6d\n\n", before.NodesProvisioned, after.NodesProvisioned)

	fmt.Println("demand before:")
	fmt.Printf("  %s\n", textplot.Sparkline(before.Demand.Values, 90))
	fmt.Println("demand after deferral:")
	fmt.Printf("  %s\n\n", textplot.Sparkline(after.Demand.Values, 90))

	// Fleet embodied carbon scales with provisioned nodes; the whole
	// fleet's bill shrinks proportionally.
	srv := carbon.NewReferenceServer()
	billFor := func(res *cluster.Result) float64 {
		window := res.Demand.Duration()
		budget := units.GramsCO2e(float64(res.NodesProvisioned) * srv.EmbodiedRate() * float64(window))
		sig, err := temporal.IntensitySignal(res.Demand, budget,
			temporal.Config{SplitRatios: []int{res.Demand.Len()}})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, vm := range res.VMs {
			usage, err := res.UsageOf(vm.ID)
			if err != nil {
				log.Fatal(err)
			}
			c, err := temporal.AttributeUsage(sig, usage)
			if err != nil {
				log.Fatal(err)
			}
			total += float64(c)
		}
		return total
	}
	b0, b1 := billFor(before), billFor(after)
	fmt.Printf("fleet embodied carbon: %.1f g -> %.1f g (-%.1f%%)\n",
		b0, b1, (1-b1/b0)*100)
	fmt.Println("\nbatch workloads that accepted deferral flattened the peak the")
	fmt.Println("operator must provision for — the embodied saving the paper's")
	fmt.Println("introduction promises for temporally flexible workloads.")
}
