// Vectordb: the paper's §8 case study as a library consumer would run it.
// A FAISS-style vector database serving RAG queries under a 2-second tail
// latency SLO reconfigures itself every five minutes — choosing index
// algorithm (IVF vs HNSW), core allocation, and batch size — in response
// to the live grid carbon intensity and Fair-CO2's embodied carbon
// intensity signal.
package main

import (
	"fmt"
	"log"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/optimize"
	"fairco2/internal/temporal"
	"fairco2/internal/trace"
)

func main() {
	log.SetFlags(0)

	cost, err := optimize.NewCostModel(carbon.NewReferenceServer())
	if err != nil {
		log.Fatal(err)
	}

	// Live embodied intensity: Temporal Shapley over a 30-day Azure-like
	// demand trace, normalized to a mean-1 multiplier.
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		log.Fatal(err)
	}
	intensity, err := temporal.IntensitySignal(demand, 1e7, temporal.Config{SplitRatios: temporal.PaperSplits()})
	if err != nil {
		log.Fatal(err)
	}
	shape, err := optimize.NormalizedEmbodiedShape(intensity)
	if err != nil {
		log.Fatal(err)
	}

	// Live grid intensity: a CAISO-like duck curve.
	ciTrace, err := grid.NewSyntheticCAISO(grid.DefaultCAISOConfig())
	if err != nil {
		log.Fatal(err)
	}

	res, err := optimize.DynamicWeek(cost, grid.Trace{Series: ciTrace}, shape, optimize.DefaultDynamicConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one week of carbon-aware vector-database operation (2 s SLO):")
	fmt.Printf("  static performance-optimal: %.4g gCO2e/query\n", float64(res.StaticCarbonPerQuery))
	fmt.Printf("  dynamically optimized:      %.4g gCO2e/query\n", float64(res.OptimizedCarbonPerQuery))
	fmt.Printf("  carbon saved: %.1f%%  (paper reports 38.4%%)\n\n", res.Savings*100)

	// Show a day of reconfiguration decisions (every 2 hours).
	fmt.Println("  hour  grid-ci  embodied  algo  cores  batch  latency")
	for i := 0; i < 288; i += 24 {
		s := res.Steps[i]
		fmt.Printf("  %4.0f  %7.0f  %8.2f  %-4s  %5d  %5d  %6.2fs\n",
			float64(s.Time)/3600, float64(s.GridCI), s.EmbodiedScale,
			s.Chosen.Algorithm, s.Chosen.Cores, s.Chosen.Batch, float64(s.Chosen.TailLatency))
	}
	fmt.Printf("\n  algorithm switches over the week: %d\n", res.AlgorithmSwitches)
}
