package fairco2_test

// Runnable documentation examples for the public API (shown by go doc and
// verified by go test).

import (
	"fmt"

	"fairco2"
	"fairco2/internal/timeseries"
	"fairco2/internal/workload"
)

// ExampleAttributeSchedule prices a two-workload schedule: both use the
// same core-hours, but one runs at the peak and the Shapley-based methods
// charge it more.
func ExampleAttributeSchedule() {
	sched := &fairco2.Schedule{
		Slices:        2,
		SliceDuration: 3600,
		Workloads: []fairco2.ScheduledWorkload{
			{ID: 0, Cores: 32, Start: 0, Duration: 1}, // peak hour (shares it with w2)
			{ID: 1, Cores: 32, Start: 1, Duration: 1}, // off-peak hour
			{ID: 2, Cores: 64, Start: 0, Duration: 1},
		},
	}
	attr, err := fairco2.AttributeSchedule(fairco2.MethodGroundTruth, sched, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("peak workload: %.0f g, off-peak workload: %.0f g\n", attr[0], attr[1])
	// Output:
	// peak workload: 278 g, off-peak workload: 111 g
}

// ExampleEmbodiedIntensitySignal derives the Temporal Shapley carbon
// intensity signal for a demand curve: the peak sample carries the highest
// price per core-second.
func ExampleEmbodiedIntensitySignal() {
	demand := timeseries.New(0, 3600, []float64{10, 40, 10, 10})
	signal, err := fairco2.EmbodiedIntensitySignal(demand, 700, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, v := range signal.Values {
		fmt.Printf("hour %d: %.5f g per core-second\n", i, v)
	}
	// Output:
	// hour 0: 0.00035 g per core-second
	// hour 1: 0.00460 g per core-second
	// hour 2: 0.00035 g per core-second
	// hour 3: 0.00035 g per core-second
}

// ExampleAttributeColocation compares the baseline and Fair-CO2 bills of
// the paper's motivating pair: NBODY suffers next to CH, and the
// resource-proportional baseline makes the victim pay for it.
func ExampleAttributeColocation() {
	pair := []workload.Name{workload.NBODY, workload.CH}
	for _, method := range []string{fairco2.MethodRUP, fairco2.MethodFairCO2} {
		attr, err := fairco2.AttributeColocation(method, pair, 250, 1)
		if err != nil {
			fmt.Println(err)
			return
		}
		ratio := float64(attr[0].Carbon) / float64(attr[1].Carbon)
		fmt.Printf("%s: NBODY pays %.2fx CH's bill\n", method, ratio)
	}
	// Output:
	// rup: NBODY pays 1.48x CH's bill
	// fair-co2: NBODY pays 1.09x CH's bill
}

// ExampleSCI computes the Software Carbon Intensity baseline score.
func ExampleSCI() {
	report, err := fairco2.SCI(fairco2.SCIInput{
		Energy:          3.6e6, // one kWh in joules
		Intensity:       500,
		Server:          fairco2.ReferenceServer(),
		ReservedCores:   96,
		Reserved:        3600,
		FunctionalUnits: 1000,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("operational: %.0f g, SCI: %.3f g per request\n",
		float64(report.OperationalCarbon), report.SCI)
	// Output:
	// operational: 500 g, SCI: 0.513 g per request
}
