package fairco2

// Throughput benchmarks for the core primitives — the performance budget
// that makes the paper's scalability argument operational: a hyperscaler
// recomputing the live intensity signal every five minutes needs these
// numbers, not just asymptotics.

import (
	"math/rand"
	"testing"

	"fairco2/internal/billing"
	"fairco2/internal/carbon"
	"fairco2/internal/cluster"
	"fairco2/internal/grid"
	"fairco2/internal/shapley"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

// BenchmarkPeakGameClosedForm measures the per-level cost of the Eq. 7
// solver at realistic split widths.
func BenchmarkPeakGameClosedForm(b *testing.B) {
	for _, m := range []int{12, 288, 8640} {
		b.Run(benchName("M", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			peaks := make([]float64, m)
			for i := range peaks {
				peaks[i] = rng.Float64() * 1000
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shapley.PeakGame(peaks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntensitySignalMonth measures the full 30-day, 5-minute signal
// generation — the unit of work a live deployment repeats per refresh.
func BenchmarkIntensitySignalMonth(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := temporal.Config{SplitRatios: temporal.PaperSplits()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.IntensitySignal(demand, 1e7, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntitheticVsPlainSampling is the variance-reduction ablation:
// same budget, lower error for the antithetic estimator on monotone games.
func BenchmarkAntitheticVsPlainSampling(b *testing.B) {
	peaks := make([]float64, 40)
	rng := rand.New(rand.NewSource(7))
	for i := range peaks {
		peaks[i] = rng.Float64() * 100
	}
	game := func(mask uint64) float64 {
		peak := 0.0
		for i := 0; i < len(peaks); i++ {
			if mask&(1<<uint(i)) != 0 && peaks[i] > peak {
				peak = peaks[i]
			}
		}
		return peak
	}
	exact, err := shapley.PeakGame(peaks)
	if err != nil {
		b.Fatal(err)
	}
	mse := func(est []float64) float64 {
		s := 0.0
		for i := range est {
			d := est[i] - exact[i]
			s += d * d
		}
		return s
	}
	b.Run("plain", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			est, err := shapley.MonteCarlo(len(peaks), game, 200, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			total += mse(est)
		}
		b.ReportMetric(total/float64(b.N), "mse")
	})
	b.Run("antithetic", func(b *testing.B) {
		total := 0.0
		for i := 0; i < b.N; i++ {
			est, err := shapley.MonteCarloAntithetic(len(peaks), game, 200, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			total += mse(est)
		}
		b.ReportMetric(total/float64(b.N), "mse")
	})
}

// BenchmarkClusterSimulate measures fleet placement plus telemetry.
func BenchmarkClusterSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	cfg := cluster.DefaultFleetConfig()
	cfg.VMs = 500
	fleet, err := cluster.RandomFleet(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Simulate(fleet, cluster.DefaultNodeSpec(), 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBillingClose measures pricing a 100-tenant month at hourly
// resolution.
func BenchmarkBillingClose(b *testing.B) {
	const samples = 30 * 24
	rng := rand.New(rand.NewSource(10))
	usage := make([]*timeseries.Series, 100)
	for t := range usage {
		s := timeseries.Zeros(0, 3600, samples)
		base := rng.Float64() * 32
		for i := range s.Values {
			s.Values[i] = base * (1 + 0.5*rng.Float64())
		}
		usage[t] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acct, err := billing.NewAccountant(billing.Config{
			Server:  carbon.NewReferenceServer(),
			Grid:    grid.California,
			Step:    3600,
			Samples: samples,
		})
		if err != nil {
			b.Fatal(err)
		}
		for t, u := range usage {
			if err := acct.RecordUsage("tenant-"+itoa(t), u, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := acct.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
