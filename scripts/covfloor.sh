#!/usr/bin/env bash
# covfloor.sh enforces a statement-coverage floor on one package:
#
#   scripts/covfloor.sh <package> <floor-percent> [file-regex]
#   scripts/covfloor.sh ./internal/shapley/ 90
#   scripts/covfloor.sh ./internal/clusterserve/ 90 'membership|commitlog'
#
# Exits non-zero when `go test -coverprofile` reports total coverage
# below the floor. With a file-regex, the floor applies to the aggregate
# statement coverage of just the matching files — so a new subsystem can
# carry a stricter gate than the package it lives in. Every CI coverage
# gate goes through this script so the parsing logic lives in exactly
# one place.
set -euo pipefail

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 <package> <floor-percent> [file-regex]" >&2
    exit 2
fi
pkg=$1
floor=$2
filter=${3:-}

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" "$pkg"
if [ -z "$filter" ]; then
    pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    scope=$pkg
else
    # Aggregate over matching files from the raw profile: each line after
    # the mode header is "file.go:start,end numstmt count".
    pct=$(awk -v re="$filter" '
        NR > 1 {
            file = $1; sub(/:.*/, "", file)
            if (file !~ re) next
            total += $2
            if ($3 > 0) covered += $2
        }
        END {
            if (total == 0) { print "no-match"; exit }
            printf "%.1f", 100 * covered / total
        }' "$profile")
    if [ "$pct" = "no-match" ]; then
        echo "no profiled statements match /${filter}/ in ${pkg}" >&2
        exit 2
    fi
    scope="${pkg} files /${filter}/"
fi
echo "${scope} coverage: ${pct}% (floor ${floor}%)"
awk -v pct="$pct" -v floor="$floor" 'BEGIN { exit !(pct >= floor) }' || {
    echo "coverage ${pct}% is below the ${floor}% floor for ${scope}" >&2
    exit 1
}
