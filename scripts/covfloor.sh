#!/usr/bin/env bash
# covfloor.sh enforces a statement-coverage floor on one package:
#
#   scripts/covfloor.sh <package> <floor-percent>
#   scripts/covfloor.sh ./internal/shapley/ 90
#
# Exits non-zero when `go test -coverprofile` reports total coverage
# below the floor. Every CI coverage gate goes through this script so
# the parsing logic lives in exactly one place.
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <package> <floor-percent>" >&2
    exit 2
fi
pkg=$1
floor=$2

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" "$pkg"
pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "${pkg} coverage: ${pct}% (floor ${floor}%)"
awk -v pct="$pct" -v floor="$floor" 'BEGIN { exit !(pct >= floor) }' || {
    echo "coverage ${pct}% is below the ${floor}% floor for ${pkg}" >&2
    exit 1
}
