// Command benchguard is the CI bench-regression gate. It parses one or
// more `go test -bench` output files, takes the median ns/op per
// benchmark across repeats (-count=N), and compares against a committed
// baseline:
//
//	go test -run '^$' -bench . -benchtime 50x -count 5 ./pkg/ > bench.txt
//	go run scripts/benchguard.go -baseline results/bench_baseline.json bench.txt
//
// The gate fails when any baseline benchmark regresses by more than the
// threshold (default 1.25: +25% ns/op), or disappears from the output.
// Benchmarks present in the output but not the baseline are reported and
// ignored, so adding a benchmark does not break CI until it is baselined.
//
// Re-baselining (after an intentional perf change or a runner change):
//
//	go run scripts/benchguard.go -update -baseline results/bench_baseline.json bench.txt
//
// and commit the result. The baseline records absolute ns/op, so it is
// only meaningful on the machine class that produced it; regenerate it
// from a CI run's uploaded bench output, not from a laptop.
//
// Benchmark names are normalized before comparison so the gate is stable
// across hosts with different core counts: the `-<GOMAXPROCS>` suffix the
// testing package appends is stripped, and a trailing `parallel-<n>`
// component (the convention the repo's benchmarks use to label the
// worker count) collapses to `parallel`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

var (
	gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)
	parallelWorkers  = regexp.MustCompile(`parallel-\d+$`)
)

// normalize makes a benchmark name host-independent (see package doc).
func normalize(name string) string {
	name = gomaxprocsSuffix.ReplaceAllString(name, "")
	return parallelWorkers.ReplaceAllString(name, "parallel")
}

// parseFiles collects ns/op samples per normalized benchmark name.
func parseFiles(paths []string) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: bad ns/op in %q: %w", path, sc.Text(), err)
			}
			name := normalize(m[1])
			samples[name] = append(samples[name], v)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return samples, nil
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "results/bench_baseline.json", "baseline JSON path")
	threshold := flag.Float64("threshold", 1.25, "fail when current/baseline ns/op exceeds this ratio")
	update := flag.Bool("update", false, "rewrite the baseline from the given bench output instead of gating")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchguard [-update] [-baseline file] [-threshold r] <bench-output>...")
		os.Exit(2)
	}

	samples, err := parseFiles(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines found in input")
		os.Exit(1)
	}
	current := make(map[string]float64, len(samples))
	for name, vals := range samples {
		current[name] = median(vals)
	}

	if *update {
		out, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: wrote %d baseline entries to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	baseline := make(map[string]float64)
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("FAIL  %s: in baseline but missing from bench output\n", name)
			failed = true
			continue
		}
		ratio := cur / base
		status := "ok  "
		if ratio > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-60s  %12.0f -> %12.0f ns/op  (x%.2f)\n", status, name, base, cur, ratio)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("new   %s: not in baseline (run -update to pin it)\n", name)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond x%.2f threshold (see FAIL lines); "+
			"if intentional, re-baseline per the header of scripts/benchguard.go\n", *threshold)
		os.Exit(1)
	}
	fmt.Println("benchguard: all benchmarks within threshold")
}
