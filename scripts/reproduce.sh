#!/usr/bin/env bash
# Reproduce every table and figure of the paper, saving console outputs
# and per-trial CSVs under results/. Defaults to the paper's full trial
# counts (about two minutes total on a modern multicore machine); pass
# LIGHT=1 for a quick laptop pass.
set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS=results
mkdir -p "$RESULTS"

TRIALS_DEMAND=10000
TRIALS_COLOC=10000
MAX_WORKLOADS_DEMAND=22
MAX_WORKLOADS_COLOC=100
if [[ "${LIGHT:-0}" == "1" ]]; then
  TRIALS_DEMAND=1000
  TRIALS_COLOC=1000
  MAX_WORKLOADS_DEMAND=14
  MAX_WORKLOADS_COLOC=60
fi

echo "== Table 1 =="
go run ./cmd/fairco2 -table1 | tee "$RESULTS/table1.txt"

echo "== Figure 2: colocation characterization =="
go run ./cmd/colocation-profile -profiles | tee "$RESULTS/figure2.txt"

echo "== Figures 4, 5, 11: signal + forecasting =="
go run ./cmd/forecast-eval -signal | tee "$RESULTS/figures_4_5_11.txt"

echo "== Figure 7: dynamic-demand Monte Carlo ($TRIALS_DEMAND trials) =="
go run ./cmd/mc-demand -trials "$TRIALS_DEMAND" -max-workloads "$MAX_WORKLOADS_DEMAND" \
  -out "$RESULTS/figure7_trials.csv" | tee "$RESULTS/figure7.txt"

echo "== Figures 8-9: colocation Monte Carlo ($TRIALS_COLOC trials) =="
go run ./cmd/mc-colocation -trials "$TRIALS_COLOC" -max-workloads "$MAX_WORKLOADS_COLOC" \
  -per-workload -out "$RESULTS/figure8_trials.csv" | tee "$RESULTS/figures_8_9.txt"

echo "== Figures 10, 12, 13: workload optimization =="
go run ./cmd/optimize | tee "$RESULTS/figures_10_12_13.txt"

echo "== Fairness axioms =="
go run ./cmd/fairco2 -axioms | tee "$RESULTS/axioms.txt"

echo "== End-to-end cluster pipeline =="
go run ./cmd/cluster-sim | tee "$RESULTS/cluster_sim.txt"

echo "== Incremental delta attribution speedup =="
{
  go test -run '^$' -bench '^BenchmarkDeltaApply$' -benchtime 100x -count 1 ./internal/shapley/
  go test -run '^$' -bench '^BenchmarkTemporalDelta$' -benchtime 100x -count 1 ./internal/temporal/
} | tee "$RESULTS/delta_bench_raw.txt"
awk '
  $1 ~ /^BenchmarkDeltaApply\/delta-1p(-[0-9]+)?$/            { shd = $3 }
  $1 ~ /^BenchmarkDeltaApply\/scratch-build-table(-[0-9]+)?$/ { shs = $3 }
  $1 ~ /^BenchmarkDeltaApply\/scratch-incremental(-[0-9]+)?$/ { shi = $3 }
  $1 ~ /^BenchmarkTemporalDelta\/delta-reshape(-[0-9]+)?$/    { td = $3 }
  $1 ~ /^BenchmarkTemporalDelta\/fresh-rebuild(-[0-9]+)?$/    { tf = $3 }
  END {
    printf "shapley delta apply (1-player change, n=16): %.0f ns vs scratch BuildTableParallel %.0f ns -> %.1fx\n", shd, shs, shs/shd
    printf "shapley delta apply vs scratch incremental build %.0f ns -> %.1fx\n", shi, shi/shd
    printf "temporal delta reshape (1 of 10 periods): %.0f ns vs fresh IntensitySignal %.0f ns -> %.1fx\n", td, tf, tf/td
  }
' "$RESULTS/delta_bench_raw.txt" | tee "$RESULTS/delta_speedup.txt"

echo "== Streaming attribution replay (windowed temporal Shapley) =="
go run ./cmd/attribution-server -stream-once \
  -stream-scenario 'burst:21600,7200,1.8;outage:50400,3600,5000' \
  -stream-disorder 0.05 -stream-max-defer 12 | tee "$RESULTS/stream_replay.txt"

echo "== Cluster scaling: 1 -> 4 attribution replicas =="
# Throughput is admission capacity over a fixed synthetic service time,
# so the 1->4 replica curve reproduces on any host, single-core included.
go run ./cmd/cluster-load -replicas 1,2,4 | tee "$RESULTS/cluster_scaling.txt"

echo "== Self-healing cluster chaos: kill/flap/restart under load =="
# Kills one replica mid-load, latency-spikes another, restarts the victim,
# and requires zero lost requests beyond shed-and-retry plus post-recovery
# answers bitwise-identical to a single-process oracle.
go run ./cmd/cluster-chaos -duration 3s | tee "$RESULTS/cluster_chaos.txt"

echo "== Multi-region placement: cross-region sweep vs stay-home baseline =="
# Discovers a three-provider, eight-region fleet from the seed, prices
# every region's carbon per core-second (regional grid mix x PUE x
# embodied amortization), and prints the Pareto front of migrations vs
# total fleet carbon. Deterministic in the seed.
go run ./cmd/optimize -placement -region-seed 1 | tee "$RESULTS/multiregion_placement.txt"

echo
echo "All outputs are under $RESULTS/."
