package fairco2

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// closed-form peak-game solver versus naive subset enumeration, the
// hierarchical split schedule, the permutation-sample budget of the
// colocation ground truth, and the historical sampling rate of the
// interference profiles.

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/colocation"
	"fairco2/internal/livesignal"
	"fairco2/internal/montecarlo"
	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/temporal"
	"fairco2/internal/trace"
	"fairco2/internal/workload"
)

// BenchmarkAblationClosedFormVsSubset compares the two peak-game solvers
// (Eq. 7's airport form versus Eq. 4's 2^M enumeration) at the level
// widths Temporal Shapley actually uses.
func BenchmarkAblationClosedFormVsSubset(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{8, 12, 16, 20} {
		peaks := make([]float64, m)
		for i := range peaks {
			peaks[i] = rng.Float64() * 1000
		}
		b.Run("closed-form/M="+itoa(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.PeakGame(peaks); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("naive-subset/M="+itoa(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.PeakGameNaive(peaks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSplitRatios compares hierarchical split schedules for
// the 30-day, 5-minute signal: the paper's 10*9*8*12, a flatter two-level
// schedule, and a steeper five-level one. All conserve the budget; cost
// and signal granularity trade off.
func BenchmarkAblationSplitRatios(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	schedules := map[string][]int{
		"paper-10x9x8x12":        temporal.PaperSplits(),
		"two-level-30x288":       {30, 288},
		"five-level-10x3x3x8x12": {10, 3, 3, 8, 12},
		"single-level-8640":      {8640},
	}
	for name, splits := range schedules {
		b.Run(name, func(b *testing.B) {
			cfg := temporal.Config{SplitRatios: splits}
			for i := 0; i < b.N; i++ {
				if _, err := temporal.IntensitySignal(demand, 1e7, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(temporal.ClosedFormOps(splits), "model-ops")
		})
	}
}

// BenchmarkAblationPermutationSamples measures how the sampled colocation
// ground truth converges to the exact one as the permutation budget grows.
func BenchmarkAblationPermutationSamples(b *testing.B) {
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		b.Fatal(err)
	}
	env, err := colocation.NewEnvironment(250, char)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	scen, err := colocation.NewRandomScenario(env, 6, rng)
	if err != nil {
		b.Fatal(err)
	}
	exact, err := colocation.GroundTruth(scen, colocation.GroundTruthConfig{ExactThreshold: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{100, 500, 2000, 8000} {
		b.Run("samples="+itoa(samples), func(b *testing.B) {
			var maxErr float64
			for i := 0; i < b.N; i++ {
				est, err := colocation.GroundTruth(scen, colocation.GroundTruthConfig{
					ExactThreshold: 0, Samples: samples, Rng: rand.New(rand.NewSource(int64(i))),
				})
				if err != nil {
					b.Fatal(err)
				}
				maxErr = 0
				for k := range exact {
					if e := math.Abs(est[k]-exact[k]) / exact[k]; e > maxErr {
						maxErr = e
					}
				}
			}
			b.ReportMetric(maxErr*100, "max-error-%")
		})
	}
}

// BenchmarkAblationHistoricalSamplingRate re-runs the colocation Monte
// Carlo pinned to a fixed historical sampling rate — Figure 8b as an
// ablation: even one historical sample recovers most of Fair-CO2's
// fairness.
func BenchmarkAblationHistoricalSamplingRate(b *testing.B) {
	for _, k := range []int{1, 4, 15} {
		b.Run("partners="+itoa(k), func(b *testing.B) {
			cfg := montecarlo.DefaultColocationConfig()
			cfg.Trials = 60
			cfg.GroundTruthSamples = 600
			cfg.MinSamples, cfg.MaxSamples = k, k
			var result *montecarlo.ColocationResult
			var err error
			for i := 0; i < b.N; i++ {
				result, err = montecarlo.RunColocation(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(result.Overall(montecarlo.MethodFairCO2).Mean*100, "fairco2-dev-%")
			b.ReportMetric(result.Overall(montecarlo.MethodRUP).Mean*100, "rup-dev-%")
		})
	}
}

// BenchmarkAblationIncrementalVsDirectTable compares building the
// coalition table with incremental demand updates versus recomputing the
// peak from scratch per coalition — the optimization that keeps the exact
// ground truth usable at 10,000-trial scale.
func BenchmarkAblationIncrementalVsDirectTable(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := schedule.DefaultGeneratorConfig()
	cfg.MaxWorkloads = 12
	cfg.MinSlices, cfg.MaxSlices = 9, 9
	var s *schedule.Schedule
	for {
		var err error
		s, err = schedule.Generate(cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Workloads) == 12 {
			break
		}
	}
	n := len(s.Workloads)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			demand := make([]float64, s.Slices)
			_, err := shapley.BuildTableIncremental(n,
				func(w int) { addDemand(demand, s, w, 1) },
				func(w int) { addDemand(demand, s, w, -1) },
				func() float64 { return maxOf(demand) })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shapley.BuildTable(n, s.PeakOfSubset); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationForecastHarmonics varies the forecaster structure,
// reporting live-signal accuracy per harmonic budget.
func BenchmarkAblationForecastHarmonics(b *testing.B) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []int{1, 2, 4, 8} {
		b.Run("daily-harmonics="+itoa(h), func(b *testing.B) {
			var mape float64
			for i := 0; i < b.N; i++ {
				cfg := livesignal.DefaultConfig()
				cfg.Forecast.DailyHarmonics = h
				res, err := livesignal.Evaluate(demand, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mape = res.IntensityMAPE
			}
			b.ReportMetric(mape, "intensity-mape-%")
		})
	}
}

// BenchmarkAblationNodeCapacity extends the colocation fairness comparison
// beyond the paper's pairwise nodes: at every packing density, Fair-CO2's
// history-based attribution stays several times closer to the grouped
// ground truth than RUP.
func BenchmarkAblationNodeCapacity(b *testing.B) {
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		b.Fatal(err)
	}
	env, err := colocation.NewEnvironment(250, char)
	if err != nil {
		b.Fatal(err)
	}
	for _, capacity := range []int{2, 3, 4} {
		b.Run("capacity="+itoa(capacity), func(b *testing.B) {
			var rupDev, fairDev float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i) + 1))
				rupDev, fairDev = 0, 0
				count := 0
				for trial := 0; trial < 15; trial++ {
					s, err := colocation.NewRandomScenario(env, 6, rng)
					if err != nil {
						b.Fatal(err)
					}
					gt, err := colocation.GroundTruthGrouped(s, capacity, colocation.GroundTruthConfig{ExactThreshold: 7})
					if err != nil {
						b.Fatal(err)
					}
					rup, err := colocation.RUPGrouped(s, capacity)
					if err != nil {
						b.Fatal(err)
					}
					factors, err := colocation.GroupedFactors(s, capacity, 600, rng)
					if err != nil {
						b.Fatal(err)
					}
					fair, err := colocation.FairCO2Grouped(s, capacity, factors)
					if err != nil {
						b.Fatal(err)
					}
					for k := range gt {
						rupDev += math.Abs(rup[k]-gt[k]) / gt[k]
						fairDev += math.Abs(fair[k]-gt[k]) / gt[k]
						count++
					}
				}
				rupDev /= float64(count)
				fairDev /= float64(count)
			}
			b.ReportMetric(rupDev*100, "rup-dev-%")
			b.ReportMetric(fairDev*100, "fairco2-dev-%")
		})
	}
}

// BenchmarkAblationInterferenceStrength rescales the interference model's
// pressure vectors and re-runs the colocation fairness comparison: RUP's
// unfairness grows with contention strength while Fair-CO2 stays flat —
// the stronger the interference, the more the paper's contribution
// matters.
func BenchmarkAblationInterferenceStrength(b *testing.B) {
	for _, scale := range []float64{0.5, 1.0, 2.0} {
		name := "pressure-x0.5"
		if scale == 1 {
			name = "pressure-x1.0"
		} else if scale == 2 {
			name = "pressure-x2.0"
		}
		b.Run(name, func(b *testing.B) {
			suite := workload.Suite()
			for _, p := range suite {
				for r := range p.Pressure {
					p.Pressure[r] *= scale
				}
			}
			char, err := workload.Characterize(suite)
			if err != nil {
				b.Fatal(err)
			}
			env, err := colocation.NewEnvironment(250, char)
			if err != nil {
				b.Fatal(err)
			}
			var rupDev, fairDev float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i) + 1))
				rupDev, fairDev = 0, 0
				count := 0
				for trial := 0; trial < 20; trial++ {
					s, err := colocation.NewRandomScenario(env, 6, rng)
					if err != nil {
						b.Fatal(err)
					}
					gt, err := colocation.GroundTruth(s, colocation.GroundTruthConfig{ExactThreshold: 7})
					if err != nil {
						b.Fatal(err)
					}
					rup, err := colocation.RUP(s)
					if err != nil {
						b.Fatal(err)
					}
					factors, err := colocation.FullHistoryFactors(s)
					if err != nil {
						b.Fatal(err)
					}
					fair, err := colocation.FairCO2(s, factors)
					if err != nil {
						b.Fatal(err)
					}
					for k := range gt {
						rupDev += math.Abs(rup[k]-gt[k]) / gt[k]
						fairDev += math.Abs(fair[k]-gt[k]) / gt[k]
						count++
					}
				}
				rupDev /= float64(count)
				fairDev /= float64(count)
			}
			b.ReportMetric(rupDev*100, "rup-dev-%")
			b.ReportMetric(fairDev*100, "fairco2-dev-%")
		})
	}
}

func addDemand(demand []float64, s *schedule.Schedule, w int, sign float64) {
	wl := s.Workloads[w]
	for t := wl.Start; t < wl.End(); t++ {
		demand[t] += sign * float64(wl.Cores)
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
