// Package timeseries implements the uniformly-sampled time series type used
// for datacenter resource demand, power draw, and carbon-intensity signals.
// A Series is a start time (seconds from the experiment epoch), a fixed
// sampling step, and a slice of values; each value covers the half-open
// interval [t, t+step).
package timeseries

import (
	"errors"
	"fmt"
	"math"

	"fairco2/internal/units"
)

// Series is a uniformly-sampled time series.
type Series struct {
	Start  units.Seconds // timestamp of the first sample
	Step   units.Seconds // sampling interval, > 0
	Values []float64
}

// New creates a series with the given start, step and values. It panics when
// step <= 0, which is a programming error.
func New(start, step units.Seconds, values []float64) *Series {
	if step <= 0 {
		panic("timeseries: step must be positive")
	}
	return &Series{Start: start, Step: step, Values: values}
}

// Zeros creates a zero-valued series of n samples.
func Zeros(start, step units.Seconds, n int) *Series {
	return New(start, step, make([]float64, n))
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the timestamp one step past the last sample.
func (s *Series) End() units.Seconds {
	return s.Start + units.Seconds(float64(s.Step)*float64(len(s.Values)))
}

// Duration returns the total covered duration.
func (s *Series) Duration() units.Seconds { return s.End() - s.Start }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) units.Seconds {
	return s.Start + units.Seconds(float64(s.Step)*float64(i))
}

// IndexOf returns the sample index covering time t, clamped to the valid
// range, and whether t was inside the series.
func (s *Series) IndexOf(t units.Seconds) (int, bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	idx := int(math.Floor(float64(t-s.Start) / float64(s.Step)))
	inside := idx >= 0 && idx < len(s.Values)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.Values) {
		idx = len(s.Values) - 1
	}
	return idx, inside
}

// At returns the value covering time t, clamping outside the range to the
// first or last sample. An empty series yields 0.
func (s *Series) At(t units.Seconds) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	idx, _ := s.IndexOf(t)
	return s.Values[idx]
}

// Interp returns the piecewise-linear interpolation of the series at time
// t, treating each value as the sample at its interval midpoint. Between
// two adjacent midpoints the result moves monotonically from one value to
// the other; outside the first and last midpoints it clamps, matching At's
// boundary behaviour. An empty series yields 0.
func (s *Series) Interp(t units.Seconds) float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	// Position in units of steps from the first midpoint.
	x := (float64(t-s.Start) - float64(s.Step)/2) / float64(s.Step)
	if x <= 0 {
		return s.Values[0]
	}
	if x >= float64(n-1) {
		return s.Values[n-1]
	}
	i := int(math.Floor(x))
	frac := x - float64(i)
	return s.Values[i] + (s.Values[i+1]-s.Values[i])*frac
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	return New(s.Start, s.Step, append([]float64(nil), s.Values...))
}

// Peak returns the maximum value, or 0 for an empty series. Datacenter
// demand is non-negative, so 0 is the natural identity.
func (s *Series) Peak() float64 {
	peak := 0.0
	for _, v := range s.Values {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// PeakBetween returns the maximum value over samples covering [from, to).
func (s *Series) PeakBetween(from, to units.Seconds) float64 {
	peak := 0.0
	for i, v := range s.Values {
		t := s.TimeAt(i)
		if t+s.Step <= from || t >= to {
			continue
		}
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Integral returns the time integral of the series (value x seconds), i.e.
// resource-time when values are resource quantities.
func (s *Series) Integral() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum * float64(s.Step)
}

// IntegralBetween returns the time integral over samples covering [from, to).
// Partial overlap of the first and last samples is accounted for exactly.
func (s *Series) IntegralBetween(from, to units.Seconds) float64 {
	sum := 0.0
	for i, v := range s.Values {
		t0 := s.TimeAt(i)
		t1 := t0 + s.Step
		lo, hi := t0, t1
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		if hi > lo {
			sum += v * float64(hi-lo)
		}
	}
	return sum
}

// Mean returns the arithmetic mean of the values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Slice returns the sub-series covering sample indices [i, j).
func (s *Series) Slice(i, j int) (*Series, error) {
	if i < 0 || j > len(s.Values) || i > j {
		return nil, fmt.Errorf("timeseries: slice [%d, %d) out of range for %d samples", i, j, len(s.Values))
	}
	return New(s.TimeAt(i), s.Step, append([]float64(nil), s.Values[i:j]...)), nil
}

// Head returns the first n samples as a new series.
func (s *Series) Head(n int) (*Series, error) { return s.Slice(0, n) }

// Tail returns the last n samples as a new series.
func (s *Series) Tail(n int) (*Series, error) { return s.Slice(len(s.Values)-n, len(s.Values)) }

// Downsample aggregates groups of factor consecutive samples into one using
// agg ("mean", "max" or "sum"). The length must be divisible by factor.
func (s *Series) Downsample(factor int, agg Aggregation) (*Series, error) {
	if factor < 1 {
		return nil, errors.New("timeseries: downsample factor must be >= 1")
	}
	if len(s.Values)%factor != 0 {
		return nil, fmt.Errorf("timeseries: length %d not divisible by factor %d", len(s.Values), factor)
	}
	n := len(s.Values) / factor
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		chunk := s.Values[i*factor : (i+1)*factor]
		switch agg {
		case AggMean:
			sum := 0.0
			for _, v := range chunk {
				sum += v
			}
			out[i] = sum / float64(factor)
		case AggMax:
			m := chunk[0]
			for _, v := range chunk[1:] {
				if v > m {
					m = v
				}
			}
			out[i] = m
		case AggSum:
			sum := 0.0
			for _, v := range chunk {
				sum += v
			}
			out[i] = sum
		default:
			return nil, fmt.Errorf("timeseries: unknown aggregation %q", agg)
		}
	}
	return New(s.Start, units.Seconds(float64(s.Step)*float64(factor)), out), nil
}

// Aggregation selects how Downsample combines samples.
type Aggregation string

// Supported aggregations.
const (
	AggMean Aggregation = "mean"
	AggMax  Aggregation = "max"
	AggSum  Aggregation = "sum"
)

// Add returns a new series s + o. The two series must be aligned (same
// start, step, and length).
func (s *Series) Add(o *Series) (*Series, error) {
	if err := s.checkAligned(o); err != nil {
		return nil, err
	}
	out := s.Clone()
	for i, v := range o.Values {
		out.Values[i] += v
	}
	return out, nil
}

// Scale returns a new series with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

func (s *Series) checkAligned(o *Series) error {
	if s.Start != o.Start || s.Step != o.Step || len(s.Values) != len(o.Values) {
		return fmt.Errorf("timeseries: series not aligned (start %v/%v step %v/%v len %d/%d)",
			s.Start, o.Start, s.Step, o.Step, len(s.Values), len(o.Values))
	}
	return nil
}
