package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fairco2/internal/units"
)

// WriteCSV writes the series as "timestamp_seconds,value" rows with a
// header, compatible with the paper artifact's azure-time-series.csv shape.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp_seconds", "value"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(float64(s.TimeAt(i)), 'f', -1, 64),
			strconv.FormatFloat(v, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series written by WriteCSV. The sampling step is inferred
// from the first two rows and must be uniform.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeseries: reading csv: %w", err)
	}
	if len(records) < 3 {
		return nil, fmt.Errorf("timeseries: csv needs a header and at least two rows, got %d records", len(records))
	}
	rows := records[1:]
	times := make([]float64, len(rows))
	values := make([]float64, len(rows))
	for i, rec := range rows {
		if len(rec) != 2 {
			return nil, fmt.Errorf("timeseries: row %d has %d fields, want 2", i+2, len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d timestamp: %w", i+2, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d value: %w", i+2, err)
		}
		times[i], values[i] = t, v
	}
	step := times[1] - times[0]
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-increasing timestamps (step %v)", step)
	}
	const tol = 1e-6
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d < step-tol || d > step+tol {
			return nil, fmt.Errorf("timeseries: non-uniform step at row %d (%v vs %v)", i+2, d, step)
		}
	}
	return New(units.Seconds(times[0]), units.Seconds(step), values), nil
}
