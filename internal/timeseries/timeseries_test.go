package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestBasics(t *testing.T) {
	s := New(100, 10, []float64{1, 2, 3})
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.End() != 130 {
		t.Errorf("End = %v", s.End())
	}
	if s.Duration() != 30 {
		t.Errorf("Duration = %v", s.Duration())
	}
	if s.TimeAt(2) != 120 {
		t.Errorf("TimeAt(2) = %v", s.TimeAt(2))
	}
}

func TestNewPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for step <= 0")
		}
	}()
	New(0, 0, nil)
}

func TestIndexOfAndAt(t *testing.T) {
	s := New(100, 10, []float64{1, 2, 3})
	idx, in := s.IndexOf(105)
	if idx != 0 || !in {
		t.Errorf("IndexOf(105) = %d,%v", idx, in)
	}
	idx, in = s.IndexOf(120)
	if idx != 2 || !in {
		t.Errorf("IndexOf(120) = %d,%v", idx, in)
	}
	idx, in = s.IndexOf(99)
	if idx != 0 || in {
		t.Errorf("IndexOf(99) = %d,%v, want clamp to 0, outside", idx, in)
	}
	idx, in = s.IndexOf(1e9)
	if idx != 2 || in {
		t.Errorf("IndexOf(big) = %d,%v, want clamp to 2, outside", idx, in)
	}
	if s.At(115) != 2 {
		t.Errorf("At(115) = %v", s.At(115))
	}
	if s.At(-5) != 1 || s.At(1e9) != 3 {
		t.Error("At should clamp out-of-range times")
	}
	empty := Zeros(0, 1, 0)
	if empty.At(5) != 0 {
		t.Error("At on empty series should be 0")
	}
	if _, in := empty.IndexOf(0); in {
		t.Error("IndexOf on empty series should report outside")
	}
}

func TestPeakAndIntegral(t *testing.T) {
	s := New(0, 5, []float64{2, 8, 4, 8, 1})
	approx(t, s.Peak(), 8, 0, "Peak")
	approx(t, s.Integral(), 23*5, 1e-12, "Integral")
	approx(t, s.Mean(), 23.0/5, 1e-12, "Mean")
	approx(t, s.PeakBetween(0, 5), 2, 0, "PeakBetween first")
	approx(t, s.PeakBetween(10, 20), 8, 0, "PeakBetween mid")
	approx(t, s.PeakBetween(20, 25), 1, 0, "PeakBetween last")
	approx(t, s.PeakBetween(100, 200), 0, 0, "PeakBetween outside")
}

func TestIntegralBetweenPartialOverlap(t *testing.T) {
	s := New(0, 10, []float64{3, 5})
	// [5, 15) covers half of sample 0 and half of sample 1.
	approx(t, s.IntegralBetween(5, 15), 3*5+5*5, 1e-12, "IntegralBetween")
	approx(t, s.IntegralBetween(0, 20), s.Integral(), 1e-12, "full range")
	approx(t, s.IntegralBetween(-10, 0), 0, 0, "before range")
}

func TestSliceHeadTail(t *testing.T) {
	s := New(0, 2, []float64{0, 1, 2, 3, 4})
	mid, err := s.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Start != 2 || mid.Len() != 3 || mid.Values[0] != 1 {
		t.Errorf("Slice = %+v", mid)
	}
	// Mutating the slice must not affect the parent.
	mid.Values[0] = 99
	if s.Values[1] == 99 {
		t.Error("Slice aliases parent storage")
	}
	h, err := s.Head(2)
	if err != nil || h.Len() != 2 || h.Values[1] != 1 {
		t.Errorf("Head = %+v err=%v", h, err)
	}
	tl, err := s.Tail(2)
	if err != nil || tl.Len() != 2 || tl.Values[0] != 3 || tl.Start != 6 {
		t.Errorf("Tail = %+v err=%v", tl, err)
	}
	if _, err := s.Slice(3, 2); err == nil {
		t.Error("expected error for inverted slice")
	}
	if _, err := s.Slice(0, 99); err == nil {
		t.Error("expected error for out-of-range slice")
	}
}

func TestDownsample(t *testing.T) {
	s := New(0, 1, []float64{1, 3, 2, 6, 5, 7})
	mean, err := s.Downsample(2, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := []float64{2, 4, 6}
	for i := range wantMean {
		approx(t, mean.Values[i], wantMean[i], 1e-12, "mean downsample")
	}
	if mean.Step != 2 {
		t.Errorf("Step = %v, want 2", mean.Step)
	}
	max, err := s.Downsample(3, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if max.Values[0] != 3 || max.Values[1] != 7 {
		t.Errorf("max downsample = %v", max.Values)
	}
	sum, err := s.Downsample(6, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum.Values[0], 24, 1e-12, "sum downsample")

	if _, err := s.Downsample(4, AggMean); err == nil {
		t.Error("expected error for non-divisible factor")
	}
	if _, err := s.Downsample(0, AggMean); err == nil {
		t.Error("expected error for factor 0")
	}
	if _, err := s.Downsample(2, "median"); err == nil {
		t.Error("expected error for unknown aggregation")
	}
}

func TestDownsampleMaxPreservesPeak(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Abs(v))
			}
		}
		for len(vals)%4 != 0 {
			vals = append(vals, 0)
		}
		if len(vals) == 0 {
			return true
		}
		s := New(0, 1, vals)
		d, err := s.Downsample(4, AggMax)
		if err != nil {
			return false
		}
		return d.Peak() == s.Peak()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddScale(t *testing.T) {
	a := New(0, 1, []float64{1, 2})
	b := New(0, 1, []float64{10, 20})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 11 || sum.Values[1] != 22 {
		t.Errorf("Add = %v", sum.Values)
	}
	if a.Values[0] != 1 {
		t.Error("Add mutated receiver")
	}
	sc := a.Scale(3)
	if sc.Values[1] != 6 || a.Values[1] != 2 {
		t.Errorf("Scale = %v", sc.Values)
	}
	mis := New(5, 1, []float64{1, 2})
	if _, err := a.Add(mis); err == nil {
		t.Error("expected alignment error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := New(300, 300, []float64{1.5, 2.25, 3})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != s.Start || got.Step != s.Step || got.Len() != s.Len() {
		t.Fatalf("round trip changed shape: %+v", got)
	}
	for i := range s.Values {
		approx(t, got.Values[i], s.Values[i], 0, "value")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":     "timestamp_seconds,value\n0,1\n",
		"bad timestamp": "timestamp_seconds,value\nx,1\n10,2\n",
		"bad value":     "timestamp_seconds,value\n0,x\n10,2\n",
		"non-uniform":   "timestamp_seconds,value\n0,1\n10,2\n25,3\n",
		"non-positive":  "timestamp_seconds,value\n10,1\n10,2\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUnitsIntegration(t *testing.T) {
	// One day of 5-minute samples: 288 values.
	s := Zeros(0, 5*60, 288)
	if s.Duration() != units.Seconds(units.SecondsPerDay) {
		t.Errorf("Duration = %v, want 1 day", s.Duration())
	}
}
