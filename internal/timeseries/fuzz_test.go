package timeseries

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures the trace parser never panics and that everything it
// accepts round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp_seconds,value\n0,1\n300,2\n600,3\n")
	f.Add("timestamp_seconds,value\n0,1.5\n1,2.5\n")
	f.Add("garbage")
	f.Add("")
	f.Add("timestamp_seconds,value\n0,1\n300,2\n601,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted series failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != s.Len() || back.Start != s.Start || back.Step != s.Step {
			t.Fatal("round trip changed shape")
		}
	})
}
