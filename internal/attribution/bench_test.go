package attribution

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fairco2/internal/schedule"
)

// Pinned benchmarks for the attribution hot path, consumed by the CI
// bench-regression gate (scripts/benchguard.go): the exact ground truth at
// a Shapley-hard workload count, serial vs parallel, and the paper's
// temporal method. Keep the schedules deterministic — the gate compares
// medians against results/bench_baseline.json, so a drifting input would
// read as a regression.

// benchSchedule generates the gate's fixed workload mix: 16 workloads is
// large enough that coalition enumeration (2^16 subsets) dominates.
func benchSchedule(b *testing.B) *schedule.Schedule {
	b.Helper()
	cfg := schedule.DefaultGeneratorConfig()
	cfg.MinSlices, cfg.MaxSlices = 8, 8
	cfg.MaxWorkloads = 16
	cfg.MaxConcurrent = 5
	s, err := schedule.Generate(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkGroundTruthAttribute(b *testing.B) {
	s := benchSchedule(b)
	const budget = 1e6
	b.Run("serial", func(b *testing.B) {
		m := GroundTruth{Parallelism: 1}
		for i := 0; i < b.N; i++ {
			if _, err := m.Attribute(s, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		m := GroundTruth{Parallelism: 0}
		for i := 0; i < b.N; i++ {
			if _, err := m.Attribute(s, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTemporalShapleyAttribute(b *testing.B) {
	s := benchSchedule(b)
	const budget = 1e6
	b.Run("serial", func(b *testing.B) {
		m := TemporalShapley{Parallelism: 1}
		for i := 0; i < b.N; i++ {
			if _, err := m.Attribute(s, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		m := TemporalShapley{Parallelism: 0}
		for i := 0; i < b.N; i++ {
			if _, err := m.Attribute(s, budget); err != nil {
				b.Fatal(err)
			}
		}
	})
}
