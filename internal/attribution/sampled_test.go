package attribution

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampledShapleyConvergesToGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		s := randomSchedule(t, rng)
		gt, err := GroundTruth{}.Attribute(s, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		est, err := SampledShapley{Samples: 20000, Seed: int64(trial)}.Attribute(s, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt {
			if gt[i] == 0 {
				continue
			}
			if rel := math.Abs(est[i]-gt[i]) / (gt[i] + 1e4); rel > 0.08 {
				t.Errorf("trial %d workload %d: sampled %v vs exact %v", trial, i, est[i], gt[i])
			}
		}
	}
}

func TestSampledShapleyConservesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randomSchedule(t, rng)
	attr, err := SampledShapley{Samples: 50, Seed: 1}.Attribute(s, 777)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum(attr), 777, 1e-6, "budget conservation")
}

func TestSampledShapleyDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randomSchedule(t, rng)
	a, err := SampledShapley{Samples: 100, Seed: 5}.Attribute(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledShapley{Samples: 100, Seed: 5}.Attribute(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the estimate")
		}
	}
}

func TestSampledShapleyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := randomSchedule(t, rng)
	if _, err := (SampledShapley{Samples: 0}).Attribute(s, 1); err == nil {
		t.Error("zero samples")
	}
	if _, err := (SampledShapley{Samples: 10}).Attribute(nil, 1); err == nil {
		t.Error("nil schedule")
	}
	if _, err := (SampledShapley{Samples: 10}).Attribute(s, -1); err == nil {
		t.Error("negative budget")
	}
	if (SampledShapley{}).Name() != "sampled-shapley" {
		t.Error("name")
	}
}
