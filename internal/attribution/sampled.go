package attribution

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/units"
)

// SampledShapley estimates the ground-truth Shapley attribution by
// permutation sampling instead of exact coalition enumeration. It is an
// extension beyond the paper's methods: a tunable middle ground between
// the exact ground truth (O(2^n), exact) and Temporal Shapley (polynomial,
// approximate) — useful when schedules exceed the exact method's player
// limit but per-workload Shapley semantics are still wanted.
type SampledShapley struct {
	// Samples is the number of random arrival orders averaged (more
	// samples, lower variance; the estimator is unbiased).
	Samples int
	// Seed makes the estimate reproducible.
	Seed int64
}

// Name implements Method.
func (m SampledShapley) Name() string { return "sampled-shapley" }

// Attribute implements Method.
func (m SampledShapley) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(m.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	if m.Samples < 1 {
		return nil, errors.New("attribution: sampled shapley needs at least one sample")
	}
	n := len(s.Workloads)
	if n > 63 {
		return nil, fmt.Errorf("attribution: sampled shapley supports at most 63 workloads, got %d", n)
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Incremental state: the summed demand curve of the growing
	// coalition. Along one permutation each workload is added once, so a
	// sample costs O(n * slices).
	demand := make([]float64, s.Slices)
	marginals := func(perm []int, out []float64) {
		for i := range demand {
			demand[i] = 0
		}
		prevPeak := 0.0
		for _, w := range perm {
			wl := s.Workloads[w]
			for t := wl.Start; t < wl.End(); t++ {
				demand[t] += float64(wl.Cores)
			}
			peak := 0.0
			for _, d := range demand {
				if d > peak {
					peak = d
				}
			}
			out[w] = peak - prevPeak
			prevPeak = peak
		}
	}
	phi, err := shapley.SampledOrdered(n, marginals, m.Samples, rng)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range phi {
		total += v
	}
	if total <= 0 {
		return nil, errors.New("attribution: schedule has zero peak demand")
	}
	attr := make([]float64, n)
	for i, v := range phi {
		attr[i] = v / total * float64(budget)
	}
	return attr, nil
}
