package attribution

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/units"
)

// SampledShapley estimates the ground-truth Shapley attribution by
// permutation sampling instead of exact coalition enumeration. It is an
// extension beyond the paper's methods: a tunable middle ground between
// the exact ground truth (O(2^n), exact) and Temporal Shapley (polynomial,
// approximate) — useful when schedules exceed the exact method's player
// limit but per-workload Shapley semantics are still wanted.
type SampledShapley struct {
	// Samples is the number of random arrival orders averaged (more
	// samples, lower variance; the estimator is unbiased).
	Samples int
	// Seed makes the estimate reproducible.
	Seed int64
	// Parallelism shards the samples across workers. 0 or 1 keeps the
	// serial single-stream estimator (reproducible across machines);
	// n > 1 uses n workers, each running the serial core on its shard
	// with an independently derived seed — deterministic for a fixed
	// (Seed, Parallelism) pair but a different (equally unbiased)
	// estimate than the serial stream. Negative means GOMAXPROCS.
	Parallelism int
}

// Name implements Method.
func (m SampledShapley) Name() string { return "sampled-shapley" }

// Attribute implements Method.
func (m SampledShapley) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(m.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	if m.Samples < 1 {
		return nil, errors.New("attribution: sampled shapley needs at least one sample")
	}
	n := len(s.Workloads)
	if n > 63 {
		return nil, fmt.Errorf("attribution: sampled shapley supports at most 63 workloads, got %d", n)
	}
	// Incremental state: the summed demand curve of the growing
	// coalition. Along one permutation each workload is added once, so a
	// sample costs O(n * slices). The scratch buffer is per-closure, so
	// the parallel path hands each worker its own instance.
	newMarginals := func() shapley.OrderedMarginals {
		demand := make([]float64, s.Slices)
		return func(perm []int, out []float64) {
			for i := range demand {
				demand[i] = 0
			}
			prevPeak := 0.0
			for _, w := range perm {
				wl := s.Workloads[w]
				for t := wl.Start; t < wl.End(); t++ {
					demand[t] += float64(wl.Cores)
				}
				peak := 0.0
				for _, d := range demand {
					if d > peak {
						peak = d
					}
				}
				out[w] = peak - prevPeak
				prevPeak = peak
			}
		}
	}
	var phi []float64
	var err error
	if m.Parallelism == 0 || m.Parallelism == 1 {
		phi, err = shapley.SampledOrdered(n, newMarginals(), m.Samples, rand.New(rand.NewSource(m.Seed)))
	} else {
		phi, err = shapley.SampledOrderedParallel(n, newMarginals, m.Samples, m.Seed, m.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range phi {
		total += v
	}
	if total <= 0 {
		return nil, errors.New("attribution: schedule has zero peak demand")
	}
	attr := make([]float64, n)
	for i, v := range phi {
		attr[i] = v / total * float64(budget)
	}
	return attr, nil
}
