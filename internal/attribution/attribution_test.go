package attribution

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/schedule"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func allMethods() []Method {
	return []Method{GroundTruth{}, RUPBaseline{}, DemandProportional{}, TemporalShapley{}}
}

func randomSchedule(t *testing.T, rng *rand.Rand) *schedule.Schedule {
	t.Helper()
	cfg := schedule.DefaultGeneratorConfig()
	cfg.MaxWorkloads = 10
	s, err := schedule.Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAllMethodsConserveBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const budget = 1e6
	for trial := 0; trial < 20; trial++ {
		s := randomSchedule(t, rng)
		for _, m := range allMethods() {
			attr, err := m.Attribute(s, budget)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if len(attr) != len(s.Workloads) {
				t.Fatalf("%s: %d attributions for %d workloads", m.Name(), len(attr), len(s.Workloads))
			}
			approx(t, sum(attr), budget, 1e-3, m.Name()+" conserves budget")
			for i, v := range attr {
				if v < -1e-9 {
					t.Fatalf("%s: negative attribution %v for workload %d", m.Name(), v, i)
				}
			}
		}
	}
}

func TestMethodNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMethods() {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("method name %q empty or duplicated", m.Name())
		}
		seen[m.Name()] = true
	}
}

// singleSliceSchedule has every workload in one slice: all methods must
// agree (attribution proportional to cores).
func TestAllMethodsAgreeOnSingleSlice(t *testing.T) {
	s := &schedule.Schedule{
		Slices:        1,
		SliceDuration: 3600,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 1},
			{ID: 1, Cores: 24, Start: 0, Duration: 1},
		},
	}
	const budget = 3200
	for _, m := range allMethods() {
		attr, err := m.Attribute(s, budget)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		approx(t, attr[0], 800, 1e-6, m.Name()+" workload 0")
		approx(t, attr[1], 2400, 1e-6, m.Name()+" workload 1")
	}
}

func TestGroundTruthPeakSensitivity(t *testing.T) {
	// Two workloads with equal core-seconds: w0 runs during the peak
	// (alongside w2), w1 runs alone off-peak. Ground truth must charge w0
	// more; RUP charges them identically.
	s := &schedule.Schedule{
		Slices:        2,
		SliceDuration: 1,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 32, Start: 0, Duration: 1},
			{ID: 1, Cores: 32, Start: 1, Duration: 1},
			{ID: 2, Cores: 64, Start: 0, Duration: 1},
		},
	}
	gt, err := GroundTruth{}.Attribute(s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if gt[0] <= gt[1] {
		t.Errorf("peak-time workload should pay more: %v vs %v", gt[0], gt[1])
	}
	rup, err := RUPBaseline{}.Attribute(s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rup[0], rup[1], 1e-9, "RUP ignores timing")
}

func TestGroundTruthKnownValue(t *testing.T) {
	// Two disjoint workloads: v({0}) = 8, v({1}) = 16, v({0,1}) = 16
	// (disjoint in time, peak = max). Peak game: phi = (4, 12).
	s := &schedule.Schedule{
		Slices:        2,
		SliceDuration: 1,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 1},
			{ID: 1, Cores: 16, Start: 1, Duration: 1},
		},
	}
	gt, err := GroundTruth{}.Attribute(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, gt[0], 4, 1e-9, "phi0 scaled")
	approx(t, gt[1], 12, 1e-9, "phi1 scaled")
}

func TestFairCO2BeatsBaselinesOnAverage(t *testing.T) {
	// Figure 7's ordering: ground truth deviation of Temporal Shapley <
	// demand proportional < RUP.
	rng := rand.New(rand.NewSource(2))
	devSums := map[string]float64{}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		s := randomSchedule(t, rng)
		gt, err := GroundTruth{}.Attribute(s, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{RUPBaseline{}, DemandProportional{}, TemporalShapley{}} {
			attr, err := m.Attribute(s, 1e6)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := MeanDeviation(gt, attr)
			if err != nil {
				t.Fatal(err)
			}
			devSums[m.Name()] += dev
		}
	}
	rup := devSums[RUPBaseline{}.Name()] / trials
	dp := devSums[DemandProportional{}.Name()] / trials
	ts := devSums[TemporalShapley{}.Name()] / trials
	t.Logf("mean deviations: RUP %.1f%%, demand-prop %.1f%%, temporal-shapley %.1f%%", rup*100, dp*100, ts*100)
	if !(ts < dp && dp < rup) {
		t.Errorf("expected temporal (%v) < demand-prop (%v) < RUP (%v)", ts, dp, rup)
	}
}

func TestErrors(t *testing.T) {
	good := &schedule.Schedule{
		Slices:        1,
		SliceDuration: 1,
		Workloads:     []schedule.Workload{{ID: 0, Cores: 1, Start: 0, Duration: 1}},
	}
	for _, m := range allMethods() {
		if _, err := m.Attribute(nil, 1); err == nil {
			t.Errorf("%s: nil schedule should error", m.Name())
		}
		if _, err := m.Attribute(good, -1); err == nil {
			t.Errorf("%s: negative budget should error", m.Name())
		}
		bad := &schedule.Schedule{Slices: 0}
		if _, err := m.Attribute(bad, 1); err == nil {
			t.Errorf("%s: invalid schedule should error", m.Name())
		}
	}
}

func TestTemporalShapleyCustomSplits(t *testing.T) {
	s := &schedule.Schedule{
		Slices:        6,
		SliceDuration: 1,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 3},
			{ID: 1, Cores: 16, Start: 3, Duration: 3},
		},
	}
	attr, err := TemporalShapley{Splits: []int{2, 3}}.Attribute(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum(attr), 100, 1e-9, "custom splits conserve budget")
	if _, err := (TemporalShapley{Splits: []int{4}}).Attribute(s, 100); err == nil {
		t.Error("mismatched splits should error")
	}
}

func TestDeviationHelpers(t *testing.T) {
	gt := []float64{100, 200, 0, 0}
	attr := []float64{110, 150, 0, 5}
	devs, err := Deviations(gt, attr)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, devs[0], 0.1, 1e-12, "dev0")
	approx(t, devs[1], 0.25, 1e-12, "dev1")
	approx(t, devs[2], 0, 0, "zero vs zero")
	if !math.IsInf(devs[3], 1) {
		t.Error("nonzero attribution against zero truth should be +Inf")
	}

	mean, err := MeanDeviation(gt[:2], attr[:2])
	if err != nil {
		t.Fatal(err)
	}
	approx(t, mean, 0.175, 1e-12, "mean deviation")

	worst, err := WorstDeviation(gt[:2], attr[:2])
	if err != nil {
		t.Fatal(err)
	}
	approx(t, worst, 0.25, 1e-12, "worst deviation")

	if _, err := Deviations([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MeanDeviation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mean length mismatch should error")
	}
	if _, err := WorstDeviation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("worst length mismatch should error")
	}
}

func TestGroundTruthSymmetryAxiom(t *testing.T) {
	// Two identical workloads must receive equal attributions.
	s := &schedule.Schedule{
		Slices:        3,
		SliceDuration: 1,
		Workloads: []schedule.Workload{
			{ID: 0, Cores: 16, Start: 0, Duration: 2},
			{ID: 1, Cores: 16, Start: 0, Duration: 2},
			{ID: 2, Cores: 48, Start: 2, Duration: 1},
		},
	}
	gt, err := GroundTruth{}.Attribute(s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, gt[0], gt[1], 1e-9, "symmetric workloads")
}
