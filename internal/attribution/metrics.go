package attribution

import (
	"time"

	"fairco2/internal/metrics"
)

// Per-method operational telemetry: how often each attribution method runs
// and how long a run takes. The method label carries the same names the
// report tables use, so dashboards and paper figures line up.
var (
	metricRuns = metrics.Default().NewCounterVec(
		"fairco2_attribution_runs_total",
		"Attribution runs, by method name.",
		"method")
	metricDuration = metrics.Default().NewHistogramVec(
		"fairco2_attribution_run_seconds",
		"Wall-clock duration of one attribution run, by method name.",
		nil,
		"method")
)

// observeRun records one attribution run; defer it at method entry.
func observeRun(method string, start time.Time) {
	metricRuns.With(method).Inc()
	metricDuration.With(method).Observe(time.Since(start).Seconds())
}
