package attribution

import (
	"errors"

	"fairco2/internal/metrics"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// Regional region-tags an attribution method: attribution is delegated to
// the wrapped method unchanged (shares are bitwise-identical — the
// multiregion differential suite depends on that), while run telemetry
// carries the provider and region labels so per-region dashboards can
// split the method-level families.
type Regional struct {
	// Method is the wrapped attribution method.
	Method Method
	// Provider and Region label the runs.
	Provider string
	Region   string
}

// metricRegionRuns counts attribution runs by method and placement — the
// region-tagged companion of fairco2_attribution_runs_total.
var metricRegionRuns = metrics.Default().NewCounterVec(
	"fairco2_attribution_region_runs_total",
	"Attribution runs, by method name, provider and region.",
	"method", "provider", "region")

// Name implements Method: the wrapped name suffixed with the region, so
// mixed-region reports stay unambiguous.
func (r Regional) Name() string {
	if r.Method == nil {
		return "@" + r.Region
	}
	return r.Method.Name() + "@" + r.Region
}

// Attribute implements Method by pure delegation. The wrapped method
// already records the method-level run and duration families; the wrapper
// adds only the region-labeled count.
func (r Regional) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	if r.Method == nil {
		return nil, errors.New("attribution: regional wrapper has no method")
	}
	metricRegionRuns.With(r.Method.Name(), r.Provider, r.Region).Inc()
	return r.Method.Attribute(s, budget)
}
