// Package attribution implements the four embodied-carbon attribution
// methods the paper evaluates on dynamic-demand schedules (§6.3, Figure 7),
// behind a common interface:
//
//   - GroundTruth: exact Shapley value with workloads as players and the
//     peak-demand characteristic function (§4) — embodied carbon scales
//     with the minimum capacity that must be provisioned, which is the
//     schedule's peak demand.
//   - RUPBaseline: resource-allocation-time proportional (Google + SCI, §3).
//   - DemandProportional: carbon intensity proportional to instantaneous
//     demand (the demand-aware baseline of §7.1).
//   - TemporalShapley: Fair-CO2's hierarchical time-period Shapley (§5.1).
//
// All methods fully attribute the same budget (the Shapley efficiency
// property), so deviations measure distributional fairness.
package attribution

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fairco2/internal/checkpoint"
	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Method attributes a fixed carbon budget across a schedule's workloads.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Attribute returns per-workload carbon in gCO2e, summing to budget.
	Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error)
}

func validate(s *schedule.Schedule, budget units.GramsCO2e) error {
	if s == nil {
		return errors.New("attribution: nil schedule")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if budget < 0 {
		return fmt.Errorf("attribution: negative budget %v", budget)
	}
	return nil
}

// GroundTruth is the exact Shapley attribution with workloads as players.
type GroundTruth struct {
	// Parallelism selects the coalition-enumeration worker count: 0
	// (the zero value) auto-sizes to GOMAXPROCS, 1 forces the serial
	// solver, n > 1 uses n workers. Workloads demand integer cores, so
	// every coalition peak is exact and the attribution is identical
	// for any setting.
	Parallelism int
}

// Name implements Method.
func (GroundTruth) Name() string { return "ground-truth-shapley" }

// DemandPeakGame returns the incremental coalition-peak game over a fresh
// demand scratch buffer: add/remove update the summed demand curve, value
// recomputes its peak in O(slices). Each call returns independent state, so
// parallel enumeration gets one game per block. Workload demands are
// integer cores, so the incremental arithmetic is exact and every
// enumeration order — including the delta engine's subcube walks — yields
// bitwise-identical coalition values.
func DemandPeakGame(s *schedule.Schedule) (add, remove func(int), value func() float64) {
	demand := make([]float64, s.Slices)
	add = func(i int) {
		w := s.Workloads[i]
		for t := w.Start; t < w.End(); t++ {
			demand[t] += float64(w.Cores)
		}
	}
	remove = func(i int) {
		w := s.Workloads[i]
		for t := w.Start; t < w.End(); t++ {
			demand[t] -= float64(w.Cores)
		}
	}
	value = func() float64 {
		peak := 0.0
		for _, d := range demand {
			if d > peak {
				peak = d
			}
		}
		return peak
	}
	return add, remove, value
}

// Attribute implements Method. Complexity is O(2^n * (n + slices)); the
// schedule must have at most shapley.MaxExactPlayers workloads.
func (m GroundTruth) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(GroundTruth{}.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	n := len(s.Workloads)
	var table, phi []float64
	var err error
	if m.Parallelism == 1 {
		add, remove, value := DemandPeakGame(s)
		table, err = shapley.BuildTableIncremental(n, add, remove, value)
		if err == nil {
			phi, err = shapley.ExactFromTable(n, table)
		}
	} else {
		table, err = shapley.BuildTableIncrementalParallel(n,
			func() (func(int), func(int), func() float64) { return DemandPeakGame(s) },
			m.Parallelism)
		if err == nil {
			phi, err = shapley.ExactFromTableParallel(n, table, m.Parallelism)
		}
	}
	if err != nil {
		return nil, err
	}
	return NormalizeShares(phi, budget)
}

// AttributeCheckpointed is Attribute with context cancellation and
// crash-safe checkpoint/resume of the exact coalition-table build — the
// O(2^n) part that makes large ground-truth attributions multi-hour jobs.
// The attribution is bitwise-identical to Attribute with the same
// Parallelism for any interruption pattern. The checkpoint directory must
// be dedicated to one (schedule, budget) pair; see
// shapley.BuildTableIncrementalCheckpointed.
func (m GroundTruth) AttributeCheckpointed(ctx context.Context, s *schedule.Schedule, budget units.GramsCO2e, ck checkpoint.Spec) ([]float64, error) {
	defer observeRun(GroundTruth{}.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	n := len(s.Workloads)
	table, err := shapley.BuildTableIncrementalCheckpointed(ctx, n,
		func() (func(int), func(int), func() float64) { return DemandPeakGame(s) },
		m.Parallelism, ck)
	if err != nil {
		return nil, err
	}
	var phi []float64
	if m.Parallelism == 1 {
		phi, err = shapley.ExactFromTable(n, table)
	} else {
		phi, err = shapley.ExactFromTableParallel(n, table, m.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	return NormalizeShares(phi, budget)
}

// NormalizeShares scales nonnegative Shapley values to sum to budget —
// the final step shared by every Shapley-backed method (and the delta
// query service, which re-derives shares from patched tables).
func NormalizeShares(phi []float64, budget units.GramsCO2e) ([]float64, error) {
	total := 0.0
	for _, v := range phi {
		total += v
	}
	if total <= 0 {
		return nil, errors.New("attribution: schedule has zero peak demand")
	}
	attr := make([]float64, len(phi))
	for i, v := range phi {
		attr[i] = v / total * float64(budget)
	}
	return attr, nil
}

// RUPBaseline attributes proportional to resource allocation over time
// (core-seconds), ignoring when the demand occurred.
type RUPBaseline struct{}

// Name implements Method.
func (RUPBaseline) Name() string { return "rup-baseline" }

// Attribute implements Method.
func (RUPBaseline) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(RUPBaseline{}.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	total := float64(s.TotalCoreSeconds())
	if total <= 0 {
		return nil, errors.New("attribution: schedule has zero resource-time")
	}
	attr := make([]float64, len(s.Workloads))
	for i := range s.Workloads {
		attr[i] = float64(s.CoreSeconds(i)) / total * float64(budget)
	}
	return attr, nil
}

// DemandProportional attributes with a carbon intensity directly
// proportional to instantaneous total demand.
type DemandProportional struct{}

// Name implements Method.
func (DemandProportional) Name() string { return "demand-proportional" }

// Attribute implements Method.
func (DemandProportional) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(DemandProportional{}.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	intensity, err := temporal.DemandProportionalIntensity(s.Demand(), budget)
	if err != nil {
		return nil, err
	}
	return AttributeByIntensity(s, intensity)
}

// TemporalShapley is Fair-CO2's attribution: a hierarchical time-period
// Shapley intensity signal, multiplied by each workload's usage.
type TemporalShapley struct {
	// Splits optionally overrides the hierarchical split schedule. When
	// empty, a single level over all slices is used (schedules in the
	// Monte Carlo evaluation have at most 9 slices, so one level is both
	// exact and cheap; multi-level splits matter for month-long traces).
	Splits []int
	// Parallelism is forwarded to temporal.Config: how many top-level
	// periods attribute concurrently (0 auto, 1 serial). The intensity
	// signal is identical for any setting.
	Parallelism int
}

// Name implements Method.
func (TemporalShapley) Name() string { return "fair-co2-temporal-shapley" }

// Attribute implements Method.
func (m TemporalShapley) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	defer observeRun(m.Name(), time.Now())
	if err := validate(s, budget); err != nil {
		return nil, err
	}
	splits := m.Splits
	if len(splits) == 0 {
		splits = []int{s.Slices}
	}
	intensity, err := temporal.IntensitySignal(s.Demand(), budget, temporal.Config{SplitRatios: splits, Parallelism: m.Parallelism})
	if err != nil {
		return nil, err
	}
	return AttributeByIntensity(s, intensity)
}

// AttributeByIntensity integrates each workload's usage against a carbon
// intensity signal: workload i pays sum_t cores_i(t) * intensity(t) * dt.
// It is the common back half of every intensity-based method, exported so
// the delta query service can re-attribute under a patched signal.
func AttributeByIntensity(s *schedule.Schedule, intensity *timeseries.Series) ([]float64, error) {
	attr := make([]float64, len(s.Workloads))
	for i, w := range s.Workloads {
		total := 0.0
		for t := w.Start; t < w.End(); t++ {
			at := units.Seconds(float64(s.SliceDuration) * (float64(t) + 0.5))
			total += float64(w.Cores) * intensity.At(at) * float64(s.SliceDuration)
		}
		attr[i] = total
	}
	return attr, nil
}

// Deviations returns per-workload relative deviations |attr - gt| / gt.
// Ground-truth entries of zero with a nonzero attribution yield +Inf; zero
// against zero yields 0.
func Deviations(groundTruth, attributed []float64) ([]float64, error) {
	if len(groundTruth) != len(attributed) {
		return nil, fmt.Errorf("attribution: %d ground-truth vs %d attributed entries", len(groundTruth), len(attributed))
	}
	out := make([]float64, len(groundTruth))
	for i := range groundTruth {
		diff := math.Abs(attributed[i] - groundTruth[i])
		switch {
		case groundTruth[i] != 0:
			out[i] = diff / math.Abs(groundTruth[i])
		case diff == 0:
			out[i] = 0
		default:
			out[i] = math.Inf(1)
		}
	}
	return out, nil
}

// MeanDeviation returns the scenario's average relative deviation.
func MeanDeviation(groundTruth, attributed []float64) (float64, error) {
	devs, err := Deviations(groundTruth, attributed)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, d := range devs {
		sum += d
	}
	return sum / float64(len(devs)), nil
}

// WorstDeviation returns the scenario's maximum single-workload deviation —
// the paper's "least fair attribution for any one workload".
func WorstDeviation(groundTruth, attributed []float64) (float64, error) {
	devs, err := Deviations(groundTruth, attributed)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, d := range devs {
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}
