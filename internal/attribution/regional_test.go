package attribution

import (
	"math/rand"
	"strings"
	"testing"

	"fairco2/internal/metrics"
	"fairco2/internal/schedule"
)

func TestRegionalDelegatesBitwise(t *testing.T) {
	s, err := schedule.Generate(schedule.DefaultGeneratorConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 5e6
	for _, inner := range []Method{GroundTruth{}, RUPBaseline{}, DemandProportional{}, TemporalShapley{}} {
		wrapped := Regional{Method: inner, Provider: "aurora", Region: "us-west"}
		want, err := inner.Attribute(s, budget)
		if err != nil {
			t.Fatalf("%s: %v", inner.Name(), err)
		}
		got, err := wrapped.Attribute(s, budget)
		if err != nil {
			t.Fatalf("%s wrapped: %v", inner.Name(), err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: share %d = %v wrapped, %v direct (must be bitwise-identical)",
					inner.Name(), i, got[i], want[i])
			}
		}
		if name := wrapped.Name(); name != inner.Name()+"@us-west" {
			t.Errorf("wrapped name = %q", name)
		}
	}
}

func TestRegionalNilMethod(t *testing.T) {
	s, err := schedule.Generate(schedule.DefaultGeneratorConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Regional{Region: "us-west"}).Attribute(s, 1); err == nil {
		t.Error("nil inner method must error")
	}
	if name := (Regional{Region: "us-west"}).Name(); name != "@us-west" {
		t.Errorf("nil-method name = %q", name)
	}
}

func TestRegionalRunsMetric(t *testing.T) {
	s, err := schedule.Generate(schedule.DefaultGeneratorConfig(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	w := Regional{Method: RUPBaseline{}, Provider: "borealis", Region: "eu-north"}
	if _, err := w.Attribute(s, 1e6); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := metrics.Default().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `fairco2_attribution_region_runs_total{method="rup-baseline",provider="borealis",region="eu-north"}`) {
		t.Error("region-labeled run counter not exposed")
	}
}
