package attribution

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests of the Parallelism knob at the attribution layer.
// Workloads demand integer cores, so coalition peaks are exact integers and
// the exact methods must be bit-for-bit identical for every worker count.

func TestGroundTruthParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const budget = 1e6
	for trial := 0; trial < 25; trial++ {
		s := randomSchedule(t, rng)
		serial, err := GroundTruth{Parallelism: 1}.Attribute(s, budget)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8} {
			par, err := GroundTruth{Parallelism: workers}.Attribute(s, budget)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("trial %d workers %d workload %d: parallel %v != serial %v",
						trial, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

func TestTemporalShapleyParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const budget = 1e6
	for trial := 0; trial < 25; trial++ {
		s := randomSchedule(t, rng)
		serial, err := TemporalShapley{Parallelism: 1}.Attribute(s, budget)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 5} {
			par, err := TemporalShapley{Parallelism: workers}.Attribute(s, budget)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("trial %d workers %d workload %d: parallel %v != serial %v",
						trial, workers, i, par[i], serial[i])
				}
			}
		}
	}
}

// TestSampledShapleyParallelDeterminism pins the sampled contract: a fixed
// (Seed, Parallelism) pair reproduces the estimate bit-for-bit, Parallelism
// 0 and 1 are the same serial single stream, and the sharded estimate stays
// an unbiased approximation of the exact ground truth.
func TestSampledShapleyParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const budget = 1e6
	s := randomSchedule(t, rng)

	serial0, err := SampledShapley{Samples: 5000, Seed: 42}.Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	serial1, err := SampledShapley{Samples: 5000, Seed: 42, Parallelism: 1}.Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial0 {
		if serial0[i] != serial1[i] {
			t.Fatalf("workload %d: parallelism 0 gave %v, parallelism 1 gave %v", i, serial0[i], serial1[i])
		}
	}

	a, err := SampledShapley{Samples: 5000, Seed: 42, Parallelism: 4}.Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledShapley{Samples: 5000, Seed: 42, Parallelism: 4}.Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload %d: repeated sharded run gave %v then %v", i, a[i], b[i])
		}
	}

	exact, err := GroundTruth{}.Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum(a), budget, 1e-3, "sharded estimate conserves budget")
	for i := range exact {
		if exact[i] == 0 {
			continue
		}
		if rel := math.Abs(a[i]-exact[i]) / exact[i]; rel > 0.15 {
			t.Errorf("workload %d: sharded estimate %v deviates %.3f from exact %v", i, a[i], rel, exact[i])
		}
	}
}
