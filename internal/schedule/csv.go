package schedule

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fairco2/internal/units"
)

// WriteCSV serializes the schedule as one header row plus one row per
// workload: "id,cores,start,duration". The slice duration is carried in a
// leading comment-style row "#slice_duration_seconds,<v>".
func (s *Schedule) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#slice_duration_seconds", strconv.FormatFloat(float64(s.SliceDuration), 'f', -1, 64)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"id", "cores", "start", "duration"}); err != nil {
		return err
	}
	for _, wl := range s.Workloads {
		rec := []string{
			strconv.Itoa(wl.ID),
			strconv.Itoa(wl.Cores),
			strconv.Itoa(wl.Start),
			strconv.Itoa(wl.Duration),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a schedule written by WriteCSV. The number of slices is
// inferred from the latest workload end.
func ReadCSV(r io.Reader) (*Schedule, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("schedule: reading csv: %w", err)
	}
	if len(records) < 3 {
		return nil, fmt.Errorf("schedule: csv needs duration row, header and at least one workload")
	}
	if len(records[0]) != 2 || records[0][0] != "#slice_duration_seconds" {
		return nil, fmt.Errorf("schedule: first row must be #slice_duration_seconds")
	}
	dur, err := strconv.ParseFloat(records[0][1], 64)
	if err != nil {
		return nil, fmt.Errorf("schedule: slice duration: %w", err)
	}
	s := &Schedule{SliceDuration: units.Seconds(dur)}
	for i, rec := range records[2:] {
		if len(rec) != 4 {
			return nil, fmt.Errorf("schedule: row %d has %d fields, want 4", i+3, len(rec))
		}
		vals := make([]int, 4)
		for j, f := range rec {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("schedule: row %d field %d: %w", i+3, j+1, err)
			}
			vals[j] = v
		}
		w := Workload{ID: vals[0], Cores: vals[1], Start: vals[2], Duration: vals[3]}
		s.Workloads = append(s.Workloads, w)
		if w.End() > s.Slices {
			s.Slices = w.End()
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
