// Package schedule represents dynamic-demand workload schedules: a window
// of discrete time slices in which workloads occupy CPU cores. It is the
// substrate of the paper's dynamic-demand Monte Carlo evaluation (§6.3):
// randomly generated schedules with 4-9 time slices, 1-5 concurrent
// workloads per slice, 8-96 cores per workload and 1-3 slice runtimes.
package schedule

import (
	"errors"
	"fmt"
	"math/rand"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Workload is one entry of a schedule: a core allocation over a contiguous
// range of time slices.
type Workload struct {
	// ID indexes the workload within its schedule.
	ID int
	// Cores is the CPU core allocation.
	Cores int
	// Start is the first occupied time slice.
	Start int
	// Duration is the number of occupied slices.
	Duration int
}

// End returns the first slice index after the workload finishes.
func (w Workload) End() int { return w.Start + w.Duration }

// RunsAt reports whether the workload occupies slice t.
func (w Workload) RunsAt(t int) bool { return t >= w.Start && t < w.End() }

// Schedule is a set of workloads over a window of uniform time slices.
type Schedule struct {
	// Slices is the number of time slices in the window.
	Slices int
	// SliceDuration is the wall-clock length of one slice.
	SliceDuration units.Seconds
	// Workloads lists the scheduled workloads; IDs are dense from 0.
	Workloads []Workload
}

// Validate checks internal consistency.
func (s *Schedule) Validate() error {
	if s.Slices < 1 {
		return errors.New("schedule: needs at least one slice")
	}
	if s.SliceDuration <= 0 {
		return errors.New("schedule: slice duration must be positive")
	}
	if len(s.Workloads) == 0 {
		return errors.New("schedule: needs at least one workload")
	}
	for i, w := range s.Workloads {
		switch {
		case w.ID != i:
			return fmt.Errorf("schedule: workload %d has ID %d, want dense IDs", i, w.ID)
		case w.Cores <= 0:
			return fmt.Errorf("schedule: workload %d has non-positive cores", i)
		case w.Start < 0 || w.Duration < 1 || w.End() > s.Slices:
			return fmt.Errorf("schedule: workload %d runs [%d, %d) outside window [0, %d)", i, w.Start, w.End(), s.Slices)
		}
	}
	return nil
}

// Demand returns the total core demand per slice.
func (s *Schedule) Demand() *timeseries.Series {
	values := make([]float64, s.Slices)
	for _, w := range s.Workloads {
		for t := w.Start; t < w.End(); t++ {
			values[t] += float64(w.Cores)
		}
	}
	return timeseries.New(0, s.SliceDuration, values)
}

// DemandOf returns workload i's core demand per slice.
func (s *Schedule) DemandOf(i int) *timeseries.Series {
	values := make([]float64, s.Slices)
	w := s.Workloads[i]
	for t := w.Start; t < w.End(); t++ {
		values[t] = float64(w.Cores)
	}
	return timeseries.New(0, s.SliceDuration, values)
}

// Peak returns the peak total core demand — the minimum core capacity that
// must be provisioned to run the schedule (Figure 1's dashed line).
func (s *Schedule) Peak() float64 { return s.Demand().Peak() }

// CoreSeconds returns workload i's total resource-time.
func (s *Schedule) CoreSeconds(i int) units.CoreSeconds {
	w := s.Workloads[i]
	return units.CoreSeconds(float64(w.Cores) * float64(w.Duration) * float64(s.SliceDuration))
}

// TotalCoreSeconds returns the schedule's total resource-time.
func (s *Schedule) TotalCoreSeconds() units.CoreSeconds {
	total := units.CoreSeconds(0)
	for i := range s.Workloads {
		total += s.CoreSeconds(i)
	}
	return total
}

// PeakOfSubset returns the peak demand of the workload subset given as a
// bitmask — the characteristic function of the ground-truth embodied game.
func (s *Schedule) PeakOfSubset(mask uint64) float64 {
	peak := 0.0
	for t := 0; t < s.Slices; t++ {
		demand := 0.0
		for i, w := range s.Workloads {
			if mask&(1<<uint(i)) != 0 && w.RunsAt(t) {
				demand += float64(w.Cores)
			}
		}
		if demand > peak {
			peak = demand
		}
	}
	return peak
}

// ConcurrencyAt returns the number of workloads running in slice t.
func (s *Schedule) ConcurrencyAt(t int) int {
	n := 0
	for _, w := range s.Workloads {
		if w.RunsAt(t) {
			n++
		}
	}
	return n
}

// GeneratorConfig parameterizes random schedule generation. The zero value
// is not valid; use DefaultGeneratorConfig.
type GeneratorConfig struct {
	// MinSlices and MaxSlices bound the schedule length (paper: 4-9).
	MinSlices, MaxSlices int
	// MinConcurrent and MaxConcurrent bound per-slice workload counts
	// (paper: 1-5).
	MinConcurrent, MaxConcurrent int
	// CoreChoices are the allowed core allocations (paper: 8..96).
	CoreChoices []int
	// MinDuration and MaxDuration bound workload runtimes in slices
	// (paper: 1-3).
	MinDuration, MaxDuration int
	// MaxWorkloads caps the schedule's total workload count (the paper
	// caps at 22 to keep the exact Shapley ground truth tractable).
	MaxWorkloads int
	// SliceDuration is the wall-clock length of a slice.
	SliceDuration units.Seconds
}

// DefaultGeneratorConfig returns the paper's §6.3 parameters, except that
// MaxWorkloads defaults to 14 so the exact ground truth stays fast; pass
// 22 to restore paper scale.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		MinSlices:     4,
		MaxSlices:     9,
		MinConcurrent: 1,
		MaxConcurrent: 5,
		CoreChoices:   []int{8, 16, 32, 48, 64, 80, 96},
		MinDuration:   1,
		MaxDuration:   3,
		MaxWorkloads:  14,
		SliceDuration: units.SecondsPerHour,
	}
}

// Validate checks the generator configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.MinSlices < 1 || c.MaxSlices < c.MinSlices:
		return errors.New("schedule: invalid slice bounds")
	case c.MinConcurrent < 1 || c.MaxConcurrent < c.MinConcurrent:
		return errors.New("schedule: invalid concurrency bounds")
	case len(c.CoreChoices) == 0:
		return errors.New("schedule: no core choices")
	case c.MinDuration < 1 || c.MaxDuration < c.MinDuration:
		return errors.New("schedule: invalid duration bounds")
	case c.MaxWorkloads < 1:
		return errors.New("schedule: max workloads must be positive")
	case c.SliceDuration <= 0:
		return errors.New("schedule: slice duration must be positive")
	}
	for _, cores := range c.CoreChoices {
		if cores < 1 {
			return errors.New("schedule: core choices must be positive")
		}
	}
	return nil
}

// Generate produces a random schedule: it draws a slice count and a target
// concurrency per slice, then sweeps the window left to right, adding
// workloads (random cores, random duration) wherever the running count is
// below the slice's target, until the workload cap is reached.
func Generate(cfg GeneratorConfig, rng *rand.Rand) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("schedule: nil rng")
	}
	slices := randBetween(rng, cfg.MinSlices, cfg.MaxSlices)
	targets := make([]int, slices)
	for t := range targets {
		targets[t] = randBetween(rng, cfg.MinConcurrent, cfg.MaxConcurrent)
	}
	concurrency := make([]int, slices)
	s := &Schedule{Slices: slices, SliceDuration: cfg.SliceDuration}
	for t := 0; t < slices && len(s.Workloads) < cfg.MaxWorkloads; t++ {
		for concurrency[t] < targets[t] && len(s.Workloads) < cfg.MaxWorkloads {
			maxDur := cfg.MaxDuration
			if rem := slices - t; rem < maxDur {
				maxDur = rem
			}
			minDur := cfg.MinDuration
			if minDur > maxDur {
				minDur = maxDur
			}
			w := Workload{
				ID:       len(s.Workloads),
				Cores:    cfg.CoreChoices[rng.Intn(len(cfg.CoreChoices))],
				Start:    t,
				Duration: randBetween(rng, minDur, maxDur),
			}
			s.Workloads = append(s.Workloads, w)
			for u := w.Start; u < w.End(); u++ {
				concurrency[u]++
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: generator produced invalid schedule: %w", err)
	}
	return s, nil
}

func randBetween(rng *rand.Rand, lo, hi int) int {
	return lo + rng.Intn(hi-lo+1)
}
