package schedule

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleCSVRoundTrip(t *testing.T) {
	s := twoSliceSchedule()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slices != s.Slices || got.SliceDuration != s.SliceDuration {
		t.Fatalf("shape changed: %+v", got)
	}
	for i := range s.Workloads {
		if got.Workloads[i] != s.Workloads[i] {
			t.Fatalf("workload %d changed: %+v vs %+v", i, got.Workloads[i], s.Workloads[i])
		}
	}
}

func TestScheduleReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"missing header": "#slice_duration_seconds,3600\n",
		"bad first row":  "nope,3600\nid,cores,start,duration\n0,8,0,1\n",
		"bad duration":   "#slice_duration_seconds,x\nid,cores,start,duration\n0,8,0,1\n",
		"bad field":      "#slice_duration_seconds,3600\nid,cores,start,duration\n0,x,0,1\n",
		"short row":      "#slice_duration_seconds,3600\nid,cores,start,duration\n0,8,0\n",
		"invalid sched":  "#slice_duration_seconds,3600\nid,cores,start,duration\n5,8,0,1\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
