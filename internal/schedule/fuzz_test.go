package schedule

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures the schedule parser never panics and only yields
// valid schedules that round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("#slice_duration_seconds,3600\nid,cores,start,duration\n0,8,0,1\n1,16,0,2\n")
	f.Add("#slice_duration_seconds,x\nid,cores,start,duration\n0,8,0,1\n")
	f.Add("")
	f.Add("#slice_duration_seconds,60\nid,cores,start,duration\n5,8,0,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parser returned invalid schedule: %v", err)
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Slices != s.Slices || len(back.Workloads) != len(s.Workloads) {
			t.Fatal("round trip changed shape")
		}
	})
}
