package schedule

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/units"
)

// twoSliceSchedule: w0 uses 8 cores in slice 0, w1 uses 16 in both slices.
func twoSliceSchedule() *Schedule {
	return &Schedule{
		Slices:        2,
		SliceDuration: 3600,
		Workloads: []Workload{
			{ID: 0, Cores: 8, Start: 0, Duration: 1},
			{ID: 1, Cores: 16, Start: 0, Duration: 2},
		},
	}
}

func TestWorkloadBasics(t *testing.T) {
	w := Workload{ID: 0, Cores: 8, Start: 2, Duration: 3}
	if w.End() != 5 {
		t.Errorf("End = %d", w.End())
	}
	if w.RunsAt(1) || !w.RunsAt(2) || !w.RunsAt(4) || w.RunsAt(5) {
		t.Error("RunsAt boundaries wrong")
	}
}

func TestValidate(t *testing.T) {
	s := twoSliceSchedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Schedule){
		func(s *Schedule) { s.Slices = 0 },
		func(s *Schedule) { s.SliceDuration = 0 },
		func(s *Schedule) { s.Workloads = nil },
		func(s *Schedule) { s.Workloads[1].ID = 5 },
		func(s *Schedule) { s.Workloads[0].Cores = 0 },
		func(s *Schedule) { s.Workloads[0].Start = -1 },
		func(s *Schedule) { s.Workloads[0].Duration = 0 },
		func(s *Schedule) { s.Workloads[1].Duration = 3 },
	}
	for i, mutate := range bad {
		s := twoSliceSchedule()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDemandAndPeak(t *testing.T) {
	s := twoSliceSchedule()
	d := s.Demand()
	if d.Values[0] != 24 || d.Values[1] != 16 {
		t.Errorf("Demand = %v", d.Values)
	}
	if s.Peak() != 24 {
		t.Errorf("Peak = %v", s.Peak())
	}
	d1 := s.DemandOf(1)
	if d1.Values[0] != 16 || d1.Values[1] != 16 {
		t.Errorf("DemandOf(1) = %v", d1.Values)
	}
}

func TestCoreSeconds(t *testing.T) {
	s := twoSliceSchedule()
	if got := s.CoreSeconds(0); got != units.CoreSeconds(8*3600) {
		t.Errorf("CoreSeconds(0) = %v", got)
	}
	if got := s.CoreSeconds(1); got != units.CoreSeconds(16*2*3600) {
		t.Errorf("CoreSeconds(1) = %v", got)
	}
	if got := s.TotalCoreSeconds(); got != units.CoreSeconds((8+32)*3600) {
		t.Errorf("TotalCoreSeconds = %v", got)
	}
}

func TestPeakOfSubset(t *testing.T) {
	s := twoSliceSchedule()
	if got := s.PeakOfSubset(0); got != 0 {
		t.Errorf("empty subset peak = %v", got)
	}
	if got := s.PeakOfSubset(0b01); got != 8 {
		t.Errorf("subset {0} peak = %v", got)
	}
	if got := s.PeakOfSubset(0b10); got != 16 {
		t.Errorf("subset {1} peak = %v", got)
	}
	if got := s.PeakOfSubset(0b11); got != 24 {
		t.Errorf("full subset peak = %v", got)
	}
}

func TestConcurrencyAt(t *testing.T) {
	s := twoSliceSchedule()
	if s.ConcurrencyAt(0) != 2 || s.ConcurrencyAt(1) != 1 {
		t.Error("concurrency counts wrong")
	}
}

func TestFigure1SamePeakDifferentShapes(t *testing.T) {
	// Paper Figure 1: different demand curves with identical peak need
	// the same minimum capacity.
	flat := &Schedule{Slices: 3, SliceDuration: 1, Workloads: []Workload{
		{ID: 0, Cores: 48, Start: 0, Duration: 3},
	}}
	spike := &Schedule{Slices: 3, SliceDuration: 1, Workloads: []Workload{
		{ID: 0, Cores: 16, Start: 0, Duration: 3},
		{ID: 1, Cores: 32, Start: 1, Duration: 1},
	}}
	ramp := &Schedule{Slices: 3, SliceDuration: 1, Workloads: []Workload{
		{ID: 0, Cores: 16, Start: 0, Duration: 3},
		{ID: 1, Cores: 16, Start: 1, Duration: 2},
		{ID: 2, Cores: 16, Start: 2, Duration: 1},
	}}
	if flat.Peak() != 48 || spike.Peak() != 48 || ramp.Peak() != 48 {
		t.Errorf("peaks differ: %v %v %v", flat.Peak(), spike.Peak(), ramp.Peak())
	}
	// ...while total resource-time differs.
	if flat.TotalCoreSeconds() == spike.TotalCoreSeconds() {
		t.Error("shapes should differ in resource-time")
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	if err := DefaultGeneratorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*GeneratorConfig){
		func(c *GeneratorConfig) { c.MinSlices = 0 },
		func(c *GeneratorConfig) { c.MaxSlices = c.MinSlices - 1 },
		func(c *GeneratorConfig) { c.MinConcurrent = 0 },
		func(c *GeneratorConfig) { c.MaxConcurrent = 0 },
		func(c *GeneratorConfig) { c.CoreChoices = nil },
		func(c *GeneratorConfig) { c.CoreChoices = []int{0} },
		func(c *GeneratorConfig) { c.MinDuration = 0 },
		func(c *GeneratorConfig) { c.MaxDuration = 0 },
		func(c *GeneratorConfig) { c.MaxWorkloads = 0 },
		func(c *GeneratorConfig) { c.SliceDuration = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultGeneratorConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	rng := rand.New(rand.NewSource(42))
	coreSet := map[int]bool{}
	for _, c := range cfg.CoreChoices {
		coreSet[c] = true
	}
	for trial := 0; trial < 200; trial++ {
		s, err := Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Slices < cfg.MinSlices || s.Slices > cfg.MaxSlices {
			t.Fatalf("slices %d outside [%d, %d]", s.Slices, cfg.MinSlices, cfg.MaxSlices)
		}
		if len(s.Workloads) > cfg.MaxWorkloads {
			t.Fatalf("%d workloads exceed cap %d", len(s.Workloads), cfg.MaxWorkloads)
		}
		for _, w := range s.Workloads {
			if !coreSet[w.Cores] {
				t.Fatalf("cores %d not in choices", w.Cores)
			}
			if w.Duration < cfg.MinDuration || w.Duration > cfg.MaxDuration {
				t.Fatalf("duration %d outside bounds", w.Duration)
			}
		}
		for slice := 0; slice < s.Slices; slice++ {
			if c := s.ConcurrencyAt(slice); c > cfg.MaxConcurrent {
				t.Fatalf("slice %d has %d concurrent workloads, cap %d", slice, c, cfg.MaxConcurrent)
			}
		}
	}
}

func TestGenerateCoversEverySliceWhenUncapped(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.MaxWorkloads = 1000 // effectively uncapped
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s, err := Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for slice := 0; slice < s.Slices; slice++ {
			if s.ConcurrencyAt(slice) < cfg.MinConcurrent {
				t.Fatalf("slice %d below min concurrency", slice)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	a, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices != b.Slices || len(a.Workloads) != len(b.Workloads) {
		t.Fatal("same seed should reproduce the schedule")
	}
	for i := range a.Workloads {
		if a.Workloads[i] != b.Workloads[i] {
			t.Fatal("same seed should reproduce workloads exactly")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	if _, err := Generate(cfg, nil); err == nil {
		t.Error("nil rng should error")
	}
	cfg.MinSlices = 0
	if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config should error")
	}
}

func TestPeakSubsetMonotone(t *testing.T) {
	// Peak is monotone: adding a workload never lowers the subset peak.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultGeneratorConfig()
	cfg.MaxWorkloads = 10
	for trial := 0; trial < 20; trial++ {
		s, err := Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := len(s.Workloads)
		full := uint64(1)<<uint(n) - 1
		for probe := 0; probe < 50; probe++ {
			mask := rng.Uint64() & full
			sub := mask & rng.Uint64()
			a, b := s.PeakOfSubset(sub), s.PeakOfSubset(mask)
			if a > b+1e-9 {
				t.Fatalf("peak not monotone: subset %v > superset %v", a, b)
			}
			if math.IsNaN(a) || math.IsNaN(b) {
				t.Fatal("NaN peak")
			}
		}
	}
}
