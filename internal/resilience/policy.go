package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// DefaultMaxAttempts bounds a zero-valued Policy's attempts.
const DefaultMaxAttempts = 3

// Policy composes retry, backoff, deadlines and an optional breaker into
// one "call this flaky endpoint responsibly" primitive. The zero value
// retries DefaultMaxAttempts times with default backoff and no breaker.
// A Policy is safe for concurrent Do calls as long as Rand is not shared
// unlocked elsewhere (math/rand.Rand is internally unsynchronized; the
// daemons build one policy at startup and call it from one loop).
type Policy struct {
	// MaxAttempts is the total number of tries, first call included
	// (default DefaultMaxAttempts; 1 means no retries).
	MaxAttempts int
	// Backoff shapes the delay between attempts.
	Backoff Backoff
	// AttemptTimeout bounds each individual attempt's context (0 = none).
	AttemptTimeout time.Duration
	// Budget bounds the whole Do call — attempts plus sleeps. When the
	// next sleep would overrun it, Do gives up with ErrBudgetExhausted
	// (0 = unbounded).
	Budget time.Duration
	// Breaker, when set, gates every attempt and records its outcome.
	Breaker *Breaker
	// Rand drives the backoff jitter. Seed it to make the retry schedule
	// deterministic; nil falls back to a fixed-seed source.
	Rand *rand.Rand
	// Now and Sleep override the clock, for deterministic tests. Sleep
	// must return early with ctx.Err() if the context ends first.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes every scheduled retry (the retry
	// counter metric hangs off this).
	OnRetry func(attempt int, err error, delay time.Duration)
}

func (p *Policy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p *Policy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

func (p *Policy) rng() *rand.Rand {
	if p.Rand == nil {
		p.Rand = rand.New(rand.NewSource(1))
	}
	return p.Rand
}

func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op under the policy: breaker gate, per-attempt deadline, backoff
// between failures, overall budget. It returns nil on the first success;
// ErrBreakerOpen without calling op when the breaker rejects; the
// underlying error unchanged when op fails permanently (see Permanent) or
// the context ends; and otherwise an error wrapping ErrRetriesExhausted or
// ErrBudgetExhausted plus the last cause.
func (p *Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	start := p.now()
	max := p.attempts()
	var prev time.Duration
	for attempt := 1; ; attempt++ {
		if p.Breaker != nil {
			if err := p.Breaker.Allow(); err != nil {
				return err
			}
		}
		err := p.runAttempt(ctx, op)
		if p.Breaker != nil {
			switch {
			case err == nil:
				p.Breaker.Success()
			case IsPermanent(err):
				// A rejected request says nothing about endpoint health;
				// leave the failure counts alone.
			default:
				p.Breaker.Failure()
			}
		}
		if err == nil {
			return nil
		}
		if IsPermanent(err) || ctx.Err() != nil {
			return err
		}
		if attempt >= max {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt, err)
		}
		delay := p.Backoff.Next(p.rng(), prev)
		prev = delay
		if p.Budget > 0 && p.now().Add(delay).Sub(start) >= p.Budget {
			return fmt.Errorf("%w after %d attempts (budget %v): %w", ErrBudgetExhausted, attempt, p.Budget, err)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if serr := p.sleep(ctx, delay); serr != nil {
			return fmt.Errorf("resilience: interrupted while backing off: %w (last error: %w)", serr, err)
		}
	}
}

// runAttempt invokes op under the per-attempt deadline.
func (p *Policy) runAttempt(ctx context.Context, op func(ctx context.Context) error) error {
	if p.AttemptTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
		return op(actx)
	}
	return op(ctx)
}
