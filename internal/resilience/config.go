package resilience

import (
	"flag"
	"fmt"
	"math/rand"
	"time"
)

// Config is the flat, flag-friendly form of a Policy plus its Breaker —
// the tuning surface the daemons expose. The zero value is NOT usable;
// start from DefaultConfig.
type Config struct {
	// MaxAttempts is the total tries per fetch (1 = no retries).
	MaxAttempts int
	// BackoffBase and BackoffCap bound the decorrelated-jitter delays.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// AttemptTimeout bounds each attempt; Budget bounds the whole fetch
	// including sleeps (0 = unbounded).
	AttemptTimeout time.Duration
	Budget         time.Duration
	// BreakerFailures consecutive failures open the breaker; after
	// ProbeInterval it admits probes, and ProbeSuccesses consecutive
	// probe successes close it again. BreakerFailures <= 0 disables the
	// breaker entirely.
	BreakerFailures int
	ProbeInterval   time.Duration
	ProbeSuccesses  int
}

// DefaultConfig is the daemons' default tuning: three attempts backing off
// 100ms..5s, 2s per attempt, a 15s total budget, and a breaker opening
// after 5 consecutive failures with 30s probe intervals.
func DefaultConfig() Config {
	return Config{
		MaxAttempts:     3,
		BackoffBase:     100 * time.Millisecond,
		BackoffCap:      5 * time.Second,
		AttemptTimeout:  2 * time.Second,
		Budget:          15 * time.Second,
		BreakerFailures: 5,
		ProbeInterval:   30 * time.Second,
		ProbeSuccesses:  1,
	}
}

// Validate rejects configurations the policy machinery would misbehave on.
func (c Config) Validate() error {
	switch {
	case c.MaxAttempts < 1:
		return fmt.Errorf("resilience: need at least one attempt, got %d", c.MaxAttempts)
	case c.BackoffBase <= 0:
		return fmt.Errorf("resilience: backoff base must be positive, got %v", c.BackoffBase)
	case c.BackoffCap < c.BackoffBase:
		return fmt.Errorf("resilience: backoff cap %v below base %v", c.BackoffCap, c.BackoffBase)
	case c.AttemptTimeout < 0 || c.Budget < 0:
		return fmt.Errorf("resilience: timeouts must be non-negative")
	case c.BreakerFailures > 0 && c.ProbeInterval <= 0:
		return fmt.Errorf("resilience: breaker probe interval must be positive, got %v", c.ProbeInterval)
	case c.BreakerFailures > 0 && c.ProbeSuccesses < 1:
		return fmt.Errorf("resilience: breaker needs at least one probe success, got %d", c.ProbeSuccesses)
	}
	return nil
}

// Hooks carries the observation callbacks a daemon wires to its metrics.
// Either may be nil.
type Hooks struct {
	// OnRetry observes every scheduled retry.
	OnRetry func(attempt int, err error, delay time.Duration)
	// OnBreakerChange observes every breaker transition.
	OnBreakerChange func(from, to State)
}

// NewPolicy materializes the config into a Policy (and its Breaker, nil
// when disabled). The seed fixes the jitter schedule, so a daemon run is
// reproducible end to end.
func (c Config) NewPolicy(seed int64) (*Policy, *Breaker) {
	return c.NewPolicyHooked(seed, Hooks{})
}

// NewPolicyHooked is NewPolicy with observation hooks installed at
// construction (the breaker's transition hook cannot be attached later).
func (c Config) NewPolicyHooked(seed int64, h Hooks) (*Policy, *Breaker) {
	var br *Breaker
	if c.BreakerFailures > 0 {
		br = NewBreaker(BreakerConfig{
			FailureThreshold: c.BreakerFailures,
			ProbeInterval:    c.ProbeInterval,
			ProbeSuccesses:   c.ProbeSuccesses,
			OnStateChange:    h.OnBreakerChange,
		})
	}
	return &Policy{
		MaxAttempts:    c.MaxAttempts,
		Backoff:        Backoff{Base: c.BackoffBase, Cap: c.BackoffCap},
		AttemptTimeout: c.AttemptTimeout,
		Budget:         c.Budget,
		Breaker:        br,
		Rand:           rand.New(rand.NewSource(seed)),
		OnRetry:        h.OnRetry,
	}, br
}

// RegisterFlags exposes every knob on fs under -<prefix>-..., mutating c
// in place when the flags are parsed. Both daemons call this with prefix
// "signal", so their tuning surfaces stay identical.
func (c *Config) RegisterFlags(fs *flag.FlagSet, prefix string) {
	fs.IntVar(&c.MaxAttempts, prefix+"-retry-attempts", c.MaxAttempts,
		"total fetch attempts before giving up (1 = no retries)")
	fs.DurationVar(&c.BackoffBase, prefix+"-retry-base", c.BackoffBase,
		"minimum backoff between fetch attempts")
	fs.DurationVar(&c.BackoffCap, prefix+"-retry-cap", c.BackoffCap,
		"maximum backoff between fetch attempts")
	fs.DurationVar(&c.AttemptTimeout, prefix+"-attempt-timeout", c.AttemptTimeout,
		"deadline per fetch attempt (0 = none)")
	fs.DurationVar(&c.Budget, prefix+"-retry-budget", c.Budget,
		"total time budget per fetch including backoff (0 = unbounded)")
	fs.IntVar(&c.BreakerFailures, prefix+"-breaker-failures", c.BreakerFailures,
		"consecutive failures that open the circuit breaker (0 = no breaker)")
	fs.DurationVar(&c.ProbeInterval, prefix+"-breaker-probe-interval", c.ProbeInterval,
		"how long an open breaker waits before probing the endpoint")
	fs.IntVar(&c.ProbeSuccesses, prefix+"-breaker-probe-successes", c.ProbeSuccesses,
		"consecutive probe successes that close the breaker")
}
