package resilience

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffScheduleExact pins the exact delay sequences a seeded RNG
// produces — the retry schedules the fault-injection suite relies on being
// reproducible. If the jitter formula changes, these literals must be
// regenerated deliberately.
func TestBackoffScheduleExact(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		seed int64
		want []time.Duration
	}{
		{
			name: "defaults seed 1",
			b:    Backoff{},
			seed: 1,
			want: []time.Duration{162745590, 433748294, 445970515, 583833927, 1652776305, 3813574716},
		},
		{
			name: "defaults seed 42",
			b:    Backoff{},
			seed: 42,
			want: []time.Duration{128381990, 380619968, 672299770, 844750584, 664967163, 1390260841},
		},
		{
			name: "fast 1ms..50ms seed 7",
			b:    Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond},
			seed: 7,
			want: []time.Duration{2039507, 4171990, 1368545, 2170771, 1388526, 1233210, 1609302, 2975648},
		},
		{
			name: "factor 2 seed 3",
			b:    Backoff{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond, Factor: 2},
			seed: 3,
			want: []time.Duration{17322791, 17496524, 33077772, 17353761, 16311935, 18897916, 26089273, 24341812},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.b.Schedule(rand.New(rand.NewSource(c.seed)), len(c.want))
			if len(got) != len(c.want) {
				t.Fatalf("schedule length %d, want %d", len(got), len(c.want))
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("delay[%d] = %d, want %d", i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestBackoffBounds checks every drawn delay respects [Base, Cap] whatever
// the previous delay was.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Cap: 80 * time.Millisecond}
	rng := rand.New(rand.NewSource(99))
	prev := time.Duration(0)
	for i := 0; i < 1000; i++ {
		d := b.Next(rng, prev)
		if d < b.Base || d > b.Cap {
			t.Fatalf("draw %d: delay %v outside [%v, %v] (prev %v)", i, d, b.Base, b.Cap, prev)
		}
		prev = d
	}
}

// TestBackoffGrowsInExpectation checks the exponential shape: averaged
// over many sequences, the k-th delay grows until it saturates at Cap.
func TestBackoffGrowsInExpectation(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: time.Second}
	const runs, steps = 400, 6
	sums := make([]float64, steps)
	for r := 0; r < runs; r++ {
		rng := rand.New(rand.NewSource(int64(r)))
		prev := time.Duration(0)
		for k := 0; k < steps; k++ {
			prev = b.Next(rng, prev)
			sums[k] += float64(prev)
		}
	}
	for k := 1; k < 4; k++ {
		if sums[k] <= sums[k-1] {
			t.Errorf("mean delay did not grow at step %d: %.0f -> %.0f", k, sums[k-1], sums[k])
		}
	}
}

// TestBackoffDegenerate covers the clamp paths: a cap equal to the base
// pins every delay, and a huge previous delay cannot overflow.
func TestBackoffDegenerate(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 10 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d := b.Next(rng, time.Duration(i)*time.Millisecond); d != 10*time.Millisecond {
			t.Fatalf("pinned backoff drew %v", d)
		}
	}
	big := Backoff{Base: time.Millisecond, Cap: 1<<63 - 1, Factor: 1e15}
	if d := big.Next(rng, time.Hour); d < big.Base {
		t.Errorf("overflow clamp produced %v below base", d)
	}
}
