// Package resilience is a stdlib-only robustness layer for the live
// carbon-signal pipeline: retry with exponential backoff and decorrelated
// jitter, a three-state circuit breaker, per-attempt deadline budgets, and
// a Policy composing all three. Every source of nondeterminism is
// injectable (the jitter RNG, the clock, the sleeper), so failure-scenario
// tests are exactly reproducible.
package resilience

import (
	"math/rand"
	"time"
)

// Backoff generates retry delays by the "decorrelated jitter" rule: each
// delay is drawn uniformly from [Base, prev*Factor], clamped to Cap. It
// grows exponentially in expectation while spreading concurrent retriers
// across the whole interval, so a flapping signal server is not hammered
// by synchronized retry waves. The zero value is usable and selects the
// defaults below.
type Backoff struct {
	// Base is the lower bound of every delay (default 100ms).
	Base time.Duration
	// Cap is the upper bound of every delay (default 10s).
	Cap time.Duration
	// Factor is the decorrelation multiplier on the previous delay
	// (default 3, the canonical choice).
	Factor float64
}

// Defaults for the zero Backoff.
const (
	DefaultBackoffBase   = 100 * time.Millisecond
	DefaultBackoffCap    = 10 * time.Second
	DefaultBackoffFactor = 3.0
)

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return DefaultBackoffBase
}

func (b Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return DefaultBackoffCap
}

func (b Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return DefaultBackoffFactor
}

// Next draws the delay following prev (pass 0 before the first retry).
// With a seeded rng the sequence is fully deterministic.
func (b Backoff) Next(rng *rand.Rand, prev time.Duration) time.Duration {
	base, ceil := b.base(), b.cap()
	if prev < base {
		prev = base
	}
	hi := time.Duration(float64(prev) * b.factor())
	if hi > ceil || hi < 0 { // < 0 guards float-to-duration overflow
		hi = ceil
	}
	if hi <= base {
		return base
	}
	return base + time.Duration(rng.Int63n(int64(hi-base)+1))
}

// Schedule draws the first n delays of a fresh backoff sequence — the
// exact sleeps a Policy with this Backoff and rng would perform. Tests
// assert on it; dashboards can display it.
func (b Backoff) Schedule(rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, 0, n)
	prev := time.Duration(0)
	for i := 0; i < n; i++ {
		prev = b.Next(rng, prev)
		out = append(out, prev)
	}
	return out
}
