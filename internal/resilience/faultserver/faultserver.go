// Package faultserver is a programmable fault-injection HTTP server for
// deterministic failure-scenario tests of the live-signal pipeline. It
// wraps a real handler (typically signalserver.Server.Handler()) behind a
// per-request script: each incoming request consumes the next Step, which
// can delay, corrupt, reject or reset it; with no step pending the request
// passes through to the real handler untouched. Scripts make outages exact
// — "fail the next 3 requests with 503, then recover" is three Steps —
// so every scenario test replays bit-for-bit.
package faultserver

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Step scripts the treatment of one request. The zero Step passes the
// request through to the wrapped handler (a healthy response).
type Step struct {
	// Status, when nonzero, short-circuits the request with this HTTP
	// status and Body instead of invoking the wrapped handler. A 200
	// Status with a garbage Body simulates a lying upstream (partial or
	// corrupt JSON).
	Status int
	// Body is the response body sent with Status.
	Body string
	// Delay stalls before responding — a latency spike. If the client
	// gives up first (attempt timeout), the stall ends immediately so
	// scripted delays never outlive the test.
	Delay time.Duration
	// Reset hijacks the connection and closes it with a TCP RST, the
	// "connection reset by peer" failure mode.
	Reset bool
	// Partition accepts the request and then stalls it until the client
	// gives up — the asymmetric network partition, where connections
	// establish but no bytes ever come back. Unlike Reset (instant
	// error) and Delay (bounded stall), a partitioned request only ends
	// with the client's own timeout, which is exactly what probe-timeout
	// accounting must classify as failure.
	Partition bool
	// Sticky keeps the step active for every subsequent request instead
	// of consuming it — a sustained outage. Clear removes it.
	Sticky bool
}

// Server wraps an inner handler behind the fault script. All methods are
// safe for concurrent use.
type Server struct {
	inner http.Handler
	ts    *httptest.Server

	mu     sync.Mutex
	script []Step
	sticky *Step
	hits   int
	faults int
}

// New starts a fault server in front of inner. Close it when done.
func New(inner http.Handler) *Server {
	s := &Server{inner: inner}
	s.ts = httptest.NewServer(s)
	return s
}

// NewHandler builds a fault gate with no listener of its own: the same
// script machinery as New, mounted wherever the caller serves it. The
// cluster load harness wraps each replica's handler in one so chaos
// scripts can partition or latency-spike a live replica in place. URL and
// Close are meaningless on a handler-mode gate.
func NewHandler(inner http.Handler) *Server {
	return &Server{inner: inner}
}

// URL is the server's base URL.
func (s *Server) URL() string { return s.ts.URL }

// Close shuts the listener down.
func (s *Server) Close() { s.ts.Close() }

// Program appends steps to the script. A Sticky step becomes the standing
// treatment once the queued steps ahead of it are consumed.
func (s *Server) Program(steps ...Step) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.script = append(s.script, steps...)
}

// Clear drops the remaining script and any sticky step, restoring healthy
// pass-through service — the "upstream recovered" transition.
func (s *Server) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.script, s.sticky = nil, nil
}

// Hits is the total number of requests received.
func (s *Server) Hits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Faults is the number of requests that received scripted treatment
// (anything but clean pass-through).
func (s *Server) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// next consumes and returns the step for one request.
func (s *Server) next() Step {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	var step Step
	switch {
	case len(s.script) > 0:
		step = s.script[0]
		if step.Sticky {
			s.sticky = &step
		}
		s.script = s.script[1:]
	case s.sticky != nil:
		step = *s.sticky
	default:
		return Step{}
	}
	if step.Status != 0 || step.Reset || step.Partition || step.Delay > 0 {
		s.faults++
	}
	return step
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	step := s.next()
	if step.Partition {
		<-r.Context().Done()
		return
	}
	if step.Delay > 0 {
		t := time.NewTimer(step.Delay)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
	if step.Reset {
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Should not happen with httptest's default server; fail the
			// request loudly rather than silently succeeding.
			http.Error(w, "faultserver: hijack unsupported", http.StatusInternalServerError)
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			return
		}
		if tcp, ok := conn.(*net.TCPConn); ok {
			// Linger 0 turns Close into an RST instead of a FIN, which is
			// what "connection reset by peer" means on the client side.
			_ = tcp.SetLinger(0)
		}
		_ = conn.Close()
		return
	}
	if step.Status != 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(step.Status)
		_, _ = w.Write([]byte(step.Body))
		return
	}
	s.inner.ServeHTTP(w, r)
}

// FailN scripts n consecutive failures with the given status (a 5xx
// burst), after which service recovers.
func FailN(n, status int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{Status: status, Body: `{"error":"injected"}`}
	}
	return steps
}

// Outage is a sticky failure: every request from now on gets status, until
// Clear. Pair with a breaker test: the client must open, not spin.
func Outage(status int) Step {
	return Step{Status: status, Body: `{"error":"outage"}`, Sticky: true}
}

// Flap scripts pairs failures alternating with healthy responses — the
// flapping upstream that tests whether consecutive-failure accounting
// resets on success.
func Flap(pairs, status int) []Step {
	steps := make([]Step, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		steps = append(steps, Step{Status: status, Body: `{"error":"flap"}`}, Step{})
	}
	return steps
}

// CorruptJSON is a 200 response whose body is truncated JSON — the
// partial-write failure mode a decoder must reject with a typed error.
func CorruptJSON() Step {
	return Step{Status: http.StatusOK, Body: `{"intensity_g_per_resource_second": 12.`}
}

// Partitioned is a sticky accept-then-stall: every request from now on
// hangs until the client's own timeout, until Clear. This is the fault
// that distinguishes a probe timeout from a connection error.
func Partitioned() Step {
	return Step{Partition: true, Sticky: true}
}

// FlapLatency scripts pairs of latency-spiked responses alternating with
// healthy ones — the flapping-slow upstream. Spiked responses still
// succeed once the delay passes, so only hysteresis (or a latency budget)
// should act on them.
func FlapLatency(pairs int, delay time.Duration) []Step {
	steps := make([]Step, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		steps = append(steps, Step{Delay: delay}, Step{})
	}
	return steps
}
