package faultserver

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func healthy() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(body), nil
}

// TestPassThrough checks an unprogrammed server is transparent.
func TestPassThrough(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	status, body, err := get(t, s.URL())
	if err != nil || status != http.StatusOK || body != `{"ok":true}` {
		t.Fatalf("pass-through got (%d, %q, %v)", status, body, err)
	}
	if s.Hits() != 1 || s.Faults() != 0 {
		t.Errorf("hits=%d faults=%d", s.Hits(), s.Faults())
	}
}

// TestFailNThenRecover checks the scripted burst is consumed in order.
func TestFailNThenRecover(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(FailN(3, http.StatusServiceUnavailable)...)
	for i := 0; i < 3; i++ {
		status, _, err := get(t, s.URL())
		if err != nil || status != http.StatusServiceUnavailable {
			t.Fatalf("burst request %d: (%d, %v)", i, status, err)
		}
	}
	status, body, err := get(t, s.URL())
	if err != nil || status != http.StatusOK || body != `{"ok":true}` {
		t.Fatalf("post-burst request: (%d, %q, %v)", status, body, err)
	}
	if s.Faults() != 3 {
		t.Errorf("faults = %d, want 3", s.Faults())
	}
}

// TestStickyOutageAndClear checks Outage persists until Clear.
func TestStickyOutageAndClear(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(Outage(http.StatusBadGateway))
	for i := 0; i < 5; i++ {
		status, _, err := get(t, s.URL())
		if err != nil || status != http.StatusBadGateway {
			t.Fatalf("outage request %d: (%d, %v)", i, status, err)
		}
	}
	s.Clear()
	status, _, err := get(t, s.URL())
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-recovery request: (%d, %v)", status, err)
	}
}

// TestFlap checks the alternating script.
func TestFlap(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(Flap(2, http.StatusInternalServerError)...)
	want := []int{500, 200, 500, 200, 200}
	for i, w := range want {
		status, _, err := get(t, s.URL())
		if err != nil || status != w {
			t.Fatalf("flap request %d: status %d (err %v), want %d", i, status, err, w)
		}
	}
}

// TestCorruptJSON checks the corrupt step returns 200 with a body that
// must not decode.
func TestCorruptJSON(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(CorruptJSON())
	status, body, err := get(t, s.URL())
	if err != nil || status != http.StatusOK {
		t.Fatalf("(%d, %v)", status, err)
	}
	if !strings.HasPrefix(body, "{") || strings.HasSuffix(body, "}") {
		t.Errorf("corrupt body %q looks well-formed", body)
	}
}

// TestReset checks the reset step produces a transport-level error, not an
// HTTP response.
func TestReset(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(Step{Reset: true})
	_, _, err := get(t, s.URL())
	if err == nil {
		t.Fatal("reset request returned a response")
	}
	// Depending on timing the client sees ECONNRESET or an unexpected
	// EOF; both are transport failures, which is what matters.
	if !errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Logf("reset surfaced as %v (accepted: any transport error)", err)
	}
	status, _, err := get(t, s.URL())
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-reset request: (%d, %v)", status, err)
	}
}

// TestDelayRespectsClientTimeout checks a latency spike ends when the
// client hangs up, so scripted stalls cannot outlive a test.
func TestDelayRespectsClientTimeout(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(Step{Delay: time.Hour})
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(s.URL())
	if err == nil {
		t.Fatal("stalled request returned")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("stall surfaced as %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client stuck for %v despite its 50ms timeout", elapsed)
	}
}

// TestDelayedResponse checks a short delay still serves the real handler.
func TestDelayedResponse(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	s.Program(Step{Delay: 10 * time.Millisecond})
	start := time.Now()
	status, body, err := get(t, s.URL())
	if err != nil || status != http.StatusOK || body != `{"ok":true}` {
		t.Fatalf("(%d, %q, %v)", status, body, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("delay step did not delay")
	}
}

// TestProgramMidFlight checks steps can be injected while traffic flows —
// the mid-run outage pattern the end-to-end tests use.
func TestProgramMidFlight(t *testing.T) {
	s := New(healthy())
	defer s.Close()
	if status, _, _ := get(t, s.URL()); status != http.StatusOK {
		t.Fatal("healthy phase failed")
	}
	s.Program(Outage(http.StatusServiceUnavailable))
	if status, _, _ := get(t, s.URL()); status != http.StatusServiceUnavailable {
		t.Fatal("outage did not take effect mid-flight")
	}
	s.Clear()
	if status, _, _ := get(t, s.URL()); status != http.StatusOK {
		t.Fatal("recovery did not take effect mid-flight")
	}
}
