package resilience

import "errors"

// Sentinel errors for the failure classes the policy machinery produces.
// They exist so callers can branch on the failure class with errors.Is
// instead of matching message text — the livesignal feed serves its cached
// sample on ErrBreakerOpen but surfaces ErrNoSignal when it has nothing,
// for example — matching the internal/shapley error convention. Errors
// carrying instance detail (attempt counts, the last underlying cause)
// wrap the sentinel via fmt.Errorf("...: %w", ...).
var (
	// ErrBreakerOpen reports a call rejected without an attempt because
	// the circuit breaker is open (the endpoint is presumed down).
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrRetriesExhausted reports an operation that failed on every
	// allowed attempt. The returned error also wraps the last cause, so
	// errors.Is/As reach through to it.
	ErrRetriesExhausted = errors.New("resilience: retries exhausted")
	// ErrBudgetExhausted reports an operation abandoned because the
	// policy's total time budget ran out before the attempts did.
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// permanentError marks an error as not worth retrying: the caller's
// request itself is wrong (a 4xx, a malformed URL), so repeating it can
// only waste the budget and pollute the breaker's failure counts.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do fails fast instead of retrying, and the
// breaker ignores it (a bad request says nothing about endpoint health).
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}
