package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manual clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// transitionRecorder captures OnStateChange calls.
type transitionRecorder struct {
	mu    sync.Mutex
	moves []string
}

func (r *transitionRecorder) observe(from, to State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.moves = append(r.moves, fmt.Sprintf("%s->%s", from, to))
}

func (r *transitionRecorder) all() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.moves...)
}

// TestBreakerFullCycle drives closed -> open -> half-open -> closed with a
// manual clock and checks every transition and the probe accounting.
func TestBreakerFullCycle(t *testing.T) {
	clock := newFakeClock()
	rec := &transitionRecorder{}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		ProbeInterval:    10 * time.Second,
		ProbeSuccesses:   2,
		Now:              clock.Now,
		OnStateChange:    rec.observe,
	})

	if b.State() != StateClosed {
		t.Fatalf("new breaker state %v", b.State())
	}
	// Two failures stay closed; an interleaved success resets the count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatalf("breaker opened before the threshold: %v", b.State())
	}
	b.Failure() // third consecutive failure
	if b.State() != StateOpen {
		t.Fatalf("breaker did not open at the threshold: %v", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Probe interval not yet elapsed: still rejecting.
	clock.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker half-opened early: %v", err)
	}
	// Elapsed: the next Allow admits the probe and the state reads
	// half-open.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("expired breaker rejected the probe: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state after probe admission %v", b.State())
	}
	// One probe success is not enough (ProbeSuccesses: 2)...
	b.Success()
	if b.State() != StateHalfOpen {
		t.Fatalf("breaker closed after one of two probe successes")
	}
	// ...the second closes it.
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("breaker did not close after the probe quota: %v", b.State())
	}

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	got := rec.all()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestBreakerProbeFailureReopens checks a failed probe re-opens the
// breaker and restarts the probe interval from the failure.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		ProbeInterval:    5 * time.Second,
		Now:              clock.Now,
	})
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("single-failure threshold did not open")
	}
	clock.Advance(6 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure() // the probe fails
	if b.State() != StateOpen {
		t.Fatalf("failed probe left state %v", b.State())
	}
	// The interval restarts at the re-open, not the original open.
	clock.Advance(4 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker probed again before the restarted interval elapsed")
	}
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("recovered probe left state %v", b.State())
	}
}

// TestBreakerDefaults checks the zero config is filled in and usable.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < DefaultFailureThreshold-1; i++ {
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Fatal("default breaker opened early")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("default breaker did not open at the default threshold")
	}
}

// TestBreakerConcurrent hammers a breaker from many goroutines under the
// race detector; the final state must be a valid State.
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, ProbeInterval: time.Nanosecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() == nil {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != StateClosed && s != StateOpen && s != StateHalfOpen {
		t.Fatalf("invalid final state %v", s)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateClosed: "closed", StateHalfOpen: "half-open", StateOpen: "open", State(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s, want)
		}
	}
}
