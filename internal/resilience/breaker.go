package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position. The numeric values are published
// as the fairco2_signal_breaker_state gauge, so they are part of the
// metric contract: 0 closed, 1 half-open, 2 open.
type State int

// The three breaker states.
const (
	StateClosed   State = 0
	StateHalfOpen State = 1
	StateOpen     State = 2
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive recorded failures open the
	// breaker (default 5).
	FailureThreshold int
	// ProbeInterval is how long an open breaker waits before letting a
	// probe request through (half-open), default 30s.
	ProbeInterval time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker again (default 1).
	ProbeSuccesses int
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
	// OnStateChange, when set, observes every transition. It is called
	// with the breaker's lock held; keep it cheap (a gauge set).
	OnStateChange func(from, to State)
}

// Defaults for the zero BreakerConfig.
const (
	DefaultFailureThreshold = 5
	DefaultProbeInterval    = 30 * time.Second
	DefaultProbeSuccesses   = 1
)

// Breaker is a three-state circuit breaker. Closed passes every call and
// counts consecutive failures; FailureThreshold of them open it. Open
// rejects calls with ErrBreakerOpen until ProbeInterval has elapsed, then
// half-opens. Half-open lets calls through as probes: one failure re-opens
// it, ProbeSuccesses consecutive successes close it. It is safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold < 1 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeSuccesses < 1 {
		cfg.ProbeSuccesses = DefaultProbeSuccesses
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.failures, b.successes = 0, 0
	if to == StateOpen {
		b.openedAt = b.cfg.Now()
	}
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// Allow reports whether a call may proceed now. It returns nil from the
// closed and half-open states, flips an expired open breaker to half-open
// (admitting the probe), and returns ErrBreakerOpen otherwise. A nil
// result obliges the caller to report the outcome via Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.ProbeInterval {
			return ErrBreakerOpen
		}
		b.transition(StateHalfOpen)
	}
	return nil
}

// Success records a successful call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures = 0
	case StateHalfOpen:
		b.successes++
		if b.successes >= b.cfg.ProbeSuccesses {
			b.transition(StateClosed)
		}
	}
}

// Failure records a failed call. While closed it counts toward the
// threshold; while half-open it re-opens the breaker immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transition(StateOpen)
		}
	case StateHalfOpen:
		b.transition(StateOpen)
	}
}

// State returns the breaker's current position (open flips to half-open
// only on the next Allow, so a quiesced-open breaker reads open).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
