package resilience

import (
	"context"
	"errors"
	"flag"
	"math/rand"
	"testing"
	"time"
)

// policyHarness wires a Policy to a manual clock whose fake Sleep advances
// it, so budget arithmetic is exact and no test ever really sleeps.
type policyHarness struct {
	clock  *fakeClock
	slept  []time.Duration
	policy *Policy
}

func newPolicyHarness(p *Policy, seed int64) *policyHarness {
	h := &policyHarness{clock: newFakeClock(), policy: p}
	p.Rand = rand.New(rand.NewSource(seed))
	p.Now = h.clock.Now
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		h.slept = append(h.slept, d)
		h.clock.Advance(d)
		return nil
	}
	return h
}

// failNTimes returns an op failing its first n calls, then succeeding.
func failNTimes(n int, err error, calls *int) func(context.Context) error {
	return func(context.Context) error {
		*calls++
		if *calls <= n {
			return err
		}
		return nil
	}
}

// TestPolicyRetriesThenSucceeds checks a transient failure burst is
// absorbed and the sleeps follow the seeded backoff schedule exactly.
func TestPolicyRetriesThenSucceeds(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	var retried []int
	p := &Policy{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond},
		OnRetry:     func(attempt int, err error, d time.Duration) { retried = append(retried, attempt) },
	}
	h := newPolicyHarness(p, 7)
	if err := p.Do(context.Background(), failNTimes(3, boom, &calls)); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 {
		t.Errorf("op called %d times, want 4", calls)
	}
	want := Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond}.
		Schedule(rand.New(rand.NewSource(7)), 3)
	if len(h.slept) != len(want) {
		t.Fatalf("slept %v, want %v", h.slept, want)
	}
	for i := range want {
		if h.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, h.slept[i], want[i])
		}
	}
	if len(retried) != 3 || retried[0] != 1 || retried[2] != 3 {
		t.Errorf("OnRetry attempts %v", retried)
	}
}

// TestPolicyRetriesExhausted checks the sentinel wraps the last cause.
func TestPolicyRetriesExhausted(t *testing.T) {
	boom := errors.New("still down")
	calls := 0
	p := &Policy{MaxAttempts: 3, Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}}
	newPolicyHarness(p, 1)
	err := p.Do(context.Background(), failNTimes(99, boom, &calls))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("error %v is not ErrRetriesExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the last cause", err)
	}
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
}

// TestPolicyBudgetExhausted checks Do gives up when the next backoff would
// overrun the total budget, wrapping both sentinels' worth of context.
func TestPolicyBudgetExhausted(t *testing.T) {
	boom := errors.New("down")
	calls := 0
	p := &Policy{
		MaxAttempts: 100,
		Backoff:     Backoff{Base: 40 * time.Millisecond, Cap: 40 * time.Millisecond},
		Budget:      100 * time.Millisecond,
	}
	h := newPolicyHarness(p, 1)
	err := p.Do(context.Background(), failNTimes(999, boom, &calls))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error %v is not ErrBudgetExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the last cause", err)
	}
	// 40ms sleeps against a 100ms budget: attempt, sleep(40), attempt,
	// sleep(40), attempt, then the third sleep would hit 120ms >= 100ms.
	if calls != 3 {
		t.Errorf("op called %d times, want 3", calls)
	}
	if len(h.slept) != 2 {
		t.Errorf("slept %d times, want 2 (%v)", len(h.slept), h.slept)
	}
}

// TestPolicyPermanentNoRetry checks Permanent short-circuits the loop and
// comes back unwrapped by the retry sentinels.
func TestPolicyPermanentNoRetry(t *testing.T) {
	bad := errors.New("404 not found")
	calls := 0
	p := &Policy{MaxAttempts: 5}
	newPolicyHarness(p, 1)
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(bad)
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, bad) {
		t.Fatalf("error %v lost the cause", err)
	}
	if errors.Is(err, ErrRetriesExhausted) || errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("permanent failure mislabeled: %v", err)
	}
	if !IsPermanent(err) {
		t.Error("IsPermanent lost the marker")
	}
}

// TestPolicyBreakerIntegration checks consecutive Do failures open the
// breaker, further calls fail fast without invoking the op, and permanent
// errors leave the failure count alone.
func TestPolicyBreakerIntegration(t *testing.T) {
	clock := newFakeClock()
	br := NewBreaker(BreakerConfig{FailureThreshold: 4, ProbeInterval: time.Minute, Now: clock.Now})
	p := &Policy{MaxAttempts: 2, Breaker: br, Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond}}
	newPolicyHarness(p, 1)

	// A permanent failure must not move the breaker.
	_ = p.Do(context.Background(), func(context.Context) error { return Permanent(errors.New("bad request")) })
	if br.State() != StateClosed {
		t.Fatal("permanent error tripped the breaker")
	}

	// Two Do calls x two attempts = four transient failures: open.
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := p.Do(context.Background(), failNTimes(999, boom, &calls)); !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if br.State() != StateOpen {
		t.Fatalf("breaker state %v after 4 transient failures", br.State())
	}
	before := calls
	if err := p.Do(context.Background(), failNTimes(999, boom, &calls)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if calls != before {
		t.Error("open breaker still invoked the op")
	}

	// After the probe interval a successful probe closes it again.
	clock.Advance(2 * time.Minute)
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if br.State() != StateClosed {
		t.Fatalf("breaker state %v after successful probe", br.State())
	}
}

// TestPolicyContextCancelDuringSleep checks cancellation interrupts the
// backoff and surfaces context.Canceled.
func TestPolicyContextCancelDuringSleep(t *testing.T) {
	boom := errors.New("boom")
	p := &Policy{
		MaxAttempts: 10,
		Backoff:     Backoff{Base: time.Hour, Cap: time.Hour}, // would hang if really slept
	}
	p.Rand = rand.New(rand.NewSource(1))
	ctx, cancel := context.WithCancel(context.Background())
	p.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up mid-backoff
		return ctx.Err()
	}
	err := p.Do(ctx, func(context.Context) error { return boom })
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("error %v should wrap context.Canceled and the last cause", err)
	}
}

// TestPolicyAttemptTimeout checks each attempt gets its own deadline.
func TestPolicyAttemptTimeout(t *testing.T) {
	p := &Policy{
		MaxAttempts:    2,
		AttemptTimeout: 10 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Cap: time.Millisecond},
	}
	p.Rand = rand.New(rand.NewSource(1))
	p.Sleep = func(context.Context, time.Duration) error { return nil }
	deadlines := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // simulate an op pinned until its deadline
		return ctx.Err()
	})
	if !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v", err)
	}
	if deadlines != 2 {
		t.Errorf("%d attempts saw a deadline, want 2", deadlines)
	}
}

// TestPolicyZeroValue checks the zero policy is usable with defaults.
func TestPolicyZeroValue(t *testing.T) {
	p := &Policy{}
	p.Sleep = func(context.Context, time.Duration) error { return nil }
	calls := 0
	err := p.Do(context.Background(), failNTimes(999, errors.New("x"), &calls))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err %v", err)
	}
	if calls != DefaultMaxAttempts {
		t.Errorf("zero policy made %d attempts, want %d", calls, DefaultMaxAttempts)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	if IsPermanent(nil) {
		t.Error("IsPermanent(nil)")
	}
}

// TestConfigValidate exercises every rejection branch.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MaxAttempts = 0 },
		func(c *Config) { c.BackoffBase = 0 },
		func(c *Config) { c.BackoffCap = c.BackoffBase - 1 },
		func(c *Config) { c.AttemptTimeout = -1 },
		func(c *Config) { c.Budget = -1 },
		func(c *Config) { c.ProbeInterval = 0 },
		func(c *Config) { c.ProbeSuccesses = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
	// Breaker disabled: the probe knobs are irrelevant.
	cfg := DefaultConfig()
	cfg.BreakerFailures = 0
	cfg.ProbeInterval = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("breakerless config rejected: %v", err)
	}
}

// TestConfigNewPolicy checks the materialized policy carries the knobs and
// the breaker is omitted when disabled.
func TestConfigNewPolicy(t *testing.T) {
	cfg := DefaultConfig()
	p, br := cfg.NewPolicy(123)
	if p.MaxAttempts != cfg.MaxAttempts || p.AttemptTimeout != cfg.AttemptTimeout || p.Budget != cfg.Budget {
		t.Errorf("policy %+v does not carry the config", p)
	}
	if br == nil || p.Breaker != br {
		t.Error("breaker not wired into the policy")
	}
	cfg.BreakerFailures = 0
	p, br = cfg.NewPolicy(123)
	if br != nil || p.Breaker != nil {
		t.Error("disabled breaker still materialized")
	}
}

// TestConfigRegisterFlags checks the flag group parses back into the
// config under the shared prefix.
func TestConfigRegisterFlags(t *testing.T) {
	cfg := DefaultConfig()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.RegisterFlags(fs, "signal")
	err := fs.Parse([]string{
		"-signal-retry-attempts=7",
		"-signal-retry-base=5ms",
		"-signal-retry-cap=250ms",
		"-signal-attempt-timeout=1s",
		"-signal-retry-budget=30s",
		"-signal-breaker-failures=2",
		"-signal-breaker-probe-interval=3s",
		"-signal-breaker-probe-successes=4",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		MaxAttempts: 7, BackoffBase: 5 * time.Millisecond, BackoffCap: 250 * time.Millisecond,
		AttemptTimeout: time.Second, Budget: 30 * time.Second,
		BreakerFailures: 2, ProbeInterval: 3 * time.Second, ProbeSuccesses: 4,
	}
	if cfg != want {
		t.Errorf("parsed config %+v, want %+v", cfg, want)
	}
}
