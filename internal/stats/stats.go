// Package stats provides the small numerical toolkit Fair-CO2 needs:
// descriptive statistics, percentiles, histograms, forecast-error metrics,
// and an ordinary-least-squares solver. Everything is implemented from
// scratch on the standard library because the module is offline.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesSorted returns the percentiles ps of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MAPE returns the mean absolute percentage error between actual and
// forecast values, in percent. Pairs where the actual value is zero are
// skipped. It returns an error when the slices differ in length or no pair
// is usable.
func MAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, errors.New("stats: MAPE requires equal-length slices")
	}
	sum, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - forecast[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, errors.New("stats: MAPE undefined, all actual values are zero")
	}
	return sum / float64(n) * 100, nil
}

// MaxAPE returns the worst-case absolute percentage error, in percent,
// skipping zero actual values.
func MaxAPE(actual, forecast []float64) (float64, error) {
	if len(actual) != len(forecast) {
		return 0, errors.New("stats: MaxAPE requires equal-length slices")
	}
	worst, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		ape := math.Abs((actual[i] - forecast[i]) / actual[i])
		if ape > worst {
			worst = ape
		}
		n++
	}
	if n == 0 {
		return 0, errors.New("stats: MaxAPE undefined, all actual values are zero")
	}
	return worst * 100, nil
}

// Summary holds the descriptive statistics reported for each Monte Carlo
// experiment series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	qs := Percentiles(xs, 5, 25, 50, 75, 95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P5:     qs[0],
		P25:    qs[1],
		Median: qs[2],
		P75:    qs[3],
		P95:    qs[4],
		Max:    Max(xs),
	}
}
