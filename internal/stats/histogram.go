package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics if bins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram interval must have hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a single observation. Values outside [Lo, Hi] are clamped to
// the first or last bin so the histogram still reflects total mass.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of observations in bin i, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Render draws a fixed-width ASCII bar chart of the histogram, one line per
// bin. It is used by the experiment harnesses to show distribution shape
// (the paper's violin plots) in terminal output.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
