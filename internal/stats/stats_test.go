package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	approx(t, Mean(xs), 2.8, 1e-12, "Mean")
	approx(t, Sum(xs), 14, 1e-12, "Sum")
	approx(t, Min(xs), 1, 0, "Min")
	approx(t, Max(xs), 5, 0, "Max")
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("Summarize(nil).N != 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Variance(xs), 4, 1e-12, "Variance")
	approx(t, StdDev(xs), 2, 1e-12, "StdDev")
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	approx(t, Percentile(xs, 0), 15, 0, "P0")
	approx(t, Percentile(xs, 100), 50, 0, "P100")
	approx(t, Percentile(xs, 50), 35, 0, "P50")
	approx(t, Percentile(xs, 25), 20, 1e-12, "P25")
	// Interpolated value.
	approx(t, Percentile(xs, 40), 29, 1e-12, "P40")
	// Input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	ps := []float64{5, 25, 50, 75, 95}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		approx(t, got[i], Percentile(xs, p), 1e-12, "Percentiles vs Percentile")
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200, 0, 400}
	forecast := []float64{110, 180, 5, 400}
	got, err := MAPE(actual, forecast)
	if err != nil {
		t.Fatal(err)
	}
	// (10% + 10% + skip + 0%) / 3 = 6.666%
	approx(t, got, 20.0/3, 1e-9, "MAPE")

	worst, err := MaxAPE(actual, forecast)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, worst, 10, 1e-9, "MaxAPE")
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MAPE should reject mismatched lengths")
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("MAPE should reject all-zero actuals")
	}
	if _, err := MaxAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MaxAPE should reject mismatched lengths")
	}
	if _, err := MaxAPE([]float64{0}, []float64{1}); err == nil {
		t.Error("MaxAPE should reject all-zero actuals")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 {
		t.Errorf("N = %d, want 101", s.N)
	}
	approx(t, s.Mean, 50, 1e-12, "mean")
	approx(t, s.Median, 50, 1e-12, "median")
	approx(t, s.P5, 5, 1e-12, "p5")
	approx(t, s.P95, 95, 1e-12, "p95")
	approx(t, s.Min, 0, 0, "min")
	approx(t, s.Max, 100, 0, "max")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0.5, 1, 3, 3.5, 9.9, -4, 40})
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// -4 clamps into bin 0; 40 clamps into bin 4.
	if h.Counts[0] != 3 {
		t.Errorf("bin0 = %d, want 3 (0.5, 1, clamped -4)", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[4] != 2 {
		t.Errorf("bin4 = %d, want 2 (9.9, clamped 40)", h.Counts[4])
	}
	approx(t, h.BinCenter(0), 1, 1e-12, "BinCenter(0)")
	approx(t, h.Fraction(0), 3.0/7, 1e-12, "Fraction(0)")
	if out := h.Render(20); out == "" {
		t.Error("Render returned empty output")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("inverted interval", func() { NewHistogram(1, 0, 3) })
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		approx(t, x[i], want[i], 1e-9, "solution")
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinearSystem(a, []float64{1, 2}); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestSolveLinearSystemShapeErrors(t *testing.T) {
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	// y = 3 + 2*x1 - 0.5*x2, no noise.
	rng := rand.New(rand.NewSource(42))
	var xrows [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 10
		x2 := rng.Float64() * 5
		xrows = append(xrows, []float64{1, x1, x2})
		y = append(y, 3+2*x1-0.5*x2)
	}
	b, err := OLS(xrows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i := range want {
		approx(t, b[i], want[i], 1e-6, "coefficient")
	}
}

func TestOLSWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xrows [][]float64
	var y []float64
	for i := 0; i < 5000; i++ {
		x1 := rng.Float64() * 10
		xrows = append(xrows, []float64{1, x1})
		y = append(y, 1+4*x1+rng.NormFloat64()*0.1)
	}
	b, err := OLS(xrows, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, b[0], 1, 0.05, "intercept")
	approx(t, b[1], 4, 0.01, "slope")
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("expected error for no observations")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := OLS([][]float64{{}}, []float64{1}); err == nil {
		t.Error("expected error for zero features")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged matrix")
	}
}
