package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Lo, Hi float64
	// Point is the statistic on the original sample.
	Point float64
}

// BootstrapMeanCI estimates a percentile-bootstrap confidence interval for
// the mean of xs: resamples-with-replacement iters times and takes the
// (1-conf)/2 and (1+conf)/2 quantiles of the resampled means. Used to put
// error bars on the Monte Carlo deviation summaries.
func BootstrapMeanCI(xs []float64, conf float64, iters int, seed int64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, errors.New("stats: bootstrap needs at least one observation")
	}
	if conf <= 0 || conf >= 1 {
		return CI{}, errors.New("stats: confidence must be in (0, 1)")
	}
	if iters < 10 {
		return CI{}, errors.New("stats: bootstrap needs at least 10 iterations")
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, iters)
	n := len(xs)
	for it := range means {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += xs[rng.Intn(n)]
		}
		means[it] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return CI{
		Lo:    percentileSorted(means, alpha*100),
		Hi:    percentileSorted(means, (1-alpha)*100),
		Point: Mean(xs),
	}, nil
}
