package stats

import (
	"errors"
	"math"
)

// OLS solves the ordinary-least-squares problem min ||X b - y||^2 and
// returns the coefficient vector b. X is row-major with one row per
// observation and one column per feature. The solution is computed from the
// normal equations (X'X) b = X'y with Gaussian elimination and partial
// pivoting plus a small ridge term for numerical robustness when columns
// are nearly collinear (Fourier feature matrices are well conditioned, so
// the ridge term is effectively inert there).
func OLS(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("stats: OLS requires at least one observation")
	}
	if len(y) != n {
		return nil, errors.New("stats: OLS requires len(y) == len(x)")
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("stats: OLS requires at least one feature")
	}
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("stats: OLS requires rectangular design matrix")
		}
	}

	// Normal equations: a = X'X (p x p), b = X'y (p).
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	for _, row := range x {
		for i := 0; i < p; i++ {
			if row[i] == 0 {
				continue
			}
			for j := i; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	for k, row := range x {
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[k]
		}
		_ = k
	}

	// Tiny ridge proportional to the diagonal scale keeps the system
	// solvable when features are duplicated.
	scale := 0.0
	for i := 0; i < p; i++ {
		scale += a[i][i]
	}
	ridge := 1e-12 * scale / float64(p)
	for i := 0; i < p; i++ {
		a[i][i] += ridge
	}

	sol, err := SolveLinearSystem(a, b)
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// SolveLinearSystem solves a x = b for square a using Gaussian elimination
// with partial pivoting. a and b are not modified.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: system dimensions mismatch")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("stats: matrix is not square")
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	rhs := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, errors.New("stats: singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}

	// Back substitution.
	sol := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := rhs[i]
		for j := i + 1; j < n; j++ {
			v -= m[i][j] * sol[j]
		}
		sol[i] = v / m[i][i]
	}
	return sol, nil
}
