package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	// Samples from a known distribution: the 95% CI should contain the
	// true mean in roughly 95% of experiments.
	rng := rand.New(rand.NewSource(1))
	const trueMean = 10.0
	covered, total := 0, 200
	for exp := 0; exp < total; exp++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = trueMean + rng.NormFloat64()*3
		}
		ci, err := BootstrapMeanCI(xs, 0.95, 400, int64(exp))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Lo <= trueMean && trueMean <= ci.Hi {
			covered++
		}
		if ci.Lo > ci.Point || ci.Point > ci.Hi {
			t.Fatalf("point estimate outside its own interval: %+v", ci)
		}
	}
	frac := float64(covered) / float64(total)
	if frac < 0.85 || frac > 1.0 {
		t.Errorf("coverage %.2f, want ~0.95", frac)
	}
}

func TestBootstrapMeanCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		ci, err := BootstrapMeanCI(xs, 0.95, 500, 1)
		if err != nil {
			t.Fatal(err)
		}
		return ci.Hi - ci.Lo
	}
	if width(1000) >= width(30) {
		t.Error("interval should shrink with sample size")
	}
}

func TestBootstrapMeanCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := BootstrapMeanCI(xs, 0.9, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMeanCI(xs, 0.9, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed must reproduce the interval")
	}
}

func TestBootstrapMeanCIErrors(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0, 100, 1); err == nil {
		t.Error("bad confidence")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1, 100, 1); err == nil {
		t.Error("confidence of 1")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.9, 5, 1); err == nil {
		t.Error("too few iterations")
	}
}
