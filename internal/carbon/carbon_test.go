package carbon

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("Table1 has %d rows, want 2", len(rows))
	}
	dram, cpu := rows[0], rows[1]
	if dram.Component != "DRAM" || cpu.Component != "CPU" {
		t.Fatalf("unexpected row order: %v, %v", dram.Component, cpu.Component)
	}
	// Paper Table 1: DRAM 1 W : 9.7943 kg, CPU 1 W : 0.0622 kg.
	approx(t, dram.RatioKgPerWatt, 9.7943, 5e-4, "DRAM ratio")
	approx(t, cpu.RatioKgPerWatt, 0.0622, 5e-4, "CPU ratio")
	// The gap between the ratios is the paper's argument that power is a
	// poor embodied-carbon proxy: over two orders of magnitude.
	if dram.RatioKgPerWatt/cpu.RatioKgPerWatt < 100 {
		t.Errorf("ratio gap %.1fx, want > 100x", dram.RatioKgPerWatt/cpu.RatioKgPerWatt)
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1(Table1())
	for _, want := range []string{"DRAM", "CPU", "165", "146.87", "10.27"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 output missing %q:\n%s", want, out)
		}
	}
}

func TestComponentRatioZeroTDP(t *testing.T) {
	c := Component{Name: "chassis", TDP: 0, Embodied: 35}
	if c.Ratio() != 0 {
		t.Error("zero-TDP component should report ratio 0")
	}
}

func TestReferenceServer(t *testing.T) {
	s := NewReferenceServer()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cores != 48 || s.MemoryGB != 192 || s.StorageGB != 480 {
		t.Errorf("unexpected shape: %v", s)
	}
	// 2 x 10.27 + 146.87 + 480*0.16 = 244.21 kg before platform overhead.
	direct := float64(s.CPUEmbodied + s.DRAMEmbodied + s.SSDEmbodied)
	approx(t, direct, 2*10.27+146.87+76.8, 1e-9, "direct embodied")
	if s.PlatformEmbodied <= 0 {
		t.Error("platform overhead should be positive")
	}
	if got := s.TotalEmbodied(); float64(got) <= direct {
		t.Errorf("TotalEmbodied %v should exceed direct %v", got, direct)
	}
}

func TestEmbodiedRate(t *testing.T) {
	s := NewReferenceServer()
	rate := s.EmbodiedRate()
	// Rate x lifetime must return the full footprint (uniform amortization).
	approx(t, rate*float64(s.Lifetime), float64(s.TotalEmbodied().Grams()), 1e-6, "rate x lifetime")
}

func TestResourceSharesSumToTotal(t *testing.T) {
	s := NewReferenceServer()
	shares, err := s.ResourceShares()
	if err != nil {
		t.Fatal(err)
	}
	total := float64(shares.CPUPerCore)*float64(s.Cores) +
		float64(shares.DRAMPerGB)*float64(s.MemoryGB) +
		float64(shares.SSDPerGB)*float64(s.StorageGB)
	approx(t, total, float64(s.TotalEmbodied()), 1e-9, "shares reassemble total")
	// DRAM per GB should exceed CPU per... no direct relation, but both positive.
	if shares.CPUPerCore <= 0 || shares.DRAMPerGB <= 0 || shares.SSDPerGB <= 0 {
		t.Errorf("non-positive share: %+v", shares)
	}
}

func TestResourceSharesNoStorage(t *testing.T) {
	s := NewReferenceServer()
	s.StorageGB = 0
	s.SSDEmbodied = 0
	shares, err := s.ResourceShares()
	if err != nil {
		t.Fatal(err)
	}
	if shares.SSDPerGB != 0 {
		t.Error("SSD share should be zero without storage")
	}
	total := float64(shares.CPUPerCore)*float64(s.Cores) + float64(shares.DRAMPerGB)*float64(s.MemoryGB)
	approx(t, total, float64(s.TotalEmbodied()), 1e-9, "shares reassemble total without SSD")
}

func TestPerResourceRates(t *testing.T) {
	s := NewReferenceServer()
	core, err := s.EmbodiedRatePerCore()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := s.EmbodiedRatePerGB()
	if err != nil {
		t.Fatal(err)
	}
	if core <= 0 || gb <= 0 {
		t.Fatalf("rates must be positive: core %v, gb %v", core, gb)
	}
}

func TestValidateErrors(t *testing.T) {
	base := NewReferenceServer()
	mutations := map[string]func(*Server){
		"no cores":          func(s *Server) { s.Cores = 0 },
		"no memory":         func(s *Server) { s.MemoryGB = 0 },
		"no lifetime":       func(s *Server) { s.Lifetime = 0 },
		"negative power":    func(s *Server) { s.StaticPower = -1 },
		"negative embodied": func(s *Server) { s.DRAMEmbodied = -1 },
	}
	for name, mutate := range mutations {
		s := *base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := s.ResourceShares(); err == nil {
			t.Errorf("%s: ResourceShares should propagate validation error", name)
		}
	}
	zero := *base
	zero.CPUEmbodied, zero.DRAMEmbodied, zero.SSDEmbodied = 0, 0, 0
	if _, err := zero.ResourceShares(); err == nil {
		t.Error("expected error when no direct footprints exist")
	}
}

func TestPowerModel(t *testing.T) {
	s := NewReferenceServer()
	if got := s.DynamicPower(0); got != 0 {
		t.Errorf("DynamicPower(0) = %v", got)
	}
	if got := s.DynamicPower(1); got != s.MaxDynamicPower {
		t.Errorf("DynamicPower(1) = %v", got)
	}
	if got := s.DynamicPower(0.5); got != s.MaxDynamicPower/2 {
		t.Errorf("DynamicPower(0.5) = %v", got)
	}
	// Clamping.
	if got := s.DynamicPower(-3); got != 0 {
		t.Errorf("DynamicPower(-3) = %v", got)
	}
	if got := s.DynamicPower(7); got != s.MaxDynamicPower {
		t.Errorf("DynamicPower(7) = %v", got)
	}
	if got := s.TotalPower(0.5); got != s.StaticPower+s.MaxDynamicPower/2 {
		t.Errorf("TotalPower(0.5) = %v", got)
	}
	// Static share at full load should be near the 60/40 split the paper
	// cites for Google datacenters (not exact; it depends on utilization).
	frac := float64(s.StaticPower) / float64(s.TotalPower(0.7))
	if frac < 0.4 || frac < 0.5 && s.MaxDynamicPower > s.StaticPower*2 {
		t.Errorf("static fraction at 70%% load = %.2f, model badly skewed", frac)
	}
}

func TestServerString(t *testing.T) {
	if s := NewReferenceServer().String(); !strings.Contains(s, "48 cores") {
		t.Errorf("String() = %q", s)
	}
}

func TestUniformAmortization(t *testing.T) {
	u := Uniform{}
	if u.Name() != "uniform" {
		t.Error("name")
	}
	total := units.GramsCO2e(1000)
	got, err := u.Budget(total, 100, 25, 75)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 500, 1e-12, "uniform window")
	full, err := u.Budget(total, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(full), 1000, 1e-12, "uniform full lifetime")
}

func TestAmortizationWindowErrors(t *testing.T) {
	u := Uniform{}
	cases := []struct{ lifetime, from, to units.Seconds }{
		{0, 0, 0},
		{100, -1, 50},
		{100, 0, 101},
		{100, 60, 50},
	}
	for _, c := range cases {
		if _, err := u.Budget(1, c.lifetime, c.from, c.to); err == nil {
			t.Errorf("expected error for window %+v", c)
		}
	}
}

func TestDecliningBalance(t *testing.T) {
	d := DecliningBalance{K: 2}
	if d.Name() != "declining-balance" {
		t.Error("name")
	}
	total := units.GramsCO2e(1000)
	early, err := d.Budget(total, 100, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	late, err := d.Budget(total, 100, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if early <= late {
		t.Errorf("declining balance should front-load: early %v <= late %v", early, late)
	}
	approx(t, float64(early+late), 1000, 1e-9, "budget conservation")

	// K <= 0 degrades to uniform.
	flat := DecliningBalance{K: 0}
	got, err := flat.Budget(total, 100, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 500, 1e-12, "K=0 is uniform")
}

func TestAmortizationConservationProperty(t *testing.T) {
	// Splitting a lifetime at any point conserves the total budget for
	// both schemes.
	schemes := []AmortizationScheme{Uniform{}, DecliningBalance{K: 3.5}}
	f := func(rawSplit float64) bool {
		split := units.Seconds(math.Mod(math.Abs(rawSplit), 99) + 0.5)
		for _, s := range schemes {
			a, err1 := s.Budget(1234, 100, 0, split)
			b, err2 := s.Budget(1234, 100, split, 100)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(float64(a+b)-1234) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
