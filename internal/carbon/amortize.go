package carbon

import (
	"errors"
	"math"

	"fairco2/internal/units"
)

// AmortizationScheme maps a total embodied footprint and a lifetime to a
// carbon budget for a window within that lifetime. Fair-CO2 uses uniform
// amortization by default (§5.1, citing Ji et al.); alternative schemes can
// front-load depreciation.
type AmortizationScheme interface {
	// Budget returns the gCO2e assigned to the window [from, to) of a
	// lifetime running over [0, lifetime).
	Budget(total units.GramsCO2e, lifetime, from, to units.Seconds) (units.GramsCO2e, error)
	// Name identifies the scheme.
	Name() string
}

// Uniform amortizes embodied carbon at a constant rate over the lifetime.
type Uniform struct{}

// Name implements AmortizationScheme.
func (Uniform) Name() string { return "uniform" }

// Budget implements AmortizationScheme.
func (Uniform) Budget(total units.GramsCO2e, lifetime, from, to units.Seconds) (units.GramsCO2e, error) {
	if err := checkWindow(lifetime, from, to); err != nil {
		return 0, err
	}
	return units.GramsCO2e(float64(total) * float64(to-from) / float64(lifetime)), nil
}

// DecliningBalance front-loads amortization with an exponential decay: the
// instantaneous rate at time t is proportional to exp(-k t / lifetime),
// normalized so the whole footprint is assigned over the lifetime. It models
// accelerated depreciation schedules where newer hardware carries more of
// its manufacturing debt.
type DecliningBalance struct {
	// K is the decay constant; K -> 0 approaches uniform amortization.
	K float64
}

// Name implements AmortizationScheme.
func (d DecliningBalance) Name() string { return "declining-balance" }

// Budget implements AmortizationScheme.
func (d DecliningBalance) Budget(total units.GramsCO2e, lifetime, from, to units.Seconds) (units.GramsCO2e, error) {
	if err := checkWindow(lifetime, from, to); err != nil {
		return 0, err
	}
	if d.K <= 0 {
		return Uniform{}.Budget(total, lifetime, from, to)
	}
	// Integral of exp(-k x) over [a, b] with x = t/lifetime, normalized by
	// the integral over [0, 1]: (exp(-k a) - exp(-k b)) / (1 - exp(-k)).
	a := float64(from) / float64(lifetime)
	b := float64(to) / float64(lifetime)
	num := math.Exp(-d.K*a) - math.Exp(-d.K*b)
	den := 1 - math.Exp(-d.K)
	return units.GramsCO2e(float64(total) * num / den), nil
}

func checkWindow(lifetime, from, to units.Seconds) error {
	switch {
	case lifetime <= 0:
		return errors.New("carbon: lifetime must be positive")
	case from < 0 || to > lifetime || from > to:
		return errors.New("carbon: amortization window outside lifetime")
	}
	return nil
}
