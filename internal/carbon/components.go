// Package carbon implements the embodied- and operational-carbon models of
// Fair-CO2 (paper §2, §6.1, Table 1). Component footprints follow the
// architectural carbon models the paper builds on (ACT for logic and DRAM,
// the SSD rate from Tannu & Nair, and the Dell R740 LCA for platform
// overheads), with the paper's exact Table 1 values as defaults.
package carbon

import (
	"fmt"

	"fairco2/internal/units"
)

// Component is a hardware component with a manufacturing (embodied) carbon
// footprint and a thermal design power.
type Component struct {
	Name     string
	TDP      units.Watts
	Embodied units.KgCO2e
}

// Ratio returns the embodied carbon per watt of TDP in kgCO2e/W — the
// quantity Table 1 uses to show power is a poor proxy for embodied carbon.
func (c Component) Ratio() float64 {
	if c.TDP == 0 {
		return 0
	}
	return float64(c.Embodied) / float64(c.TDP)
}

// Paper Table 1 / §6.1 reference values for the evaluation server (two
// Intel Xeon Gold 6240R, 192 GB DDR4, 480 GB SSD).
const (
	// XeonGold6240RTDP is the TDP of one Xeon Gold 6240R package.
	XeonGold6240RTDP units.Watts = 165
	// XeonGold6240REmbodied is the ACT-modeled embodied carbon of one
	// Xeon Gold 6240R package (Table 1).
	XeonGold6240REmbodied units.KgCO2e = 10.27
	// DDR4TDPPer192GB is the TDP of the server's 192 GB DDR4 complement.
	DDR4TDPPer192GB units.Watts = 25
	// DDR4EmbodiedPer192GB is the embodied carbon of 192 GB DDR4 (Table 1).
	DDR4EmbodiedPer192GB units.KgCO2e = 146.87
	// SSDEmbodiedPerGB is the SSD embodied-carbon rate (0.16 kgCO2e/GB).
	SSDEmbodiedPerGB = 0.16
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Component string
	TDP       units.Watts
	Embodied  units.KgCO2e
	// RatioKgPerWatt is embodied carbon per watt of TDP.
	RatioKgPerWatt float64
}

// DDR4RatioPaper is the DRAM ratio exactly as printed in Table 1
// (1 W : 9.7943 kgCO2e). Note the printed row is internally inconsistent:
// 146.87 kg / 25 W = 5.8748 kg/W, so the authors' ratio implies an
// effective DRAM power basis of ~15 W. We reproduce the printed figure and
// keep Component.Ratio for consistent computed ratios.
const DDR4RatioPaper = 9.7943

// Table1 returns the paper's Table 1: the TDP-to-embodied-carbon ratios of
// DRAM and CPU, demonstrating that energy is a poor proxy for embodied
// carbon (the ratios differ by more than two orders of magnitude). Ratios
// are the paper's printed values; see DDR4RatioPaper for the discrepancy in
// the DRAM row.
func Table1() []Table1Row {
	dram := Component{Name: "DRAM", TDP: DDR4TDPPer192GB, Embodied: DDR4EmbodiedPer192GB}
	cpu := Component{Name: "CPU", TDP: XeonGold6240RTDP, Embodied: XeonGold6240REmbodied}
	return []Table1Row{
		{Component: dram.Name, TDP: dram.TDP, Embodied: dram.Embodied, RatioKgPerWatt: DDR4RatioPaper},
		{Component: cpu.Name, TDP: cpu.TDP, Embodied: cpu.Embodied, RatioKgPerWatt: cpu.Ratio()},
	}
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	s := fmt.Sprintf("%-10s %8s %18s %24s\n", "Component", "TDP", "Embodied Carbon", "Ratio")
	for _, r := range rows {
		s += fmt.Sprintf("%-10s %6.0f W %15.2f kg %14.4f kg/W\n",
			r.Component, float64(r.TDP), float64(r.Embodied), r.RatioKgPerWatt)
	}
	return s
}
