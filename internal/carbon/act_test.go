package carbon

import (
	"math"
	"testing"
)

func TestLogicEmbodiedTrends(t *testing.T) {
	// Leading-edge nodes cost more per area: energy per area rises and
	// yield falls.
	area := 5.0
	var prev float64
	for _, node := range []ProcessNode{Node28nm, Node14nm, Node7nm, Node3nm} {
		kg, err := LogicEmbodied(area, node, FabTaiwan)
		if err != nil {
			t.Fatal(err)
		}
		if float64(kg) <= prev {
			t.Errorf("%s should cost more than the previous node (%v vs %v)", node, kg, prev)
		}
		prev = float64(kg)
	}
	// Cleaner fabs cut the footprint.
	dirty, err := LogicEmbodied(area, Node7nm, FabTaiwan)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := LogicEmbodied(area, Node7nm, FabRenewable)
	if err != nil {
		t.Fatal(err)
	}
	if clean >= dirty {
		t.Error("renewable fab should cut logic embodied carbon")
	}
}

func TestLogicEmbodiedErrors(t *testing.T) {
	if _, err := LogicEmbodied(0, Node7nm, FabTaiwan); err == nil {
		t.Error("zero area")
	}
	if _, err := LogicEmbodied(1, "1nm", FabTaiwan); err == nil {
		t.Error("unknown node")
	}
	if _, err := LogicEmbodied(1, Node7nm, "mars"); err == nil {
		t.Error("unknown fab")
	}
}

func TestDRAMEmbodiedMatchesTable1(t *testing.T) {
	// 192 GB of DDR4 must reproduce the Table 1 value.
	kg, err := DRAMEmbodied(192, DDR4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(kg)-float64(DDR4EmbodiedPer192GB)) > 0.2 {
		t.Errorf("192 GB DDR4 = %v, want ~%v", kg, DDR4EmbodiedPer192GB)
	}
	// Newer generations are denser per GB of carbon.
	d3, _ := DRAMEmbodied(100, DDR3)
	d5, _ := DRAMEmbodied(100, DDR5)
	if d5 >= d3 {
		t.Error("DDR5 should embody less carbon per GB than DDR3")
	}
	if _, err := DRAMEmbodied(0, DDR4); err == nil {
		t.Error("zero capacity")
	}
	if _, err := DRAMEmbodied(1, "hbm9"); err == nil {
		t.Error("unknown tech")
	}
}

func TestSSDEmbodied(t *testing.T) {
	kg, err := SSDEmbodied(480)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(kg)-76.8) > 1e-9 {
		t.Errorf("480 GB SSD = %v, want 76.8 kg", kg)
	}
	if _, err := SSDEmbodied(-1); err == nil {
		t.Error("negative capacity")
	}
}

func TestBuildServerApproximatesReference(t *testing.T) {
	// An ACT-style build of the evaluation machine should land near the
	// reference model (the reference uses the paper's measured CPU
	// value; the ACT build derives it from die area).
	spec := ServerSpec{
		Sockets:         2,
		DieAreaCm2:      7.0, // Cascade Lake HCC-class die
		Node:            Node14nm,
		Fab:             FabUSA,
		CoresPerSocket:  24,
		MemoryGB:        192,
		MemoryTech:      DDR4,
		StorageGB:       480,
		CPUTDP:          XeonGold6240RTDP,
		StaticPower:     250,
		MaxDynamicPower: 330,
	}
	srv, err := BuildServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReferenceServer()
	if srv.Cores != ref.Cores || srv.MemoryGB != ref.MemoryGB {
		t.Error("shape mismatch")
	}
	ratio := float64(srv.TotalEmbodied()) / float64(ref.TotalEmbodied())
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("ACT build total %v vs reference %v (ratio %.2f) too far apart",
			srv.TotalEmbodied(), ref.TotalEmbodied(), ratio)
	}
	// The built server works end to end.
	if _, err := srv.ResourceShares(); err != nil {
		t.Fatal(err)
	}
	if srv.EmbodiedRate() <= 0 {
		t.Error("non-positive embodied rate")
	}
}

func TestBuildServerErrors(t *testing.T) {
	good := ServerSpec{
		Sockets: 1, DieAreaCm2: 5, Node: Node7nm, Fab: FabTaiwan,
		CoresPerSocket: 16, MemoryGB: 64, MemoryTech: DDR4, CPUTDP: 150,
		StaticPower: 100, MaxDynamicPower: 200,
	}
	if _, err := BuildServer(good); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	cases := []func(*ServerSpec){
		func(s *ServerSpec) { s.Sockets = 0 },
		func(s *ServerSpec) { s.CoresPerSocket = 0 },
		func(s *ServerSpec) { s.DieAreaCm2 = 0 },
		func(s *ServerSpec) { s.Node = "1nm" },
		func(s *ServerSpec) { s.MemoryGB = 0 },
		func(s *ServerSpec) { s.MemoryTech = "hbm9" },
		func(s *ServerSpec) { s.StorageGB = -5 },
	}
	for i, mutate := range cases {
		spec := good
		mutate(&spec)
		if _, err := BuildServer(spec); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBuildServerNoStorage(t *testing.T) {
	spec := ServerSpec{
		Sockets: 1, DieAreaCm2: 5, Node: Node7nm, Fab: FabTaiwan,
		CoresPerSocket: 16, MemoryGB: 64, MemoryTech: DDR4, CPUTDP: 150,
		StaticPower: 100, MaxDynamicPower: 200,
	}
	srv, err := BuildServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if srv.SSDEmbodied != 0 {
		t.Error("no storage, no SSD footprint")
	}
}
