package carbon

import (
	"errors"
	"fmt"

	"fairco2/internal/units"
)

// This file implements an ACT-style architectural embodied-carbon
// calculator (Gupta et al., ISCA'22 — the model the paper uses for its IC
// footprints, §6.1). It lets users model servers other than the built-in
// reference machine from first principles:
//
//	logic:  C = area * (CI_fab * EPA + GPA + MPA) / yield
//
// where CI_fab is the fab's energy carbon intensity, EPA the energy per
// die area, GPA the direct fluorinated-gas emissions per area, MPA the
// material footprint per area, and yield the fraction of good dies.
// Memory and storage use capacity-proportional factors (kgCO2e per GB) by
// technology generation.

// ProcessNode identifies a logic fabrication technology.
type ProcessNode string

// Supported logic nodes with ACT-reported per-area parameters.
const (
	Node28nm ProcessNode = "28nm"
	Node20nm ProcessNode = "20nm"
	Node14nm ProcessNode = "14nm"
	Node10nm ProcessNode = "10nm"
	Node7nm  ProcessNode = "7nm"
	Node5nm  ProcessNode = "5nm"
	Node3nm  ProcessNode = "3nm"
)

// logicParams holds per-cm2 fabrication parameters for one node.
type logicParams struct {
	// EPAKWhPerCm2 is fab energy per die area.
	EPAKWhPerCm2 float64
	// GPAKgPerCm2 is direct gas emissions per die area.
	GPAKgPerCm2 float64
	// MPAKgPerCm2 is material footprint per die area.
	MPAKgPerCm2 float64
	// Yield is the good-die fraction.
	Yield float64
}

// logicTable approximates the ACT paper's per-node trends: fab energy per
// area roughly doubles from 28 nm to 3 nm while yields dip for leading
// nodes.
var logicTable = map[ProcessNode]logicParams{
	Node28nm: {EPAKWhPerCm2: 0.9, GPAKgPerCm2: 0.1, MPAKgPerCm2: 0.5, Yield: 0.95},
	Node20nm: {EPAKWhPerCm2: 1.0, GPAKgPerCm2: 0.12, MPAKgPerCm2: 0.5, Yield: 0.94},
	Node14nm: {EPAKWhPerCm2: 1.2, GPAKgPerCm2: 0.13, MPAKgPerCm2: 0.5, Yield: 0.93},
	Node10nm: {EPAKWhPerCm2: 1.475, GPAKgPerCm2: 0.15, MPAKgPerCm2: 0.5, Yield: 0.92},
	Node7nm:  {EPAKWhPerCm2: 1.52, GPAKgPerCm2: 0.18, MPAKgPerCm2: 0.5, Yield: 0.90},
	Node5nm:  {EPAKWhPerCm2: 1.71, GPAKgPerCm2: 0.2, MPAKgPerCm2: 0.5, Yield: 0.875},
	Node3nm:  {EPAKWhPerCm2: 2.0, GPAKgPerCm2: 0.25, MPAKgPerCm2: 0.5, Yield: 0.85},
}

// FabLocation selects the fab's electricity carbon intensity.
type FabLocation string

// Representative fab grids (ACT's sensitivity axis).
const (
	FabTaiwan    FabLocation = "taiwan"    // ~509 gCO2e/kWh
	FabKorea     FabLocation = "korea"     // ~437 gCO2e/kWh
	FabUSA       FabLocation = "usa"       // ~380 gCO2e/kWh
	FabEurope    FabLocation = "europe"    // ~277 gCO2e/kWh
	FabRenewable FabLocation = "renewable" // ~50 gCO2e/kWh (abated)
)

var fabIntensity = map[FabLocation]units.CarbonIntensity{
	FabTaiwan:    509,
	FabKorea:     437,
	FabUSA:       380,
	FabEurope:    277,
	FabRenewable: 50,
}

// LogicEmbodied computes the embodied carbon of a logic die of the given
// area (cm2) fabricated at the given node and location.
func LogicEmbodied(areaCm2 float64, node ProcessNode, fab FabLocation) (units.KgCO2e, error) {
	if areaCm2 <= 0 {
		return 0, fmt.Errorf("carbon: die area must be positive, got %v", areaCm2)
	}
	p, ok := logicTable[node]
	if !ok {
		return 0, fmt.Errorf("carbon: unknown process node %q", node)
	}
	ci, ok := fabIntensity[fab]
	if !ok {
		return 0, fmt.Errorf("carbon: unknown fab location %q", fab)
	}
	// Energy term in kg: kWh/cm2 * gCO2e/kWh / 1000.
	energyKg := p.EPAKWhPerCm2 * float64(ci) / 1000
	perArea := (energyKg + p.GPAKgPerCm2 + p.MPAKgPerCm2) / p.Yield
	return units.KgCO2e(areaCm2 * perArea), nil
}

// MemoryTech identifies a DRAM generation.
type MemoryTech string

// DRAM generations with per-GB embodied factors (ACT's DRAM trendline).
const (
	DDR3 MemoryTech = "ddr3"
	DDR4 MemoryTech = "ddr4"
	DDR5 MemoryTech = "ddr5"
)

var dramKgPerGB = map[MemoryTech]float64{
	DDR3: 1.1,
	DDR4: 0.765, // matches Table 1: 146.87 kg for 192 GB
	DDR5: 0.55,
}

// DRAMEmbodied computes the embodied carbon of a DRAM complement.
func DRAMEmbodied(capacityGB float64, tech MemoryTech) (units.KgCO2e, error) {
	if capacityGB <= 0 {
		return 0, fmt.Errorf("carbon: capacity must be positive, got %v", capacityGB)
	}
	f, ok := dramKgPerGB[tech]
	if !ok {
		return 0, fmt.Errorf("carbon: unknown memory technology %q", tech)
	}
	return units.KgCO2e(capacityGB * f), nil
}

// SSDEmbodied computes the embodied carbon of NAND storage at the paper's
// 0.16 kgCO2e/GB rate (Tannu & Nair).
func SSDEmbodied(capacityGB float64) (units.KgCO2e, error) {
	if capacityGB <= 0 {
		return 0, fmt.Errorf("carbon: capacity must be positive, got %v", capacityGB)
	}
	return units.KgCO2e(capacityGB * SSDEmbodiedPerGB), nil
}

// ServerSpec describes a server for the ACT-style builder.
type ServerSpec struct {
	// Sockets and DieAreaCm2 describe the CPUs.
	Sockets    int
	DieAreaCm2 float64
	Node       ProcessNode
	Fab        FabLocation
	// CoresPerSocket is the physical core count per package.
	CoresPerSocket int
	// MemoryGB and MemoryTech describe DRAM.
	MemoryGB   float64
	MemoryTech MemoryTech
	// StorageGB is SSD capacity.
	StorageGB float64
	// CPUTDP is per-socket TDP (drives the platform overhead scaling and
	// the power model).
	CPUTDP units.Watts
	// StaticPower and MaxDynamicPower parameterize the power model.
	StaticPower, MaxDynamicPower units.Watts
	// Lifetime is the amortization horizon (0 uses DefaultLifetime).
	Lifetime units.Seconds
}

// BuildServer assembles a Server from an ACT-style specification, applying
// the same Dell R740-derived platform overheads as the reference machine.
func BuildServer(spec ServerSpec) (*Server, error) {
	switch {
	case spec.Sockets < 1:
		return nil, errors.New("carbon: need at least one socket")
	case spec.CoresPerSocket < 1:
		return nil, errors.New("carbon: need at least one core per socket")
	case spec.StorageGB < 0:
		return nil, errors.New("carbon: storage capacity must be non-negative")
	}
	cpuEach, err := LogicEmbodied(spec.DieAreaCm2, spec.Node, spec.Fab)
	if err != nil {
		return nil, err
	}
	dram, err := DRAMEmbodied(spec.MemoryGB, spec.MemoryTech)
	if err != nil {
		return nil, err
	}
	var ssd units.KgCO2e
	if spec.StorageGB > 0 {
		ssd, err = SSDEmbodied(spec.StorageGB)
		if err != nil {
			return nil, err
		}
	}
	lifetime := spec.Lifetime
	if lifetime == 0 {
		lifetime = DefaultLifetime
	}
	systemTDP := float64(spec.Sockets) * float64(spec.CPUTDP)
	srv := &Server{
		Cores:            spec.Sockets * spec.CoresPerSocket,
		MemoryGB:         units.Gigabytes(spec.MemoryGB),
		StorageGB:        units.Gigabytes(spec.StorageGB),
		CPUEmbodied:      units.KgCO2e(float64(spec.Sockets)) * cpuEach,
		DRAMEmbodied:     dram,
		SSDEmbodied:      ssd,
		PlatformEmbodied: r740MainboardEmbodied + r740ChassisEmbodied + units.KgCO2e(r740PowerCoolingPerW*systemTDP),
		Lifetime:         lifetime,
		StaticPower:      spec.StaticPower,
		MaxDynamicPower:  spec.MaxDynamicPower,
	}
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	return srv, nil
}
