package carbon

import (
	"errors"
	"fmt"

	"fairco2/internal/units"
)

// Server models the embodied and operational characteristics of one server.
// The default (NewReferenceServer) reproduces the paper's evaluation
// machine: two Xeon Gold 6240R (48 physical cores), 192 GB DDR4, 480 GB
// SSD, with mainboard/chassis/cooling overheads scaled from the Dell R740
// life-cycle assessment.
type Server struct {
	// Cores is the number of physical CPU cores.
	Cores int
	// MemoryGB is the installed DRAM capacity.
	MemoryGB units.Gigabytes
	// StorageGB is the installed SSD capacity.
	StorageGB units.Gigabytes

	// CPUEmbodied is the embodied carbon of all CPU packages.
	CPUEmbodied units.KgCO2e
	// DRAMEmbodied is the embodied carbon of all DRAM.
	DRAMEmbodied units.KgCO2e
	// SSDEmbodied is the embodied carbon of all SSDs.
	SSDEmbodied units.KgCO2e
	// PlatformEmbodied covers mainboard, chassis, power delivery and
	// cooling (Dell R740 LCA reference values scaled by system TDP).
	PlatformEmbodied units.KgCO2e

	// Lifetime is the amortization horizon for embodied carbon.
	Lifetime units.Seconds

	// StaticPower is the load-independent power draw of a provisioned
	// server (idle packages, DRAM refresh, fans, VRM losses). Per the
	// Google characterization the paper cites, static energy is ~60% of
	// server energy.
	StaticPower units.Watts
	// MaxDynamicPower is the additional draw at full utilization.
	MaxDynamicPower units.Watts
}

// Dell R740 LCA-derived platform overhead, scaled to the evaluation
// server's TDP as described in §6.1. These are manufacturing-phase
// estimates; the substitution is documented in DESIGN.md.
const (
	r740MainboardEmbodied units.KgCO2e = 110
	r740ChassisEmbodied   units.KgCO2e = 35
	r740PowerCoolingPerW  float64      = 0.18 // kgCO2e per watt of system TDP
)

// DefaultLifetime is the uniform amortization horizon: 4 years, a common
// hyperscaler depreciation schedule.
const DefaultLifetime units.Seconds = 4 * 365 * units.SecondsPerDay

// NewReferenceServer builds the paper's evaluation server model.
func NewReferenceServer() *Server {
	const (
		sockets   = 2
		cores     = 48
		memoryGB  = 192
		storageGB = 480
	)
	systemTDP := float64(sockets)*float64(XeonGold6240RTDP) + float64(DDR4TDPPer192GB)
	return &Server{
		Cores:            cores,
		MemoryGB:         memoryGB,
		StorageGB:        storageGB,
		CPUEmbodied:      units.KgCO2e(sockets) * XeonGold6240REmbodied,
		DRAMEmbodied:     DDR4EmbodiedPer192GB,
		SSDEmbodied:      units.KgCO2e(storageGB * SSDEmbodiedPerGB),
		PlatformEmbodied: r740MainboardEmbodied + r740ChassisEmbodied + units.KgCO2e(r740PowerCoolingPerW*systemTDP),
		Lifetime:         DefaultLifetime,
		StaticPower:      250,
		MaxDynamicPower:  330,
	}
}

// Validate reports whether the server model is internally consistent.
func (s *Server) Validate() error {
	switch {
	case s.Cores <= 0:
		return errors.New("carbon: server needs at least one core")
	case s.MemoryGB <= 0:
		return errors.New("carbon: server needs positive memory capacity")
	case s.Lifetime <= 0:
		return errors.New("carbon: server lifetime must be positive")
	case s.StaticPower < 0 || s.MaxDynamicPower < 0:
		return errors.New("carbon: power draws must be non-negative")
	case s.CPUEmbodied < 0 || s.DRAMEmbodied < 0 || s.SSDEmbodied < 0 || s.PlatformEmbodied < 0:
		return errors.New("carbon: embodied footprints must be non-negative")
	}
	return nil
}

// TotalEmbodied returns the full manufacturing footprint of the server.
func (s *Server) TotalEmbodied() units.KgCO2e {
	return s.CPUEmbodied + s.DRAMEmbodied + s.SSDEmbodied + s.PlatformEmbodied
}

// EmbodiedRate returns the uniformly-amortized embodied carbon emission
// rate of the whole server in gCO2e per second (§5.1: the fleet footprint
// is first amortized uniformly over the hardware lifetime, then Temporal
// Shapley divides each amortized share across time periods).
func (s *Server) EmbodiedRate() float64 {
	return float64(s.TotalEmbodied().Grams()) / float64(s.Lifetime)
}

// ResourceShare splits the platform overhead across the directly-attributable
// components in proportion to their embodied footprints, and returns the
// embodied carbon assigned to each schedulable resource.
type ResourceShare struct {
	// CPUPerCore is embodied carbon per physical core, including the
	// CPU's share of platform overhead.
	CPUPerCore units.KgCO2e
	// DRAMPerGB is embodied carbon per GB of DRAM, including overhead share.
	DRAMPerGB units.KgCO2e
	// SSDPerGB is embodied carbon per GB of SSD, including overhead share.
	SSDPerGB units.KgCO2e
}

// ResourceShares computes per-resource embodied carbon. Platform overhead
// is distributed across CPU, DRAM and SSD proportional to their direct
// embodied footprints, following the resource-proportional convention that
// both the SCI baseline and Fair-CO2 use for per-resource accounting.
func (s *Server) ResourceShares() (ResourceShare, error) {
	if err := s.Validate(); err != nil {
		return ResourceShare{}, err
	}
	direct := s.CPUEmbodied + s.DRAMEmbodied + s.SSDEmbodied
	if direct <= 0 {
		return ResourceShare{}, errors.New("carbon: no direct component footprints to scale overhead by")
	}
	scale := 1 + float64(s.PlatformEmbodied)/float64(direct)
	share := ResourceShare{
		CPUPerCore: units.KgCO2e(float64(s.CPUEmbodied) * scale / float64(s.Cores)),
		DRAMPerGB:  units.KgCO2e(float64(s.DRAMEmbodied) * scale / float64(s.MemoryGB)),
	}
	if s.StorageGB > 0 {
		share.SSDPerGB = units.KgCO2e(float64(s.SSDEmbodied) * scale / float64(s.StorageGB))
	}
	return share, nil
}

// EmbodiedRatePerCore returns the amortized embodied emission rate of one
// core in gCO2e per core-second.
func (s *Server) EmbodiedRatePerCore() (float64, error) {
	shares, err := s.ResourceShares()
	if err != nil {
		return 0, err
	}
	return float64(shares.CPUPerCore.Grams()) / float64(s.Lifetime), nil
}

// EmbodiedRatePerGB returns the amortized embodied emission rate of one GB
// of DRAM in gCO2e per GB-second.
func (s *Server) EmbodiedRatePerGB() (float64, error) {
	shares, err := s.ResourceShares()
	if err != nil {
		return 0, err
	}
	return float64(shares.DRAMPerGB.Grams()) / float64(s.Lifetime), nil
}

// DynamicPower returns the dynamic power draw at CPU utilization
// util in [0, 1], linear in utilization as in the RUP baseline's
// utilization-proportional energy model.
func (s *Server) DynamicPower(util float64) units.Watts {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return units.Watts(util * float64(s.MaxDynamicPower))
}

// TotalPower returns static plus dynamic power at the given utilization.
func (s *Server) TotalPower(util float64) units.Watts {
	return s.StaticPower + s.DynamicPower(util)
}

// String summarizes the server model.
func (s *Server) String() string {
	return fmt.Sprintf("server{%d cores, %.0f GB DRAM, %.0f GB SSD, embodied %s, static %s}",
		s.Cores, float64(s.MemoryGB), float64(s.StorageGB), s.TotalEmbodied(), s.StaticPower)
}
