package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestEnergyConversionRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		j := Joules(v)
		return almostEqual(float64(j.KWh().Joules()), float64(j))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKWhDefinition(t *testing.T) {
	if got := Joules(3.6e6).KWh(); got != 1 {
		t.Fatalf("3.6 MJ = %v kWh, want 1", got)
	}
}

func TestCarbonMassConversion(t *testing.T) {
	if got := KgCO2e(1.5).Grams(); got != 1500 {
		t.Fatalf("1.5 kg = %v g, want 1500", got)
	}
	if got := GramsCO2e(250).Kg(); got != 0.25 {
		t.Fatalf("250 g = %v kg, want 0.25", got)
	}
}

func TestEnergy(t *testing.T) {
	// 100 W for one hour is 0.1 kWh.
	e := Energy(100, SecondsPerHour)
	if got := float64(e.KWh()); !almostEqual(got, 0.1) {
		t.Fatalf("100 W * 1 h = %v kWh, want 0.1", got)
	}
}

func TestEmissions(t *testing.T) {
	// 1 kWh at 400 gCO2e/kWh emits 400 g.
	e := KilowattHours(1).Joules()
	if got := Emissions(e, 400); !almostEqual(float64(got), 400) {
		t.Fatalf("Emissions = %v, want 400", got)
	}
}

func TestEmissionsLinearInEnergy(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 1e12)
		if math.IsNaN(v) {
			return true
		}
		a := Emissions(Joules(v), 350)
		b := Emissions(Joules(2*v), 350)
		return almostEqual(float64(b), 2*float64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(165).String(), "165.00 W"},
		{Joules(2.5e9).String(), "2.50 GJ"},
		{Joules(2.5e6).String(), "2.50 MJ"},
		{Joules(2500).String(), "2.50 kJ"},
		{Joules(2.5).String(), "2.50 J"},
		{GramsCO2e(1.5e6).String(), "1.500 tCO2e"},
		{GramsCO2e(1500).String(), "1.500 kgCO2e"},
		{GramsCO2e(15).String(), "15.000 gCO2e"},
		{KgCO2e(2).String(), "2.000 kgCO2e"},
		{CarbonIntensity(90).String(), "90.0 gCO2e/kWh"},
		{Seconds(90).String(), "1.50 min"},
		{Seconds(7200).String(), "2.00 h"},
		{Seconds(2 * SecondsPerDay).String(), "2.00 d"},
		{Seconds(12).String(), "12.00 s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
