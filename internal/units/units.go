// Package units defines typed physical quantities used throughout Fair-CO2:
// power, energy, carbon mass, carbon intensity, and resource-time. Using
// distinct named types catches unit mix-ups (e.g. attributing joules as
// grams of CO2e) at compile time while keeping arithmetic cheap — every
// type is an underlying float64.
package units

import "fmt"

// Watts is electrical power in watts.
type Watts float64

// Joules is energy in joules.
type Joules float64

// KilowattHours is energy in kilowatt-hours.
type KilowattHours float64

// GramsCO2e is a mass of carbon-dioxide equivalent emissions in grams.
type GramsCO2e float64

// KgCO2e is a mass of carbon-dioxide equivalent emissions in kilograms.
type KgCO2e float64

// CarbonIntensity is grid carbon intensity in gCO2e per kilowatt-hour,
// the unit used by Electricity Maps and throughout the paper.
type CarbonIntensity float64

// CoreSeconds is CPU resource-time: one core allocated for one second.
type CoreSeconds float64

// GBSeconds is memory resource-time: one gigabyte allocated for one second.
type GBSeconds float64

// Gigabytes is a memory or storage capacity.
type Gigabytes float64

// Seconds is a duration in seconds. A plain float64 duration is used in the
// simulators instead of time.Duration because experiment timescales span
// from milliseconds (query latency) to years (hardware lifetime).
type Seconds float64

// JoulesPerKWh is the number of joules in one kilowatt-hour.
const JoulesPerKWh = 3.6e6

// SecondsPerHour is the number of seconds in one hour.
const SecondsPerHour = 3600

// SecondsPerDay is the number of seconds in one day.
const SecondsPerDay = 86400

// KWh converts joules to kilowatt-hours.
func (j Joules) KWh() KilowattHours { return KilowattHours(float64(j) / JoulesPerKWh) }

// Joules converts kilowatt-hours to joules.
func (k KilowattHours) Joules() Joules { return Joules(float64(k) * JoulesPerKWh) }

// Grams converts kilograms of CO2e to grams.
func (k KgCO2e) Grams() GramsCO2e { return GramsCO2e(float64(k) * 1000) }

// Kg converts grams of CO2e to kilograms.
func (g GramsCO2e) Kg() KgCO2e { return KgCO2e(float64(g) / 1000) }

// Energy returns the energy consumed by drawing power p for d seconds.
func Energy(p Watts, d Seconds) Joules { return Joules(float64(p) * float64(d)) }

// Emissions returns the operational carbon emitted by consuming energy e on
// a grid with carbon intensity ci.
func Emissions(e Joules, ci CarbonIntensity) GramsCO2e {
	return GramsCO2e(float64(e.KWh()) * float64(ci))
}

// String implements fmt.Stringer with a compact human-readable format.
func (w Watts) String() string { return fmt.Sprintf("%.2f W", float64(w)) }

// String implements fmt.Stringer.
func (j Joules) String() string {
	v := float64(j)
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GJ", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MJ", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f kJ", v/1e3)
	}
	return fmt.Sprintf("%.2f J", v)
}

// String implements fmt.Stringer.
func (g GramsCO2e) String() string {
	v := float64(g)
	if v >= 1e6 {
		return fmt.Sprintf("%.3f tCO2e", v/1e6)
	}
	if v >= 1e3 {
		return fmt.Sprintf("%.3f kgCO2e", v/1e3)
	}
	return fmt.Sprintf("%.3f gCO2e", v)
}

// String implements fmt.Stringer.
func (k KgCO2e) String() string { return k.Grams().String() }

// String implements fmt.Stringer.
func (c CarbonIntensity) String() string { return fmt.Sprintf("%.1f gCO2e/kWh", float64(c)) }

// String implements fmt.Stringer.
func (s Seconds) String() string {
	v := float64(s)
	switch {
	case v >= SecondsPerDay:
		return fmt.Sprintf("%.2f d", v/SecondsPerDay)
	case v >= SecondsPerHour:
		return fmt.Sprintf("%.2f h", v/SecondsPerHour)
	case v >= 60:
		return fmt.Sprintf("%.2f min", v/60)
	}
	return fmt.Sprintf("%.2f s", v)
}
