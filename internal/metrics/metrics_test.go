package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %v", c.Value())
	}
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Error("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "a histogram", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	buckets, sum, count := h.snapshot()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if sum != 16 {
		t.Errorf("sum = %v, want 16", sum)
	}
	// le is inclusive: the observation at exactly 1 lands in the le="1"
	// bucket.
	wantCum := []uint64{2, 3, 4, 5}
	if len(buckets) != len(wantCum) {
		t.Fatalf("got %d buckets, want %d", len(buckets), len(wantCum))
	}
	for i, b := range buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d (le %v): cumulative %d, want %d", i, b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].UpperBound, +1) {
		t.Error("last bucket should be +Inf")
	}
}

func TestHistogramBadBuckets(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets should panic")
		}
	}()
	r.NewHistogram("test_seconds", "h", []float64{1, 1})
}

func TestHistogramTrailingInf(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "h", []float64{1, math.Inf(+1)})
	h.Observe(0.5)
	buckets, _, _ := h.snapshot()
	if len(buckets) != 2 {
		t.Errorf("explicit +Inf bound should collapse into the implicit one, got %d buckets", len(buckets))
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_total", "labeled", "method", "code")
	v.With("GET", "200").Add(3)
	v.With("GET", "500").Inc()
	if got := v.With("GET", "200").Value(); got != 3 {
		t.Errorf("GET/200 = %v, want 3", got)
	}
	// With returns the same child for the same values.
	if v.With("GET", "500") != v.With("GET", "500") {
		t.Error("With should be stable")
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_total", "labeled", "method")
	defer func() {
		if recover() == nil {
			t.Error("wrong label count should panic")
		}
	}()
	v.With("GET", "extra")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name should panic")
		}
	}()
	r.NewGauge("dup_total", "second")
}

func TestInvalidNamesPanic(t *testing.T) {
	cases := []func(r *Registry){
		func(r *Registry) { r.NewCounter("", "empty") },
		func(r *Registry) { r.NewCounter("0bad", "leading digit") },
		func(r *Registry) { r.NewCounter("has space", "space") },
		func(r *Registry) { r.NewCounterVec("ok_total", "bad label", "0bad") },
		func(r *Registry) { r.NewCounterVec("ok_total", "reserved label", "__name") },
		func(r *Registry) { r.NewCounterVec("ok_total", "dup label", "a", "a") },
		func(r *Registry) { r.NewCounterVec("ok_total", "no labels") },
	}
	for i, mk := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			mk(NewRegistry())
		}()
	}
}

func TestGatherSorted(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_total", "last")
	r.NewGauge("aa_gauge", "first")
	v := r.NewGaugeVec("mm_gauge", "middle", "t")
	v.With("b").Set(2)
	v.With("a").Set(1)
	fams := r.Gather()
	var names []string
	for _, f := range fams {
		names = append(names, f.Name)
	}
	if strings.Join(names, ",") != "aa_gauge,mm_gauge,zz_total" {
		t.Errorf("family order %v", names)
	}
	mm := fams[1]
	if len(mm.Samples) != 2 || mm.Samples[0].LabelValues[0] != "a" || mm.Samples[1].LabelValues[0] != "b" {
		t.Errorf("sample order %+v", mm.Samples)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default must return the same registry")
	}
}
