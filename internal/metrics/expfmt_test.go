package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func gatherText(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestTextFormatScalars(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	c.Add(42)
	g := r.NewGauge("temperature_celsius", "Current temperature.")
	g.Set(-3.25)
	want := `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total 42
# HELP temperature_celsius Current temperature.
# TYPE temperature_celsius gauge
temperature_celsius -3.25
`
	if got := gatherText(t, r); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextFormatLabeled(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("requests_total", "Requests by endpoint.", "endpoint", "code")
	v.With("/healthz", "200").Add(2)
	v.With("/v1/intensity/current", "200").Inc()
	v.With("/v1/intensity/current", "500").Inc()
	want := `# HELP requests_total Requests by endpoint.
# TYPE requests_total counter
requests_total{endpoint="/healthz",code="200"} 2
requests_total{endpoint="/v1/intensity/current",code="200"} 1
requests_total{endpoint="/v1/intensity/current",code="500"} 1
`
	if got := gatherText(t, r); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextFormatHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Request latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.2)
	h.Observe(2)
	want := `# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 2.25
latency_seconds_count 3
`
	if got := gatherText(t, r); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextFormatLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("latency_seconds", "Latency by endpoint.", []float64{1}, "endpoint")
	v.With("/metrics").Observe(0.5)
	want := `# HELP latency_seconds Latency by endpoint.
# TYPE latency_seconds histogram
latency_seconds_bucket{endpoint="/metrics",le="1"} 1
latency_seconds_bucket{endpoint="/metrics",le="+Inf"} 1
latency_seconds_sum{endpoint="/metrics"} 0.5
latency_seconds_count{endpoint="/metrics"} 1
`
	if got := gatherText(t, r); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextFormatEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("weird_gauge", "help with \\ backslash\nand newline", "tenant")
	v.With("a\"b\\c\nd").Set(1)
	got := gatherText(t, r)
	wantHelp := `# HELP weird_gauge help with \\ backslash\nand newline`
	wantSample := `weird_gauge{tenant="a\"b\\c\nd"} 1`
	if !strings.Contains(got, wantHelp) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, wantSample) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestTextFormatSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("inf_gauge", "").Set(math.Inf(+1))
	r.NewGauge("nan_gauge", "").Set(math.NaN())
	r.NewGauge("neg_inf_gauge", "").Set(math.Inf(-1))
	got := gatherText(t, r)
	for _, want := range []string{"inf_gauge +Inf\n", "nan_gauge NaN\n", "neg_inf_gauge -Inf\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// Families with empty help omit the HELP line entirely.
	if strings.Contains(got, "# HELP") {
		t.Errorf("empty help should omit HELP lines:\n%s", got)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up_total", "Liveness.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != TextContentType {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("body:\n%s", body)
	}
}

func TestLintAcceptsOwnOutput(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "A.").Add(1)
	v := r.NewHistogramVec("b_seconds", "B.", nil, "op")
	v.With("x").Observe(0.2)
	g := r.NewGaugeVec("c_gauge", "C.", "tenant")
	g.With(`quo"te`).Set(math.Inf(+1))
	text := gatherText(t, r)
	n, err := LintText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("lint rejected own output: %v\n%s", err, text)
	}
	// 1 counter + (13 buckets + sum + count) + 1 gauge.
	if n != 1+len(DefBuckets)+1+2+1 {
		t.Errorf("lint counted %d samples in:\n%s", n, text)
	}
}

func TestLintRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_type_line 1\n",
		"# TYPE x counter\nx one\n",
		"# TYPE x wat\n",
		"# TYPE x counter\nx{a=1} 1\n",
		"# TYPE x counter\nx{a=\"1} 1\n",
	}
	for _, text := range bad {
		if _, err := LintText(strings.NewReader(text)); err == nil {
			t.Errorf("lint accepted %q", text)
		}
	}
}
