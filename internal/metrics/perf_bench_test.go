package metrics

// Registry hot-path benchmarks — the budget for always-on instrumentation.
// A labeled counter increment is what every request and every Monte Carlo
// batch pays, so it has to stay in the tens of nanoseconds; Gather runs on
// every Prometheus scrape and must not stall writers.

import (
	"io"
	"strconv"
	"testing"
)

// BenchmarkCounterInc measures the scalar fast path (one CAS).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterVecWith measures the labeled hot path: child lookup by
// label values plus the increment, the per-request cost in the servers.
func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.NewCounterVec("bench_total", "", "endpoint", "code")
	v.With("/metrics", "200") // pre-create: steady-state path is the read lock
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("/metrics", "200").Inc()
	}
}

// BenchmarkCounterVecParallel measures contention across goroutines on one
// hot child — the worst case for the CAS loop and the vec read lock.
func BenchmarkCounterVecParallel(b *testing.B) {
	r := NewRegistry()
	v := r.NewCounterVec("bench_total", "", "endpoint")
	v.With("/metrics")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("/metrics").Inc()
		}
	})
}

// BenchmarkHistogramObserve measures the mutex-guarded histogram path.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 10000)
	}
}

// BenchmarkGatherWhileWriting measures a scrape of a realistically-sized
// registry (100 tenant series + scalars) with writers running — the
// concurrent-gather cost a Prometheus server imposes on the daemons.
func BenchmarkGatherWhileWriting(b *testing.B) {
	r := NewRegistry()
	v := r.NewGaugeVec("bench_gco2e", "", "tenant", "component")
	for t := 0; t < 100; t++ {
		name := "tenant-" + strconv.Itoa(t)
		v.With(name, "embodied").Set(float64(t))
		v.With(name, "dynamic").Set(float64(t))
	}
	c := r.NewCounter("bench_total", "")
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
