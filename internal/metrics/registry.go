package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Kind distinguishes the exposition TYPE of a metric family.
type Kind int

// The supported metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Sample is one exposition row (or, for histograms, one bucketed series).
type Sample struct {
	// LabelValues align with the family's LabelNames; empty for scalars.
	LabelValues []string
	// Value is the sample value for counters and gauges.
	Value float64
	// Buckets, Sum and Count carry histogram state.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Family is the gathered snapshot of one registered metric.
type Family struct {
	Name       string
	Help       string
	Kind       Kind
	LabelNames []string
	Samples    []Sample
}

// entry ties a registered name to its snapshot function. For labeled
// families inst retains the vec so GetOrNew* constructors can hand the
// same family to a second caller; scalars leave it nil.
type entry struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	collect func() []Sample
	inst    any
}

// Registry holds a namespace of metrics and gathers them for exposition.
// Registration panics on invalid or duplicate names (always a programming
// error, caught at init time); gathering and serving are safe under
// concurrent writers.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// getOrNewMu serializes the lookup-then-register window of the
	// GetOrNew* constructors, so two concurrent callers of the same
	// family never race into a duplicate-registration panic.
	getOrNewMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// defaultRegistry is the process-wide registry that instrumented packages
// (shapley, attribution, billing, signalserver) register into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry shared by the instrumented
// packages and served by the daemons' /metrics endpoints.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(name, help string, kind Kind, labels []string, inst any, collect func() []Sample) {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic(err)
		}
		if seen[l] {
			panic(fmt.Sprintf("metrics: duplicate label %q on metric %q", l, name))
		}
		seen[l] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.entries[name] = &entry{name: name, help: help, kind: kind, labels: labels, collect: collect, inst: inst}
}

// NewCounter registers and returns a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, KindCounter, nil, nil, func() []Sample {
		return []Sample{{Value: c.Value()}}
	})
	return c
}

// NewGauge registers and returns a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, nil, nil, func() []Sample {
		return []Sample{{Value: g.Value()}}
	})
	return g
}

// NewHistogram registers and returns a scalar histogram. Nil or empty
// buckets select DefBuckets; bounds must be strictly increasing.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h, err := newHistogram(buckets)
	if err != nil {
		panic(err)
	}
	r.register(name, help, KindHistogram, nil, nil, func() []Sample {
		b, sum, count := h.snapshot()
		return []Sample{{Buckets: b, Sum: sum, Count: count}}
	})
	return h
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector metric %q needs at least one label", name))
	}
	v := CounterVec{newVec(labels, func() *Counter { return &Counter{} })}
	r.register(name, help, KindCounter, labels, v, func() []Sample {
		var out []Sample
		v.each(func(values []string, c *Counter) {
			out = append(out, Sample{LabelValues: values, Value: c.Value()})
		})
		return out
	})
	return v
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector metric %q needs at least one label", name))
	}
	v := GaugeVec{newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(name, help, KindGauge, labels, v, func() []Sample {
		var out []Sample
		v.each(func(values []string, g *Gauge) {
			out = append(out, Sample{LabelValues: values, Value: g.Value()})
		})
		return out
	})
	return v
}

// NewHistogramVec registers and returns a labeled histogram family. All
// children share the bucket layout (nil selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector metric %q needs at least one label", name))
	}
	if _, err := newHistogram(buckets); err != nil {
		panic(err)
	}
	layout := buckets
	v := HistogramVec{newVec(labels, func() *Histogram {
		h, err := newHistogram(layout)
		if err != nil {
			panic(err) // unreachable: layout validated above
		}
		return h
	})}
	r.register(name, help, KindHistogram, labels, v, func() []Sample {
		var out []Sample
		v.each(func(values []string, h *Histogram) {
			b, sum, count := h.snapshot()
			out = append(out, Sample{LabelValues: values, Buckets: b, Sum: sum, Count: count})
		})
		return out
	})
	return v
}

// Gather snapshots every registered family, sorted by name. The snapshot
// is decoupled from the live instruments, so callers can format or inspect
// it without blocking writers.
func (r *Registry) Gather() []Family {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	families := make([]Family, 0, len(entries))
	for _, e := range entries {
		families = append(families, Family{
			Name:       e.name,
			Help:       e.help,
			Kind:       e.kind,
			LabelNames: e.labels,
			Samples:    e.collect(),
		})
	}
	return families
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		// Formatting cannot fail; the only write errors are client
		// disconnects, which http.Server surfaces on its own.
		_ = r.WriteText(w)
	})
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty label name")
	}
	if len(name) >= 2 && name[0] == '_' && name[1] == '_' {
		return fmt.Errorf("metrics: label name %q is reserved (double underscore)", name)
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid label name %q", name)
		}
	}
	return nil
}
