package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestGetOrNewReturnsTheSameFamily(t *testing.T) {
	reg := NewRegistry()
	a := reg.GetOrNewCounterVec("test_total", "help.", "replica", "endpoint")
	b := reg.GetOrNewCounterVec("test_total", "other help ignored.", "replica", "endpoint")
	a.With("0", "query").Add(2)
	b.With("0", "query").Inc()
	if got := a.With("0", "query").Value(); got != 3 {
		t.Errorf("families are not shared: value = %v, want 3", got)
	}

	g := reg.GetOrNewGaugeVec("test_gauge", "help.", "replica")
	if reg.GetOrNewGaugeVec("test_gauge", "help.", "replica").With("1") != g.With("1") {
		t.Error("gauge families are not shared")
	}
	h := reg.GetOrNewHistogramVec("test_hist", "help.", []float64{1, 2}, "replica")
	if reg.GetOrNewHistogramVec("test_hist", "help.", nil, "replica").With("1") != h.With("1") {
		t.Error("histogram families are not shared")
	}
}

func TestGetOrNewPanicsOnMismatch(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.GetOrNewCounterVec("test_total", "help.", "replica")
	mustPanic("label mismatch", func() { reg.GetOrNewCounterVec("test_total", "help.", "shard") })
	mustPanic("label count mismatch", func() { reg.GetOrNewCounterVec("test_total", "help.", "replica", "code") })
	mustPanic("kind mismatch", func() { reg.GetOrNewGaugeVec("test_total", "help.", "replica") })
	reg.NewCounter("test_scalar", "help.")
	mustPanic("scalar reuse", func() { reg.GetOrNewCounterVec("test_scalar", "help.", "replica") })
}

func TestGetOrNewConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg.GetOrNewCounterVec("test_total", "help.", "replica").With("r").Inc()
		}()
	}
	wg.Wait()
	if got := reg.GetOrNewCounterVec("test_total", "help.", "replica").With("r").Value(); got != 16 {
		t.Errorf("concurrent registrations split the family: value = %v, want 16", got)
	}
}

func TestCurriedCounterVec(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("test_total", "help.", "replica", "endpoint", "code")
	r0 := vec.Curry("0")
	r1 := vec.Curry("1")
	r0.With("query", "200").Add(5)
	r1.With("query", "200").Inc()
	if got := vec.With("0", "query", "200").Value(); got != 5 {
		t.Errorf("curried child not shared with full family: %v", got)
	}
	if got := vec.With("1", "query", "200").Value(); got != 1 {
		t.Errorf("replica 1 child = %v, want 1", got)
	}

	// Concurrent With on one curried view must not alias the bound slice.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r0.With("batch", "204").Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := vec.With("0", "batch", "204").Value(); got != 800 {
		t.Errorf("concurrent curried writes = %v, want 800", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("currying more values than labels did not panic")
		}
	}()
	vec.Curry("a", "b", "c", "d")
}

func TestCurriedFamilyExposition(t *testing.T) {
	reg := NewRegistry()
	vec := reg.GetOrNewCounterVec("test_requests_total", "Requests.", "replica", "code")
	vec.Curry("0").With("200").Inc()
	vec.Curry("1").With("429").Inc()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_requests_total{replica="0",code="200"} 1`,
		`test_requests_total{replica="1",code="429"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	if _, err := LintText(strings.NewReader(sb.String())); err != nil {
		t.Errorf("exposition does not lint: %v", err)
	}
}
