package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintText validates a Prometheus text-format exposition: every line must
// be a well-formed HELP/TYPE comment or a sample whose metric name was
// announced by a preceding TYPE line (histogram samples may use the
// _bucket/_sum/_count suffixes). It returns the number of sample lines and
// the first violation found. The scraper-side acceptance check for the
// exporter end-to-end tests lives here so both the package tests and the
// daemons' tests share one notion of "parses as valid text format".
func LintText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]string{} // metric name -> kind
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, typed); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := lintSample(line, typed); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

func lintComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		return checkMetricName(fields[2])
	case "TYPE":
		if err := checkMetricName(fields[2]); err != nil {
			return err
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line missing kind: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric kind %q", fields[3])
		}
		typed[fields[2]] = fields[3]
		return nil
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
}

func lintSample(line string, typed map[string]string) error {
	name := line
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name = line[:i]
	}
	if err := checkMetricName(name); err != nil {
		return err
	}
	base := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && typed[trimmed] == "histogram" {
			base = trimmed
			break
		}
	}
	if _, ok := typed[base]; !ok {
		return fmt.Errorf("sample %q has no preceding TYPE line", name)
	}
	rest := line[len(name):]
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := lintLabels(rest[1:end]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	value := strings.TrimSpace(rest)
	switch value {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("bad sample value %q", value)
	}
	return nil
}

func lintLabels(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", s)
		}
		if err := checkLabelName(s[:eq]); err != nil && s[:eq] != "le" {
			return err
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label value not quoted")
		}
		// Scan the quoted value honoring escapes.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			if s == "" {
				return fmt.Errorf("trailing comma in label set")
			}
		} else if s != "" {
			return fmt.Errorf("garbage after label value: %q", s)
		}
	}
	return nil
}
