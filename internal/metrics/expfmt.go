package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text format the
// registry emits (exposition format version 0.0.4).
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes the registry's current state in Prometheus text format:
// one `# HELP` / `# TYPE` header per family followed by its samples, with
// families sorted by name and samples by label values, so the output is
// deterministic for golden tests and diff-friendly for humans.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.Gather() {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f Family) error {
	if f.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
		return err
	}
	for _, s := range f.Samples {
		if err := writeSample(w, f, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, f Family, s Sample) error {
	switch f.Kind {
	case KindHistogram:
		for _, b := range s.Buckets {
			labels := formatLabels(f.LabelNames, s.LabelValues, "le", formatValue(b.UpperBound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labels, b.CumulativeCount); err != nil {
				return err
			}
		}
		labels := formatLabels(f.LabelNames, s.LabelValues, "", "")
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labels, formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labels, s.Count)
		return err
	default:
		labels := formatLabels(f.LabelNames, s.LabelValues, "", "")
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labels, formatValue(s.Value))
		return err
	}
}

// formatLabels renders `{a="x",b="y"}`, optionally appending one extra
// pair (the histogram `le` bound). Returns "" when there are no pairs.
func formatLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with the spellings +Inf / -Inf / NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }
