package metrics

import "fmt"

// Get-or-create registration for labeled families. A process that runs
// several instances of one subsystem — e.g. multiple attribution-server
// replicas inside a cluster test — must share each metric family across
// instances and distinguish them by a label (conventionally `replica`),
// because the registry rejects duplicate names. These constructors return
// the already-registered family when the name exists, after checking that
// the kind and label names match the original registration exactly; any
// mismatch is a programming error and panics, like all registration
// errors.

// GetOrNewCounterVec returns the counter family registered under name,
// registering it on first use. The labels must match an existing
// registration exactly (same names, same order).
func (r *Registry) GetOrNewCounterVec(name, help string, labels ...string) CounterVec {
	r.getOrNewMu.Lock()
	defer r.getOrNewMu.Unlock()
	if inst, ok := r.lookupInstrument(name, KindCounter, labels); ok {
		return inst.(CounterVec)
	}
	return r.NewCounterVec(name, help, labels...)
}

// GetOrNewGaugeVec is GetOrNewCounterVec for gauge families.
func (r *Registry) GetOrNewGaugeVec(name, help string, labels ...string) GaugeVec {
	r.getOrNewMu.Lock()
	defer r.getOrNewMu.Unlock()
	if inst, ok := r.lookupInstrument(name, KindGauge, labels); ok {
		return inst.(GaugeVec)
	}
	return r.NewGaugeVec(name, help, labels...)
}

// GetOrNewHistogramVec is GetOrNewCounterVec for histogram families. The
// bucket layout is only applied on first registration; later calls reuse
// the existing family's layout.
func (r *Registry) GetOrNewHistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	r.getOrNewMu.Lock()
	defer r.getOrNewMu.Unlock()
	if inst, ok := r.lookupInstrument(name, KindHistogram, labels); ok {
		return inst.(HistogramVec)
	}
	return r.NewHistogramVec(name, help, buckets, labels...)
}

// lookupInstrument finds a registered family by name and validates that
// reusing it under (kind, labels) is sound. It returns (nil, false) when
// the name is free.
func (r *Registry) lookupInstrument(name string, kind Kind, labels []string) (any, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if e.inst == nil {
		panic(fmt.Sprintf("metrics: %q is registered as a scalar, not a labeled family", name))
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q is registered as a %s, not a %s", name, e.kind, kind))
	}
	if len(e.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %q is registered with labels %v, not %v", name, e.labels, labels))
	}
	for i, l := range labels {
		if e.labels[i] != l {
			panic(fmt.Sprintf("metrics: %q is registered with labels %v, not %v", name, e.labels, labels))
		}
	}
	return e.inst, true
}

// CurriedCounterVec is a view of a counter family with its leading label
// values pre-bound — e.g. the per-replica slice of a shared family. With
// supplies only the remaining label values.
type CurriedCounterVec struct {
	vec   *vec[*Counter]
	bound []string
}

// Curry pre-binds the family's leading label values and returns the view.
func (v CounterVec) Curry(values ...string) CurriedCounterVec {
	if len(values) > len(v.labels) {
		panic(fmt.Sprintf("metrics: currying %d values onto %d labels %v", len(values), len(v.labels), v.labels))
	}
	// Clamp capacity so concurrent With appends never share the array.
	return CurriedCounterVec{vec: v.vec, bound: values[:len(values):len(values)]}
}

// With returns the child for the bound values plus the given trailing
// label values.
func (v CurriedCounterVec) With(values ...string) *Counter {
	return v.vec.with(append(v.bound, values...)...)
}
