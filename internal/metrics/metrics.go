// Package metrics is Fair-CO2's dependency-free observability layer: a
// concurrency-safe metric registry (counters, gauges, histograms and
// labeled families of each) with Prometheus text-format exposition. It is
// the serving surface that turns the attribution machinery into an
// operational system — the signal-server and the carbon-exporter daemon
// both publish their internals through a Registry, and any Prometheus
// scraper can consume them.
//
// The design follows the prometheus/client_golang data model (instrument
// kinds, label vectors, cumulative histogram buckets, the 0.0.4 text
// format) in a deliberately small, stdlib-only package: scalar instruments
// are single atomics, labeled families are an RWMutex-guarded map of
// children, and Gather produces an immutable snapshot so exposition never
// holds instrument locks while writing to a slow scraper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use; the hot path (Inc/Add) is a single CAS loop on an atomic
// word, so it can sit inside per-request and per-sample code.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas panic: a decreasing counter
// corrupts every rate() computed over it, which is a programming error,
// not a runtime condition.
func (c *Counter) Add(delta float64) {
	if delta < 0 || math.IsNaN(delta) {
		panic(fmt.Sprintf("metrics: counter add of invalid delta %v", delta))
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// DefBuckets are the default histogram buckets, tuned for latencies in
// seconds (the same spread as the Prometheus client default).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram samples observations into cumulative buckets. Observe takes a
// short mutex so that Gather sees a consistent (sum, count, buckets)
// triple even under concurrent writers.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts []uint64  // len(upper)+1; last slot is the +Inf bucket
	sum    float64
	count  uint64
}

func newHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := append([]float64(nil), buckets...)
	for i, b := range upper {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("metrics: NaN histogram bucket at index %d", i)
		}
		if i > 0 && upper[i-1] >= b {
			return nil, fmt.Errorf("metrics: histogram buckets must be strictly increasing (%v then %v)", upper[i-1], b)
		}
	}
	// A trailing +Inf bound is redundant with the implicit overflow slot.
	if math.IsInf(upper[len(upper)-1], +1) {
		upper = upper[:len(upper)-1]
	}
	return &Histogram{upper: upper, counts: make([]uint64, len(upper)+1)}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound covers v; le is inclusive.
	i := sort.SearchFloat64s(h.upper, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound      float64
	CumulativeCount uint64
}

// snapshot returns cumulative buckets (including +Inf), sum and count.
func (h *Histogram) snapshot() ([]Bucket, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make([]Bucket, len(h.counts))
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		bound := math.Inf(+1)
		if i < len(h.upper) {
			bound = h.upper[i]
		}
		buckets[i] = Bucket{UpperBound: bound, CumulativeCount: cum}
	}
	return buckets, h.sum, h.count
}

// labelSep joins label values into a map key; \xff cannot appear in valid
// UTF-8 label text at that position without being part of the value, and
// collisions would require a value containing the separator byte — label
// values are validated to be separator-free at With time.
const labelSep = "\xff"

// vec is the generic labeled family: a lazily-populated map from label
// values to child instruments.
type vec[T any] struct {
	labels   []string
	newChild func() T

	mu       sync.RWMutex
	children map[string]T
	values   map[string][]string
}

func newVec[T any](labels []string, newChild func() T) *vec[T] {
	return &vec[T]{
		labels:   labels,
		newChild: newChild,
		children: map[string]T{},
		values:   map[string][]string{},
	}
}

func (v *vec[T]) with(values ...string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: got %d label values for labels %v", len(values), v.labels))
	}
	for _, val := range values {
		if strings.Contains(val, labelSep) {
			panic(fmt.Sprintf("metrics: label value %q contains reserved byte 0xff", val))
		}
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	child, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return child
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if child, ok = v.children[key]; ok {
		return child
	}
	child = v.newChild()
	v.children[key] = child
	v.values[key] = append([]string(nil), values...)
	return child
}

// each calls fn for every child in deterministic (sorted-key) order.
func (v *vec[T]) each(fn func(values []string, child T)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	// Copy the value slices so fn runs lock-free.
	snapshot := make(map[string][]string, len(keys))
	children := make(map[string]T, len(keys))
	for _, k := range keys {
		snapshot[k] = v.values[k]
		children[k] = v.children[k]
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fn(snapshot[k], children[k])
	}
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ *vec[*Counter] }

// With returns (creating on first use) the child for the label values,
// which must match the family's label names in count and order.
func (v CounterVec) With(values ...string) *Counter { return v.with(values...) }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ *vec[*Gauge] }

// With returns the child gauge for the label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ *vec[*Histogram] }

// With returns the child histogram for the label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.with(values...) }
