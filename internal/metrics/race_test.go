package metrics

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWritersAndScrapers hammers one registry from writer
// goroutines (scalar and labeled instruments) while scraper goroutines
// gather and format it. Run under -race this is the registry's
// thread-safety proof; the final assertions check no increments were lost.
func TestConcurrentWritersAndScrapers(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "Ops.")
	g := r.NewGauge("level_gauge", "Level.")
	cv := r.NewCounterVec("ops_by_worker_total", "Ops by worker.", "worker")
	h := r.NewHistogram("op_seconds", "Op latency.", []float64{0.001, 0.01, 0.1})
	hv := r.NewHistogramVec("op_by_worker_seconds", "Latency by worker.", nil, "worker")

	const (
		writers    = 8
		iterations = 2000
		scrapers   = 4
	)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(id int) {
			defer writerWG.Done()
			worker := string(rune('a' + id))
			for i := 0; i < iterations; i++ {
				c.Inc()
				g.Set(float64(i))
				cv.With(worker).Inc()
				h.Observe(float64(i%100) / 1000)
				hv.With(worker).Observe(0.002)
			}
		}(w)
	}

	done := make(chan struct{})
	var scraperWG sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		scraperWG.Add(1)
		go func() {
			defer scraperWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := LintText(strings.NewReader(sb.String())); err != nil {
					t.Errorf("mid-flight scrape not parseable: %v", err)
					return
				}
			}
		}()
	}

	writerWG.Wait()
	close(done)
	scraperWG.Wait()

	if got := c.Value(); got != writers*iterations {
		t.Errorf("counter = %v, want %d", got, writers*iterations)
	}
	for w := 0; w < writers; w++ {
		worker := string(rune('a' + w))
		if got := cv.With(worker).Value(); got != iterations {
			t.Errorf("worker %s = %v, want %d", worker, got, iterations)
		}
	}
	_, sum, count := h.snapshot()
	if count != writers*iterations {
		t.Errorf("histogram count = %d, want %d", count, writers*iterations)
	}
	if sum <= 0 {
		t.Errorf("histogram sum = %v", sum)
	}
}
