package workload

import (
	"fmt"
	"strings"

	"fairco2/internal/units"
)

// Characterization is the pairwise colocation profile of a workload suite —
// the data the paper's Figure 2 reports and that Fair-CO2's
// interference-aware adjustment (§5.2) consumes as "historical colocation
// data". Matrices are indexed [victim][aggressor].
type Characterization struct {
	Profiles []*Profile

	// RuntimeFactor[i][j] is workload i's runtime multiplier when
	// colocated with workload j (1.0 means unaffected).
	RuntimeFactor [][]float64
	// DynEnergyFactor[i][j] is workload i's dynamic-energy multiplier
	// when colocated with workload j.
	DynEnergyFactor [][]float64
}

// Characterize runs the analytic interference model over every ordered
// pair in the suite, reproducing the paper's pairwise colocation sweep
// (all pairs, each workload on half a node).
func Characterize(suite []*Profile) (*Characterization, error) {
	if len(suite) == 0 {
		return nil, fmt.Errorf("workload: empty suite")
	}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	n := len(suite)
	c := &Characterization{
		Profiles:        suite,
		RuntimeFactor:   make([][]float64, n),
		DynEnergyFactor: make([][]float64, n),
	}
	for i, victim := range suite {
		c.RuntimeFactor[i] = make([]float64, n)
		c.DynEnergyFactor[i] = make([]float64, n)
		isoEnergy := float64(victim.IsolatedDynEnergy())
		for j, aggressor := range suite {
			c.RuntimeFactor[i][j] = Slowdown(victim, aggressor)
			c.DynEnergyFactor[i][j] = float64(ColocatedDynEnergy(victim, aggressor)) / isoEnergy
		}
	}
	return c, nil
}

// Index returns the suite position of the named workload.
func (c *Characterization) Index(name Name) (int, error) {
	for i, p := range c.Profiles {
		if p.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("workload: %q not in characterization", name)
}

// MeanSlowdownSuffered returns the average runtime factor of workload i
// across all partners — the alpha term of Fair-CO2's attribution factor.
func (c *Characterization) MeanSlowdownSuffered(i int) float64 {
	return meanRow(c.RuntimeFactor, i)
}

// MeanSlowdownInflicted returns the average runtime factor workload i
// causes in its partners — the beta term of Fair-CO2's attribution factor.
func (c *Characterization) MeanSlowdownInflicted(i int) float64 {
	return meanCol(c.RuntimeFactor, i)
}

// MeanEnergyFactorSuffered returns the average dynamic-energy multiplier
// workload i experiences across partners.
func (c *Characterization) MeanEnergyFactorSuffered(i int) float64 {
	return meanRow(c.DynEnergyFactor, i)
}

// MeanEnergyFactorInflicted returns the average dynamic-energy multiplier
// workload i causes in partners.
func (c *Characterization) MeanEnergyFactorInflicted(i int) float64 {
	return meanCol(c.DynEnergyFactor, i)
}

func meanRow(m [][]float64, i int) float64 {
	sum := 0.0
	for _, v := range m[i] {
		sum += v
	}
	return sum / float64(len(m[i]))
}

func meanCol(m [][]float64, j int) float64 {
	sum := 0.0
	for i := range m {
		sum += m[i][j]
	}
	return sum / float64(len(m))
}

// ColocatedRuntimeOf returns workload i's runtime when paired with j.
func (c *Characterization) ColocatedRuntimeOf(i, j int) units.Seconds {
	return units.Seconds(float64(c.Profiles[i].IsolatedRuntime) * c.RuntimeFactor[i][j])
}

// ColocatedDynEnergyOf returns workload i's dynamic energy when paired
// with j.
func (c *Characterization) ColocatedDynEnergyOf(i, j int) units.Joules {
	return units.Joules(float64(c.Profiles[i].IsolatedDynEnergy()) * c.DynEnergyFactor[i][j])
}

// FormatMatrix renders one of the characterization matrices as the percent
// increase over isolation, in the layout of the paper's Figure 2 heatmaps
// (rows: victim, columns: aggressor).
func FormatMatrix(profiles []*Profile, m [][]float64, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%% increase vs isolated; rows = victim, cols = aggressor)\n", title)
	fmt.Fprintf(&b, "%-8s", "")
	for _, p := range profiles {
		fmt.Fprintf(&b, "%8s", truncate(string(p.Name), 7))
	}
	b.WriteByte('\n')
	for i, p := range profiles {
		fmt.Fprintf(&b, "%-8s", truncate(string(p.Name), 7))
		for j := range profiles {
			fmt.Fprintf(&b, "%7.1f%%", (m[i][j]-1)*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
