package workload

import "fairco2/internal/units"

// Multi-tenant interference: the pairwise Bubble-Up model extends
// additively to k-way colocation — pressures on each shared resource sum
// across co-tenants. This supports the beyond-pairwise scenarios the
// paper's evaluation leaves out (its colocations are pairs; production
// nodes often host more).

// SlowdownMulti returns the victim's runtime multiplier when colocated
// with all the aggressors simultaneously (additive pressure).
func SlowdownMulti(victim *Profile, aggressors []*Profile) float64 {
	s := 1.0
	for r := Resource(0); r < NumResources; r++ {
		pressure := 0.0
		for _, a := range aggressors {
			pressure += a.Pressure[r]
		}
		s += victim.Sensitivity[r] * pressure
	}
	return s
}

// ColocatedRuntimeMulti returns the victim's runtime under k-way
// colocation.
func ColocatedRuntimeMulti(victim *Profile, aggressors []*Profile) units.Seconds {
	return units.Seconds(float64(victim.IsolatedRuntime) * SlowdownMulti(victim, aggressors))
}

// ColocatedDynPowerMulti returns the victim's average dynamic power under
// k-way colocation, with the same contention damping as the pairwise
// model.
func ColocatedDynPowerMulti(victim *Profile, aggressors []*Profile) units.Watts {
	s := SlowdownMulti(victim, aggressors)
	return units.Watts(float64(victim.IsolatedDynPower) / (1 + powerContentionDamping*(s-1)))
}

// ColocatedDynEnergyMulti returns the victim's dynamic energy for one
// k-way colocated run.
func ColocatedDynEnergyMulti(victim *Profile, aggressors []*Profile) units.Joules {
	return units.Energy(ColocatedDynPowerMulti(victim, aggressors), ColocatedRuntimeMulti(victim, aggressors))
}
