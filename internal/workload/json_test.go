package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCharacterizationJSONRoundTrip(t *testing.T) {
	orig, err := Characterize(Suite())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Profiles) != len(orig.Profiles) {
		t.Fatalf("profiles %d vs %d", len(got.Profiles), len(orig.Profiles))
	}
	for i := range orig.Profiles {
		if got.Profiles[i].Name != orig.Profiles[i].Name {
			t.Fatalf("profile %d name changed", i)
		}
		if got.Profiles[i].IsolatedRuntime != orig.Profiles[i].IsolatedRuntime {
			t.Fatalf("profile %d runtime changed", i)
		}
		if got.Profiles[i].Pressure != orig.Profiles[i].Pressure {
			t.Fatalf("profile %d pressure changed", i)
		}
		for j := range orig.Profiles {
			if got.RuntimeFactor[i][j] != orig.RuntimeFactor[i][j] {
				t.Fatalf("runtime factor [%d][%d] changed", i, j)
			}
			if got.DynEnergyFactor[i][j] != orig.DynEnergyFactor[i][j] {
				t.Fatalf("energy factor [%d][%d] changed", i, j)
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":     "{",
		"no profiles": `{"profiles": [], "runtime_factor": [], "dyn_energy_factor": []}`,
		"bad dims": `{"profiles": [{"name":"X","cores":1,"memory_gb":1,"isolated_runtime_s":1,
			"isolated_dyn_power_w":1,"pressure":[0],"sensitivity":[0]}],
			"runtime_factor": [[1]], "dyn_energy_factor": [[1]]}`,
		"invalid profile": `{"profiles": [{"name":"X","cores":0,"memory_gb":1,"isolated_runtime_s":1,
			"isolated_dyn_power_w":1,"pressure":[0,0,0,0],"sensitivity":[0,0,0,0]}],
			"runtime_factor": [[1]], "dyn_energy_factor": [[1]]}`,
		"missing matrix": `{"profiles": [{"name":"X","cores":1,"memory_gb":1,"isolated_runtime_s":1,
			"isolated_dyn_power_w":1,"pressure":[0,0,0,0],"sensitivity":[0,0,0,0]}],
			"runtime_factor": [], "dyn_energy_factor": []}`,
		"ragged matrix": `{"profiles": [{"name":"X","cores":1,"memory_gb":1,"isolated_runtime_s":1,
			"isolated_dyn_power_w":1,"pressure":[0,0,0,0],"sensitivity":[0,0,0,0]}],
			"runtime_factor": [[]], "dyn_energy_factor": [[1]]}`,
		"implausible factor": `{"profiles": [{"name":"X","cores":1,"memory_gb":1,"isolated_runtime_s":1,
			"isolated_dyn_power_w":1,"pressure":[0,0,0,0],"sensitivity":[0,0,0,0]}],
			"runtime_factor": [[0.5]], "dyn_energy_factor": [[1]]}`,
	}
	for name, data := range cases {
		if _, err := ReadJSON(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
