package workload

import (
	"math"
	"testing"
)

func TestSlowdownMultiReducesToPairwise(t *testing.T) {
	suite := Suite()
	for _, victim := range suite {
		for _, aggressor := range suite {
			multi := SlowdownMulti(victim, []*Profile{aggressor})
			pair := Slowdown(victim, aggressor)
			if math.Abs(multi-pair) > 1e-12 {
				t.Fatalf("%s|%s: multi %v != pairwise %v", victim.Name, aggressor.Name, multi, pair)
			}
		}
	}
}

func TestSlowdownMultiMonotoneInAggressors(t *testing.T) {
	byName := ByName()
	victim := byName[SA]
	one := SlowdownMulti(victim, []*Profile{byName[CH]})
	two := SlowdownMulti(victim, []*Profile{byName[CH], byName[LLAMA]})
	three := SlowdownMulti(victim, []*Profile{byName[CH], byName[LLAMA], byName[NBODY]})
	if !(1 < one && one < two && two < three) {
		t.Errorf("slowdown should grow with co-tenants: %v %v %v", one, two, three)
	}
}

func TestSlowdownMultiNoAggressors(t *testing.T) {
	victim := Suite()[0]
	if got := SlowdownMulti(victim, nil); got != 1 {
		t.Errorf("isolated slowdown = %v, want 1", got)
	}
	if got := ColocatedRuntimeMulti(victim, nil); got != victim.IsolatedRuntime {
		t.Errorf("isolated runtime = %v", got)
	}
	if got := ColocatedDynPowerMulti(victim, nil); got != victim.IsolatedDynPower {
		t.Errorf("isolated power = %v", got)
	}
}

func TestMultiEnergyExceedsIsolated(t *testing.T) {
	byName := ByName()
	victim := byName[BFS]
	aggressors := []*Profile{byName[CH], byName[SA], byName[LLAMA]}
	iso := float64(victim.IsolatedDynEnergy())
	multi := float64(ColocatedDynEnergyMulti(victim, aggressors))
	if multi <= iso {
		t.Errorf("3-way colocated energy %v should exceed isolated %v", multi, iso)
	}
	// And exceed the worst pairwise case.
	worstPair := 0.0
	for _, a := range aggressors {
		if e := float64(ColocatedDynEnergy(victim, a)); e > worstPair {
			worstPair = e
		}
	}
	if multi <= worstPair {
		t.Errorf("3-way energy %v should exceed worst pairwise %v", multi, worstPair)
	}
}
