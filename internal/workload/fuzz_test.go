package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON ensures the characterization loader never panics and only
// accepts structurally valid data.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if c, err := Characterize(Suite()); err == nil {
		_ = c.WriteJSON(&seed)
	}
	f.Add(seed.String())
	f.Add("{}")
	f.Add("")
	f.Add(`{"profiles": [{"name":"X"}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		c, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		n := len(c.Profiles)
		if n == 0 || len(c.RuntimeFactor) != n || len(c.DynEnergyFactor) != n {
			t.Fatal("accepted characterization is inconsistent")
		}
		for _, p := range c.Profiles {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted invalid profile: %v", err)
			}
		}
	})
}
