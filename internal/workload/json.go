package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"fairco2/internal/units"
)

// characterizationJSON is the serialized form of a Characterization — the
// equivalent of the paper artifact's stored colocation results, letting an
// expensive (in the paper: day-long) pairwise sweep be captured once and
// reloaded by the Monte Carlo harnesses.
type characterizationJSON struct {
	Profiles        []profileJSON `json:"profiles"`
	RuntimeFactor   [][]float64   `json:"runtime_factor"`
	DynEnergyFactor [][]float64   `json:"dyn_energy_factor"`
}

type profileJSON struct {
	Name             Name      `json:"name"`
	Cores            int       `json:"cores"`
	MemoryGB         float64   `json:"memory_gb"`
	IsolatedRuntime  float64   `json:"isolated_runtime_s"`
	IsolatedDynPower float64   `json:"isolated_dyn_power_w"`
	Pressure         []float64 `json:"pressure"`
	Sensitivity      []float64 `json:"sensitivity"`
}

// WriteJSON serializes the characterization.
func (c *Characterization) WriteJSON(w io.Writer) error {
	out := characterizationJSON{
		RuntimeFactor:   c.RuntimeFactor,
		DynEnergyFactor: c.DynEnergyFactor,
	}
	for _, p := range c.Profiles {
		out.Profiles = append(out.Profiles, profileJSON{
			Name:             p.Name,
			Cores:            p.Cores,
			MemoryGB:         float64(p.MemoryGB),
			IsolatedRuntime:  float64(p.IsolatedRuntime),
			IsolatedDynPower: float64(p.IsolatedDynPower),
			Pressure:         p.Pressure[:],
			Sensitivity:      p.Sensitivity[:],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a characterization written by WriteJSON and
// validates its shape.
func ReadJSON(r io.Reader) (*Characterization, error) {
	var in characterizationJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding characterization: %w", err)
	}
	n := len(in.Profiles)
	if n == 0 {
		return nil, fmt.Errorf("workload: characterization has no profiles")
	}
	c := &Characterization{
		RuntimeFactor:   in.RuntimeFactor,
		DynEnergyFactor: in.DynEnergyFactor,
	}
	for i, p := range in.Profiles {
		prof := &Profile{
			Name:             p.Name,
			Cores:            p.Cores,
			MemoryGB:         units.Gigabytes(p.MemoryGB),
			IsolatedRuntime:  units.Seconds(p.IsolatedRuntime),
			IsolatedDynPower: units.Watts(p.IsolatedDynPower),
		}
		if len(p.Pressure) != int(NumResources) || len(p.Sensitivity) != int(NumResources) {
			return nil, fmt.Errorf("workload: profile %d has %d/%d resource dims, want %d",
				i, len(p.Pressure), len(p.Sensitivity), NumResources)
		}
		copy(prof.Pressure[:], p.Pressure)
		copy(prof.Sensitivity[:], p.Sensitivity)
		if err := prof.Validate(); err != nil {
			return nil, err
		}
		c.Profiles = append(c.Profiles, prof)
	}
	if len(c.RuntimeFactor) != n || len(c.DynEnergyFactor) != n {
		return nil, fmt.Errorf("workload: matrix row count mismatch (%d profiles)", n)
	}
	for i := 0; i < n; i++ {
		if len(c.RuntimeFactor[i]) != n || len(c.DynEnergyFactor[i]) != n {
			return nil, fmt.Errorf("workload: matrix row %d has wrong width", i)
		}
		for j := 0; j < n; j++ {
			if c.RuntimeFactor[i][j] < 1 || c.DynEnergyFactor[i][j] <= 0 {
				return nil, fmt.Errorf("workload: implausible factor at [%d][%d]", i, j)
			}
		}
	}
	return c, nil
}
