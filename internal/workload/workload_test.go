package workload

import (
	"math"
	"strings"
	"testing"

	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d workloads, want 15 (paper §6.2)", len(suite))
	}
	seen := map[Name]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
		if p.Cores != HalfNodeCores || p.MemoryGB != HalfNodeMemoryGB {
			t.Errorf("%s: allocation %d cores / %v GB, want half node", p.Name, p.Cores, p.MemoryGB)
		}
	}
	for _, want := range []Name{DDUP, BFS, MSF, WC, SA, CH, NN, NBODY, PG10, PG50, PG100, H265, LLAMA, FAISS, SPARK} {
		if !seen[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestLookupAndByName(t *testing.T) {
	p, err := Lookup(NBODY)
	if err != nil || p.Name != NBODY {
		t.Fatalf("Lookup(NBODY) = %v, %v", p, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup should fail for unknown workload")
	}
	m := ByName()
	if len(m) != 15 || m[CH] == nil {
		t.Error("ByName map incomplete")
	}
}

func TestFigure2Calibration(t *testing.T) {
	// Paper Figure 2: colocating NBODY and CH slows NBODY by ~87% and CH
	// by only ~39% — the asymmetry motivating interference-aware
	// attribution.
	byName := ByName()
	nbody, ch := byName[NBODY], byName[CH]
	approx(t, Slowdown(nbody, ch), 1.87, 0.02, "NBODY slowdown with CH")
	approx(t, Slowdown(ch, nbody), 1.39, 0.02, "CH slowdown with NBODY")
}

func TestCHIsDominantAggressor(t *testing.T) {
	// "CH overall causes large runtime increases in its colocation
	// partners, whereas NBODY has less of an effect."
	c, err := Characterize(Suite())
	if err != nil {
		t.Fatal(err)
	}
	chIdx, err := c.Index(CH)
	if err != nil {
		t.Fatal(err)
	}
	nbodyIdx, err := c.Index(NBODY)
	if err != nil {
		t.Fatal(err)
	}
	chInflicted := c.MeanSlowdownInflicted(chIdx)
	nbodyInflicted := c.MeanSlowdownInflicted(nbodyIdx)
	if chInflicted <= nbodyInflicted {
		t.Errorf("CH inflicted %v should exceed NBODY inflicted %v", chInflicted, nbodyInflicted)
	}
	// CH should be the heaviest or near-heaviest aggressor in the suite.
	heavier := 0
	for i := range c.Profiles {
		if c.MeanSlowdownInflicted(i) > chInflicted {
			heavier++
		}
	}
	if heavier > 1 {
		t.Errorf("%d workloads inflict more than CH; expected CH near the top", heavier)
	}
}

func TestPGLoadScaling(t *testing.T) {
	// PostgreSQL interference must grow with client count (Figure 2's
	// three load scenarios).
	byName := ByName()
	probe := byName[SA]
	s10 := Slowdown(probe, byName[PG10])
	s50 := Slowdown(probe, byName[PG50])
	s100 := Slowdown(probe, byName[PG100])
	if !(s10 < s50 && s50 < s100) {
		t.Errorf("PG pressure should scale with clients: %v %v %v", s10, s50, s100)
	}
	v10 := Slowdown(byName[PG10], probe)
	v100 := Slowdown(byName[PG100], probe)
	if v10 >= v100 {
		t.Errorf("PG sensitivity should scale with clients: %v vs %v", v10, v100)
	}
}

func TestSlowdownProperties(t *testing.T) {
	suite := Suite()
	for _, victim := range suite {
		for _, aggressor := range suite {
			s := Slowdown(victim, aggressor)
			if s < 1 {
				t.Fatalf("slowdown(%s|%s) = %v < 1", victim.Name, aggressor.Name, s)
			}
			if s > 3 {
				t.Fatalf("slowdown(%s|%s) = %v implausibly large", victim.Name, aggressor.Name, s)
			}
		}
	}
}

func TestColocationEnergyExceedsIsolated(t *testing.T) {
	// Colocation must always cost net dynamic energy: power drops less
	// than runtime grows.
	suite := Suite()
	for _, victim := range suite {
		for _, aggressor := range suite {
			iso := float64(victim.IsolatedDynEnergy())
			coloc := float64(ColocatedDynEnergy(victim, aggressor))
			if coloc < iso-1e-9 {
				t.Fatalf("%s with %s: colocated energy %v below isolated %v", victim.Name, aggressor.Name, coloc, iso)
			}
			// Power must not increase under contention.
			if ColocatedDynPower(victim, aggressor) > victim.IsolatedDynPower+1e-9 {
				t.Fatalf("%s with %s: colocated power above isolated", victim.Name, aggressor.Name)
			}
		}
	}
}

func TestColocatedRuntime(t *testing.T) {
	byName := ByName()
	nbody, ch := byName[NBODY], byName[CH]
	got := ColocatedRuntime(nbody, ch)
	want := float64(nbody.IsolatedRuntime) * Slowdown(nbody, ch)
	approx(t, float64(got), want, 1e-9, "colocated runtime")
}

func TestCharacterizeMatrices(t *testing.T) {
	suite := Suite()
	c, err := Characterize(suite)
	if err != nil {
		t.Fatal(err)
	}
	n := len(suite)
	if len(c.RuntimeFactor) != n || len(c.DynEnergyFactor) != n {
		t.Fatal("matrix shape mismatch")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c.RuntimeFactor[i][j] < 1 {
				t.Fatalf("runtime factor [%d][%d] < 1", i, j)
			}
			if c.DynEnergyFactor[i][j] < 1-1e-9 {
				t.Fatalf("energy factor [%d][%d] < 1", i, j)
			}
		}
	}
	// Cross-check accessor consistency.
	i, _ := c.Index(NBODY)
	j, _ := c.Index(CH)
	approx(t, float64(c.ColocatedRuntimeOf(i, j)),
		float64(ColocatedRuntime(suite[i], suite[j])), 1e-9, "ColocatedRuntimeOf")
	approx(t, float64(c.ColocatedDynEnergyOf(i, j)),
		float64(ColocatedDynEnergy(suite[i], suite[j])), 1e-6, "ColocatedDynEnergyOf")
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := Characterize(nil); err == nil {
		t.Error("empty suite should error")
	}
	bad := Suite()
	bad[0].Cores = 0
	if _, err := Characterize(bad); err == nil {
		t.Error("invalid profile should error")
	}
	c, err := Characterize(Suite())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Index("nope"); err == nil {
		t.Error("Index should fail for unknown workload")
	}
}

func TestMeanHelpers(t *testing.T) {
	c, err := Characterize(Suite())
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Profiles {
		if c.MeanSlowdownSuffered(i) < 1 || c.MeanSlowdownInflicted(i) < 1 {
			t.Errorf("workload %d: mean slowdowns below 1", i)
		}
		if c.MeanEnergyFactorSuffered(i) < 1 || c.MeanEnergyFactorInflicted(i) < 1 {
			t.Errorf("workload %d: mean energy factors below 1", i)
		}
	}
}

func TestFormatMatrix(t *testing.T) {
	c, err := Characterize(Suite())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMatrix(c.Profiles, c.RuntimeFactor, "Runtime increase")
	if !strings.Contains(out, "NBODY") || !strings.Contains(out, "Runtime increase") {
		t.Errorf("FormatMatrix output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(c.Profiles) {
		t.Errorf("FormatMatrix has %d lines, want %d", len(lines), 2+len(c.Profiles))
	}
}

func TestValidate(t *testing.T) {
	good := Profile{Name: "x", Cores: 1, MemoryGB: 1, IsolatedRuntime: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	cases := []Profile{
		{},
		{Name: "x", Cores: 0, MemoryGB: 1, IsolatedRuntime: 1},
		{Name: "x", Cores: 1, MemoryGB: 0, IsolatedRuntime: 1},
		{Name: "x", Cores: 1, MemoryGB: 1, IsolatedRuntime: 0},
		{Name: "x", Cores: 1, MemoryGB: 1, IsolatedRuntime: 1, IsolatedDynPower: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	neg := good
	neg.Pressure[ResLLC] = -0.5
	if err := neg.Validate(); err == nil {
		t.Error("negative pressure should be rejected")
	}
}

func TestResourceString(t *testing.T) {
	if ResCPU.String() != "cpu" || ResLLC.String() != "llc" || ResMemBW.String() != "membw" || ResIO.String() != "io" {
		t.Error("resource names")
	}
	if Resource(99).String() != "Resource(99)" {
		t.Error("unknown resource formatting")
	}
}

func TestIsolatedDynEnergy(t *testing.T) {
	p := Profile{Name: "x", Cores: 1, MemoryGB: 1, IsolatedRuntime: 100, IsolatedDynPower: 50}
	if got := p.IsolatedDynEnergy(); got != units.Joules(5000) {
		t.Errorf("IsolatedDynEnergy = %v", got)
	}
}
