// Package workload models the paper's benchmark suite (§6.2): eight PBBS
// kernels, PostgreSQL under three client loads, H.265 encoding, Llama
// inference, FAISS retrieval, and Apache Spark. The paper measures each
// workload in isolation and in every pairwise colocation on a 2-socket
// Xeon 6240R server; offline, we reproduce that characterization with an
// analytic interference model in the style of Bubble-Up (Mars et al.),
// which the paper itself cites as the intuition behind Fair-CO2's
// sensitivity/pressure adjustment: each workload exerts pressure on shared
// resources (cores/SMT, last-level cache, memory bandwidth, storage) and
// has a sensitivity to pressure on each. The pairwise slowdown of a victim
// colocated with an aggressor is
//
//	slowdown(victim | aggressor) = 1 + sensitivity(victim) . pressure(aggressor)
//
// with the dot product over shared resources. Profile parameters are
// calibrated so the headline asymmetry in the paper's Figure 2 holds:
// NBODY suffers ~87% slowdown next to CH while CH suffers only ~39%.
package workload

import (
	"fmt"

	"fairco2/internal/units"
)

// Resource enumerates the shared hardware resources of the interference
// model.
type Resource int

// Shared resource dimensions.
const (
	ResCPU   Resource = iota // core/SMT scheduler contention
	ResLLC                   // last-level cache
	ResMemBW                 // memory bandwidth
	ResIO                    // storage and I/O
	NumResources
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case ResCPU:
		return "cpu"
	case ResLLC:
		return "llc"
	case ResMemBW:
		return "membw"
	case ResIO:
		return "io"
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// Name identifies a workload in the suite.
type Name string

// The paper's workload suite.
const (
	DDUP  Name = "DDUP"   // remove duplicates, 2B random integers
	BFS   Name = "BFS"    // breadth-first search, 640M-node graph
	MSF   Name = "MSF"    // minimum spanning forest, 120M nodes / 2.4B edges
	WC    Name = "WC"     // word count, 500B characters
	SA    Name = "SA"     // suffix array, 500B characters
	CH    Name = "CH"     // convex hull, 1B 2-D points
	NN    Name = "NN"     // 10-nearest-neighbours, 50M 3-D points
	NBODY Name = "NBODY"  // gravitational n-body, 10M 3-D points
	PG10  Name = "PG-10"  // pgbench, 10 clients
	PG50  Name = "PG-50"  // pgbench, 50 clients
	PG100 Name = "PG-100" // pgbench, 100 clients
	H265  Name = "H.265"  // x265 4K video encoding
	LLAMA Name = "LLAMA"  // Llama 3 8B CPU inference
	FAISS Name = "FAISS"  // vector similarity search
	SPARK Name = "SPARK"  // Spark SQL over TPC-DS store_sales
)

// Profile describes one workload's resource demand, isolated behaviour and
// interference characteristics. In the evaluation setup every workload is
// allocated half a node: 48 logical cores and 96 GB of memory.
type Profile struct {
	Name Name

	// Cores and MemoryGB are the workload's resource allocation.
	Cores    int
	MemoryGB units.Gigabytes

	// IsolatedRuntime is the runtime with the allocation above and no
	// colocation partner.
	IsolatedRuntime units.Seconds
	// IsolatedDynPower is the average dynamic power draw in isolation.
	IsolatedDynPower units.Watts

	// Pressure[r] is the pressure the workload exerts on shared resource
	// r; Sensitivity[r] is its slowdown response to a unit of pressure.
	Pressure    [NumResources]float64
	Sensitivity [NumResources]float64
}

// Validate reports whether the profile is usable.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.Cores <= 0:
		return fmt.Errorf("workload %s: cores must be positive", p.Name)
	case p.MemoryGB <= 0:
		return fmt.Errorf("workload %s: memory must be positive", p.Name)
	case p.IsolatedRuntime <= 0:
		return fmt.Errorf("workload %s: isolated runtime must be positive", p.Name)
	case p.IsolatedDynPower < 0:
		return fmt.Errorf("workload %s: dynamic power must be non-negative", p.Name)
	}
	for r := Resource(0); r < NumResources; r++ {
		if p.Pressure[r] < 0 || p.Sensitivity[r] < 0 {
			return fmt.Errorf("workload %s: pressure/sensitivity on %v must be non-negative", p.Name, r)
		}
	}
	return nil
}

// IsolatedDynEnergy is the dynamic energy of one isolated run.
func (p *Profile) IsolatedDynEnergy() units.Joules {
	return units.Energy(p.IsolatedDynPower, p.IsolatedRuntime)
}

// Slowdown returns the runtime multiplier (>= 1) of the victim when
// colocated with the aggressor.
func Slowdown(victim, aggressor *Profile) float64 {
	s := 1.0
	for r := Resource(0); r < NumResources; r++ {
		s += victim.Sensitivity[r] * aggressor.Pressure[r]
	}
	return s
}

// ColocatedRuntime returns the victim's runtime when colocated with the
// aggressor.
func ColocatedRuntime(victim, aggressor *Profile) units.Seconds {
	return units.Seconds(float64(victim.IsolatedRuntime) * Slowdown(victim, aggressor))
}

// powerContentionDamping captures that contention lowers instantaneous
// power (stalled cores draw less) even as energy rises with runtime.
const powerContentionDamping = 0.45

// ColocatedDynPower returns the victim's average dynamic power when
// colocated with the aggressor: throughput loss stalls pipelines, so power
// drops below the isolated level, but less than runtime grows — colocation
// always costs net dynamic energy.
func ColocatedDynPower(victim, aggressor *Profile) units.Watts {
	s := Slowdown(victim, aggressor)
	return units.Watts(float64(victim.IsolatedDynPower) / (1 + powerContentionDamping*(s-1)))
}

// ColocatedDynEnergy returns the victim's dynamic energy for one colocated
// run: power x slowed runtime.
func ColocatedDynEnergy(victim, aggressor *Profile) units.Joules {
	return units.Energy(ColocatedDynPower(victim, aggressor), ColocatedRuntime(victim, aggressor))
}
