package workload

import (
	"fmt"

	"fairco2/internal/units"
)

// HalfNodeCores and HalfNodeMemoryGB are the per-workload allocation used
// throughout the paper's colocation experiments: half of a 96-logical-core,
// 192 GB node.
const (
	HalfNodeCores    = 48
	HalfNodeMemoryGB = 96
)

// Suite returns the paper's 15-workload suite with calibrated interference
// profiles. The pressure/sensitivity vectors are synthetic (DESIGN.md
// documents the substitution) but preserve the characterization structure
// the paper reports: CH is a heavy aggressor, NBODY is highly sensitive but
// exerts modest pressure, pgbench's interference scales with client count,
// and streaming kernels (WC, LLAMA) stress memory bandwidth.
func Suite() []*Profile {
	mk := func(name Name, runtime, dynPower float64, press, sens [NumResources]float64) *Profile {
		return &Profile{
			Name:             name,
			Cores:            HalfNodeCores,
			MemoryGB:         HalfNodeMemoryGB,
			IsolatedRuntime:  units.Seconds(runtime),
			IsolatedDynPower: units.Watts(dynPower),
			Pressure:         press,
			Sensitivity:      sens,
		}
	}
	return []*Profile{
		// PBBS kernels.
		mk(DDUP, 140, 155,
			vec(0.30, 0.40, 0.50, 0.00), vec(0.20, 0.30, 0.40, 0.00)),
		mk(BFS, 320, 145,
			vec(0.25, 0.35, 0.45, 0.00), vec(0.25, 0.45, 0.50, 0.00)),
		mk(MSF, 450, 150,
			vec(0.30, 0.30, 0.40, 0.00), vec(0.25, 0.35, 0.40, 0.00)),
		mk(WC, 230, 165,
			vec(0.30, 0.20, 0.60, 0.05), vec(0.20, 0.15, 0.35, 0.05)),
		mk(SA, 520, 160,
			vec(0.30, 0.45, 0.55, 0.05), vec(0.30, 0.40, 0.50, 0.05)),
		// CH: strong aggressor (calibrated against NBODY, Figure 2).
		mk(CH, 260, 175,
			vec(0.55, 0.50, 0.35, 0.00), vec(0.65, 0.25, 0.15, 0.00)),
		mk(NN, 380, 150,
			vec(0.35, 0.40, 0.30, 0.00), vec(0.30, 0.45, 0.35, 0.00)),
		// NBODY: compute-bound, SMT-sensitive, modest pressure.
		mk(NBODY, 300, 185,
			vec(0.50, 0.20, 0.10, 0.00), vec(1.05, 0.45, 0.20, 0.00)),
		// PostgreSQL at three load levels: interference grows with clients.
		mk(PG10, 600, 35,
			vec(0.05, 0.10, 0.10, 0.15), vec(0.10, 0.15, 0.15, 0.20)),
		mk(PG50, 600, 80,
			vec(0.15, 0.20, 0.20, 0.25), vec(0.15, 0.25, 0.20, 0.30)),
		mk(PG100, 600, 120,
			vec(0.25, 0.30, 0.30, 0.35), vec(0.20, 0.30, 0.25, 0.35)),
		mk(H265, 780, 170,
			vec(0.45, 0.30, 0.35, 0.05), vec(0.30, 0.20, 0.25, 0.02)),
		mk(LLAMA, 420, 160,
			vec(0.35, 0.35, 0.60, 0.00), vec(0.30, 0.30, 0.55, 0.00)),
		mk(FAISS, 340, 140,
			vec(0.30, 0.45, 0.50, 0.05), vec(0.25, 0.40, 0.45, 0.05)),
		mk(SPARK, 460, 150,
			vec(0.35, 0.30, 0.40, 0.20), vec(0.25, 0.30, 0.35, 0.25)),
	}
}

// ByName returns the suite indexed by workload name.
func ByName() map[Name]*Profile {
	m := make(map[Name]*Profile)
	for _, p := range Suite() {
		m[p.Name] = p
	}
	return m
}

// Lookup returns the named profile from the suite.
func Lookup(name Name) (*Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

func vec(cpu, llc, membw, io float64) [NumResources]float64 {
	return [NumResources]float64{ResCPU: cpu, ResLLC: llc, ResMemBW: membw, ResIO: io}
}
