package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"fairco2/internal/timeseries"
)

// ReplayConfig parameterizes a trace replay: how fast to play the events
// and how much seeded disorder to script into the delivery order.
type ReplayConfig struct {
	// RateMultiplier paces wall-clock playback relative to event time:
	// 10 plays a 10-hour trace in one hour. 0 (or negative) replays as
	// fast as the consumer can ingest, with no sleeping.
	RateMultiplier float64
	// Seed drives the disorder script; the same (series, config) always
	// yields the same emission order.
	Seed int64
	// DisorderFraction is the probability each event is deferred: moved
	// later in the emission order so it arrives out of order.
	DisorderFraction float64
	// MinDefer and MaxDefer bound a deferred event's displacement, in
	// emission positions (each position is one series sample, i.e. one
	// Step of event time). Displacements past the engine's
	// MaxDelay+AllowedLateness horizon become dropped events.
	MinDefer, MaxDefer int
}

// DefaultReplayConfig replays as fast as possible with 1% of events
// displaced by one to four samples.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{Seed: 1, DisorderFraction: 0.01, MinDefer: 1, MaxDefer: 4}
}

func (c ReplayConfig) validate() error {
	switch {
	case c.DisorderFraction < 0 || c.DisorderFraction > 1:
		return errors.New("stream: disorder fraction must be in [0, 1]")
	case c.DisorderFraction > 0 && c.MinDefer < 1:
		return errors.New("stream: min defer must be >= 1 when disorder is scripted")
	case c.DisorderFraction > 0 && c.MaxDefer < c.MinDefer:
		return errors.New("stream: max defer must be >= min defer")
	}
	return nil
}

// Replay is a scripted event source: one event per sample of a demand
// trace, emitted in a seeded, possibly disordered sequence.
type Replay struct {
	// Events is the emission order.
	Events []Event

	step     float64 // series step, seconds
	rate     float64
	deferred int
}

// NewReplay scripts a replay of the series: one event per sample (time =
// sample timestamp, demand = sample value), with a seeded subset of events
// deferred to arrive out of order.
func NewReplay(s *timeseries.Series, cfg ReplayConfig) (*Replay, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("stream: empty replay series")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := s.Len()
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := make([]int, n)
	order := make([]int, n)
	deferred := 0
	for i := 0; i < n; i++ {
		order[i] = i
		keys[i] = i
		if cfg.DisorderFraction > 0 && rng.Float64() < cfg.DisorderFraction {
			d := cfg.MinDefer
			if cfg.MaxDefer > cfg.MinDefer {
				d += rng.Intn(cfg.MaxDefer - cfg.MinDefer + 1)
			}
			keys[i] = i + d
			deferred++
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	events := make([]Event, n)
	for j, i := range order {
		events[j] = Event{Time: s.TimeAt(i), Cores: s.Values[i]}
	}
	return &Replay{Events: events, step: float64(s.Step), rate: cfg.RateMultiplier, deferred: deferred}, nil
}

// Deferred returns how many events the script displaced.
func (r *Replay) Deferred() int { return r.deferred }

// Run feeds the scripted sequence to ingest, pacing by RateMultiplier
// (none when <= 0). It stops at the first ingest error or context
// cancellation.
func (r *Replay) Run(ctx context.Context, ingest func(Event) error) error {
	if r.rate <= 0 {
		for j, ev := range r.Events {
			if j&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := ingest(ev); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	interval := time.Duration(r.step / r.rate * float64(time.Second))
	for j, ev := range r.Events {
		if d := time.Until(start.Add(time.Duration(j) * interval)); d > time.Millisecond {
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
		if err := ingest(ev); err != nil {
			return err
		}
	}
	return nil
}

// Outcome is the expected classification of a replayed event sequence
// under a given engine config.
type Outcome struct {
	// OnTime events land in a window that has not closed yet.
	OnTime uint64
	// Late events land in a closed window inside the lateness budget.
	Late uint64
	// Dropped events land beyond the lateness budget.
	Dropped uint64
}

// Expect classifies an event sequence under the watermark policy of cfg,
// independently of the engine: a straight scan applying the low-watermark
// rule (watermark trails the running max event time by MaxDelay; a window
// is closed once the watermark passes its end, retired once it passes
// end+AllowedLateness). Tests use it as the oracle for the engine's
// late/dropped accounting, and the replay demo prints it next to the
// engine counters.
func Expect(events []Event, cfg Config) Outcome {
	winDur := float64(cfg.Step) * float64(cfg.Samples())
	start := float64(cfg.Start)
	var out Outcome
	var maxT float64
	started := false
	for _, ev := range events {
		t := float64(ev.Time)
		if !started || t > maxT {
			maxT = t
			started = true
		}
		wm := maxT - float64(cfg.MaxDelay)
		idx := math.Floor((t - start) / winDur)
		end := start + (idx+1)*winDur
		switch {
		case end+float64(cfg.AllowedLateness) <= wm:
			out.Dropped++
		case end <= wm:
			out.Late++
		default:
			out.OnTime++
		}
	}
	return out
}

// Expected classifies this replay's emission order under cfg.
func (r *Replay) Expected(cfg Config) Outcome { return Expect(r.Events, cfg) }

// Summary formats an Outcome for logs.
func (o Outcome) Summary() string {
	return fmt.Sprintf("on-time=%d late=%d dropped=%d", o.OnTime, o.Late, o.Dropped)
}
