package stream

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func rampSeries(n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	return timeseries.New(0, 1, vals)
}

func TestReplayConfigValidation(t *testing.T) {
	if err := DefaultReplayConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []ReplayConfig{
		{DisorderFraction: -0.1},
		{DisorderFraction: 1.1},
		{DisorderFraction: 0.5, MinDefer: 0},
		{DisorderFraction: 0.5, MinDefer: 3, MaxDefer: 2},
	}
	for i, cfg := range bad {
		if _, err := NewReplay(rampSeries(4), cfg); err == nil {
			t.Errorf("case %d: invalid replay config accepted", i)
		}
	}
	if _, err := NewReplay(nil, ReplayConfig{}); err == nil {
		t.Error("nil series accepted")
	}
}

func TestReplayScriptsDeterministicDisorder(t *testing.T) {
	cfg := ReplayConfig{Seed: 5, DisorderFraction: 0.3, MinDefer: 1, MaxDefer: 3}
	a, err := NewReplay(rampSeries(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReplay(rampSeries(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Deferred() == 0 {
		t.Fatal("30% disorder deferred nothing")
	}
	if a.Deferred() != b.Deferred() || len(a.Events) != len(b.Events) {
		t.Fatal("same seed scripted different replays")
	}
	inOrder := true
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed scripted different emission orders")
		}
		if i > 0 && a.Events[i].Time < a.Events[i-1].Time {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("disordered replay emitted strictly in order")
	}
}

func TestReplayRunPaced(t *testing.T) {
	// 1-second samples at 100x: one event every 10ms of wall time.
	rep, err := NewReplay(rampSeries(4), ReplayConfig{RateMultiplier: 100})
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	start := time.Now()
	if err := rep.Run(context.Background(), func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d of 4 events", len(got))
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("paced replay of 4s of event time at 100x took only %v", elapsed)
	}
}

func TestReplayRunStopsOnIngestError(t *testing.T) {
	rep, err := NewReplay(rampSeries(10), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	err = rep.Run(context.Background(), func(Event) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 3 {
		t.Errorf("run returned (%v) after %d events, want boom after 3", err, n)
	}

	// The paced path must surface ingest errors too.
	rep2, err := NewReplay(rampSeries(3), ReplayConfig{RateMultiplier: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.Run(context.Background(), func(Event) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("paced run returned %v, want boom", err)
	}
}

func TestReplayRunHonorsContext(t *testing.T) {
	// Canceled before start: the fast path bails at its first check.
	rep, err := NewReplay(rampSeries(2048), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rep.Run(ctx, func(Event) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("fast path returned %v, want context.Canceled", err)
	}

	// Slow pacing: cancellation must interrupt the inter-event sleep.
	rep2, err := NewReplay(rampSeries(3), ReplayConfig{RateMultiplier: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if err := rep2.Run(ctx2, func(Event) error { return nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("paced run returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the pacing sleep")
	}
}

func TestOutcomeSummary(t *testing.T) {
	o := Outcome{OnTime: 3, Late: 2, Dropped: 1}
	s := o.Summary()
	for _, want := range []string{"on-time=3", "late=2", "dropped=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestCloseLagQuantilesClampRange(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	ingestAll(t, e, inOrder(30))
	qs := e.CloseLagQuantiles(-1, 2)
	if len(qs) != 2 {
		t.Fatalf("got %d quantiles", len(qs))
	}
	if qs[0] > qs[1] {
		t.Errorf("clamped quantiles not monotone: %v", qs)
	}
}

func TestWindowLookupMisses(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	if _, ok := e.Window(-1); ok {
		t.Error("negative index returned a result")
	}
	if _, ok := e.Latest(); ok {
		t.Error("Latest returned a result before any close")
	}
	ingestAll(t, e, inOrder(11))
	if _, ok := e.Window(3); ok {
		t.Error("never-emitted window returned a result")
	}
	var ev Event
	ev.Time = units.Seconds(5)
	ev.Cores = 1
	if err := e.Ingest(ev); err != nil {
		t.Fatal(err)
	}
}
