// Package stream implements windowed streaming Temporal Shapley
// attribution: a continuous ingest path for demand events (event-time
// timestamps, out-of-order delivery allowed) that maintains tumbling
// windows under a low-watermark policy and, when the watermark passes a
// window's end, runs the closed-form Temporal Shapley engine
// (internal/temporal, paper §5.1 Eq. 7) over that window's demand bins to
// emit a per-sample carbon-intensity result.
//
// Late events — events for a window that has already closed — are applied
// and trigger a corrected re-emission as long as the watermark has not yet
// passed the window's end plus the allowed-lateness budget; beyond that the
// window is retired and the event is counted as dropped. The engine is
// deterministic per (event multiset, window config): bins aggregate by max,
// which is order-independent, so a window's final result is bit-for-bit
// identical to the batch temporal.IntensitySignal over the same demand
// regardless of delivery order. Memory is bounded: open windows live in a
// fixed ring sized by the disorder horizon, results in a fixed retention
// ring, and the steady-state ingest path performs no allocations.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Event is one demand observation: the aggregate resource demand (cores)
// seen at an event-time instant. Events may arrive out of order.
type Event struct {
	// Time is the event-time timestamp, seconds from the stream epoch.
	Time units.Seconds
	// Cores is the observed demand (>= 0).
	Cores float64
}

// QualityEmpty marks a window result emitted for a window whose bins were
// all zero: there was nothing to attribute, so the intensity is zero and no
// budget was priced. It extends the livesignal fresh/stale/degraded ladder
// and the attrserver "static" pricing label.
const QualityEmpty = "empty"

// QualityStatic marks a result priced against the static per-window budget
// (no live signal configured).
const QualityStatic = "static"

// Config parameterizes the streaming engine.
type Config struct {
	// Start is the event-time origin of window 0. Events before it are
	// rejected.
	Start units.Seconds
	// Step is the demand sample width: each window is divided into bins
	// of this width and events aggregate (by max) into their bin.
	Step units.Seconds
	// SplitRatios is the Temporal Shapley hierarchy applied inside each
	// window; their product is the window's bin count, so a window spans
	// Step * product(SplitRatios) seconds of event time.
	SplitRatios []int
	// BudgetPerWindow is the carbon budget attributed over each window
	// when no Feed is configured (and the degraded fallback when one is).
	BudgetPerWindow units.GramsCO2e
	// MaxDelay is the watermark slack: the low watermark trails the
	// newest event time by this much, so events up to MaxDelay out of
	// order are still on time.
	MaxDelay units.Seconds
	// AllowedLateness is the re-emission budget: after a window closes,
	// late events landing before the watermark passes end+AllowedLateness
	// are applied and re-emit a corrected result; beyond it they drop.
	AllowedLateness units.Seconds
	// MaxResults bounds the result retention ring (default 256).
	MaxResults int
	// Backend selects the per-level Shapley solver (default closed form).
	Backend temporal.Backend
	// Parallelism is forwarded to the temporal engine (0 auto, 1 serial).
	Parallelism int
	// Feed, when set, prices each closing window at the live embodied
	// intensity (budget = intensity x window resource-seconds) following
	// the livesignal ladder; degraded service falls back to
	// BudgetPerWindow.
	Feed *livesignal.Feed
	// Now overrides the wall clock stamped on emissions, for tests. It
	// never influences attribution arithmetic.
	Now func() time.Time
}

// DefaultConfig returns streaming defaults: 5-minute bins, one-day windows
// split 8x6x6, 10 minutes of reorder slack and 30 minutes of lateness.
func DefaultConfig() Config {
	return Config{
		Step:            300,
		SplitRatios:     []int{8, 6, 6},
		BudgetPerWindow: 1e4,
		MaxDelay:        600,
		AllowedLateness: 1800,
		MaxResults:      256,
	}
}

// Samples returns the window bin count: the product of the split ratios.
func (c Config) Samples() int {
	n := 1
	for _, m := range c.SplitRatios {
		n *= m
	}
	return n
}

// WindowDuration returns the event-time span of one window.
func (c Config) WindowDuration() units.Seconds {
	return units.Seconds(float64(c.Step) * float64(c.Samples()))
}

func (c Config) validate() error {
	switch {
	case c.Step <= 0:
		return errors.New("stream: step must be positive")
	case len(c.SplitRatios) == 0:
		return errors.New("stream: empty split ratios")
	case c.BudgetPerWindow <= 0:
		return errors.New("stream: budget per window must be positive")
	case c.MaxDelay < 0:
		return errors.New("stream: max delay must be non-negative")
	case c.AllowedLateness < 0:
		return errors.New("stream: allowed lateness must be non-negative")
	case c.MaxResults < 0:
		return errors.New("stream: max results must be non-negative")
	}
	for i, m := range c.SplitRatios {
		if m < 1 {
			return fmt.Errorf("stream: split ratio %d at level %d must be >= 1", m, i)
		}
	}
	return nil
}

// WindowResult is one emitted attribution: the Temporal Shapley intensity
// signal over a closed window. Revision 0 is the first emission at close;
// each late event inside the lateness budget re-emits with the revision
// bumped. The Intensity slice is owned by the engine's result ring copy and
// must be treated as read-only.
type WindowResult struct {
	// Index is the window's ordinal (window k spans
	// [Start+k*D, Start+(k+1)*D) for D = WindowDuration).
	Index int64
	// Start and End bound the window in event time.
	Start, End units.Seconds
	// Budget is the carbon attributed over the window, gCO2e.
	Budget float64
	// SignalIntensity is the live price used (0 when static or empty).
	SignalIntensity float64
	// Quality is the pricing provenance: fresh | stale | degraded on the
	// livesignal ladder, static for the fixed budget, empty for an
	// all-zero window.
	Quality string
	// SignalAge is the age of a stale sample at pricing time.
	SignalAge time.Duration
	// Revision counts emissions of this window: 0 at close, +1 per
	// late-event correction.
	Revision int
	// Events and Late count the window's binned events and how many of
	// them arrived after close.
	Events, Late int
	// CloseLag is how far past the window's end the watermark had moved
	// when the window closed (event-time seconds).
	CloseLag units.Seconds
	// Intensity is the per-bin carbon intensity, gCO2e per core-second.
	Intensity []float64
	// EmittedAt is the wall-clock emission stamp.
	EmittedAt time.Time
}

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	// Events counts every valid ingested event.
	Events uint64
	// Late counts events applied to an already-closed window.
	Late uint64
	// Dropped counts events beyond the allowed-lateness budget.
	Dropped uint64
	// WindowsClosed counts first emissions; Reemissions counts late-event
	// corrections.
	WindowsClosed, Reemissions uint64
	// Watermark and MaxEventTime locate the stream frontier.
	Watermark, MaxEventTime units.Seconds
	// OpenWindows counts ring slots holding a live (unretired) window.
	OpenWindows int
	// LatestWindow is the highest emitted window index (-1 when none).
	LatestWindow int64
}

// window is one live ring slot.
type window struct {
	index    int64
	active   bool
	closed   bool
	bins     []float64
	events   int
	late     int
	revision int
	closeLag units.Seconds
}

// resultRing retains the last MaxResults window results, keyed by index.
type resultRing struct {
	slots  []WindowResult
	filled []bool
	latest int64
}

func newResultRing(n int) resultRing {
	return resultRing{slots: make([]WindowResult, n), filled: make([]bool, n), latest: -1}
}

func (r *resultRing) put(res WindowResult) {
	i := res.Index % int64(len(r.slots))
	if r.filled[i] && r.slots[i].Index > res.Index {
		return // a newer window already owns the slot; the correction is too old to retain
	}
	r.slots[i] = res
	r.filled[i] = true
	if res.Index > r.latest {
		r.latest = res.Index
	}
}

func (r *resultRing) get(idx int64) (WindowResult, bool) {
	if idx < 0 {
		return WindowResult{}, false
	}
	i := idx % int64(len(r.slots))
	if !r.filled[i] || r.slots[i].Index != idx {
		return WindowResult{}, false
	}
	return r.slots[i], true
}

// maxLagSamples caps the close-lag reservoir backing the demo percentiles.
const maxLagSamples = 1 << 16

// Engine is the streaming attribution engine. All methods are safe for
// concurrent use; Ingest serializes under one mutex, so a single producer
// sees no contention and multiple producers interleave deterministically
// only in counter order (window contents stay order-independent).
type Engine struct {
	cfg     Config
	samples int
	winDur  units.Seconds
	tcfg    temporal.Config
	inst    *Instruments

	mu            sync.Mutex
	started       bool
	maxTime       units.Seconds
	watermark     units.Seconds
	nextToClose   int64
	nextToRetire  int64
	ring          []window
	results       resultRing
	lags          []float64
	events        uint64
	late          uint64
	dropped       uint64
	windowsClosed uint64
	reemissions   uint64
}

// New builds an engine. inst may be nil (no metrics).
func New(cfg Config, inst *Instruments) (*Engine, error) {
	if cfg.MaxResults == 0 {
		cfg.MaxResults = DefaultConfig().MaxResults
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	samples := cfg.Samples()
	winDur := cfg.WindowDuration()
	// The ring must span every window that can be live at once: from the
	// oldest lame-duck window (watermark within AllowedLateness of its
	// end) to the frontier window of the newest event (MaxDelay ahead of
	// the watermark), plus boundary margins.
	span := int(float64(cfg.MaxDelay+cfg.AllowedLateness)/float64(winDur)) + 3
	e := &Engine{
		cfg:     cfg,
		samples: samples,
		winDur:  winDur,
		tcfg:    temporal.Config{SplitRatios: cfg.SplitRatios, Backend: cfg.Backend, Parallelism: cfg.Parallelism},
		inst:    inst,
		ring:    make([]window, span),
		results: newResultRing(cfg.MaxResults),
	}
	for i := range e.ring {
		e.ring[i].bins = make([]float64, samples)
	}
	return e, nil
}

// windowIndex returns the ordinal of the window containing t (t >= Start).
func (e *Engine) windowIndex(t units.Seconds) int64 {
	return int64(math.Floor(float64(t-e.cfg.Start) / float64(e.winDur)))
}

// windowIndexClamped is windowIndex clamped to 0 for pre-epoch times.
func (e *Engine) windowIndexClamped(t units.Seconds) int64 {
	if t <= e.cfg.Start {
		return 0
	}
	return e.windowIndex(t)
}

// windowStart and windowEnd bound window idx in event time.
func (e *Engine) windowStart(idx int64) units.Seconds {
	return e.cfg.Start + units.Seconds(float64(idx)*float64(e.winDur))
}

func (e *Engine) windowEnd(idx int64) units.Seconds {
	return e.cfg.Start + units.Seconds(float64(idx+1)*float64(e.winDur))
}

// live returns the ring slot holding window idx, or nil.
func (e *Engine) live(idx int64) *window {
	w := &e.ring[idx%int64(len(e.ring))]
	if w.active && w.index == idx {
		return w
	}
	return nil
}

// acquire claims the ring slot for window idx. The span invariant
// guarantees the slot is free once advance() has retired old windows.
func (e *Engine) acquire(idx int64) (*window, error) {
	w := &e.ring[idx%int64(len(e.ring))]
	if w.active {
		return nil, fmt.Errorf("stream: window ring overflow (window %d collides with live window %d)", idx, w.index)
	}
	w.index = idx
	w.active = true
	w.closed = idx < e.nextToClose
	w.events, w.late, w.revision = 0, 0, 0
	w.closeLag = 0
	clear(w.bins)
	return w, nil
}

// Ingest feeds one event through the watermark assigner: bin it, advance
// the watermark, close and emit any window the watermark passed, apply
// late events with a corrected re-emission, and drop events beyond the
// lateness budget. The steady-state path (in-window event, no close)
// performs no allocations.
func (e *Engine) Ingest(ev Event) error {
	if math.IsNaN(ev.Cores) || math.IsInf(ev.Cores, 0) || ev.Cores < 0 {
		return fmt.Errorf("stream: invalid demand %v at t=%v", ev.Cores, float64(ev.Time))
	}
	if math.IsNaN(float64(ev.Time)) || math.IsInf(float64(ev.Time), 0) || ev.Time < e.cfg.Start {
		return fmt.Errorf("stream: event time %v outside stream epoch (start %v)", float64(ev.Time), float64(e.cfg.Start))
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.events++
	if e.inst != nil {
		e.inst.Events.Inc()
	}

	if !e.started {
		e.started = true
		e.maxTime = ev.Time
		e.watermark = ev.Time - e.cfg.MaxDelay
		e.nextToClose = e.windowIndexClamped(e.watermark)
		e.nextToRetire = e.windowIndexClamped(e.watermark - e.cfg.AllowedLateness)
		e.observeWatermark()
	} else if ev.Time > e.maxTime {
		e.maxTime = ev.Time
		if err := e.advance(); err != nil {
			return err
		}
	}

	idx := e.windowIndex(ev.Time)
	if idx < e.nextToRetire {
		e.dropped++
		if e.inst != nil {
			e.inst.Dropped.Inc()
		}
		return nil
	}
	w := e.live(idx)
	if w == nil {
		var err error
		if w, err = e.acquire(idx); err != nil {
			return err
		}
	}
	bi := int(math.Floor(float64(ev.Time-e.windowStart(idx)) / float64(e.cfg.Step)))
	if bi >= e.samples {
		bi = e.samples - 1
	}
	if bi < 0 {
		bi = 0
	}
	if ev.Cores > w.bins[bi] {
		w.bins[bi] = ev.Cores
	}
	w.events++
	if w.closed {
		w.late++
		e.late++
		if e.inst != nil {
			e.inst.Late.Inc()
		}
		return e.emit(w)
	}
	return nil
}

// advance moves the watermark to trail the newest event, closing windows
// the watermark passed and retiring windows past their lateness horizon.
func (e *Engine) advance() error {
	wm := e.maxTime - e.cfg.MaxDelay
	if wm <= e.watermark {
		return nil
	}
	e.watermark = wm
	e.observeWatermark()
	for ; e.windowEnd(e.nextToClose) <= wm; e.nextToClose++ {
		if w := e.live(e.nextToClose); w != nil && !w.closed {
			w.closed = true
			w.closeLag = wm - e.windowEnd(w.index)
			e.recordLag(w.closeLag)
			if err := e.emit(w); err != nil {
				return err
			}
		}
	}
	for ; e.windowEnd(e.nextToRetire)+e.cfg.AllowedLateness <= wm; e.nextToRetire++ {
		if w := e.live(e.nextToRetire); w != nil {
			w.active = false
		}
	}
	return nil
}

// emit computes and publishes one window result (first emission or a
// late-event correction).
func (e *Engine) emit(w *window) error {
	t0 := e.cfg.Now()
	res, err := e.compute(w)
	if err != nil {
		return err
	}
	res.Revision = w.revision
	res.EmittedAt = e.cfg.Now()
	if e.inst != nil {
		e.inst.WindowLatency.Observe(res.EmittedAt.Sub(t0).Seconds())
	}
	if w.revision == 0 {
		e.windowsClosed++
		if e.inst != nil {
			e.inst.WindowsClosed.Inc()
		}
	} else {
		e.reemissions++
		if e.inst != nil {
			e.inst.Reemissions.Inc()
		}
	}
	w.revision++
	e.results.put(res)
	return nil
}

// compute prices the window and runs Temporal Shapley over its bins.
func (e *Engine) compute(w *window) (WindowResult, error) {
	res := WindowResult{
		Index:    w.index,
		Start:    e.windowStart(w.index),
		End:      e.windowEnd(w.index),
		Events:   w.events,
		Late:     w.late,
		CloseLag: w.closeLag,
	}
	total := 0.0
	for _, v := range w.bins {
		total += v
	}
	if total == 0 {
		res.Quality = QualityEmpty
		res.Intensity = make([]float64, e.samples)
		return res, nil
	}
	budget := e.cfg.BudgetPerWindow
	quality := QualityStatic
	price := 0.0
	var age time.Duration
	if e.cfg.Feed != nil {
		sample, err := e.cfg.Feed.Intensity()
		if err != nil || sample.Quality == livesignal.QualityDegraded {
			quality = livesignal.QualityDegraded.String()
		} else {
			budget = units.GramsCO2e(sample.Intensity * total * float64(e.cfg.Step))
			price = sample.Intensity
			quality = sample.Quality.String()
			age = sample.Age
		}
	}
	sig, err := temporal.IntensitySignal(timeseries.New(res.Start, e.cfg.Step, w.bins), budget, e.tcfg)
	if err != nil {
		return res, fmt.Errorf("stream: window %d: %w", w.index, err)
	}
	res.Budget = float64(budget)
	res.SignalIntensity = price
	res.Quality = quality
	res.SignalAge = age
	res.Intensity = sig.Values
	return res, nil
}

// recordLag feeds the close-lag reservoir and gauge.
func (e *Engine) recordLag(lag units.Seconds) {
	if len(e.lags) < maxLagSamples {
		e.lags = append(e.lags, float64(lag))
	}
	if e.inst != nil {
		e.inst.WatermarkLag.Set(float64(lag))
	}
}

// observeWatermark publishes the watermark position gauge.
func (e *Engine) observeWatermark() {
	if e.inst != nil {
		e.inst.Watermark.Set(float64(e.watermark))
	}
}

// Window returns the retained result for window idx, if any. The copy's
// Intensity slice is shared with the ring entry and must not be mutated.
func (e *Engine) Window(idx int64) (WindowResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.results.get(idx)
}

// Latest returns the most recent window result, if any.
func (e *Engine) Latest() (WindowResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.results.get(e.results.latest)
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	open := 0
	for i := range e.ring {
		if e.ring[i].active {
			open++
		}
	}
	return Stats{
		Events:        e.events,
		Late:          e.late,
		Dropped:       e.dropped,
		WindowsClosed: e.windowsClosed,
		Reemissions:   e.reemissions,
		Watermark:     e.watermark,
		MaxEventTime:  e.maxTime,
		OpenWindows:   open,
		LatestWindow:  e.results.latest,
	}
}

// CloseLagQuantiles returns the requested quantiles (in [0, 1]) of the
// per-window close lag: how far past each window's end the watermark had
// moved when it closed. Returns nil before the first close.
func (e *Engine) CloseLagQuantiles(ps ...float64) []units.Seconds {
	e.mu.Lock()
	lags := append([]float64(nil), e.lags...)
	e.mu.Unlock()
	if len(lags) == 0 {
		return nil
	}
	sort.Float64s(lags)
	out := make([]units.Seconds, len(ps))
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		k := int(math.Ceil(p*float64(len(lags)))) - 1
		if k < 0 {
			k = 0
		}
		out[i] = units.Seconds(lags[k])
	}
	return out
}
