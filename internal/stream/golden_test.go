package stream

import (
	"context"
	"math"
	"testing"

	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

// goldenTrace is a 2-day Azure-like trace at 5-minute sampling: 576
// samples, 24 windows of 24 samples (split 4x3x2).
func goldenTrace(t *testing.T) *timeseries.Series {
	t.Helper()
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Days = 2
	cfg.Seed = 42
	s, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func goldenConfig() Config {
	return Config{
		Step:            300,
		SplitRatios:     []int{4, 3, 2},
		BudgetPerWindow: 5000,
		MaxDelay:        600,
		AllowedLateness: 7200,
		MaxResults:      64,
		Parallelism:     1,
	}
}

// batchWindow computes the batch Temporal Shapley signal over window w of
// the trace, exactly as the streaming engine should.
func batchWindow(t *testing.T, s *timeseries.Series, cfg Config, w int) []float64 {
	t.Helper()
	n := cfg.Samples()
	sub := timeseries.New(s.TimeAt(w*n), s.Step, s.Values[w*n:(w+1)*n])
	sig, err := temporal.IntensitySignal(sub, cfg.BudgetPerWindow,
		temporal.Config{SplitRatios: cfg.SplitRatios, Backend: cfg.Backend, Parallelism: cfg.Parallelism})
	if err != nil {
		t.Fatalf("batch window %d: %v", w, err)
	}
	return sig.Values
}

// compareBits requires bit-for-bit equality between a streamed window
// result and its batch counterpart.
func compareBits(t *testing.T, w int, streamed, batch []float64) {
	t.Helper()
	if len(streamed) != len(batch) {
		t.Fatalf("window %d: %d streamed samples vs %d batch", w, len(streamed), len(batch))
	}
	for i := range batch {
		if math.Float64bits(streamed[i]) != math.Float64bits(batch[i]) {
			t.Fatalf("window %d sample %d: streamed %x != batch %x (%v vs %v)",
				w, i, math.Float64bits(streamed[i]), math.Float64bits(batch[i]), streamed[i], batch[i])
		}
	}
}

// TestGoldenStreamedMatchesBatchInOrder pins the core determinism claim:
// an in-order replay yields per-window intensity signals bit-for-bit
// identical to the batch engine over the same windows.
func TestGoldenStreamedMatchesBatchInOrder(t *testing.T) {
	s := goldenTrace(t)
	cfg := goldenConfig()
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(s, ReplayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Run(context.Background(), e.Ingest); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Events != uint64(s.Len()) || st.Late != 0 || st.Dropped != 0 {
		t.Fatalf("unexpected accounting for in-order replay: %+v", st)
	}
	// The final window never closes: the watermark cannot pass its end.
	windows := s.Len() / cfg.Samples()
	if st.WindowsClosed != uint64(windows-1) {
		t.Fatalf("closed %d of %d windows", st.WindowsClosed, windows)
	}
	for w := 0; w < windows-1; w++ {
		res, ok := e.Window(int64(w))
		if !ok {
			t.Fatalf("no result for window %d", w)
		}
		if res.Revision != 0 {
			t.Errorf("window %d re-emitted without late events", w)
		}
		compareBits(t, w, res.Intensity, batchWindow(t, s, cfg, w))
	}
}

// TestGoldenOutOfOrderReplayConverges pins the late-event contract: a
// scripted out-of-order replay whose every displaced event stays inside
// the allowed-lateness budget ends bit-for-bit identical to batch, with
// the corrections visible as re-emissions.
func TestGoldenOutOfOrderReplayConverges(t *testing.T) {
	s := goldenTrace(t)
	cfg := goldenConfig()
	// Defer 15% of events by 2..12 samples (600..3600s). With 600s of
	// watermark slack, deferrals that overshoot a window boundary arrive
	// late; dropping would take a ~29-sample deferral (end + 7200s + 600s
	// of slack), so the 7200s lateness budget keeps every one of these.
	rep, err := NewReplay(s, ReplayConfig{Seed: 7, DisorderFraction: 0.15, MinDefer: 2, MaxDefer: 12})
	if err != nil {
		t.Fatal(err)
	}
	exp := rep.Expected(cfg)
	if exp.Late == 0 {
		t.Fatal("scripted disorder produced no late events; test is vacuous")
	}
	if exp.Dropped != 0 {
		t.Fatalf("scripted disorder exceeds the lateness budget: %s", exp.Summary())
	}

	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Run(context.Background(), e.Ingest); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Late != exp.Late || st.Dropped != 0 {
		t.Fatalf("engine accounting %+v disagrees with oracle %s", st, exp.Summary())
	}
	if st.Reemissions == 0 {
		t.Fatal("late events produced no re-emissions")
	}
	windows := s.Len() / cfg.Samples()
	for w := 0; w < windows-1; w++ {
		res, ok := e.Window(int64(w))
		if !ok {
			t.Fatalf("no result for window %d", w)
		}
		compareBits(t, w, res.Intensity, batchWindow(t, s, cfg, w))
	}
}

// TestGoldenScenarioReplay runs the full pipeline — scenario script over
// the trace, disordered replay, streamed attribution — and checks batch
// equivalence on the perturbed series.
func TestGoldenScenarioReplay(t *testing.T) {
	base := goldenTrace(t)
	sc, err := trace.ParseScenario("burst:21600,7200,1.8;outage:50400,3600,5000;ramp:86400,43200,1,1.25")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	rep, err := NewReplay(s, ReplayConfig{Seed: 3, DisorderFraction: 0.05, MinDefer: 1, MaxDefer: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Run(context.Background(), e.Ingest); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	exp := rep.Expected(cfg)
	if st.Late != exp.Late || st.Dropped != exp.Dropped {
		t.Fatalf("engine %+v disagrees with oracle %s", st, exp.Summary())
	}
	windows := s.Len() / cfg.Samples()
	for w := 0; w < windows-1; w++ {
		res, ok := e.Window(int64(w))
		if !ok {
			t.Fatalf("no result for window %d", w)
		}
		compareBits(t, w, res.Intensity, batchWindow(t, s, cfg, w))
	}
}
