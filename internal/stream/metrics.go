package stream

import "fairco2/internal/metrics"

// windowLatencyBuckets cover one window emission: from a cache-warm
// closed-form solve (tens of microseconds) to a degraded pricing round trip.
var windowLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// Instruments are the streaming-engine metrics. Create them once per
// registry and hand them to New.
type Instruments struct {
	// Events counts every valid ingested event
	// (fairco2_stream_events_total).
	Events *metrics.Counter
	// Late counts events applied to an already-closed window inside the
	// lateness budget (fairco2_stream_late_events_total).
	Late *metrics.Counter
	// Dropped counts events beyond the lateness budget
	// (fairco2_stream_dropped_events_total).
	Dropped *metrics.Counter
	// WindowsClosed counts first emissions
	// (fairco2_stream_windows_closed_total).
	WindowsClosed *metrics.Counter
	// Reemissions counts late-event corrections
	// (fairco2_stream_reemissions_total).
	Reemissions *metrics.Counter
	// Watermark is the current low-watermark position in event time
	// (fairco2_stream_watermark_seconds).
	Watermark *metrics.Gauge
	// WatermarkLag is the close lag of the most recently closed window
	// (fairco2_stream_watermark_lag_seconds).
	WatermarkLag *metrics.Gauge
	// WindowLatency observes the wall-clock latency of computing and
	// emitting one window result (fairco2_stream_window_latency_seconds).
	WindowLatency *metrics.Histogram
}

// NewInstruments registers the streaming metrics on reg.
func NewInstruments(reg *metrics.Registry) *Instruments {
	return &Instruments{
		Events: reg.NewCounter(
			"fairco2_stream_events_total",
			"Demand events ingested by the streaming attribution engine."),
		Late: reg.NewCounter(
			"fairco2_stream_late_events_total",
			"Events that arrived for an already-closed window inside the allowed-lateness budget (each triggers a corrected re-emission)."),
		Dropped: reg.NewCounter(
			"fairco2_stream_dropped_events_total",
			"Events discarded because their window was already retired (beyond the allowed-lateness budget)."),
		WindowsClosed: reg.NewCounter(
			"fairco2_stream_windows_closed_total",
			"Windows whose first attribution result was emitted after the watermark passed their end."),
		Reemissions: reg.NewCounter(
			"fairco2_stream_reemissions_total",
			"Corrected window results re-emitted after late events landed in a closed window."),
		Watermark: reg.NewGauge(
			"fairco2_stream_watermark_seconds",
			"Current low-watermark position, in event-time seconds from the stream epoch."),
		WatermarkLag: reg.NewGauge(
			"fairco2_stream_watermark_lag_seconds",
			"Close lag of the most recently closed window: how far past its end the watermark had moved when it closed."),
		WindowLatency: reg.NewHistogram(
			"fairco2_stream_window_latency_seconds",
			"Wall-clock latency of computing and emitting one window result.",
			windowLatencyBuckets),
	}
}
