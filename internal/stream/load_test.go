package stream

import (
	"context"
	"runtime"
	"testing"
	"time"

	"fairco2/internal/metrics"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

// loadConfig is the sustained-replay engine config: 5-second samples in
// 24-bin windows (2 minutes of event time per window), 4 samples of reorder
// slack and 12 samples of lateness.
func loadConfig() Config {
	return Config{
		Step:            5,
		SplitRatios:     []int{4, 3, 2},
		BudgetPerWindow: 1000,
		MaxDelay:        20,
		AllowedLateness: 60,
		MaxResults:      64,
		Parallelism:     1,
	}
}

// loadTrace synthesizes n 5-second samples of Azure-like demand.
func loadTrace(t testing.TB, n int) *timeseries.Series {
	t.Helper()
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Step = 5
	cfg.Days = (n*5)/int(units.SecondsPerDay) + 1
	cfg.Seed = 11
	s, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < n {
		t.Fatalf("trace too short: %d < %d", s.Len(), n)
	}
	sub := timeseries.New(0, 5, s.Values[:n])
	return sub
}

// TestSustainedReplayLoad is the load-test acceptance gate: a disordered
// replay of millions of events at (far beyond) 10x real-time completes
// with bounded heap growth, and the engine's dropped counter — both the
// Stats snapshot and fairco2_stream_dropped_events_total — exactly matches
// the replay script's beyond-lateness count from the Expect oracle.
func TestSustainedReplayLoad(t *testing.T) {
	n := 2_000_000
	if raceEnabled {
		n = 500_000 // the detector multiplies both time and heap
	}
	if testing.Short() {
		n = 200_000
	}
	s := loadTrace(t, n)
	rep, err := NewReplay(s, ReplayConfig{
		Seed:             13,
		DisorderFraction: 0.02,
		MinDefer:         8,
		MaxDefer:         40, // up to 200s of displacement: beyond the 60s lateness budget
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadConfig()
	exp := rep.Expected(cfg)
	if exp.Late == 0 || exp.Dropped == 0 {
		t.Fatalf("script must exercise both late and dropped paths: %s", exp.Summary())
	}

	reg := metrics.NewRegistry()
	e, err := New(cfg, NewInstruments(reg))
	if err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := rep.Run(context.Background(), e.Ingest); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)

	// >= 10x real-time: the replayed event-time span must shrink by at
	// least that factor in wall time.
	span := time.Duration(float64(n) * 5 * float64(time.Second))
	if elapsed > span/10 {
		t.Errorf("replay of %v of event time took %v; slower than 10x real-time", span, elapsed)
	}

	// Bounded memory: steady-state streaming must not accumulate per-event
	// state. The engine retains only the window ring, the result ring and
	// the capped lag reservoir, so live heap growth stays far below the
	// event volume (32 MiB of replay script alone).
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 16<<20 {
		t.Errorf("heap grew %d bytes across replay; streaming state is not bounded", growth)
	}

	st := e.Stats()
	if st.Events != uint64(n) {
		t.Fatalf("ingested %d of %d events", st.Events, n)
	}
	if st.Late != exp.Late || st.Dropped != exp.Dropped {
		t.Fatalf("engine accounting %+v disagrees with oracle %s", st, exp.Summary())
	}
	if got := instValue(t, reg, "fairco2_stream_dropped_events_total"); got != float64(exp.Dropped) {
		t.Errorf("fairco2_stream_dropped_events_total = %v, want %d", got, exp.Dropped)
	}
	if st.OpenWindows > len(e.ring) {
		t.Errorf("open windows %d exceed ring size %d", st.OpenWindows, len(e.ring))
	}
	if st.WindowsClosed == 0 || st.Reemissions == 0 {
		t.Errorf("load run closed %d windows with %d re-emissions; expected sustained churn",
			st.WindowsClosed, st.Reemissions)
	}
}

// TestSteadyStateIngestDoesNotAllocate pins the zero-allocation contract on
// the hot path: an in-window event that closes nothing must not allocate.
func TestSteadyStateIngestDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg := Config{
		Step:            1,
		SplitRatios:     []int{60, 60}, // one-hour windows: no closes during the probe
		BudgetPerWindow: 1000,
		MaxDelay:        10,
		AllowedLateness: 30,
	}
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(Event{Time: 0, Cores: 1}); err != nil {
		t.Fatal(err)
	}
	tnow := 1.0
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			tnow += 0.01
			if err := e.Ingest(Event{Time: units.Seconds(tnow), Cores: 50}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state ingest allocates %v times per 16-event batch", avg)
	}
}

// BenchmarkStreamIngest measures the amortized per-event ingest cost under
// a continuously advancing stream: in-window binning, watermark advance and
// one window close every 24 events.
func BenchmarkStreamIngest(b *testing.B) {
	e, err := New(loadConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := Event{Time: units.Seconds(float64(i) * 5), Cores: float64(100 + i%17)}
		if err := e.Ingest(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWindowClose measures one full window lifecycle: 24 binned
// events plus the close — pricing, the closed-form Temporal Shapley solve
// over the window's bins, and result-ring publication.
func BenchmarkStreamWindowClose(b *testing.B) {
	cfg := loadConfig()
	e, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	samples := cfg.Samples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := float64(i * samples)
		for j := 0; j < samples; j++ {
			ev := Event{Time: units.Seconds((base + float64(j)) * 5), Cores: float64(100 + j)}
			if err := e.Ingest(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}
