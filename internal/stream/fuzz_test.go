package stream

import (
	"testing"

	"fairco2/internal/units"
)

// fuzzEvents decodes an arbitrary byte string into a valid event sequence:
// each pair of bytes is one event, the first byte a signed event-time jump
// (so the fuzzer scripts arbitrary disorder), the second the demand. Times
// clamp at the epoch so every decoded event is ingestible.
func fuzzEvents(data []byte) []Event {
	events := make([]Event, 0, len(data)/2)
	t := 0.0
	for i := 0; i+1 < len(data); i += 2 {
		t += float64(int(data[i]) - 96) // jumps in [-96, +159]
		if t < 0 {
			t = 0
		}
		events = append(events, Event{Time: units.Seconds(t), Cores: float64(data[i+1])})
	}
	return events
}

// FuzzWatermarkAssigner drives the watermark assigner with arbitrary
// event orderings and checks its invariants: ingest never fails on valid
// events, the late/dropped classification matches the independent Expect
// oracle, the watermark trails the frontier by exactly MaxDelay, the
// window ring never overflows, and the whole run is deterministic.
func FuzzWatermarkAssigner(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{100, 10, 100, 20, 100, 30})                   // in order
	f.Add([]byte{200, 50, 0, 50, 200, 50, 0, 50})              // wild swings
	f.Add([]byte{97, 1, 97, 2, 97, 3, 10, 4, 97, 5, 255, 6})   // small steps, one deep rewind
	f.Add([]byte{159, 0, 159, 0, 159, 0, 96, 9, 96, 9, 96, 9}) // zero demand then stalls

	cfg := Config{
		Step:            1,
		SplitRatios:     []int{3, 2},
		BudgetPerWindow: 100,
		MaxDelay:        4,
		AllowedLateness: 8,
		MaxResults:      8,
		Parallelism:     1,
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		events := fuzzEvents(data)
		run := func() Stats {
			e, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range events {
				if err := e.Ingest(ev); err != nil {
					t.Fatalf("valid event %+v rejected: %v", ev, err)
				}
			}
			st := e.Stats()
			if st.OpenWindows > len(e.ring) {
				t.Fatalf("open windows %d exceed ring size %d", st.OpenWindows, len(e.ring))
			}
			return st
		}
		st := run()
		if st.Events != uint64(len(events)) {
			t.Fatalf("ingested %d of %d events", st.Events, len(events))
		}
		if len(events) > 0 && st.Watermark != st.MaxEventTime-cfg.MaxDelay {
			t.Fatalf("watermark %v does not trail frontier %v by %v",
				st.Watermark, st.MaxEventTime, cfg.MaxDelay)
		}
		exp := Expect(events, cfg)
		if st.Late != exp.Late || st.Dropped != exp.Dropped {
			t.Fatalf("engine accounting %+v disagrees with oracle %s", st, exp.Summary())
		}
		if again := run(); again != st {
			t.Fatalf("same event sequence produced different stats: %+v vs %+v", st, again)
		}
	})
}
