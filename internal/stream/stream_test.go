package stream

import (
	"errors"
	"math"
	"testing"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/units"
)

// testConfig is a small deterministic engine config: 1-second bins, 6-bin
// windows (split 3x2), 4 seconds of reorder slack, 12 seconds of lateness.
func testConfig() Config {
	return Config{
		Step:            1,
		SplitRatios:     []int{3, 2},
		BudgetPerWindow: 600,
		MaxDelay:        4,
		AllowedLateness: 12,
		MaxResults:      8,
	}
}

func mustEngine(t *testing.T, cfg Config, inst *Instruments) *Engine {
	t.Helper()
	e, err := New(cfg, inst)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ingestAll(t *testing.T, e *Engine, events []Event) {
	t.Helper()
	for _, ev := range events {
		if err := e.Ingest(ev); err != nil {
			t.Fatalf("ingest %+v: %v", ev, err)
		}
	}
}

// inOrder builds one event per second over [0, n).
func inOrder(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Time: units.Seconds(i), Cores: float64(10 + i%7)}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero step", func(c *Config) { c.Step = 0 }},
		{"no splits", func(c *Config) { c.SplitRatios = nil }},
		{"bad split", func(c *Config) { c.SplitRatios = []int{3, 0} }},
		{"zero budget", func(c *Config) { c.BudgetPerWindow = 0 }},
		{"negative delay", func(c *Config) { c.MaxDelay = -1 }},
		{"negative lateness", func(c *Config) { c.AllowedLateness = -1 }},
		{"negative results", func(c *Config) { c.MaxResults = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			if _, err := New(cfg, nil); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := New(testConfig(), nil); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestInvalidEventsRejected(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	bad := []Event{
		{Time: 5, Cores: -1},
		{Time: 5, Cores: math.NaN()},
		{Time: 5, Cores: math.Inf(1)},
		{Time: -1, Cores: 1},
		{Time: units.Seconds(math.NaN()), Cores: 1},
		{Time: units.Seconds(math.Inf(1)), Cores: 1},
	}
	for _, ev := range bad {
		if err := e.Ingest(ev); err == nil {
			t.Errorf("event %+v accepted", ev)
		}
	}
	if st := e.Stats(); st.Events != 0 {
		t.Errorf("rejected events counted: %d", st.Events)
	}
}

func TestWindowClosesWhenWatermarkPassesEnd(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	// Window 0 spans [0, 6). With MaxDelay=4 it closes once maxTime > 10.
	ingestAll(t, e, inOrder(10)) // maxTime 9, watermark 5 < 6
	if st := e.Stats(); st.WindowsClosed != 0 {
		t.Fatalf("window closed early: %+v", st)
	}
	ingestAll(t, e, []Event{{Time: 10, Cores: 1}}) // watermark 6 >= end 6
	st := e.Stats()
	if st.WindowsClosed != 1 {
		t.Fatalf("window 0 did not close: %+v", st)
	}
	res, ok := e.Window(0)
	if !ok {
		t.Fatal("no result for window 0")
	}
	if res.Revision != 0 || res.Events != 6 || res.Late != 0 {
		t.Errorf("unexpected result meta: %+v", res)
	}
	if res.Start != 0 || res.End != 6 || len(res.Intensity) != 6 {
		t.Errorf("unexpected window bounds: %+v", res)
	}
	// The emitted intensity must fully attribute the static budget:
	// sum_i intensity[i]*demand[i]*step == budget.
	total := 0.0
	demand := []float64{10, 11, 12, 13, 14, 15}
	for i, v := range res.Intensity {
		total += v * demand[i]
	}
	if math.Abs(total-600) > 1e-9 {
		t.Errorf("budget not conserved: got %v want 600", total)
	}
	if _, ok := e.Latest(); !ok {
		t.Error("Latest empty after close")
	}
}

func TestLateEventReemits(t *testing.T) {
	reg := metrics.NewRegistry()
	e := mustEngine(t, testConfig(), NewInstruments(reg))
	ingestAll(t, e, inOrder(11)) // closes window 0
	before, _ := e.Window(0)

	// t=3 belongs to window 0 (closed, retires at watermark >= 18).
	ingestAll(t, e, []Event{{Time: 3, Cores: 500}})
	st := e.Stats()
	if st.Late != 1 || st.Reemissions != 1 || st.Dropped != 0 {
		t.Fatalf("late accounting wrong: %+v", st)
	}
	after, ok := e.Window(0)
	if !ok || after.Revision != 1 || after.Late != 1 {
		t.Fatalf("no corrected re-emission: %+v", after)
	}
	if after.Intensity[3] == before.Intensity[3] {
		t.Error("late event did not change the corrected bin")
	}
	if got := instValue(t, reg, "fairco2_stream_reemissions_total"); got != 1 {
		t.Errorf("reemissions metric = %v", got)
	}
}

func TestBeyondLatenessDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	e := mustEngine(t, testConfig(), NewInstruments(reg))
	ingestAll(t, e, inOrder(11))
	// Window 0 retires once watermark >= end+lateness = 18, i.e. maxTime >= 22.
	ingestAll(t, e, []Event{{Time: 23, Cores: 1}})
	res, _ := e.Window(0)
	ingestAll(t, e, []Event{{Time: 2, Cores: 999}})
	st := e.Stats()
	if st.Dropped != 1 || st.Late != 0 {
		t.Fatalf("drop accounting wrong: %+v", st)
	}
	after, ok := e.Window(0)
	if !ok || after.Revision != res.Revision {
		t.Error("dropped event mutated a retired window's result")
	}
	if got := instValue(t, reg, "fairco2_stream_dropped_events_total"); got != 1 {
		t.Errorf("dropped metric = %v", got)
	}
}

func TestEmptyWindowSkippedAndGapHandled(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	var events []Event
	for i := 0; i < 6; i++ { // window 0
		events = append(events, Event{Time: units.Seconds(i), Cores: 5})
	}
	for i := 12; i < 18; i++ { // window 2; window 1 stays empty
		events = append(events, Event{Time: units.Seconds(i), Cores: 5})
	}
	events = append(events, Event{Time: 23, Cores: 5}) // watermark 19 closes 0..2
	ingestAll(t, e, events)
	st := e.Stats()
	if st.WindowsClosed != 2 {
		t.Fatalf("expected 2 non-empty windows closed, got %+v", st)
	}
	if _, ok := e.Window(1); ok {
		t.Error("empty window emitted a result")
	}
	if res, ok := e.Window(2); !ok || res.Index != 2 {
		t.Error("window after the gap missing")
	}
}

func TestZeroDemandWindowEmitsEmptyQuality(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	var events []Event
	for i := 0; i < 6; i++ {
		events = append(events, Event{Time: units.Seconds(i), Cores: 0})
	}
	events = append(events, Event{Time: 11, Cores: 1})
	ingestAll(t, e, events)
	res, ok := e.Window(0)
	if !ok {
		t.Fatal("zero-demand window not emitted")
	}
	if res.Quality != QualityEmpty || res.Budget != 0 {
		t.Errorf("zero-demand result = %+v", res)
	}
	for _, v := range res.Intensity {
		if v != 0 {
			t.Fatal("zero-demand window has non-zero intensity")
		}
	}
}

func TestResultRingEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxResults = 2
	e := mustEngine(t, cfg, nil)
	ingestAll(t, e, inOrder(5*6)) // windows 0..4, enough to close 0..2
	ingestAll(t, e, []Event{{Time: 40, Cores: 1}})
	st := e.Stats()
	if st.WindowsClosed < 3 {
		t.Fatalf("expected >= 3 closes, got %+v", st)
	}
	if _, ok := e.Window(0); ok {
		t.Error("evicted window 0 still retained")
	}
	latest, ok := e.Latest()
	if !ok || latest.Index != st.LatestWindow {
		t.Errorf("latest = %+v, stats say %d", latest, st.LatestWindow)
	}
}

type fakeSource struct {
	v   float64
	err error
}

func (f *fakeSource) Current() (float64, error) { return f.v, f.err }

func TestLiveFeedPricing(t *testing.T) {
	cfg := testConfig()
	src := &fakeSource{v: 2.5}
	cfg.Feed = livesignal.NewFeed(src, livesignal.FeedConfig{}, nil)
	e := mustEngine(t, cfg, nil)
	ingestAll(t, e, inOrder(11))
	res, ok := e.Window(0)
	if !ok {
		t.Fatal("no result")
	}
	if res.Quality != livesignal.QualityFresh.String() || res.SignalIntensity != 2.5 {
		t.Fatalf("fresh pricing wrong: %+v", res)
	}
	// budget = intensity * sum(bins) * step = 2.5 * 75 * 1
	if math.Abs(res.Budget-2.5*75) > 1e-9 {
		t.Errorf("budget = %v, want %v", res.Budget, 2.5*75)
	}
}

func TestDegradedFeedFallsBackToStaticBudget(t *testing.T) {
	cfg := testConfig()
	src := &fakeSource{err: errors.New("down")}
	cfg.Feed = livesignal.NewFeed(src, livesignal.FeedConfig{}, nil)
	e := mustEngine(t, cfg, nil)
	ingestAll(t, e, inOrder(11))
	res, ok := e.Window(0)
	if !ok {
		t.Fatal("no result")
	}
	if res.Quality != livesignal.QualityDegraded.String() {
		t.Fatalf("quality = %q, want degraded", res.Quality)
	}
	if res.Budget != 600 || res.SignalIntensity != 0 {
		t.Errorf("degraded fallback budget = %v intensity = %v", res.Budget, res.SignalIntensity)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, WindowResult) {
		e := mustEngine(t, testConfig(), nil)
		events := inOrder(40)
		// a scripted swap: deliver sample 7 after sample 12
		events[7], events[12] = events[12], events[7]
		ingestAll(t, e, events)
		res, _ := e.Latest()
		return e.Stats(), res
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if r1.Index != r2.Index || len(r1.Intensity) != len(r2.Intensity) {
		t.Fatal("results differ in shape")
	}
	for i := range r1.Intensity {
		if math.Float64bits(r1.Intensity[i]) != math.Float64bits(r2.Intensity[i]) {
			t.Fatalf("intensity bit mismatch at %d", i)
		}
	}
}

func TestCloseLagQuantiles(t *testing.T) {
	e := mustEngine(t, testConfig(), nil)
	if q := e.CloseLagQuantiles(0.5); q != nil {
		t.Fatal("quantiles before any close")
	}
	ingestAll(t, e, inOrder(30))
	qs := e.CloseLagQuantiles(0, 0.5, 1)
	if len(qs) != 3 {
		t.Fatalf("got %d quantiles", len(qs))
	}
	if qs[0] > qs[2] {
		t.Errorf("quantiles not monotone: %v", qs)
	}
}

func TestStatsAndMetricsAgree(t *testing.T) {
	reg := metrics.NewRegistry()
	e := mustEngine(t, testConfig(), NewInstruments(reg))
	events := inOrder(40)
	events[7], events[20] = events[20], events[7] // sample 7 arrives very late
	ingestAll(t, e, events)
	st := e.Stats()
	checks := map[string]float64{
		"fairco2_stream_events_total":         float64(st.Events),
		"fairco2_stream_late_events_total":    float64(st.Late),
		"fairco2_stream_dropped_events_total": float64(st.Dropped),
		"fairco2_stream_windows_closed_total": float64(st.WindowsClosed),
		"fairco2_stream_reemissions_total":    float64(st.Reemissions),
		"fairco2_stream_watermark_seconds":    float64(st.Watermark),
	}
	for name, want := range checks {
		if got := instValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if st.Watermark != st.MaxEventTime-4 {
		t.Errorf("watermark %v does not trail max %v by MaxDelay", st.Watermark, st.MaxEventTime)
	}
	if st.OpenWindows == 0 || st.OpenWindows > len(e.ring) {
		t.Errorf("open windows = %d", st.OpenWindows)
	}
}

func TestWindowConfigHelpers(t *testing.T) {
	cfg := testConfig()
	if cfg.Samples() != 6 {
		t.Errorf("Samples = %d", cfg.Samples())
	}
	if cfg.WindowDuration() != 6 {
		t.Errorf("WindowDuration = %v", cfg.WindowDuration())
	}
	def := DefaultConfig()
	if def.Samples() != 288 || def.WindowDuration() != 288*300 {
		t.Errorf("default window: %d samples, %v", def.Samples(), def.WindowDuration())
	}
}

func TestEngineHonorsNowOverride(t *testing.T) {
	cfg := testConfig()
	fixed := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	cfg.Now = func() time.Time { return fixed }
	e := mustEngine(t, cfg, nil)
	ingestAll(t, e, inOrder(11))
	res, _ := e.Window(0)
	if !res.EmittedAt.Equal(fixed) {
		t.Errorf("EmittedAt = %v, want %v", res.EmittedAt, fixed)
	}
}

// instValue reads one unlabeled sample from the registry.
func instValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
		if len(f.Samples) != 1 {
			t.Fatalf("metric %s has %d samples", name, len(f.Samples))
		}
		return f.Samples[0].Value
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
