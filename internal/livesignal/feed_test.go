package livesignal

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"fairco2/internal/metrics"
)

// scriptedSource serves a programmable sequence of (value, error) fetches.
type scriptedSource struct {
	mu      sync.Mutex
	values  []float64
	errs    []error
	i       int
	stickyE error
}

func (s *scriptedSource) Current() (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.i < len(s.values) {
		v, e := s.values[s.i], s.errs[s.i]
		s.i++
		return v, e
	}
	if s.stickyE != nil {
		return 0, s.stickyE
	}
	return 0, errors.New("script exhausted")
}

func (s *scriptedSource) add(v float64, e error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values = append(s.values, v)
	s.errs = append(s.errs, e)
}

type feedHarness struct {
	src   *scriptedSource
	clock time.Time
	feed  *Feed
	inst  *FeedInstruments
}

func newFeedHarness(t *testing.T, maxStale time.Duration) *feedHarness {
	t.Helper()
	h := &feedHarness{src: &scriptedSource{}, clock: time.Unix(5000, 0)}
	reg := metrics.NewRegistry()
	h.inst = NewFeedInstruments(reg)
	h.feed = NewFeed(h.src, FeedConfig{MaxStale: maxStale, Now: func() time.Time { return h.clock }}, h.inst)
	return h
}

// TestFeedLadder walks the full degradation ladder: fresh, stale within
// the bound, degraded past it, fresh again on recovery.
func TestFeedLadder(t *testing.T) {
	h := newFeedHarness(t, 10*time.Minute)
	down := errors.New("connection refused")

	// Fresh fetch.
	h.src.add(42.5, nil)
	s, err := h.feed.Intensity()
	if err != nil || s.Quality != QualityFresh || s.Intensity != 42.5 || s.Age != 0 {
		t.Fatalf("fresh sample %+v err %v", s, err)
	}
	if v := h.inst.Staleness.Value(); v != 0 {
		t.Errorf("staleness gauge %v after fresh fetch", v)
	}

	// Outage begins: last-known-good serves as stale within the bound.
	h.src.stickyE = down
	h.clock = h.clock.Add(5 * time.Minute)
	s, err = h.feed.Intensity()
	if err != nil || s.Quality != QualityStale || s.Intensity != 42.5 {
		t.Fatalf("stale sample %+v err %v", s, err)
	}
	if s.Age != 5*time.Minute || !errors.Is(s.Err, down) {
		t.Errorf("stale sample age %v err %v", s.Age, s.Err)
	}
	if v := h.inst.Staleness.Value(); v != 300 {
		t.Errorf("staleness gauge %v, want 300", v)
	}
	if v := h.inst.DegradedPeriods.Value(); v != 0 {
		t.Errorf("degraded periods %v during stale service", v)
	}

	// Past the bound: degraded, still carrying the old value for callers
	// that prefer it to their fallback.
	h.clock = h.clock.Add(6 * time.Minute)
	s, err = h.feed.Intensity()
	if err != nil || s.Quality != QualityDegraded || s.Intensity != 42.5 {
		t.Fatalf("degraded sample %+v err %v", s, err)
	}
	if v := h.inst.DegradedPeriods.Value(); v != 1 {
		t.Errorf("degraded periods %v, want 1", v)
	}
	// More degraded samples do not count new periods.
	for i := 0; i < 5; i++ {
		h.clock = h.clock.Add(time.Minute)
		if _, err := h.feed.Intensity(); err != nil {
			t.Fatal(err)
		}
	}
	if v := h.inst.DegradedPeriods.Value(); v != 1 {
		t.Errorf("degraded periods %v after one sustained outage, want 1", v)
	}

	// Recovery: fresh again, and a later outage is a NEW degraded period.
	h.src.add(50, nil)
	s, err = h.feed.Intensity()
	if err != nil || s.Quality != QualityFresh || s.Intensity != 50 {
		t.Fatalf("recovered sample %+v err %v", s, err)
	}
	h.clock = h.clock.Add(11 * time.Minute)
	if s, _ := h.feed.Intensity(); s.Quality != QualityDegraded {
		t.Fatalf("second outage sample %+v", s)
	}
	if v := h.inst.DegradedPeriods.Value(); v != 2 {
		t.Errorf("degraded periods %v, want 2", v)
	}
}

// TestFeedNoSignal is the satellite bug fix: a feed whose first fetch
// fails must return a typed ErrNoSignal, never a zero-intensity sample
// that would silently attribute tenants as carbon-free.
func TestFeedNoSignal(t *testing.T) {
	h := newFeedHarness(t, time.Minute)
	down := errors.New("dial tcp: connection refused")
	h.src.stickyE = down

	s, err := h.feed.Intensity()
	if !errors.Is(err, ErrNoSignal) {
		t.Fatalf("error %v is not ErrNoSignal", err)
	}
	if !errors.Is(err, down) {
		t.Errorf("error %v does not wrap the fetch cause", err)
	}
	if s.Quality != QualityDegraded {
		t.Errorf("no-signal sample quality %v, want degraded", s.Quality)
	}
	// The no-cache outage is a degraded period too.
	if v := h.inst.DegradedPeriods.Value(); v != 1 {
		t.Errorf("degraded periods %v, want 1", v)
	}
	// Last() agrees there is nothing cached.
	if _, err := h.feed.Last(); !errors.Is(err, ErrNoSignal) {
		t.Errorf("Last error %v, want ErrNoSignal", err)
	}
}

// TestFeedRejectsInvalidValues checks a lying source (NaN/Inf/negative)
// is treated as an outage, not cached.
func TestFeedRejectsInvalidValues(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		h := newFeedHarness(t, time.Minute)
		h.src.add(bad, nil)
		if _, err := h.feed.Intensity(); !errors.Is(err, ErrNoSignal) {
			t.Errorf("value %v: error %v, want ErrNoSignal", bad, err)
		}
		// A good value afterwards must become the cache; the bad one must
		// not have been retained.
		h.src.add(7, nil)
		s, err := h.feed.Intensity()
		if err != nil || s.Intensity != 7 || s.Quality != QualityFresh {
			t.Errorf("value %v: post-recovery sample %+v err %v", bad, s, err)
		}
	}
}

// TestFeedLast checks the fetch-free read grades by current age.
func TestFeedLast(t *testing.T) {
	h := newFeedHarness(t, 10*time.Minute)
	h.src.add(12, nil)
	if _, err := h.feed.Intensity(); err != nil {
		t.Fatal(err)
	}
	s, err := h.feed.Last()
	if err != nil || s.Intensity != 12 || s.Quality != QualityFresh {
		t.Fatalf("immediate Last %+v err %v", s, err)
	}
	h.clock = h.clock.Add(time.Minute)
	if s, _ := h.feed.Last(); s.Quality != QualityStale || s.Age != time.Minute {
		t.Errorf("aged Last %+v", s)
	}
	h.clock = h.clock.Add(10 * time.Minute)
	if s, _ := h.feed.Last(); s.Quality != QualityDegraded {
		t.Errorf("expired Last %+v", s)
	}
}

// TestFeedConcurrent hammers the feed under the race detector.
func TestFeedConcurrent(t *testing.T) {
	src := &scriptedSource{stickyE: errors.New("down")}
	for i := 0; i < 2000; i++ {
		src.add(float64(i), nil)
	}
	f := NewFeed(src, FeedConfig{MaxStale: time.Hour}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_, _ = f.Intensity()
				_, _ = f.Last()
			}
		}()
	}
	wg.Wait()
}

func TestQualityString(t *testing.T) {
	for q, want := range map[Quality]string{
		QualityFresh: "fresh", QualityStale: "stale", QualityDegraded: "degraded", Quality(7): "unknown",
	} {
		if q.String() != want {
			t.Errorf("Quality(%d).String() = %q, want %q", q, q, want)
		}
	}
}
