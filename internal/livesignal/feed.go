package livesignal

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fairco2/internal/metrics"
)

// Quality grades a signal sample on the degradation ladder. The numeric
// values are published as a gauge, so they are part of the metric
// contract: 0 fresh, 1 stale, 2 degraded.
type Quality int

// The degradation ladder, best to worst.
const (
	// QualityFresh is a sample fetched successfully on this call.
	QualityFresh Quality = 0
	// QualityStale is the last-known-good sample, served because the
	// fetch failed but the cache is within the staleness bound.
	QualityStale Quality = 1
	// QualityDegraded means the cache has outlived the staleness bound
	// (or never existed); the caller must fall back to a model that does
	// not need the live signal.
	QualityDegraded Quality = 2
)

func (q Quality) String() string {
	switch q {
	case QualityFresh:
		return "fresh"
	case QualityStale:
		return "stale"
	case QualityDegraded:
		return "degraded"
	}
	return "unknown"
}

// ErrNoSignal reports a feed that has never successfully fetched: there is
// no cached value to serve, not even a stale one. Callers must branch to
// their no-signal fallback — returning a zero intensity here would
// silently attribute every tenant as carbon-free.
var ErrNoSignal = errors.New("livesignal: no signal available yet")

// Source produces the current live intensity; *signalserver.Client
// satisfies it.
type Source interface {
	Current() (float64, error)
}

// FeedConfig tunes a Feed.
type FeedConfig struct {
	// MaxStale bounds how long the last-known-good value may be served
	// after fetches start failing; past it samples grade Degraded
	// (default 30m).
	MaxStale time.Duration
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
}

// DefaultMaxStale is the staleness bound of a zero FeedConfig.
const DefaultMaxStale = 30 * time.Minute

// FeedInstruments are the feed-side resilience metrics. Create them once
// per registry and hand them to NewFeed.
type FeedInstruments struct {
	// Staleness is the age of the sample served by the latest Intensity
	// call (fairco2_signal_staleness_seconds; 0 while fresh).
	Staleness *metrics.Gauge
	// DegradedPeriods counts transitions into degraded service
	// (fairco2_signal_degraded_periods_total) — periods, not samples, so
	// a week-long outage is one, not thousands.
	DegradedPeriods *metrics.Counter
}

// NewFeedInstruments registers the feed metrics on reg.
func NewFeedInstruments(reg *metrics.Registry) *FeedInstruments {
	return &FeedInstruments{
		Staleness: reg.NewGauge(
			"fairco2_signal_staleness_seconds",
			"Age of the live-signal sample served by the latest fetch (0 = fresh)."),
		DegradedPeriods: reg.NewCounter(
			"fairco2_signal_degraded_periods_total",
			"Transitions into degraded signal service (cache expired or never filled)."),
	}
}

// Feed wraps a Source with a last-known-good cache and the degradation
// ladder: a successful fetch is Fresh; on failure the cached value serves
// as Stale up to MaxStale; past that the sample grades Degraded and the
// caller falls back. It is safe for concurrent use.
type Feed struct {
	src  Source
	cfg  FeedConfig
	inst *FeedInstruments

	mu       sync.Mutex
	last     float64
	lastAt   time.Time
	has      bool
	degraded bool
}

// NewFeed builds a feed over src. inst may be nil (no metrics).
func NewFeed(src Source, cfg FeedConfig, inst *FeedInstruments) *Feed {
	if cfg.MaxStale <= 0 {
		cfg.MaxStale = DefaultMaxStale
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Feed{src: src, cfg: cfg, inst: inst}
}

// Sample is one reading off the feed.
type Sample struct {
	// Intensity is the signal value, in gCO2e per resource-second.
	Intensity float64
	// Quality grades where the value came from on the ladder.
	Quality Quality
	// Age is how old the value is (0 when fresh).
	Age time.Duration
	// Err is the fetch error behind a non-fresh sample, for logging.
	Err error
}

// Intensity fetches the current signal, falling down the degradation
// ladder on failure. The error is non-nil only when there is nothing to
// serve at all (ErrNoSignal, wrapping the fetch error); a Degraded sample
// with a usable-but-old value returns err == nil and lets the caller
// decide.
func (f *Feed) Intensity() (Sample, error) {
	v, ferr := f.src.Current()
	now := f.cfg.Now()

	f.mu.Lock()
	defer f.mu.Unlock()
	if ferr == nil {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			// A defensive rail for sources other than the validating
			// client; treat it exactly like a failed fetch.
			ferr = fmt.Errorf("livesignal: source returned invalid intensity %v", v)
		} else {
			f.last, f.lastAt, f.has = v, now, true
			f.degraded = false
			f.observe(0)
			return Sample{Intensity: v, Quality: QualityFresh}, nil
		}
	}
	if !f.has {
		f.enterDegraded()
		f.observe(0)
		return Sample{Quality: QualityDegraded, Err: ferr}, fmt.Errorf("%w: %w", ErrNoSignal, ferr)
	}
	age := now.Sub(f.lastAt)
	f.observe(age.Seconds())
	if age <= f.cfg.MaxStale {
		return Sample{Intensity: f.last, Quality: QualityStale, Age: age, Err: ferr}, nil
	}
	f.enterDegraded()
	return Sample{Intensity: f.last, Quality: QualityDegraded, Age: age, Err: ferr}, nil
}

// Last returns the cached sample without fetching: the last-known-good
// value graded by its current age, or ErrNoSignal when the cache has never
// been filled.
func (f *Feed) Last() (Sample, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.has {
		return Sample{Quality: QualityDegraded}, ErrNoSignal
	}
	age := f.cfg.Now().Sub(f.lastAt)
	q := QualityFresh
	switch {
	case age > f.cfg.MaxStale:
		q = QualityDegraded
	case age > 0:
		q = QualityStale
	}
	return Sample{Intensity: f.last, Quality: q, Age: age}, nil
}

// enterDegraded counts the transition into a degraded period (the caller
// holds f.mu).
func (f *Feed) enterDegraded() {
	if f.degraded {
		return
	}
	f.degraded = true
	if f.inst != nil {
		f.inst.DegradedPeriods.Inc()
	}
}

// observe publishes the served staleness (the caller holds f.mu).
func (f *Feed) observe(seconds float64) {
	if f.inst != nil {
		f.inst.Staleness.Set(seconds)
	}
}
