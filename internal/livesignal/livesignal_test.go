package livesignal

import (
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

func TestEvaluateReproducesFigure11(t *testing.T) {
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(demand, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("demand forecast MAPE %.2f%%; intensity MAPE %.2f%%, worst %.2f%%",
		res.Demand.MAPE, res.IntensityMAPE, res.IntensityWorstAPE)
	// Paper: intensity MAPE 2.30%, worst-case 15.72%. Shape check: the
	// live signal is accurate on average with a bounded worst case.
	if res.IntensityMAPE > 10 {
		t.Errorf("intensity MAPE %.2f%% too high", res.IntensityMAPE)
	}
	if res.IntensityWorstAPE > 60 {
		t.Errorf("worst intensity APE %.2f%% too high", res.IntensityWorstAPE)
	}
	if res.IntensityWorstAPE < res.IntensityMAPE {
		t.Error("worst error cannot undercut the mean")
	}
	if res.TrueIntensity.Len() != demand.Len() || res.LiveIntensity.Len() != demand.Len() {
		t.Error("signals should cover the full trace")
	}
	// Both signals attribute the same budget over their own demand; the
	// history window is shared, so early samples should agree closely.
	for i := 0; i < 10; i++ {
		a, b := res.TrueIntensity.Values[i], res.LiveIntensity.Values[i]
		if a <= 0 || b <= 0 {
			t.Fatalf("non-positive intensity at %d", i)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, DefaultConfig()); err == nil {
		t.Error("nil demand")
	}
	demand, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FitDays = 0
	if _, err := Evaluate(demand, cfg); err == nil {
		t.Error("bad fit window")
	}
	cfg = DefaultConfig()
	cfg.Splits = []int{7}
	if _, err := Evaluate(demand, cfg); err == nil {
		t.Error("bad splits")
	}
	short := timeseries.New(0, 300, make([]float64, 10))
	if _, err := Evaluate(short, DefaultConfig()); err == nil {
		t.Error("short trace")
	}
}
