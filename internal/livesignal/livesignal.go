// Package livesignal evaluates Fair-CO2's live embodied carbon intensity
// signal under demand-forecast error (paper §5.3 and §7.3, Figures 5 and
// 11): a demand forecaster extends limited history, Temporal Shapley turns
// both the true and the forecast-extended demand into intensity signals,
// and the two signals are compared over the forecast horizon.
package livesignal

import (
	"errors"
	"fmt"

	"fairco2/internal/forecast"
	"fairco2/internal/stats"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Config parameterizes the evaluation.
type Config struct {
	// FitDays is the history window (paper: 21 of 30 days).
	FitDays int
	// Budget is the embodied carbon attributed over the full window.
	Budget units.GramsCO2e
	// Splits is the Temporal Shapley split schedule over the full trace.
	Splits []int
	// Forecast selects the forecaster structure.
	Forecast forecast.Config
}

// DefaultConfig reproduces the paper's protocol on a 30-day, 5-minute
// trace: 21 days of history, 9 days of forecast, splits 10*9*8*12.
func DefaultConfig() Config {
	return Config{
		FitDays:  21,
		Budget:   1e7,
		Splits:   temporal.PaperSplits(),
		Forecast: forecast.DefaultConfig(),
	}
}

// Result reports the Figure 11 quantities.
type Result struct {
	// TrueIntensity is the signal from the full real trace.
	TrueIntensity *timeseries.Series
	// LiveIntensity is the signal from history + forecast.
	LiveIntensity *timeseries.Series
	// Demand is the accuracy of the raw demand forecast (Figure 5).
	Demand forecast.Evaluation
	// IntensityMAPE is the mean absolute percentage error of the live
	// intensity signal over the forecast window (paper: 2.30%).
	IntensityMAPE float64
	// IntensityWorstAPE is the worst-case intensity error (paper: 15.72%).
	IntensityWorstAPE float64
}

// Evaluate runs the full protocol on a demand trace.
func Evaluate(demand *timeseries.Series, cfg Config) (*Result, error) {
	if demand == nil {
		return nil, errors.New("livesignal: nil demand trace")
	}
	stitched, demandEval, err := forecast.Backtest(demand, cfg.FitDays, cfg.Forecast)
	if err != nil {
		return nil, err
	}
	tcfg := temporal.Config{SplitRatios: cfg.Splits}
	trueSig, err := temporal.IntensitySignal(demand, cfg.Budget, tcfg)
	if err != nil {
		return nil, fmt.Errorf("livesignal: true signal: %w", err)
	}
	liveSig, err := temporal.IntensitySignal(stitched, cfg.Budget, tcfg)
	if err != nil {
		return nil, fmt.Errorf("livesignal: live signal: %w", err)
	}

	perDay := int(units.SecondsPerDay / float64(demand.Step))
	horizon := demand.Len() - cfg.FitDays*perDay
	trueTail, err := trueSig.Tail(horizon)
	if err != nil {
		return nil, err
	}
	liveTail, err := liveSig.Tail(horizon)
	if err != nil {
		return nil, err
	}
	mape, err := stats.MAPE(trueTail.Values, liveTail.Values)
	if err != nil {
		return nil, err
	}
	worst, err := stats.MaxAPE(trueTail.Values, liveTail.Values)
	if err != nil {
		return nil, err
	}
	return &Result{
		TrueIntensity:     trueSig,
		LiveIntensity:     liveSig,
		Demand:            demandEval,
		IntensityMAPE:     mape,
		IntensityWorstAPE: worst,
	}, nil
}
