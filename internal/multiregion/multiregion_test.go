package multiregion

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"fairco2/internal/attribution"
	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

func testConfig() Config {
	cfg := DefaultConfig()
	// Keep the exact Shapley oracle fast in the differential suite.
	cfg.Schedule.MaxWorkloads = 10
	return cfg
}

// render dereferences a region's pointer fields so string comparison sees
// content, not addresses.
func render(r *Region) string {
	out := fmt.Sprintf("%s/%s pue=%v years=%d budget=%v sched=%+v tenants=%+v trace=%v",
		r.Provider, r.Name, r.PUE, r.LifetimeYears, r.Budget, *r.Schedule, r.Tenants, r.Trace.Values)
	for _, mc := range r.Fleet {
		out += fmt.Sprintf(" fleet{%s x%d %+v}", mc.Name, mc.Count, *mc.Server)
	}
	return out
}

func renderAll(sc *Scenario) string {
	out := ""
	for i := range sc.Regions {
		out += render(&sc.Regions[i]) + "\n"
	}
	return out
}

func TestDiscoverDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := Discover(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(a) != renderAll(b) {
		t.Fatal("discovery must be deterministic for a fixed seed")
	}
	c, err := Discover(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(a) == renderAll(c) {
		t.Fatal("different seeds must discover different scenarios")
	}
	if len(a.Regions) != 8 {
		t.Fatalf("default config discovers %d regions, want 8", len(a.Regions))
	}
	for i := range a.Regions {
		r := &a.Regions[i]
		if r.Budget <= 0 {
			t.Errorf("region %s has non-positive budget %v", r.Name, r.Budget)
		}
		if len(r.Tenants) != len(r.Schedule.Workloads) {
			t.Errorf("region %s: %d tenants vs %d workloads", r.Name, len(r.Tenants), len(r.Schedule.Workloads))
		}
		if r.FleetLogicalCores() <= 0 {
			t.Errorf("region %s has no fleet capacity", r.Name)
		}
	}
}

// Regions evolve independently: removing every other provider from the
// config must not change a region's discovered fleet or schedule.
func TestDiscoverRegionIndependence(t *testing.T) {
	cfg := testConfig()
	full, err := Discover(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	solo := cfg
	solo.Providers = []ProviderSpec{{Name: "borealis", Regions: []string{"eu-west"}, PUE: 1.18}}
	small, err := Discover(solo, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.RegionByName("eu-west")
	if err != nil {
		t.Fatal(err)
	}
	got := &small.Regions[0]
	if render(got) != render(want) {
		t.Error("region discovery depends on unrelated providers")
	}
	if got.Budget != want.Budget {
		t.Errorf("region budget depends on unrelated providers: %v vs %v", got.Budget, want.Budget)
	}
}

// oracleRegion independently reconstructs one region's schedule and budget
// from the scenario's (config, seed) identity — re-deriving the sub-seed,
// fleet draws and amortization the same way discovery specifies, without
// going through Discover.
func oracleRegion(t *testing.T, cfg Config, seed int64, provider ProviderSpec, name string) (*schedule.Schedule, units.GramsCO2e) {
	t.Helper()
	h := fnv.New64a()
	h.Write([]byte(provider.Name))
	h.Write([]byte{'/'})
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))

	years := cfg.LifetimeYearChoices[rng.Intn(len(cfg.LifetimeYearChoices))]
	lifetime := units.Seconds(float64(years) * 365 * units.SecondsPerDay)
	standard := carbon.NewReferenceServer()
	standard.Lifetime = lifetime
	dense := carbon.NewReferenceServer()
	dense.Cores *= 2
	dense.MemoryGB *= 2
	dense.StorageGB *= 2
	dense.CPUEmbodied *= 2
	dense.DRAMEmbodied *= 2
	dense.SSDEmbodied *= 2
	dense.PlatformEmbodied *= 2
	dense.StaticPower *= 2
	dense.MaxDynamicPower *= 2
	dense.Lifetime = lifetime
	nStandard := cfg.MinMachines + rng.Intn(cfg.MaxMachines-cfg.MinMachines+1)
	nDense := cfg.MinMachines + rng.Intn(cfg.MaxMachines-cfg.MinMachines+1)

	sched, err := schedule.Generate(cfg.Schedule, rng)
	if err != nil {
		t.Fatalf("oracle schedule for %s: %v", name, err)
	}
	rate := standard.EmbodiedRate()*float64(nStandard) + dense.EmbodiedRate()*float64(nDense)
	window := float64(sched.Slices) * float64(sched.SliceDuration)
	return sched, units.GramsCO2e(rate * window)
}

// The acceptance differential: for every region and every attribution
// method, the region-tagged shares from the scenario engine are
// bitwise-identical to running the single-datacenter path directly on an
// independently reconstructed (schedule, budget) oracle.
func TestDifferentialSingleRegionOracle(t *testing.T) {
	cfg := testConfig()
	const seed = 1234
	sc, err := Discover(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	methods := []attribution.Method{
		attribution.GroundTruth{},
		attribution.RUPBaseline{},
		attribution.DemandProportional{},
		attribution.TemporalShapley{},
	}
	for _, m := range methods {
		tagged, err := sc.Attribute(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		byTenant := make(map[string]TaggedShare, len(tagged))
		for _, s := range tagged {
			byTenant[s.Tenant] = s
		}
		for _, p := range cfg.Providers {
			for _, name := range p.Regions {
				oracleSched, oracleBudget := oracleRegion(t, cfg, seed, p, name)
				oracle, err := m.Attribute(oracleSched, oracleBudget)
				if err != nil {
					t.Fatalf("%s/%s oracle: %v", m.Name(), name, err)
				}
				for w, want := range oracle {
					id := fmt.Sprintf("%s/t%02d", name, w)
					got, ok := byTenant[id]
					if !ok {
						t.Fatalf("%s: no tagged share for %s", m.Name(), id)
					}
					if got.Grams != want {
						t.Errorf("%s: %s = %v, oracle %v (must be bitwise-identical)",
							m.Name(), id, got.Grams, want)
					}
					if got.Region != name || got.Provider != p.Name {
						t.Errorf("%s: %s tagged %s/%s, want %s/%s",
							m.Name(), id, got.Provider, got.Region, p.Name, name)
					}
				}
			}
		}
	}
}

func TestAttributeBudgetConservation(t *testing.T) {
	sc, err := Discover(testConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := sc.Attribute(attribution.TemporalShapley{})
	if err != nil {
		t.Fatal(err)
	}
	perRegion := map[string]float64{}
	for _, s := range tagged {
		perRegion[s.Region] += s.Grams
	}
	for i := range sc.Regions {
		r := &sc.Regions[i]
		got := perRegion[r.Name]
		if diff := got - float64(r.Budget); diff > 1e-6*float64(r.Budget) || diff < -1e-6*float64(r.Budget) {
			t.Errorf("region %s: attributed %v, budget %v", r.Name, got, r.Budget)
		}
	}
}

func TestRoute(t *testing.T) {
	sc, err := Discover(testConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range sc.Tenants() {
		r, w, ok := sc.Route(tenant.ID)
		if !ok {
			t.Fatalf("route miss for %s", tenant.ID)
		}
		if r.Name != tenant.Region || w != tenant.Workload {
			t.Errorf("route(%s) = %s/%d, want %s/%d", tenant.ID, r.Name, w, tenant.Region, tenant.Workload)
		}
	}
	if _, _, ok := sc.Route("atlantis/t00"); ok {
		t.Error("unknown tenant must not route")
	}
	// The router is on the per-query hot path: no allocations.
	id := sc.Tenants()[0].ID
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := sc.Route(id); !ok {
			t.Fatal("route miss")
		}
	}); allocs != 0 {
		t.Errorf("Route allocates %v per op, want 0", allocs)
	}
}

func TestPlacementSeedStable(t *testing.T) {
	sc, err := Discover(testConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Placement(16)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Discover(testConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc2.Placement(16)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("placement front must be seed-stable")
	}
	if len(a) < 2 {
		t.Fatalf("front has %d points; heterogeneous regions must admit at least one saving move", len(a))
	}
	for k := 1; k < len(a); k++ {
		if a[k].TotalGrams >= a[k-1].TotalGrams {
			t.Errorf("front not strictly improving at %d", k)
		}
	}
	// Moves flow toward cleaner-or-equal mean intensity regions overall;
	// at minimum, every move must strictly save carbon.
	for _, m := range a[len(a)-1].Plan {
		if m.SavingGrams <= 0 {
			t.Errorf("move %+v does not save carbon", m)
		}
	}
}

func TestRegionCostsAndLoads(t *testing.T) {
	sc, err := Discover(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := sc.RegionCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(sc.Regions) {
		t.Fatalf("%d costs for %d regions", len(costs), len(sc.Regions))
	}
	for _, c := range costs {
		if err := c.Validate(); err != nil {
			t.Errorf("region cost invalid: %v", err)
		}
		if c.CarbonPerCoreSecond() <= 0 {
			t.Errorf("region %s has non-positive core-second price", c.Region)
		}
	}
	loads := sc.TenantLoads()
	if len(loads) != len(sc.Tenants()) {
		t.Fatalf("%d loads for %d tenants", len(loads), len(sc.Tenants()))
	}
	for _, l := range loads {
		r, w, ok := sc.Route(l.Tenant)
		if !ok {
			t.Fatalf("load references unroutable tenant %s", l.Tenant)
		}
		if l.CoreSeconds != r.Schedule.CoreSeconds(w) {
			t.Errorf("tenant %s load %v, schedule says %v", l.Tenant, l.CoreSeconds, r.Schedule.CoreSeconds(w))
		}
	}
}

func TestRegionNamesAndLookup(t *testing.T) {
	sc, err := Discover(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	names := sc.RegionNames()
	if len(names) != len(sc.Regions) {
		t.Fatalf("%d names for %d regions", len(names), len(sc.Regions))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("RegionNames must sort")
		}
	}
	if _, err := sc.RegionByName("atlantis"); err == nil {
		t.Error("unknown region must error")
	}
}

func TestConfigValidation(t *testing.T) {
	base := testConfig()
	mutate := func(f func(*Config)) Config {
		c := base
		c.Providers = append([]ProviderSpec(nil), base.Providers...)
		f(&c)
		return c
	}
	bad := []Config{
		{},
		mutate(func(c *Config) { c.Providers = nil }),
		mutate(func(c *Config) { c.Providers[0].Name = "" }),
		mutate(func(c *Config) { c.Providers[0].PUE = 0.8 }),
		mutate(func(c *Config) { c.Providers[0].Regions = nil }),
		mutate(func(c *Config) { c.Providers[0].Regions = []string{"atlantis"} }),
		mutate(func(c *Config) { c.Providers[1].Regions = []string{"us-west"} }),
		mutate(func(c *Config) { c.Days = 0 }),
		mutate(func(c *Config) { c.TraceStep = 0 }),
		mutate(func(c *Config) { c.MinMachines = 0 }),
		mutate(func(c *Config) { c.MaxMachines = c.MinMachines - 1 }),
		mutate(func(c *Config) { c.LifetimeYearChoices = nil }),
		mutate(func(c *Config) { c.LifetimeYearChoices = []int{0} }),
		mutate(func(c *Config) { c.Schedule.MinSlices = 0 }),
	}
	for i, c := range bad {
		if _, err := Discover(c, 1); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if err := grid.RegionProfile.Validate(grid.RegionProfile{}); err == nil {
		t.Error("empty grid profile must not validate")
	}
	if _, err := (&Scenario{}).Attribute(nil); err == nil {
		t.Error("nil method must error")
	}
}

func BenchmarkRegionRoute(b *testing.B) {
	sc, err := Discover(testConfig(), 17)
	if err != nil {
		b.Fatal(err)
	}
	tenants := sc.Tenants()
	ids := make([]string, len(tenants))
	for i, t := range tenants {
		ids[i] = t.ID
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := sc.Route(ids[i%len(ids)]); !ok {
			b.Fatal("route miss")
		}
	}
}
