package multiregion

import (
	"testing"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func TestTraceSourceServesTrace(t *testing.T) {
	trace := timeseries.New(0, 3600, []float64{100, 300, 200})
	now := units.Seconds(1800)
	src, err := NewTraceSource(trace, func() units.Seconds { return now })
	if err != nil {
		t.Fatal(err)
	}
	v, err := src.Current()
	if err != nil || v != 100 {
		t.Fatalf("Current at first midpoint = %v, %v; want 100", v, err)
	}
	now = 3600
	if v, _ := src.Current(); v != 200 {
		t.Errorf("Current between midpoints = %v, want 200", v)
	}
	// Wrapping: one full trace span later the value repeats.
	now = 1800 + 3*3600
	if v, _ := src.Current(); v != 100 {
		t.Errorf("Current after wrap = %v, want 100", v)
	}
	// Negative time wraps backwards into the window.
	now = 1800 - 3*3600
	if v, _ := src.Current(); v != 100 {
		t.Errorf("Current before epoch = %v, want 100", v)
	}
}

func TestTraceSourceErrors(t *testing.T) {
	if _, err := NewTraceSource(nil, func() units.Seconds { return 0 }); err == nil {
		t.Error("nil trace: expected error")
	}
	if _, err := NewTraceSource(timeseries.Zeros(0, 10, 0), func() units.Seconds { return 0 }); err == nil {
		t.Error("empty trace: expected error")
	}
	if _, err := NewTraceSource(timeseries.Zeros(0, 10, 5), nil); err == nil {
		t.Error("nil clock: expected error")
	}
}

func TestNewFeedsPerRegion(t *testing.T) {
	sc, err := Discover(testConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	clock := units.Seconds(13 * units.SecondsPerHour)
	feeds, err := sc.NewFeeds(
		livesignal.FeedConfig{MaxStale: time.Minute},
		func() units.Seconds { return clock },
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != len(sc.Regions) {
		t.Fatalf("%d feeds for %d regions", len(feeds), len(sc.Regions))
	}
	for i := range sc.Regions {
		r := &sc.Regions[i]
		feed, ok := feeds[r.Name]
		if !ok {
			t.Fatalf("no feed for region %s", r.Name)
		}
		sample, err := feed.Intensity()
		if err != nil {
			t.Fatalf("region %s: %v", r.Name, err)
		}
		if sample.Quality != livesignal.QualityFresh {
			t.Errorf("region %s: quality %v, want fresh", r.Name, sample.Quality)
		}
		if want := r.Trace.Interp(clock); sample.Intensity != want {
			t.Errorf("region %s: intensity %v, want trace value %v", r.Name, sample.Intensity, want)
		}
	}
	// Midday in us-west sits in the solar trough: its live signal must be
	// far below coal-heavy ap-south at the same instant.
	west, _ := feeds["us-west"].Intensity()
	south, _ := feeds["ap-south"].Intensity()
	if west.Intensity >= south.Intensity {
		t.Errorf("midday us-west %v should undercut ap-south %v", west.Intensity, south.Intensity)
	}
}
