package multiregion

import (
	"errors"
	"fmt"
	"math"

	"fairco2/internal/livesignal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// TraceSource adapts a regional intensity trace to the livesignal.Source
// interface, so each region's trace can sit behind its own degradation
// ladder (livesignal.Feed). The clock maps wall time onto the trace, and
// the trace wraps — a 7-day scenario serves indefinitely as a repeating
// weekly pattern.
type TraceSource struct {
	// Trace is the regional intensity trace to serve.
	Trace *timeseries.Series
	// Now returns the current scenario time. Daemons advance it with a
	// rotating clock; tests pin it.
	Now func() units.Seconds
}

// NewTraceSource builds a source over a trace.
func NewTraceSource(trace *timeseries.Series, now func() units.Seconds) (*TraceSource, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, errors.New("multiregion: trace source needs a non-empty trace")
	}
	if now == nil {
		return nil, errors.New("multiregion: trace source needs a clock")
	}
	return &TraceSource{Trace: trace, Now: now}, nil
}

// Current implements livesignal.Source: the interpolated trace value at
// the clock's current time, wrapped into the trace window.
func (ts *TraceSource) Current() (float64, error) {
	span := float64(ts.Trace.Duration())
	t := math.Mod(float64(ts.Now()-ts.Trace.Start), span)
	if t < 0 {
		t += span
	}
	return ts.Trace.Interp(ts.Trace.Start + units.Seconds(t)), nil
}

// NewFeeds builds one livesignal feed per region, each with its own
// last-known-good cache and degradation ladder, keyed by region name.
// inst may be nil (no metrics); when non-nil all feeds share it, matching
// how the attribution server wires a single instrument set.
func (sc *Scenario) NewFeeds(cfg livesignal.FeedConfig, now func() units.Seconds, inst *livesignal.FeedInstruments) (map[string]*livesignal.Feed, error) {
	feeds := make(map[string]*livesignal.Feed, len(sc.Regions))
	for i := range sc.Regions {
		r := &sc.Regions[i]
		src, err := NewTraceSource(r.Trace, now)
		if err != nil {
			return nil, fmt.Errorf("multiregion: region %s: %w", r.Name, err)
		}
		feeds[r.Name] = livesignal.NewFeed(src, cfg, inst)
	}
	return feeds, nil
}
