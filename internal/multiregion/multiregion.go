// Package multiregion turns the single-datacenter Fair-CO2 simulator into
// a multi-cloud scenario engine. A seeded discovery pass enumerates
// simulated providers, their regions, and the machine fleet in each region
// (with per-region embodied-carbon amortization horizons), generates a
// regional tenant schedule and a calibrated regional grid-intensity trace,
// and derives the region's embodied budget from its fleet. On top of the
// discovered scenario the package offers region-tagged attribution (every
// tenant share carries its provider and region end-to-end), per-region
// livesignal sources, a zero-allocation tenant router, and the pricing
// inputs for the cross-region placement optimizer in internal/optimize.
//
// Everything is a pure function of (Config, seed): discovery, schedules,
// traces, budgets, attribution and placement fronts are all deterministic
// and therefore differential-testable against the single-datacenter path
// region by region.
package multiregion

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"fairco2/internal/attribution"
	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/optimize"
	"fairco2/internal/schedule"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// ProviderSpec declares one simulated cloud provider: which regional grid
// profiles it operates in and the facility PUE of its datacenters.
type ProviderSpec struct {
	// Name identifies the provider.
	Name string
	// Regions lists grid.Profiles() names the provider operates in.
	Regions []string
	// PUE is the provider's facility power usage effectiveness.
	PUE float64
}

// Config parameterizes scenario discovery. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Providers lists the simulated providers. Region names must be
	// unique across providers (a region belongs to exactly one).
	Providers []ProviderSpec
	// Days is the scenario window length.
	Days int
	// TraceStep is the sampling step of the regional intensity traces.
	TraceStep units.Seconds
	// Schedule parameterizes the per-region tenant schedule generator.
	Schedule schedule.GeneratorConfig
	// MinMachines and MaxMachines bound the per-class fleet size drawn
	// during discovery.
	MinMachines, MaxMachines int
	// LifetimeYearChoices are the per-region embodied amortization
	// horizons discovery picks from (heterogeneous depreciation
	// schedules are what make embodied rates differ across regions).
	LifetimeYearChoices []int
}

// DefaultConfig covers all eight built-in grid profiles with three
// providers, a 7-day window, and the paper's schedule generator.
func DefaultConfig() Config {
	return Config{
		Providers: []ProviderSpec{
			{Name: "aurora", Regions: []string{"us-west", "us-midwest"}, PUE: 1.12},
			{Name: "borealis", Regions: []string{"eu-north", "eu-central", "eu-west"}, PUE: 1.18},
			{Name: "cirrus", Regions: []string{"ap-southeast", "ap-south", "sa-east"}, PUE: 1.35},
		},
		Days:                7,
		TraceStep:           units.SecondsPerHour,
		Schedule:            schedule.DefaultGeneratorConfig(),
		MinMachines:         40,
		MaxMachines:         400,
		LifetimeYearChoices: []int{3, 4, 5, 6},
	}
}

// Validate checks the discovery configuration.
func (c Config) Validate() error {
	if len(c.Providers) == 0 {
		return errors.New("multiregion: config needs at least one provider")
	}
	seen := map[string]bool{}
	for _, p := range c.Providers {
		if p.Name == "" {
			return errors.New("multiregion: provider needs a name")
		}
		if p.PUE < 1 {
			return fmt.Errorf("multiregion: provider %s: PUE must be >= 1, got %v", p.Name, p.PUE)
		}
		if len(p.Regions) == 0 {
			return fmt.Errorf("multiregion: provider %s has no regions", p.Name)
		}
		for _, r := range p.Regions {
			if seen[r] {
				return fmt.Errorf("multiregion: region %s claimed by two providers", r)
			}
			seen[r] = true
			if _, err := grid.ProfileByName(r); err != nil {
				return err
			}
		}
	}
	if c.Days < 1 {
		return errors.New("multiregion: window must cover at least one day")
	}
	if c.TraceStep <= 0 {
		return errors.New("multiregion: trace step must be positive")
	}
	if c.MinMachines < 1 || c.MaxMachines < c.MinMachines {
		return fmt.Errorf("multiregion: invalid fleet bounds [%d, %d]", c.MinMachines, c.MaxMachines)
	}
	if len(c.LifetimeYearChoices) == 0 {
		return errors.New("multiregion: no lifetime choices")
	}
	for _, y := range c.LifetimeYearChoices {
		if y < 1 {
			return errors.New("multiregion: lifetime choices must be positive years")
		}
	}
	return c.Schedule.Validate()
}

// MachineClass is one homogeneous slice of a regional fleet.
type MachineClass struct {
	// Name identifies the class ("standard" reference nodes or "dense"
	// double-capacity nodes).
	Name string
	// Server is the class's embodied and power model, with the region's
	// amortization horizon applied.
	Server *carbon.Server
	// Count is the number of machines of this class in the region.
	Count int
}

// Tenant is one schedulable workload with a globally unique identity.
type Tenant struct {
	// ID is the global tenant identifier, "<region>/t<NN>".
	ID string
	// Provider and Region locate the tenant's current placement.
	Provider string
	Region   string
	// Workload indexes the tenant in its region's schedule.
	Workload int
}

// Region is one discovered region: fleet, grid trace, tenant schedule and
// the embodied budget the fleet amortizes over the window.
type Region struct {
	// Provider is the operating provider's name.
	Provider string
	// Name is the region (grid profile) name.
	Name string
	// PUE is the provider's facility overhead multiplier.
	PUE float64
	// Profile is the regional grid calibration.
	Profile grid.RegionProfile
	// Trace is the regional operational intensity trace over the window.
	Trace *timeseries.Series
	// Fleet is the discovered machine inventory.
	Fleet []MachineClass
	// LifetimeYears is the region's embodied amortization horizon.
	LifetimeYears int
	// Schedule is the regional tenant schedule.
	Schedule *schedule.Schedule
	// Budget is the embodied carbon the fleet amortizes over the
	// schedule window — the budget every attribution method divides.
	Budget units.GramsCO2e
	// Tenants maps schedule workloads to global tenant identities,
	// index-aligned with Schedule.Workloads.
	Tenants []Tenant
}

// Scenario is a discovered multi-region deployment.
type Scenario struct {
	// Seed reproduces the scenario via Discover.
	Seed int64
	// Window is the schedule window length.
	Window units.Seconds
	// Regions is the discovered region set, in configuration order.
	Regions []Region

	routes map[string]routeEntry
}

type routeEntry struct {
	region   int
	workload int
}

// subSeed derives the per-region seed: regions must evolve independently
// (adding a region must not reshuffle the others' fleets or schedules).
func subSeed(seed int64, provider, region string) int64 {
	h := fnv.New64a()
	h.Write([]byte(provider))
	h.Write([]byte{'/'})
	h.Write([]byte(region))
	return seed ^ int64(h.Sum64())
}

// denseClass doubles every capacity and footprint of the reference server:
// twice the sockets, DRAM and storage in one chassis, drawing twice the
// power. Platform overhead scales with the doubled TDP, so doubling the
// reference embodied numbers is consistent with the carbon package's LCA
// scaling.
func denseClass(lifetime units.Seconds) *carbon.Server {
	s := carbon.NewReferenceServer()
	s.Cores *= 2
	s.MemoryGB *= 2
	s.StorageGB *= 2
	s.CPUEmbodied *= 2
	s.DRAMEmbodied *= 2
	s.SSDEmbodied *= 2
	s.PlatformEmbodied *= 2
	s.StaticPower *= 2
	s.MaxDynamicPower *= 2
	s.Lifetime = lifetime
	return s
}

// Discover builds the scenario deterministically from (cfg, seed): each
// region draws its fleet size, amortization horizon and tenant schedule
// from a seed derived from the global seed and the region's identity, so
// any single region is reproducible in isolation — the property the
// differential suite exploits to compare against the single-datacenter
// oracle.
func Discover(cfg Config, seed int64) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	window := units.Seconds(float64(cfg.Days) * units.SecondsPerDay)
	sc := &Scenario{
		Seed:   seed,
		Window: window,
		routes: map[string]routeEntry{},
	}
	for _, p := range cfg.Providers {
		for _, name := range p.Regions {
			profile, err := grid.ProfileByName(name)
			if err != nil {
				return nil, err
			}
			trace, err := grid.NewSyntheticRegion(profile, cfg.TraceStep, cfg.Days)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(subSeed(seed, p.Name, name)))
			years := cfg.LifetimeYearChoices[rng.Intn(len(cfg.LifetimeYearChoices))]
			lifetime := units.Seconds(float64(years) * 365 * units.SecondsPerDay)
			standard := carbon.NewReferenceServer()
			standard.Lifetime = lifetime
			fleet := []MachineClass{
				{Name: "standard", Server: standard, Count: randBetween(rng, cfg.MinMachines, cfg.MaxMachines)},
				{Name: "dense", Server: denseClass(lifetime), Count: randBetween(rng, cfg.MinMachines, cfg.MaxMachines)},
			}
			sched, err := schedule.Generate(cfg.Schedule, rng)
			if err != nil {
				return nil, fmt.Errorf("multiregion: region %s: %w", name, err)
			}
			region := Region{
				Provider:      p.Name,
				Name:          name,
				PUE:           p.PUE,
				Profile:       profile,
				Trace:         trace,
				Fleet:         fleet,
				LifetimeYears: years,
				Schedule:      sched,
			}
			scheduleWindow := units.Seconds(float64(sched.Slices) * float64(sched.SliceDuration))
			region.Budget = units.GramsCO2e(region.FleetEmbodiedRate() * float64(scheduleWindow))
			for i := range sched.Workloads {
				t := Tenant{
					ID:       fmt.Sprintf("%s/t%02d", name, i),
					Provider: p.Name,
					Region:   name,
					Workload: i,
				}
				region.Tenants = append(region.Tenants, t)
				sc.routes[t.ID] = routeEntry{region: len(sc.Regions), workload: i}
			}
			sc.Regions = append(sc.Regions, region)
		}
	}
	return sc, nil
}

func randBetween(rng *rand.Rand, lo, hi int) int {
	return lo + rng.Intn(hi-lo+1)
}

// FleetEmbodiedRate returns the region fleet's total amortized embodied
// emission rate in gCO2e per second.
func (r *Region) FleetEmbodiedRate() float64 {
	rate := 0.0
	for _, mc := range r.Fleet {
		rate += mc.Server.EmbodiedRate() * float64(mc.Count)
	}
	return rate
}

// smtThreadsPerCore mirrors the optimize cost model: schedulable cores are
// logical (SMT-2) threads of the physical cores.
const smtThreadsPerCore = 2

// FleetLogicalCores returns the region's schedulable core capacity.
func (r *Region) FleetLogicalCores() int {
	cores := 0
	for _, mc := range r.Fleet {
		cores += mc.Server.Cores * smtThreadsPerCore * mc.Count
	}
	return cores
}

// EmbodiedPerCoreSecond returns the fleet-weighted amortized embodied
// carbon of one logical core-second, attributing each machine class's
// CPU-share embodied rate across its logical cores.
func (r *Region) EmbodiedPerCoreSecond() (float64, error) {
	totalRate := 0.0
	totalCores := 0
	for _, mc := range r.Fleet {
		perPhysCore, err := mc.Server.EmbodiedRatePerCore()
		if err != nil {
			return 0, fmt.Errorf("multiregion: region %s fleet class %s: %w", r.Name, mc.Name, err)
		}
		totalRate += perPhysCore * float64(mc.Server.Cores) * float64(mc.Count)
		totalCores += mc.Server.Cores * smtThreadsPerCore * mc.Count
	}
	if totalCores == 0 {
		return 0, fmt.Errorf("multiregion: region %s has no fleet capacity", r.Name)
	}
	return totalRate / float64(totalCores), nil
}

// WattsPerCore returns the fleet-weighted power draw of one logical core
// at half dynamic load (the placement price's typical-utilization point),
// before the facility PUE.
func (r *Region) WattsPerCore() float64 {
	watts := 0.0
	cores := 0
	for _, mc := range r.Fleet {
		watts += (float64(mc.Server.StaticPower) + 0.5*float64(mc.Server.MaxDynamicPower)) * float64(mc.Count)
		cores += mc.Server.Cores * smtThreadsPerCore * mc.Count
	}
	if cores == 0 {
		return 0
	}
	return watts / float64(cores)
}

// TaggedShare is one tenant's attributed carbon with its placement labels.
type TaggedShare struct {
	Tenant   string
	Provider string
	Region   string
	Grams    float64
}

// Attribute runs the attribution method independently in every region —
// exactly the single-datacenter path on (regional schedule, regional
// budget) — and tags each share with the tenant's identity. Shares within
// a region are bitwise-identical to calling m.Attribute directly, which
// the differential suite asserts.
func (sc *Scenario) Attribute(m attribution.Method) ([]TaggedShare, error) {
	if m == nil {
		return nil, errors.New("multiregion: nil attribution method")
	}
	var out []TaggedShare
	for i := range sc.Regions {
		r := &sc.Regions[i]
		shares, err := m.Attribute(r.Schedule, r.Budget)
		if err != nil {
			return nil, fmt.Errorf("multiregion: region %s: %w", r.Name, err)
		}
		for w, grams := range shares {
			out = append(out, TaggedShare{
				Tenant:   r.Tenants[w].ID,
				Provider: r.Provider,
				Region:   r.Name,
				Grams:    grams,
			})
		}
	}
	return out, nil
}

// Route resolves a global tenant ID to its region and workload index. The
// lookup is a single map access with no allocation — it sits on the
// serving hot path for every region-tagged query.
func (sc *Scenario) Route(tenantID string) (region *Region, workload int, ok bool) {
	e, ok := sc.routes[tenantID]
	if !ok {
		return nil, 0, false
	}
	return &sc.Regions[e.region], e.workload, true
}

// Tenants returns every tenant across all regions, in region order.
func (sc *Scenario) Tenants() []Tenant {
	var out []Tenant
	for i := range sc.Regions {
		out = append(out, sc.Regions[i].Tenants...)
	}
	return out
}

// RegionCosts prices every region for the placement optimizer.
func (sc *Scenario) RegionCosts() ([]optimize.RegionCost, error) {
	costs := make([]optimize.RegionCost, 0, len(sc.Regions))
	for i := range sc.Regions {
		r := &sc.Regions[i]
		embodied, err := r.EmbodiedPerCoreSecond()
		if err != nil {
			return nil, err
		}
		costs = append(costs, optimize.RegionCost{
			Provider:              r.Provider,
			Region:                r.Name,
			MeanCI:                units.CarbonIntensity(r.Profile.Mean),
			WattsPerCore:          r.WattsPerCore(),
			PUE:                   r.PUE,
			EmbodiedPerCoreSecond: embodied,
		})
	}
	return costs, nil
}

// TenantLoads returns every tenant's placed resource-time for the
// placement optimizer.
func (sc *Scenario) TenantLoads() []optimize.TenantLoad {
	var loads []optimize.TenantLoad
	for i := range sc.Regions {
		r := &sc.Regions[i]
		for _, t := range r.Tenants {
			loads = append(loads, optimize.TenantLoad{
				Tenant:      t.ID,
				Region:      r.Name,
				CoreSeconds: r.Schedule.CoreSeconds(t.Workload),
			})
		}
	}
	return loads
}

// Placement runs the cross-region placement sweep over the scenario and
// returns the Pareto front of migration count versus total fleet carbon.
func (sc *Scenario) Placement(maxMoves int) ([]optimize.PlacementPoint, error) {
	costs, err := sc.RegionCosts()
	if err != nil {
		return nil, err
	}
	return optimize.PlacementSweep(costs, sc.TenantLoads(), maxMoves)
}

// RegionNames returns the discovered region names, sorted.
func (sc *Scenario) RegionNames() []string {
	names := make([]string, 0, len(sc.Regions))
	for i := range sc.Regions {
		names = append(names, sc.Regions[i].Name)
	}
	sort.Strings(names)
	return names
}

// RegionByName returns the discovered region with the given name.
func (sc *Scenario) RegionByName(name string) (*Region, error) {
	for i := range sc.Regions {
		if sc.Regions[i].Name == name {
			return &sc.Regions[i], nil
		}
	}
	return nil, fmt.Errorf("multiregion: unknown region %q", name)
}
