// Package trace generates synthetic datacenter demand traces with the
// statistical structure of the Microsoft Azure 2017 VM dataset the paper
// uses (Cortez et al.): strong diurnal and weekly periodicity, a slow
// growth trend, and autocorrelated noise, sampled at 5-minute resolution.
// It also samples VM lifetimes following the Protean observation (Hadary
// et al.) that most VMs are short-lived with a long tail of near-permanent
// ones — the premise behind Temporal Shapley's unit resource-time
// approximation (§5.1).
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// AzureLikeConfig parameterizes the aggregate-demand generator.
type AzureLikeConfig struct {
	// Days is the trace length (paper: 30).
	Days int
	// Step is the sampling interval (paper: 5 minutes).
	Step units.Seconds
	// BaseCores is the mean allocated core count.
	BaseCores float64
	// DiurnalAmplitude is the day-cycle swing as a fraction of BaseCores.
	DiurnalAmplitude float64
	// WeeklyAmplitude is the week-cycle swing as a fraction of BaseCores.
	WeeklyAmplitude float64
	// TrendPerDay is the linear growth per day as a fraction of BaseCores.
	TrendPerDay float64
	// NoiseStd is the innovation standard deviation of the AR(1) noise,
	// as a fraction of BaseCores.
	NoiseStd float64
	// NoiseAR is the AR(1) coefficient in [0, 1).
	NoiseAR float64
	// Seed drives the noise generator.
	Seed int64
}

// DefaultAzureLikeConfig mimics the Azure 2017 aggregate CPU-allocation
// series: 30 days at 5-minute sampling with pronounced diurnal swings, a
// weekday/weekend cycle and mild growth.
func DefaultAzureLikeConfig() AzureLikeConfig {
	return AzureLikeConfig{
		Days:             30,
		Step:             300,
		BaseCores:        100_000,
		DiurnalAmplitude: 0.18,
		WeeklyAmplitude:  0.07,
		TrendPerDay:      0.004,
		// The Azure 2017 aggregate is the sum of ~2M VM allocations, so
		// relative noise is small (aggregation averages it out).
		NoiseStd: 0.004,
		NoiseAR:  0.9,
		Seed:     1,
	}
}

// Validate checks the configuration.
func (c AzureLikeConfig) Validate() error {
	switch {
	case c.Days < 1:
		return errors.New("trace: need at least one day")
	case c.Step <= 0:
		return errors.New("trace: step must be positive")
	case c.BaseCores <= 0:
		return errors.New("trace: base demand must be positive")
	case c.DiurnalAmplitude < 0 || c.WeeklyAmplitude < 0 || c.NoiseStd < 0:
		return errors.New("trace: amplitudes must be non-negative")
	case c.NoiseAR < 0 || c.NoiseAR >= 1:
		return errors.New("trace: AR coefficient must be in [0, 1)")
	}
	return nil
}

// GenerateAzureLike produces the synthetic aggregate demand trace.
func GenerateAzureLike(cfg AzureLikeConfig) (*timeseries.Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(float64(cfg.Days) * units.SecondsPerDay / float64(cfg.Step))
	if n < 2 {
		return nil, fmt.Errorf("trace: configuration yields only %d samples", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	values := make([]float64, n)
	noise := 0.0
	for i := range values {
		t := float64(cfg.Step) * float64(i)
		days := t / units.SecondsPerDay

		// Diurnal shape: business-hours hump peaking ~15:00 plus a first
		// harmonic for realism.
		hod := math.Mod(t/units.SecondsPerHour, 24)
		diurnal := math.Sin(2*math.Pi*(hod-9)/24) + 0.35*math.Sin(4*math.Pi*(hod-6)/24)

		// Weekly shape: weekdays above baseline, weekend below.
		dow := math.Mod(days, 7)
		weekly := math.Cos(2 * math.Pi * (dow - 2) / 7)

		noise = cfg.NoiseAR*noise + rng.NormFloat64()*cfg.NoiseStd
		rel := 1 +
			cfg.DiurnalAmplitude*diurnal +
			cfg.WeeklyAmplitude*weekly +
			cfg.TrendPerDay*days +
			noise
		if rel < 0.05 {
			rel = 0.05 // demand never collapses to zero
		}
		values[i] = cfg.BaseCores * rel
	}
	return timeseries.New(0, cfg.Step, values), nil
}

// LifetimeConfig parameterizes the VM-lifetime sampler.
type LifetimeConfig struct {
	// ShortFraction is the probability a VM is short-lived.
	ShortFraction float64
	// ShortMean is the mean lifetime of short VMs (exponential).
	ShortMean units.Seconds
	// LongMean is the mean lifetime of long-running VMs (exponential).
	LongMean units.Seconds
}

// DefaultLifetimeConfig follows the Protean characterization: most VMs
// live minutes, a long tail runs for weeks.
func DefaultLifetimeConfig() LifetimeConfig {
	return LifetimeConfig{
		ShortFraction: 0.9,
		ShortMean:     15 * 60,
		LongMean:      14 * units.SecondsPerDay,
	}
}

// SampleLifetimes draws n VM lifetimes from the two-population mixture.
func SampleLifetimes(cfg LifetimeConfig, n int, rng *rand.Rand) ([]units.Seconds, error) {
	if n < 1 {
		return nil, errors.New("trace: need at least one lifetime")
	}
	if rng == nil {
		return nil, errors.New("trace: nil rng")
	}
	if cfg.ShortFraction < 0 || cfg.ShortFraction > 1 {
		return nil, errors.New("trace: short fraction must be in [0, 1]")
	}
	if cfg.ShortMean <= 0 || cfg.LongMean <= 0 {
		return nil, errors.New("trace: mean lifetimes must be positive")
	}
	out := make([]units.Seconds, n)
	for i := range out {
		mean := cfg.LongMean
		if rng.Float64() < cfg.ShortFraction {
			mean = cfg.ShortMean
		}
		out[i] = units.Seconds(rng.ExpFloat64() * float64(mean))
	}
	return out, nil
}
