package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Scenario is a deterministic script of demand perturbations layered over a
// base trace: multiplicative bursts, linear rate ramps, and flat outage gaps.
// It is the scenario-matrix primitive shared by the streaming replay source
// and the Monte Carlo tooling: the same script applied to the same series
// always yields the same perturbed series, so scenario sweeps are seedable
// and results reproducible.
//
// Ramps apply first, then bursts (both multiplicative, so they compose),
// and outages last: during an outage the demand is pinned to a flat level
// regardless of what the multiplicative layers produced.
type Scenario struct {
	Bursts  []Burst
	Ramps   []Ramp
	Outages []Outage
}

// Burst multiplies demand by Factor over [Start, Start+Duration).
type Burst struct {
	Start    units.Seconds
	Duration units.Seconds
	// Factor is the demand multiplier during the burst (> 0; values above
	// 1 are surges, below 1 are lulls).
	Factor float64
}

// Ramp scales demand by a linearly interpolated factor: From at Start,
// approaching To at Start+Duration.
type Ramp struct {
	Start    units.Seconds
	Duration units.Seconds
	From, To float64
}

// Outage pins demand to the flat Level over [Start, Start+Duration),
// modeling a capacity gap or telemetry blackout where the aggregate
// collapses to a constant floor.
type Outage struct {
	Start    units.Seconds
	Duration units.Seconds
	// Level is the absolute demand during the gap (>= 0).
	Level float64
}

// IsZero reports whether the scenario perturbs nothing.
func (sc Scenario) IsZero() bool {
	return len(sc.Bursts) == 0 && len(sc.Ramps) == 0 && len(sc.Outages) == 0
}

// Validate checks every op in the script.
func (sc Scenario) Validate() error {
	for i, b := range sc.Bursts {
		if b.Duration <= 0 {
			return fmt.Errorf("trace: burst %d has non-positive duration %v", i, b.Duration)
		}
		if b.Factor <= 0 {
			return fmt.Errorf("trace: burst %d has non-positive factor %v", i, b.Factor)
		}
	}
	for i, r := range sc.Ramps {
		if r.Duration <= 0 {
			return fmt.Errorf("trace: ramp %d has non-positive duration %v", i, r.Duration)
		}
		if r.From <= 0 || r.To <= 0 {
			return fmt.Errorf("trace: ramp %d has non-positive factors %v -> %v", i, r.From, r.To)
		}
	}
	for i, o := range sc.Outages {
		if o.Duration <= 0 {
			return fmt.Errorf("trace: outage %d has non-positive duration %v", i, o.Duration)
		}
		if o.Level < 0 {
			return fmt.Errorf("trace: outage %d has negative level %v", i, o.Level)
		}
	}
	return nil
}

// Apply returns a new series with the script applied to s. The input series
// is not modified. Samples are perturbed when their timestamp falls inside
// an op's half-open [Start, Start+Duration) interval.
func (sc Scenario) Apply(s *timeseries.Series) (*timeseries.Series, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("trace: empty series")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	out := s.Clone()
	for i := range out.Values {
		t := out.TimeAt(i)
		v := out.Values[i]
		for _, r := range sc.Ramps {
			if t >= r.Start && t < r.Start+r.Duration {
				frac := float64(t-r.Start) / float64(r.Duration)
				v *= r.From + (r.To-r.From)*frac
			}
		}
		for _, b := range sc.Bursts {
			if t >= b.Start && t < b.Start+b.Duration {
				v *= b.Factor
			}
		}
		for _, o := range sc.Outages {
			if t >= o.Start && t < o.Start+o.Duration {
				v = o.Level
			}
		}
		out.Values[i] = v
	}
	return out, nil
}

// ParseScenario parses the flag-friendly script syntax: semicolon-separated
// ops, each "kind:comma,separated,args" with times and durations in seconds.
//
//	burst:start,duration,factor
//	ramp:start,duration,from,to
//	outage:start,duration,level
//
// An empty spec yields the zero scenario. Example:
//
//	burst:21600,7200,1.8;outage:50400,3600,5000;ramp:86400,43200,1,1.25
func ParseScenario(spec string) (Scenario, error) {
	var sc Scenario
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sc, nil
	}
	for _, op := range strings.Split(spec, ";") {
		kind, rest, ok := strings.Cut(strings.TrimSpace(op), ":")
		if !ok {
			return sc, fmt.Errorf("trace: scenario op %q is not kind:args", op)
		}
		args, err := parseFloats(rest)
		if err != nil {
			return sc, fmt.Errorf("trace: scenario op %q: %w", op, err)
		}
		switch kind {
		case "burst":
			if len(args) != 3 {
				return sc, fmt.Errorf("trace: burst wants start,duration,factor; got %d args", len(args))
			}
			sc.Bursts = append(sc.Bursts, Burst{
				Start: units.Seconds(args[0]), Duration: units.Seconds(args[1]), Factor: args[2]})
		case "ramp":
			if len(args) != 4 {
				return sc, fmt.Errorf("trace: ramp wants start,duration,from,to; got %d args", len(args))
			}
			sc.Ramps = append(sc.Ramps, Ramp{
				Start: units.Seconds(args[0]), Duration: units.Seconds(args[1]), From: args[2], To: args[3]})
		case "outage":
			if len(args) != 3 {
				return sc, fmt.Errorf("trace: outage wants start,duration,level; got %d args", len(args))
			}
			sc.Outages = append(sc.Outages, Outage{
				Start: units.Seconds(args[0]), Duration: units.Seconds(args[1]), Level: args[2]})
		default:
			return sc, fmt.Errorf("trace: unknown scenario op kind %q", kind)
		}
	}
	return sc, sc.Validate()
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// ScenarioConfig parameterizes RandomScenario: how many ops of each kind to
// draw and the ranges they are drawn from.
type ScenarioConfig struct {
	// Bursts, Ramps, Outages are the op counts.
	Bursts, Ramps, Outages int
	// MaxBurstFactor bounds burst multipliers, drawn uniformly from
	// [1, MaxBurstFactor].
	MaxBurstFactor float64
	// MaxRampFactor bounds ramp endpoints, drawn uniformly from
	// [1, MaxRampFactor]; each ramp starts at factor 1.
	MaxRampFactor float64
	// OutageLevel is the flat demand during generated outages.
	OutageLevel float64
	// MinDuration and MaxDuration bound every op's duration.
	MinDuration, MaxDuration units.Seconds
}

// DefaultScenarioConfig is a modest mixed script: two surges, one ramp and
// one outage, each between 30 minutes and 4 hours.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		Bursts:         2,
		Ramps:          1,
		Outages:        1,
		MaxBurstFactor: 2.5,
		MaxRampFactor:  1.5,
		OutageLevel:    0,
		MinDuration:    30 * 60,
		MaxDuration:    4 * units.SecondsPerHour,
	}
}

// Validate checks the generator configuration.
func (c ScenarioConfig) Validate() error {
	switch {
	case c.Bursts < 0 || c.Ramps < 0 || c.Outages < 0:
		return errors.New("trace: scenario op counts must be non-negative")
	case c.MaxBurstFactor < 1 && c.Bursts > 0:
		return errors.New("trace: max burst factor must be >= 1")
	case c.MaxRampFactor < 1 && c.Ramps > 0:
		return errors.New("trace: max ramp factor must be >= 1")
	case c.OutageLevel < 0:
		return errors.New("trace: outage level must be non-negative")
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return errors.New("trace: scenario durations must satisfy 0 < min <= max")
	}
	return nil
}

// RandomScenario draws a seeded scenario script over the horizon [0, h).
// The same rng state always yields the same script, so a scenario matrix
// is just a loop over seeds.
func RandomScenario(cfg ScenarioConfig, horizon units.Seconds, rng *rand.Rand) (Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return Scenario{}, err
	}
	if rng == nil {
		return Scenario{}, errors.New("trace: nil rng")
	}
	if horizon <= cfg.MinDuration {
		return Scenario{}, fmt.Errorf("trace: horizon %v shorter than min op duration %v", horizon, cfg.MinDuration)
	}
	draw := func() (units.Seconds, units.Seconds) {
		maxDur := cfg.MaxDuration
		if maxDur > horizon {
			maxDur = horizon
		}
		dur := cfg.MinDuration + units.Seconds(rng.Float64()*float64(maxDur-cfg.MinDuration))
		start := units.Seconds(rng.Float64() * float64(horizon-dur))
		return start, dur
	}
	var sc Scenario
	for i := 0; i < cfg.Bursts; i++ {
		start, dur := draw()
		sc.Bursts = append(sc.Bursts, Burst{Start: start, Duration: dur,
			Factor: 1 + rng.Float64()*(cfg.MaxBurstFactor-1)})
	}
	for i := 0; i < cfg.Ramps; i++ {
		start, dur := draw()
		sc.Ramps = append(sc.Ramps, Ramp{Start: start, Duration: dur,
			From: 1, To: 1 + rng.Float64()*(cfg.MaxRampFactor-1)})
	}
	for i := 0; i < cfg.Outages; i++ {
		start, dur := draw()
		sc.Outages = append(sc.Outages, Outage{Start: start, Duration: dur, Level: cfg.OutageLevel})
	}
	return sc, nil
}
