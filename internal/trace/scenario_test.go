package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// flatSeries builds a constant-demand series: n samples of value v at
// 1-second steps starting at t=0, so perturbed values are easy to predict.
func flatSeries(n int, v float64) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return timeseries.New(0, 1, vals)
}

func TestScenarioApplyOps(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		// want maps sample index -> expected value; unlisted samples must
		// keep the base value.
		want map[int]float64
	}{
		{
			name: "zero scenario is identity",
			sc:   Scenario{},
			want: nil,
		},
		{
			name: "burst multiplies inside half-open interval",
			sc:   Scenario{Bursts: []Burst{{Start: 2, Duration: 3, Factor: 2}}},
			want: map[int]float64{2: 200, 3: 200, 4: 200},
		},
		{
			name: "lull burst scales below one",
			sc:   Scenario{Bursts: []Burst{{Start: 0, Duration: 2, Factor: 0.5}}},
			want: map[int]float64{0: 50, 1: 50},
		},
		{
			name: "ramp interpolates from From to To",
			sc:   Scenario{Ramps: []Ramp{{Start: 0, Duration: 4, From: 1, To: 2}}},
			want: map[int]float64{0: 100, 1: 125, 2: 150, 3: 175},
		},
		{
			name: "outage pins to flat level",
			sc:   Scenario{Outages: []Outage{{Start: 5, Duration: 2, Level: 7}}},
			want: map[int]float64{5: 7, 6: 7},
		},
		{
			name: "outage wins over overlapping burst",
			sc: Scenario{
				Bursts:  []Burst{{Start: 0, Duration: 10, Factor: 3}},
				Outages: []Outage{{Start: 4, Duration: 1, Level: 1}},
			},
			want: map[int]float64{0: 300, 1: 300, 2: 300, 3: 300, 4: 1, 5: 300, 6: 300, 7: 300, 8: 300, 9: 300},
		},
		{
			name: "overlapping bursts and ramps compose multiplicatively",
			sc: Scenario{
				Bursts: []Burst{{Start: 2, Duration: 2, Factor: 2}},
				Ramps:  []Ramp{{Start: 0, Duration: 10, From: 2, To: 2}},
			},
			want: map[int]float64{0: 200, 1: 200, 2: 400, 3: 400, 4: 200, 5: 200, 6: 200, 7: 200, 8: 200, 9: 200},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := flatSeries(10, 100)
			out, err := tc.sc.Apply(base)
			if err != nil {
				t.Fatal(err)
			}
			for i, got := range out.Values {
				want := 100.0
				if v, ok := tc.want[i]; ok {
					want = v
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("sample %d = %v, want %v", i, got, want)
				}
			}
			// The input series must be untouched.
			for i, v := range base.Values {
				if v != 100 {
					t.Fatalf("Apply mutated input sample %d: %v", i, v)
				}
			}
		})
	}
}

func TestScenarioApplyErrors(t *testing.T) {
	s := flatSeries(4, 1)
	if _, err := (Scenario{}).Apply(nil); err == nil {
		t.Error("nil series accepted")
	}
	bad := []Scenario{
		{Bursts: []Burst{{Start: 0, Duration: 0, Factor: 2}}},
		{Bursts: []Burst{{Start: 0, Duration: 1, Factor: 0}}},
		{Ramps: []Ramp{{Start: 0, Duration: 0, From: 1, To: 2}}},
		{Ramps: []Ramp{{Start: 0, Duration: 1, From: 0, To: 2}}},
		{Ramps: []Ramp{{Start: 0, Duration: 1, From: 1, To: -1}}},
		{Outages: []Outage{{Start: 0, Duration: 0, Level: 1}}},
		{Outages: []Outage{{Start: 0, Duration: 1, Level: -1}}},
	}
	for i, sc := range bad {
		if _, err := sc.Apply(s); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestParseScenario(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    Scenario
		wantErr string
	}{
		{name: "empty spec is zero scenario", spec: "  "},
		{
			name: "full mixed script",
			spec: "burst:21600,7200,1.8;outage:50400,3600,5000;ramp:86400,43200,1,1.25",
			want: Scenario{
				Bursts:  []Burst{{Start: 21600, Duration: 7200, Factor: 1.8}},
				Ramps:   []Ramp{{Start: 86400, Duration: 43200, From: 1, To: 1.25}},
				Outages: []Outage{{Start: 50400, Duration: 3600, Level: 5000}},
			},
		},
		{
			name: "whitespace tolerated around ops and args",
			spec: " burst: 10, 20, 2 ",
			want: Scenario{Bursts: []Burst{{Start: 10, Duration: 20, Factor: 2}}},
		},
		{name: "missing colon", spec: "burst", wantErr: "not kind:args"},
		{name: "unknown kind", spec: "spike:1,2,3", wantErr: "unknown scenario op"},
		{name: "burst arity", spec: "burst:1,2", wantErr: "wants start,duration,factor"},
		{name: "ramp arity", spec: "ramp:1,2,3", wantErr: "wants start,duration,from,to"},
		{name: "outage arity", spec: "outage:1,2,3,4", wantErr: "wants start,duration,level"},
		{name: "bad float", spec: "burst:1,x,2", wantErr: "arg 1"},
		{name: "invalid op rejected by validate", spec: "burst:0,10,0", wantErr: "non-positive factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseScenario(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Bursts) != len(tc.want.Bursts) ||
				len(got.Ramps) != len(tc.want.Ramps) ||
				len(got.Outages) != len(tc.want.Outages) {
				t.Fatalf("parsed %+v, want %+v", got, tc.want)
			}
			for i, b := range tc.want.Bursts {
				if got.Bursts[i] != b {
					t.Errorf("burst %d = %+v, want %+v", i, got.Bursts[i], b)
				}
			}
			for i, r := range tc.want.Ramps {
				if got.Ramps[i] != r {
					t.Errorf("ramp %d = %+v, want %+v", i, got.Ramps[i], r)
				}
			}
			for i, o := range tc.want.Outages {
				if got.Outages[i] != o {
					t.Errorf("outage %d = %+v, want %+v", i, got.Outages[i], o)
				}
			}
			if got.IsZero() != (tc.spec == "" || strings.TrimSpace(tc.spec) == "") {
				t.Errorf("IsZero = %v for spec %q", got.IsZero(), tc.spec)
			}
		})
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	cfg := DefaultScenarioConfig()
	horizon := 2 * units.Seconds(units.SecondsPerDay)
	a, err := RandomScenario(cfg, horizon, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomScenario(cfg, horizon, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bursts) != cfg.Bursts || len(a.Ramps) != cfg.Ramps || len(a.Outages) != cfg.Outages {
		t.Fatalf("op counts %d/%d/%d, want %d/%d/%d",
			len(a.Bursts), len(a.Ramps), len(a.Outages), cfg.Bursts, cfg.Ramps, cfg.Outages)
	}
	for i := range a.Bursts {
		if a.Bursts[i] != b.Bursts[i] {
			t.Fatal("same seed drew different bursts")
		}
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatal("same seed drew different outages")
		}
	}
	c, err := RandomScenario(cfg, horizon, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bursts) > 0 && c.Bursts[0] == a.Bursts[0] {
		t.Error("different seeds drew identical first bursts")
	}
	if a.Validate() != nil {
		t.Error("generated scenario does not validate")
	}
}

func TestRandomScenarioRespectsBounds(t *testing.T) {
	cfg := DefaultScenarioConfig()
	horizon := units.Seconds(units.SecondsPerDay)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sc, err := RandomScenario(cfg, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		check := func(start, dur units.Seconds) {
			t.Helper()
			if dur < cfg.MinDuration || dur > cfg.MaxDuration {
				t.Fatalf("duration %v outside [%v, %v]", dur, cfg.MinDuration, cfg.MaxDuration)
			}
			if start < 0 || start+dur > horizon {
				t.Fatalf("op [%v, %v) outside horizon %v", start, start+dur, horizon)
			}
		}
		for _, b := range sc.Bursts {
			check(b.Start, b.Duration)
			if b.Factor < 1 || b.Factor > cfg.MaxBurstFactor {
				t.Fatalf("burst factor %v outside [1, %v]", b.Factor, cfg.MaxBurstFactor)
			}
		}
		for _, r := range sc.Ramps {
			check(r.Start, r.Duration)
			if r.From != 1 || r.To < 1 || r.To > cfg.MaxRampFactor {
				t.Fatalf("ramp %v -> %v outside [1, %v]", r.From, r.To, cfg.MaxRampFactor)
			}
		}
		for _, o := range sc.Outages {
			check(o.Start, o.Duration)
			if o.Level != cfg.OutageLevel {
				t.Fatalf("outage level %v, want %v", o.Level, cfg.OutageLevel)
			}
		}
	}
}

func TestRandomScenarioErrors(t *testing.T) {
	cfg := DefaultScenarioConfig()
	horizon := units.Seconds(units.SecondsPerDay)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomScenario(cfg, horizon, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomScenario(cfg, cfg.MinDuration, rng); err == nil {
		t.Error("horizon shorter than min duration accepted")
	}
	bad := []func(*ScenarioConfig){
		func(c *ScenarioConfig) { c.Bursts = -1 },
		func(c *ScenarioConfig) { c.MaxBurstFactor = 0.5 },
		func(c *ScenarioConfig) { c.MaxRampFactor = 0.5 },
		func(c *ScenarioConfig) { c.OutageLevel = -1 },
		func(c *ScenarioConfig) { c.MinDuration = 0 },
		func(c *ScenarioConfig) { c.MaxDuration = c.MinDuration - 1 },
	}
	for i, mutate := range bad {
		c := DefaultScenarioConfig()
		mutate(&c)
		if _, err := RandomScenario(c, horizon, rng); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestRandomScenarioAppliesToAzureTrace ties the generator to its consumer:
// a seeded random script perturbs the Azure-like trace reproducibly.
func TestRandomScenarioAppliesToAzureTrace(t *testing.T) {
	tcfg := DefaultAzureLikeConfig()
	tcfg.Days = 2
	s, err := GenerateAzureLike(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := units.Seconds(float64(tcfg.Days) * units.SecondsPerDay)
	sc, err := RandomScenario(DefaultScenarioConfig(), horizon, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same script applied twice diverged")
		}
		if a.Values[i] != s.Values[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("default scenario perturbed nothing")
	}
}
