package trace

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/units"
)

func TestGenerateAzureLikeShape(t *testing.T) {
	cfg := DefaultAzureLikeConfig()
	s, err := GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30*288 {
		t.Fatalf("Len = %d, want 8640 (30 days of 5-minute samples)", s.Len())
	}
	for i, v := range s.Values {
		if v <= 0 {
			t.Fatalf("non-positive demand %v at sample %d", v, i)
		}
	}
	// Mean near the configured base (trend raises it slightly).
	mean := s.Mean()
	if mean < cfg.BaseCores*0.9 || mean > cfg.BaseCores*1.25 {
		t.Errorf("mean %v far from base %v", mean, cfg.BaseCores)
	}
}

func TestGenerateAzureLikeDiurnalStructure(t *testing.T) {
	cfg := DefaultAzureLikeConfig()
	cfg.NoiseStd = 0 // isolate the deterministic shape
	s, err := GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perDay := 288
	// Afternoon (15:00) demand should exceed pre-dawn (04:00) on the
	// same day, every day.
	for day := 0; day < 30; day++ {
		afternoon := s.Values[day*perDay+15*12]
		predawn := s.Values[day*perDay+4*12]
		if afternoon <= predawn {
			t.Fatalf("day %d: afternoon %v <= predawn %v", day, afternoon, predawn)
		}
	}
}

func TestGenerateAzureLikeTrend(t *testing.T) {
	cfg := DefaultAzureLikeConfig()
	cfg.NoiseStd = 0
	s, err := GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstWeek, err := s.Head(7 * 288)
	if err != nil {
		t.Fatal(err)
	}
	lastWeek, err := s.Tail(7 * 288)
	if err != nil {
		t.Fatal(err)
	}
	if lastWeek.Mean() <= firstWeek.Mean() {
		t.Error("growth trend missing")
	}
}

func TestGenerateAzureLikeDeterministic(t *testing.T) {
	a, err := GenerateAzureLike(DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateAzureLike(DefaultAzureLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
	cfg := DefaultAzureLikeConfig()
	cfg.Seed = 2
	c, err := GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateAzureLikeErrors(t *testing.T) {
	bad := []func(*AzureLikeConfig){
		func(c *AzureLikeConfig) { c.Days = 0 },
		func(c *AzureLikeConfig) { c.Step = 0 },
		func(c *AzureLikeConfig) { c.BaseCores = 0 },
		func(c *AzureLikeConfig) { c.DiurnalAmplitude = -1 },
		func(c *AzureLikeConfig) { c.NoiseAR = 1 },
		func(c *AzureLikeConfig) { c.NoiseAR = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultAzureLikeConfig()
		mutate(&cfg)
		if _, err := GenerateAzureLike(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSampleLifetimesMixture(t *testing.T) {
	cfg := DefaultLifetimeConfig()
	rng := rand.New(rand.NewSource(1))
	lifetimes, err := SampleLifetimes(cfg, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	var sum float64
	for _, lt := range lifetimes {
		if lt < 0 {
			t.Fatal("negative lifetime")
		}
		if lt < units.Seconds(2*3600) {
			short++
		}
		sum += float64(lt)
	}
	// Roughly 90% of VMs are short-lived (under 2 h).
	frac := float64(short) / float64(len(lifetimes))
	if math.Abs(frac-0.9) > 0.05 {
		t.Errorf("short fraction %v, want ~0.9", frac)
	}
	// The long tail dominates the mean: it must far exceed ShortMean.
	mean := sum / float64(len(lifetimes))
	if mean < 10*float64(cfg.ShortMean) {
		t.Errorf("mean lifetime %v lacks the long tail", mean)
	}
}

func TestSampleLifetimesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultLifetimeConfig()
	if _, err := SampleLifetimes(cfg, 0, rng); err == nil {
		t.Error("n=0")
	}
	if _, err := SampleLifetimes(cfg, 1, nil); err == nil {
		t.Error("nil rng")
	}
	cfg.ShortFraction = 1.5
	if _, err := SampleLifetimes(cfg, 1, rng); err == nil {
		t.Error("bad fraction")
	}
	cfg = DefaultLifetimeConfig()
	cfg.ShortMean = 0
	if _, err := SampleLifetimes(cfg, 1, rng); err == nil {
		t.Error("bad mean")
	}
}
