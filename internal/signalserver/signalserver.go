// Package signalserver serves Fair-CO2's live carbon-intensity signals
// over HTTP — §5.3 as an operating service. Cloud tenants poll it to
// schedule work against projected embodied carbon intensity, the way they
// already poll grid-intensity APIs for operational carbon:
//
//	GET /healthz                     -> {"status":"ok", ...}
//	GET /v1/intensity/current        -> the signal value now
//	GET /v1/intensity/window?hours=N -> the signal series for the next N hours
//	GET /v1/intensity/series         -> the full (history + forecast) signal
//	GET /metrics                     -> Prometheus text-format metrics
//
// The server holds a demand history, fits the forecaster, extends the
// horizon, and derives the Temporal Shapley signal; Refresh re-fits after
// new telemetry arrives.
package signalserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fairco2/internal/forecast"
	"fairco2/internal/metrics"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Config parameterizes the server.
type Config struct {
	// HorizonSamples is how far past the history the signal projects.
	HorizonSamples int
	// Budget is the embodied carbon attributed over history + horizon.
	Budget units.GramsCO2e
	// Forecast selects the forecaster structure.
	Forecast forecast.Config
	// MaxFanout bounds the Temporal Shapley hierarchy levels.
	MaxFanout int
}

// DefaultConfig projects two days of 5-minute samples.
func DefaultConfig() Config {
	return Config{
		HorizonSamples: 2 * 288,
		Budget:         1e7,
		Forecast:       forecast.DefaultConfig(),
		MaxFanout:      16,
	}
}

// Server computes and serves the live signal. It is safe for concurrent
// use; Refresh swaps the signal atomically under a read-write lock.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	demand  *timeseries.Series
	signal  *timeseries.Series
	refits  int
	histLen int
}

// New builds a server over an initial demand history and computes the
// first signal.
func New(history *timeseries.Series, cfg Config) (*Server, error) {
	if cfg.HorizonSamples < 1 {
		return nil, errors.New("signalserver: horizon must be positive")
	}
	if cfg.Budget <= 0 {
		return nil, errors.New("signalserver: budget must be positive")
	}
	if cfg.MaxFanout < 2 {
		return nil, errors.New("signalserver: max fan-out must be at least 2")
	}
	s := &Server{cfg: cfg}
	if err := s.Refresh(history); err != nil {
		return nil, err
	}
	return s, nil
}

// Refresh re-fits the forecaster on a new (longer) history and swaps in
// the updated signal.
func (s *Server) Refresh(history *timeseries.Series) error {
	refitStart := time.Now()
	if history == nil || history.Len() == 0 {
		return errors.New("signalserver: empty history")
	}
	model, err := forecast.Fit(history, s.cfg.Forecast)
	if err != nil {
		return err
	}
	predicted, err := model.Forecast(s.cfg.HorizonSamples)
	if err != nil {
		return err
	}
	values := append(append([]float64(nil), history.Values...), predicted.Values...)
	stitched := timeseries.New(history.Start, history.Step, values)
	splits, err := temporal.AutoSplits(stitched.Len(), s.cfg.MaxFanout)
	if err != nil {
		return err
	}
	signal, err := temporal.IntensitySignal(stitched, s.cfg.Budget, temporal.Config{SplitRatios: splits})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.demand = stitched
	s.signal = signal
	s.histLen = history.Len()
	s.refits++
	s.mu.Unlock()
	metricRefits.Inc()
	metricRefitSeconds.Observe(time.Since(refitStart).Seconds())
	metricCurrentIntensity.Set(signal.Values[history.Len()-1])
	return nil
}

// CurrentIntensity returns the signal value at the boundary between
// history and forecast — "now" in the server's frame — without going
// through HTTP. The exporter daemon publishes it as a gauge.
func (s *Server) CurrentIntensity() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.signal.Values[s.histLen-1]
}

// Handler returns the HTTP routes. Every route is instrumented with
// request and latency metrics, and the process-wide registry is exposed on
// /metrics so the signal-server shares the exporter daemon's wiring.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrumented("/healthz", s.handleHealth))
	mux.HandleFunc("GET /v1/intensity/current", instrumented("/v1/intensity/current", s.handleCurrent))
	mux.HandleFunc("GET /v1/intensity/window", instrumented("/v1/intensity/window", s.handleWindow))
	mux.HandleFunc("GET /v1/intensity/series", instrumented("/v1/intensity/series", s.handleSeries))
	mux.Handle("GET /metrics", metrics.Default().Handler())
	return mux
}

type healthResponse struct {
	Status         string  `json:"status"`
	Refits         int     `json:"refits"`
	HistorySamples int     `json:"history_samples"`
	HorizonSamples int     `json:"horizon_samples"`
	StepSeconds    float64 `json:"step_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := healthResponse{
		Status:         "ok",
		Refits:         s.refits,
		HistorySamples: s.histLen,
		HorizonSamples: s.signal.Len() - s.histLen,
		StepSeconds:    float64(s.signal.Step),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

type pointResponse struct {
	TimeSeconds float64 `json:"time_seconds"`
	// Intensity is in gCO2e per resource-second.
	Intensity float64 `json:"intensity_g_per_resource_second"`
}

// handleCurrent returns the signal at the boundary between history and
// forecast — "now" in the server's frame.
func (s *Server) handleCurrent(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	idx := s.histLen - 1
	resp := pointResponse{
		TimeSeconds: float64(s.signal.TimeAt(idx)),
		Intensity:   s.signal.Values[idx],
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

type seriesResponse struct {
	StartSeconds float64   `json:"start_seconds"`
	StepSeconds  float64   `json:"step_seconds"`
	Intensity    []float64 `json:"intensity_g_per_resource_second"`
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	hours, err := strconv.ParseFloat(r.URL.Query().Get("hours"), 64)
	if err != nil || hours <= 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "hours must be a positive number",
		})
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := int(hours * units.SecondsPerHour / float64(s.signal.Step))
	if n < 1 {
		n = 1
	}
	lo := s.histLen
	hi := lo + n
	if hi > s.signal.Len() {
		hi = s.signal.Len()
	}
	window, err := s.signal.Slice(lo, hi)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, seriesResponse{
		StartSeconds: float64(window.Start),
		StepSeconds:  float64(window.Step),
		Intensity:    window.Values,
	})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := seriesResponse{
		StartSeconds: float64(s.signal.Start),
		StepSeconds:  float64(s.signal.Step),
		Intensity:    append([]float64(nil), s.signal.Values...),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing else to do.
		_ = fmt.Errorf("signalserver: encoding response: %w", err)
	}
}
