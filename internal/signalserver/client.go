package signalserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Client is the tenant-side consumer of a signal server: poll the
// projected intensity and schedule deferrable work into its cheapest
// window — the §5.3/§8 optimization loop as three calls.
type Client struct {
	// BaseURL is the server address, e.g. "http://localhost:8585".
	BaseURL string
	// HTTPClient optionally overrides http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each request when HTTPClient is nil. Zero means no
	// timeout (http.DefaultClient semantics). A scheduler polling the
	// signal must not hang on a wedged server: set this.
	Timeout time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	if c.Timeout > 0 {
		return &http.Client{Timeout: c.Timeout}
	}
	return http.DefaultClient
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("signalserver client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("signalserver client: %s returned %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("signalserver client: decoding %s: %w", path, err)
	}
	return nil
}

// Current returns the intensity now, in gCO2e per resource-second.
func (c *Client) Current() (float64, error) {
	var p pointResponse
	if err := c.getJSON("/v1/intensity/current", &p); err != nil {
		return 0, err
	}
	return p.Intensity, nil
}

// Window returns the projected intensity series for the next hours.
func (c *Client) Window(hours float64) (*timeseries.Series, error) {
	var s seriesResponse
	if err := c.getJSON(fmt.Sprintf("/v1/intensity/window?hours=%g", hours), &s); err != nil {
		return nil, err
	}
	if len(s.Intensity) == 0 || s.StepSeconds <= 0 {
		return nil, errors.New("signalserver client: server returned an empty window")
	}
	return timeseries.New(units.Seconds(s.StartSeconds), units.Seconds(s.StepSeconds), s.Intensity), nil
}

// Placement is BestWindow's recommendation.
type Placement struct {
	// Start is the recommended job start time (server clock).
	Start units.Seconds
	// Cost is the projected embodied carbon of the job at that start.
	Cost units.GramsCO2e
	// WorstCost is the projected cost of the worst start considered —
	// the saving available from shifting.
	WorstCost units.GramsCO2e
}

// BestWindow scans the next deadlineHours of the projected signal and
// returns the start minimizing the embodied cost of a job that holds
// `resource` units (e.g. cores) for jobDuration.
func (c *Client) BestWindow(resource float64, jobDuration units.Seconds, deadlineHours float64) (Placement, error) {
	if resource <= 0 || jobDuration <= 0 || deadlineHours <= 0 {
		return Placement{}, errors.New("signalserver client: resource, duration and deadline must be positive")
	}
	signal, err := c.Window(deadlineHours)
	if err != nil {
		return Placement{}, err
	}
	jobSamples := int(float64(jobDuration) / float64(signal.Step))
	if jobSamples < 1 {
		jobSamples = 1
	}
	if jobSamples > signal.Len() {
		return Placement{}, fmt.Errorf("signalserver client: job of %v does not fit in the %g h window", jobDuration, deadlineHours)
	}
	// Sliding-window sums over the signal.
	bestStart, bestCost, worstCost := 0, 0.0, 0.0
	sum := 0.0
	for i := 0; i < jobSamples; i++ {
		sum += signal.Values[i]
	}
	bestCost, worstCost = sum, sum
	for start := 1; start+jobSamples <= signal.Len(); start++ {
		sum += signal.Values[start+jobSamples-1] - signal.Values[start-1]
		if sum < bestCost {
			bestCost, bestStart = sum, start
		}
		if sum > worstCost {
			worstCost = sum
		}
	}
	scale := resource * float64(signal.Step)
	return Placement{
		Start:     signal.TimeAt(bestStart),
		Cost:      units.GramsCO2e(bestCost * scale),
		WorstCost: units.GramsCO2e(worstCost * scale),
	}, nil
}
