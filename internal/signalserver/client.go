package signalserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"fairco2/internal/resilience"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// maxResponseBytes bounds how much of a response body the client will
// read. A full two-week 5-minute window is ~4000 samples — well under a
// megabyte of JSON — so anything past this bound is a lying or broken
// server, not a bigger signal.
const maxResponseBytes = 8 << 20

// Client is the tenant-side consumer of a signal server: poll the
// projected intensity and schedule deferrable work into its cheapest
// window — the §5.3/§8 optimization loop as three calls.
type Client struct {
	// BaseURL is the server address, e.g. "http://localhost:8585".
	BaseURL string
	// HTTPClient optionally overrides http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each request when HTTPClient is nil. Zero means no
	// timeout (http.DefaultClient semantics). A scheduler polling the
	// signal must not hang on a wedged server: set this.
	Timeout time.Duration
	// Policy, when set, wraps every fetch with retry/backoff, per-attempt
	// deadlines and the policy's circuit breaker. Nil keeps the previous
	// single-attempt behavior. WithResilience installs one with metrics
	// wired; tests build their own for exact schedules.
	Policy *resilience.Policy
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	if c.Timeout > 0 {
		return &http.Client{Timeout: c.Timeout}
	}
	return http.DefaultClient
}

// get fetches path and hands the (size-bounded) body to parse, under the
// client's policy when one is set. Transport errors, 5xx/429 statuses and
// bad bodies are retryable; other non-200 statuses are permanent — the
// request itself is wrong, and repeating it would only pollute the breaker.
func (c *Client) get(path string, parse func(io.Reader) error) error {
	op := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return resilience.Permanent(fmt.Errorf("signalserver client: %w", err))
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return fmt.Errorf("signalserver client: %w", err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
		case resp.StatusCode >= http.StatusInternalServerError,
			resp.StatusCode == http.StatusTooManyRequests:
			return fmt.Errorf("signalserver client: %s returned %s", path, resp.Status)
		default:
			return resilience.Permanent(fmt.Errorf("signalserver client: %s returned %s", path, resp.Status))
		}
		if err := parse(io.LimitReader(resp.Body, maxResponseBytes+1)); err != nil {
			return fmt.Errorf("signalserver client: decoding %s: %w", path, err)
		}
		return nil
	}
	if c.Policy != nil {
		return c.Policy.Do(context.Background(), op)
	}
	return op(context.Background())
}

// decodePoint parses and validates a /v1/intensity/current body. Every
// rejection is typed ErrBadResponse; arbitrary bytes must never panic
// (FuzzClientDecode holds it to that).
func decodePoint(r io.Reader) (pointResponse, error) {
	var p pointResponse
	if err := decodeJSON(r, &p); err != nil {
		return pointResponse{}, err
	}
	if !isFiniteIntensity(p.Intensity) {
		return pointResponse{}, fmt.Errorf("%w: intensity %v is not a finite non-negative number", ErrBadResponse, p.Intensity)
	}
	return p, nil
}

// decodeSeries parses and validates a window/series body.
func decodeSeries(r io.Reader) (seriesResponse, error) {
	var s seriesResponse
	if err := decodeJSON(r, &s); err != nil {
		return seriesResponse{}, err
	}
	switch {
	case len(s.Intensity) == 0:
		return seriesResponse{}, fmt.Errorf("%w: empty window", ErrBadResponse)
	case !(s.StepSeconds > 0) || math.IsInf(s.StepSeconds, 0):
		return seriesResponse{}, fmt.Errorf("%w: step %v is not a positive finite number", ErrBadResponse, s.StepSeconds)
	case math.IsNaN(s.StartSeconds) || math.IsInf(s.StartSeconds, 0):
		return seriesResponse{}, fmt.Errorf("%w: start %v is not finite", ErrBadResponse, s.StartSeconds)
	}
	for i, v := range s.Intensity {
		if !isFiniteIntensity(v) {
			return seriesResponse{}, fmt.Errorf("%w: intensity[%d] = %v is not a finite non-negative number", ErrBadResponse, i, v)
		}
	}
	return s, nil
}

// decodeJSON decodes exactly one JSON value from r into out, rejecting
// oversized bodies and trailing garbage with ErrBadResponse.
func decodeJSON(r io.Reader, out any) error {
	lr, ok := r.(*io.LimitedReader)
	if !ok {
		lr = &io.LimitedReader{R: r, N: maxResponseBytes + 1}
	}
	dec := json.NewDecoder(lr)
	if err := dec.Decode(out); err != nil {
		if lr.N <= 0 {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrBadResponse, maxResponseBytes)
		}
		return fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	if lr.N <= 0 {
		return fmt.Errorf("%w: body exceeds %d bytes", ErrBadResponse, maxResponseBytes)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("%w: trailing data after the JSON value", ErrBadResponse)
	}
	return nil
}

// isFiniteIntensity accepts the values a sane server can emit: finite and
// non-negative (a negative embodied intensity would credit carbon).
func isFiniteIntensity(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Current returns the intensity now, in gCO2e per resource-second.
func (c *Client) Current() (float64, error) {
	var p pointResponse
	err := c.get("/v1/intensity/current", func(r io.Reader) error {
		var derr error
		p, derr = decodePoint(r)
		return derr
	})
	if err != nil {
		return 0, err
	}
	return p.Intensity, nil
}

// Window returns the projected intensity series for the next hours.
func (c *Client) Window(hours float64) (*timeseries.Series, error) {
	var s seriesResponse
	err := c.get(fmt.Sprintf("/v1/intensity/window?hours=%g", hours), func(r io.Reader) error {
		var derr error
		s, derr = decodeSeries(r)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return timeseries.New(units.Seconds(s.StartSeconds), units.Seconds(s.StepSeconds), s.Intensity), nil
}

// Placement is BestWindow's recommendation.
type Placement struct {
	// Start is the recommended job start time (server clock).
	Start units.Seconds
	// Cost is the projected embodied carbon of the job at that start.
	Cost units.GramsCO2e
	// WorstCost is the projected cost of the worst start considered —
	// the saving available from shifting.
	WorstCost units.GramsCO2e
}

// BestWindow scans the next deadlineHours of the projected signal and
// returns the start minimizing the embodied cost of a job that holds
// `resource` units (e.g. cores) for jobDuration.
func (c *Client) BestWindow(resource float64, jobDuration units.Seconds, deadlineHours float64) (Placement, error) {
	if resource <= 0 || jobDuration <= 0 || deadlineHours <= 0 {
		return Placement{}, errors.New("signalserver client: resource, duration and deadline must be positive")
	}
	signal, err := c.Window(deadlineHours)
	if err != nil {
		return Placement{}, err
	}
	jobSamples := int(float64(jobDuration) / float64(signal.Step))
	if jobSamples < 1 {
		jobSamples = 1
	}
	if jobSamples > signal.Len() {
		return Placement{}, fmt.Errorf("signalserver client: job of %v does not fit in the %g h window", jobDuration, deadlineHours)
	}
	// Sliding-window sums over the signal.
	bestStart, bestCost, worstCost := 0, 0.0, 0.0
	sum := 0.0
	for i := 0; i < jobSamples; i++ {
		sum += signal.Values[i]
	}
	bestCost, worstCost = sum, sum
	for start := 1; start+jobSamples <= signal.Len(); start++ {
		sum += signal.Values[start+jobSamples-1] - signal.Values[start-1]
		if sum < bestCost {
			bestCost, bestStart = sum, start
		}
		if sum > worstCost {
			worstCost = sum
		}
	}
	scale := resource * float64(signal.Step)
	return Placement{
		Start:     signal.TimeAt(bestStart),
		Cost:      units.GramsCO2e(bestCost * scale),
		WorstCost: units.GramsCO2e(worstCost * scale),
	}, nil
}
