package signalserver

import (
	"net/http"
	"strconv"
	"time"

	"fairco2/internal/metrics"
)

// Serving-path telemetry, shared by every Server in the process (labels
// separate endpoints, not instances — the daemons run one server each).
var (
	metricRequests = metrics.Default().NewCounterVec(
		"fairco2_signalserver_requests_total",
		"HTTP requests served, by endpoint and status code.",
		"endpoint", "code")
	metricLatency = metrics.Default().NewHistogramVec(
		"fairco2_signalserver_request_seconds",
		"HTTP request latency, by endpoint.",
		nil,
		"endpoint")
	metricRefits = metrics.Default().NewCounter(
		"fairco2_signalserver_refits_total",
		"Forecast re-fits performed by Refresh.")
	metricRefitSeconds = metrics.Default().NewHistogram(
		"fairco2_signalserver_refit_seconds",
		"Wall-clock duration of one Refresh (forecast fit + signal rebuild).",
		nil)
	metricCurrentIntensity = metrics.Default().NewGauge(
		"fairco2_signalserver_current_intensity_g_per_core_second",
		"Live embodied carbon intensity at the history/forecast boundary.")
)

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a route handler with request counting and latency
// observation under the endpoint label.
func instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		metricRequests.With(endpoint, strconv.Itoa(rec.status)).Inc()
		metricLatency.With(endpoint).Observe(time.Since(start).Seconds())
	}
}
