package signalserver

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"fairco2/internal/units"
)

func testClient(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(testServer(t).Handler())
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, ts
}

func TestClientCurrent(t *testing.T) {
	c, _ := testClient(t)
	v, err := c.Current()
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("intensity %v", v)
	}
}

func TestClientWindow(t *testing.T) {
	c, _ := testClient(t)
	w, err := c.Window(6)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 72 || w.Step != 300 {
		t.Errorf("window %d samples step %v", w.Len(), w.Step)
	}
}

func TestClientBestWindow(t *testing.T) {
	c, _ := testClient(t)
	placement, err := c.BestWindow(32, 4*units.SecondsPerHour, 48)
	if err != nil {
		t.Fatal(err)
	}
	if placement.Cost <= 0 || placement.WorstCost < placement.Cost {
		t.Errorf("placement %+v", placement)
	}
	// Cross-check against a direct scan of the same window.
	signal, err := c.Window(48)
	if err != nil {
		t.Fatal(err)
	}
	jobSamples := int(4 * units.SecondsPerHour / 300)
	best := math.Inf(1)
	bestStart := 0
	for start := 0; start+jobSamples <= signal.Len(); start++ {
		sum := 0.0
		for i := start; i < start+jobSamples; i++ {
			sum += signal.Values[i]
		}
		if sum < best {
			best, bestStart = sum, start
		}
	}
	wantCost := best * 32 * 300
	if math.Abs(float64(placement.Cost)-wantCost) > 1e-9*wantCost {
		t.Errorf("cost %v, want %v", placement.Cost, wantCost)
	}
	if placement.Start != signal.TimeAt(bestStart) {
		t.Errorf("start %v, want %v", placement.Start, signal.TimeAt(bestStart))
	}
}

func TestClientBestWindowErrors(t *testing.T) {
	c, _ := testClient(t)
	if _, err := c.BestWindow(0, 100, 1); err == nil {
		t.Error("zero resource")
	}
	if _, err := c.BestWindow(1, 0, 1); err == nil {
		t.Error("zero duration")
	}
	if _, err := c.BestWindow(1, 100, 0); err == nil {
		t.Error("zero deadline")
	}
	if _, err := c.BestWindow(1, 100*units.SecondsPerHour, 1); err == nil {
		t.Error("job longer than window")
	}
}

func TestClientServerErrors(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	c := &Client{BaseURL: bad.URL}
	if _, err := c.Current(); err == nil {
		t.Error("non-200 should error")
	}
	if _, err := c.Window(1); err == nil {
		t.Error("non-200 window should error")
	}
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer garbage.Close()
	c = &Client{BaseURL: garbage.URL}
	if _, err := c.Current(); err == nil {
		t.Error("bad json should error")
	}
	c = &Client{BaseURL: "http://127.0.0.1:1"}
	if _, err := c.Current(); err == nil {
		t.Error("unreachable server should error")
	}
}

// slowServer blocks every request until the client gives up (or the test
// ends), simulating a wedged signal server.
func slowServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestClientTimeoutAgainstSlowServer(t *testing.T) {
	ts := slowServer(t)
	c := &Client{BaseURL: ts.URL, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Current()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("slow server should time out")
	}
	if elapsed > 2*time.Second {
		t.Errorf("client returned after %v; the 50ms timeout was not honored", elapsed)
	}
	var uerr *url.Error
	if !errors.As(err, &uerr) || !uerr.Timeout() {
		t.Errorf("error %v should unwrap to a timeout", err)
	}
	if !strings.Contains(err.Error(), "signalserver client") {
		t.Errorf("error %q lacks the client prefix", err)
	}
}

func TestClientHTTPClientOverrideTimeout(t *testing.T) {
	ts := slowServer(t)
	c := &Client{
		BaseURL: ts.URL,
		// An explicit HTTPClient wins over the Timeout field.
		HTTPClient: &http.Client{Timeout: 50 * time.Millisecond},
		Timeout:    time.Hour,
	}
	start := time.Now()
	if _, err := c.Window(6); err == nil {
		t.Fatal("slow server should time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client returned after %v; the override timeout was not honored", elapsed)
	}
}

func TestClientBestWindowSlowServer(t *testing.T) {
	ts := slowServer(t)
	c := &Client{BaseURL: ts.URL, Timeout: 50 * time.Millisecond}
	if _, err := c.BestWindow(8, units.SecondsPerHour, 6); err == nil {
		t.Fatal("BestWindow against a wedged server should fail, not hang")
	}
}
