package signalserver

import (
	"errors"

	"fairco2/internal/resilience"
)

// Sentinel errors for the client's failure classes, so callers branch with
// errors.Is instead of matching message text (the internal/shapley error
// convention). The breaker and retry sentinels are re-exported from
// internal/resilience: a caller holding only a *signalserver.Client can
// classify its failures without importing the policy machinery.
var (
	// ErrBreakerOpen reports a fetch rejected without a request because
	// the client's circuit breaker is open.
	ErrBreakerOpen = resilience.ErrBreakerOpen
	// ErrRetriesExhausted reports a fetch that failed on every allowed
	// attempt; the returned error also wraps the last cause.
	ErrRetriesExhausted = resilience.ErrRetriesExhausted
	// ErrBadResponse reports a response the server should never send: a
	// body that is not JSON, is truncated, exceeds the size bound, or
	// carries non-finite or negative intensities. It is retryable — a
	// partial write on one attempt says nothing about the next.
	ErrBadResponse = errors.New("signalserver client: bad response")
)
