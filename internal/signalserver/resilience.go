package signalserver

import (
	"time"

	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
)

// ClientInstruments are the client-side resilience metrics of the live
// signal feed. Create them once per registry (registration panics on
// duplicates) and hand them to WithResilience; the daemons use the
// process-wide default registry, tests use fresh ones.
type ClientInstruments struct {
	// Retries counts retried fetch attempts (fairco2_signal_retry_total).
	Retries *metrics.Counter
	// BreakerState mirrors the client breaker's position
	// (fairco2_signal_breaker_state: 0 closed, 1 half-open, 2 open).
	BreakerState *metrics.Gauge
}

// NewClientInstruments registers the client resilience metrics on reg.
func NewClientInstruments(reg *metrics.Registry) *ClientInstruments {
	return &ClientInstruments{
		Retries: reg.NewCounter(
			"fairco2_signal_retry_total",
			"Retried live-signal fetch attempts (first attempts are not counted)."),
		BreakerState: reg.NewGauge(
			"fairco2_signal_breaker_state",
			"Live-signal client circuit breaker state (0 = closed, 1 = half-open, 2 = open)."),
	}
}

// WithResilience installs a retry/breaker policy on the client, built from
// cfg with the jitter schedule fixed by seed. When inst is non-nil the
// policy reports retries and breaker transitions through it. It returns
// the client for chaining.
func (c *Client) WithResilience(cfg resilience.Config, seed int64, inst *ClientInstruments) *Client {
	var hooks resilience.Hooks
	if inst != nil {
		hooks.OnRetry = func(int, error, time.Duration) { inst.Retries.Inc() }
		hooks.OnBreakerChange = func(_, to resilience.State) { inst.BreakerState.Set(float64(to)) }
	}
	policy, _ := cfg.NewPolicyHooked(seed, hooks)
	c.Policy = policy
	return c
}
