package signalserver

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairco2/internal/resilience"
	"fairco2/internal/resilience/faultserver"
)

// TestSentinelIdentity checks the re-exported sentinels are the resilience
// package's own, so the two vocabularies match under errors.Is.
func TestSentinelIdentity(t *testing.T) {
	if !errors.Is(ErrBreakerOpen, resilience.ErrBreakerOpen) {
		t.Error("ErrBreakerOpen is not the resilience sentinel")
	}
	if !errors.Is(ErrRetriesExhausted, resilience.ErrRetriesExhausted) {
		t.Error("ErrRetriesExhausted is not the resilience sentinel")
	}
}

// TestClientErrorClasses is the errors.Is/As table for the client's
// failure classes, produced by driving a real client into each one.
func TestClientErrorClasses(t *testing.T) {
	cases := []struct {
		name    string
		drive   func(t *testing.T) error
		is      []error
		isNot   []error
		message string
	}{
		{
			name: "retries exhausted wraps the last cause",
			drive: func(t *testing.T) error {
				c, fs := faultClient(t, fastPolicy(2, nil))
				fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
				_, err := c.Current()
				return err
			},
			is:      []error{ErrRetriesExhausted, resilience.ErrRetriesExhausted},
			isNot:   []error{ErrBreakerOpen, ErrBadResponse},
			message: "503",
		},
		{
			name: "breaker open",
			drive: func(t *testing.T) error {
				br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 1, ProbeInterval: time.Hour})
				c, fs := faultClient(t, fastPolicy(1, br))
				fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
				_, _ = c.Current() // trips the breaker
				_, err := c.Current()
				return err
			},
			is:    []error{ErrBreakerOpen, resilience.ErrBreakerOpen},
			isNot: []error{ErrRetriesExhausted, ErrBadResponse},
		},
		{
			name: "bad response without a policy",
			drive: func(t *testing.T) error {
				c, fs := faultClient(t, nil)
				fs.Program(faultserver.CorruptJSON())
				_, err := c.Current()
				return err
			},
			is:      []error{ErrBadResponse},
			isNot:   []error{ErrRetriesExhausted, ErrBreakerOpen},
			message: "decoding",
		},
		{
			name: "bad response under retries stays typed",
			drive: func(t *testing.T) error {
				c, fs := faultClient(t, fastPolicy(2, nil))
				fs.Program(faultserver.CorruptJSON(), faultserver.CorruptJSON())
				_, err := c.Current()
				return err
			},
			is: []error{ErrRetriesExhausted, ErrBadResponse},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.drive(t)
			if err == nil {
				t.Fatal("scenario produced no error")
			}
			for _, want := range c.is {
				if !errors.Is(err, want) {
					t.Errorf("errors.Is(%v, %v) = false", err, want)
				}
			}
			for _, not := range c.isNot {
				if errors.Is(err, not) {
					t.Errorf("errors.Is(%v, %v) = true", err, not)
				}
			}
			if c.message != "" && !strings.Contains(err.Error(), c.message) {
				t.Errorf("error %q lacks %q", err, c.message)
			}
		})
	}
}

// TestErrorsAsReachesWrapped checks errors.As digs through the retry
// wrapping to concrete error types (the fmt convention of %w chaining).
func TestErrorsAsReachesWrapped(t *testing.T) {
	inner := fmt.Errorf("wrapped: %w", ErrBadResponse)
	outer := fmt.Errorf("%w after 3 attempts: %w", ErrRetriesExhausted, inner)
	if !errors.Is(outer, ErrBadResponse) || !errors.Is(outer, ErrRetriesExhausted) {
		t.Error("chained wrapping broke errors.Is")
	}
}
