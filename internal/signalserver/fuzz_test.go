package signalserver

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzClientDecode holds the client's response decoding to its contract:
// on arbitrary bytes it returns either a valid value or a typed
// ErrBadResponse — never a panic, never a NaN/Inf/negative intensity, and
// never unbounded memory (the size cap rejects huge payloads first).
func FuzzClientDecode(f *testing.F) {
	f.Add([]byte(`{"time_seconds": 0, "intensity_g_per_resource_second": 1.5}`))
	f.Add([]byte(`{"intensity_g_per_resource_second": NaN}`))
	f.Add([]byte(`{"intensity_g_per_resource_second": 1e999}`))
	f.Add([]byte(`{"intensity_g_per_resource_second": -4}`))
	f.Add([]byte(`{"start_seconds":0,"step_seconds":300,"intensity_g_per_resource_second":[1,2,3]}`))
	f.Add([]byte(`{"start_seconds":0,"step_seconds":0,"intensity_g_per_resource_second":[1]}`))
	f.Add([]byte(`{"start_seconds":0,"step_seconds":300,"intensity_g_per_resource_second":[]}`))
	f.Add([]byte(`{"intensity_g_per_resource_second": `))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{}trailing`))
	f.Add(bytes.Repeat([]byte("9"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadResponse) {
				t.Fatalf("decodePoint error %v is not typed ErrBadResponse", err)
			}
		} else if math.IsNaN(p.Intensity) || math.IsInf(p.Intensity, 0) || p.Intensity < 0 {
			t.Fatalf("decodePoint accepted intensity %v", p.Intensity)
		}

		s, err := decodeSeries(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadResponse) {
				t.Fatalf("decodeSeries error %v is not typed ErrBadResponse", err)
			}
			return
		}
		if len(s.Intensity) == 0 || !(s.StepSeconds > 0) {
			t.Fatalf("decodeSeries accepted degenerate series %+v", s)
		}
		for i, v := range s.Intensity {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("decodeSeries accepted intensity[%d] = %v", i, v)
			}
		}
	})
}

// TestDecodeOversizedBody checks the size cap rejects a payload just past
// the bound with the typed error (the fuzzer cannot practically reach it).
func TestDecodeOversizedBody(t *testing.T) {
	huge := "[" + strings.Repeat("1,", maxResponseBytes/2) + "1]"
	var out []float64
	err := decodeJSON(strings.NewReader(huge), &out)
	if !errors.Is(err, ErrBadResponse) {
		t.Fatalf("oversized body error %v is not ErrBadResponse", err)
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error %q does not mention the size bound", err)
	}
}
