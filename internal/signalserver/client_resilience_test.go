package signalserver

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"fairco2/internal/metrics"
	"fairco2/internal/resilience"
	"fairco2/internal/resilience/faultserver"
)

// fastPolicy is the deterministic test policy: millisecond backoff with a
// fixed seed, so scenario runs replay exactly and finish fast.
func fastPolicy(attempts int, br *resilience.Breaker) *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: attempts,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Breaker:     br,
		Rand:        rand.New(rand.NewSource(1)),
	}
}

// faultClient stands a fault server in front of a real signal server and
// returns a client with the given policy pointed at it.
func faultClient(t *testing.T, p *resilience.Policy) (*Client, *faultserver.Server) {
	t.Helper()
	fs := faultserver.New(testServer(t).Handler())
	t.Cleanup(fs.Close)
	return &Client{BaseURL: fs.URL(), Policy: p}, fs
}

// Scenario 1 — latency spike: the wedged attempt times out, the retry
// lands on a healthy server.
func TestScenarioTimeoutThenRecover(t *testing.T) {
	p := fastPolicy(3, nil)
	p.AttemptTimeout = 100 * time.Millisecond
	c, fs := faultClient(t, p)
	fs.Program(faultserver.Step{Delay: time.Hour})
	v, err := c.Current()
	if err != nil {
		t.Fatalf("timeout was not retried into success: %v", err)
	}
	if v <= 0 {
		t.Errorf("intensity %v", v)
	}
	if fs.Hits() != 2 {
		t.Errorf("hits = %d, want 2 (one timeout, one success)", fs.Hits())
	}
}

// Scenario 2 — 5xx burst: transient server errors are absorbed by the
// retry loop and counted.
func TestScenario5xxBurst(t *testing.T) {
	retries := 0
	p := fastPolicy(4, nil)
	p.OnRetry = func(int, error, time.Duration) { retries++ }
	c, fs := faultClient(t, p)
	fs.Program(faultserver.FailN(3, http.StatusServiceUnavailable)...)
	if _, err := c.Current(); err != nil {
		t.Fatalf("burst not absorbed: %v", err)
	}
	if retries != 3 || fs.Hits() != 4 {
		t.Errorf("retries=%d hits=%d, want 3 and 4", retries, fs.Hits())
	}
}

// Scenario 3 — corrupt body: a 200 with truncated JSON is a typed
// ErrBadResponse and retryable.
func TestScenarioCorruptBody(t *testing.T) {
	c, fs := faultClient(t, fastPolicy(2, nil))
	fs.Program(faultserver.CorruptJSON())
	if _, err := c.Current(); err != nil {
		t.Fatalf("corrupt body not retried into success: %v", err)
	}

	// Without retries the typed error surfaces to the caller.
	c.Policy = nil
	fs.Program(faultserver.CorruptJSON())
	_, err := c.Current()
	if !errors.Is(err, ErrBadResponse) {
		t.Fatalf("error %v is not ErrBadResponse", err)
	}
}

// Scenario 4 — connection reset: the RST mid-exchange is a transport
// error, retried into success.
func TestScenarioConnectionReset(t *testing.T) {
	c, fs := faultClient(t, fastPolicy(3, nil))
	fs.Program(faultserver.Step{Reset: true})
	if _, err := c.Window(6); err != nil {
		t.Fatalf("reset not retried into success: %v", err)
	}
}

// Scenario 5 — flapping: alternating failure and success never trips a
// breaker whose threshold exceeds the flap run-length, and every fetch
// eventually lands.
func TestScenarioFlapping(t *testing.T) {
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 3, ProbeInterval: time.Minute})
	c, fs := faultClient(t, fastPolicy(2, br))
	fs.Program(faultserver.Flap(6, http.StatusInternalServerError)...)
	for i := 0; i < 6; i++ {
		if _, err := c.Current(); err != nil {
			t.Fatalf("flap fetch %d failed: %v", i, err)
		}
	}
	if br.State() != resilience.StateClosed {
		t.Errorf("flapping opened the breaker (state %v); consecutive-failure accounting is broken", br.State())
	}
	if fs.Faults() != 6 {
		t.Errorf("faults = %d, want 6", fs.Faults())
	}
}

// Scenario 6 — sustained outage and recovery: retries exhaust, the breaker
// opens and fast-fails without touching the network, then a probe after
// the interval closes it again once the server recovers.
func TestScenarioSustainedOutage(t *testing.T) {
	br := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 4,
		ProbeInterval:    20 * time.Millisecond,
	})
	c, fs := faultClient(t, fastPolicy(2, br))
	fs.Program(faultserver.Outage(http.StatusServiceUnavailable))

	// Two fetches x two attempts = four failures: exhaustion, then open.
	for i := 0; i < 2; i++ {
		_, err := c.Current()
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("outage fetch %d: %v, want ErrRetriesExhausted", i, err)
		}
	}
	if br.State() != resilience.StateOpen {
		t.Fatalf("breaker state %v after sustained outage, want open", br.State())
	}
	hits := fs.Hits()
	_, err := c.Current()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker fetch returned %v, want ErrBreakerOpen", err)
	}
	if fs.Hits() != hits {
		t.Error("open breaker still sent a request")
	}

	// The server recovers; after the probe interval one good fetch closes
	// the breaker.
	fs.Clear()
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Current(); err != nil {
		t.Fatalf("probe fetch failed: %v", err)
	}
	if br.State() != resilience.StateClosed {
		t.Errorf("breaker state %v after recovery, want closed", br.State())
	}
}

// TestScenarioBudgetExhaustion bounds a whole fetch: a scripted stall
// sequence cannot hold the caller past the policy budget.
func TestScenarioBudgetExhaustion(t *testing.T) {
	p := fastPolicy(100, nil)
	p.AttemptTimeout = 30 * time.Millisecond
	p.Budget = 100 * time.Millisecond
	c, fs := faultClient(t, p)
	fs.Program(faultserver.Step{Delay: time.Hour, Sticky: true})
	start := time.Now()
	_, err := c.Current()
	if !errors.Is(err, resilience.ErrBudgetExhausted) && !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("error %v, want budget or retries exhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("fetch pinned for %v despite the 100ms budget", elapsed)
	}
}

// TestScenarioPermanent4xx checks a client-side mistake is not retried.
func TestScenarioPermanent4xx(t *testing.T) {
	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 1, ProbeInterval: time.Minute})
	c, fs := faultClient(t, fastPolicy(5, br))
	fs.Program(faultserver.Step{Status: http.StatusNotFound, Body: `{"error":"no such route"}`})
	_, err := c.Current()
	if err == nil {
		t.Fatal("404 should fail")
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("404 was retried: %v", err)
	}
	if fs.Hits() != 1 {
		t.Errorf("hits = %d, want 1 (no retries on 4xx)", fs.Hits())
	}
	if br.State() != resilience.StateClosed {
		t.Errorf("4xx tripped the breaker (threshold 1): state %v", br.State())
	}
}

// TestWithResilienceMetrics checks the WithResilience wiring: retries land
// in fairco2_signal_retry_total and breaker transitions in
// fairco2_signal_breaker_state.
func TestWithResilienceMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	inst := NewClientInstruments(reg)
	cfg := resilience.DefaultConfig()
	cfg.MaxAttempts = 2
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffCap = 2 * time.Millisecond
	cfg.AttemptTimeout = time.Second
	cfg.Budget = 0
	cfg.BreakerFailures = 2
	cfg.ProbeInterval = time.Minute

	fs := faultserver.New(testServer(t).Handler())
	t.Cleanup(fs.Close)
	c := (&Client{BaseURL: fs.URL()}).WithResilience(cfg, 1, inst)

	fs.Program(faultserver.Outage(http.StatusServiceUnavailable))
	if _, err := c.Current(); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("outage fetch: %v", err)
	}
	if got := inst.Retries.Value(); got != 1 {
		t.Errorf("fairco2_signal_retry_total = %v, want 1", got)
	}
	if got := inst.BreakerState.Value(); got != float64(resilience.StateOpen) {
		t.Errorf("fairco2_signal_breaker_state = %v, want %v (open)", got, float64(resilience.StateOpen))
	}
	if _, err := c.Current(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second fetch: %v, want ErrBreakerOpen", err)
	}
}

// TestPolicyContextPlumbing checks the per-attempt context reaches the
// HTTP request (cancellation actually cancels the wire call).
func TestPolicyContextPlumbing(t *testing.T) {
	p := fastPolicy(1, nil)
	p.AttemptTimeout = 50 * time.Millisecond
	c, fs := faultClient(t, p)
	fs.Program(faultserver.Step{Delay: time.Hour, Sticky: true})
	start := time.Now()
	_, err := c.Current()
	if err == nil {
		t.Fatal("stalled fetch succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("error %v (deadline plumbing may surface as a url.Error timeout; accepted)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("attempt context not plumbed: fetch took %v", elapsed)
	}
}
