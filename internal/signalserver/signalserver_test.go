package signalserver

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fairco2/internal/metrics"
	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

func testHistory(t *testing.T, days int) *timeseries.Series {
	t.Helper()
	cfg := trace.DefaultAzureLikeConfig()
	cfg.Days = days
	full, err := trace.GenerateAzureLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(testHistory(t, 14), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return resp.StatusCode
}

func TestHealthEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var h healthResponse
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.Status != "ok" || h.Refits != 1 {
		t.Errorf("health %+v", h)
	}
	if h.HistorySamples != 14*288 || h.HorizonSamples != 2*288 {
		t.Errorf("sample counts %+v", h)
	}
	if h.StepSeconds != 300 {
		t.Errorf("step %v", h.StepSeconds)
	}
}

func TestCurrentEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var p pointResponse
	if code := getJSON(t, ts, "/v1/intensity/current", &p); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if p.Intensity <= 0 {
		t.Errorf("intensity %v", p.Intensity)
	}
	// "now" is the last history sample.
	wantTime := float64(14*288-1) * 300
	if math.Abs(p.TimeSeconds-wantTime) > 1e-9 {
		t.Errorf("time %v, want %v", p.TimeSeconds, wantTime)
	}
}

func TestWindowEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var s seriesResponse
	if code := getJSON(t, ts, "/v1/intensity/window?hours=6", &s); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(s.Intensity) != 6*12 {
		t.Errorf("6 h of 5-minute samples should be 72, got %d", len(s.Intensity))
	}
	// Window starts at the forecast boundary.
	if s.StartSeconds != float64(14*288)*300 {
		t.Errorf("window start %v", s.StartSeconds)
	}
	for _, v := range s.Intensity {
		if v <= 0 {
			t.Fatal("non-positive intensity in window")
		}
	}
	// Requesting beyond the horizon clamps.
	if code := getJSON(t, ts, "/v1/intensity/window?hours=9999", &s); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(s.Intensity) != 2*288 {
		t.Errorf("clamped window should be the full horizon, got %d", len(s.Intensity))
	}
}

func TestWindowEndpointBadRequest(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	for _, q := range []string{"", "?hours=0", "?hours=-3", "?hours=abc"} {
		resp, err := http.Get(ts.URL + "/v1/intensity/window" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestSeriesEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var s seriesResponse
	if code := getJSON(t, ts, "/v1/intensity/series", &s); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(s.Intensity) != 16*288 {
		t.Errorf("series should cover history+horizon, got %d samples", len(s.Intensity))
	}
}

func TestRefreshSwapsSignal(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var before pointResponse
	getJSON(t, ts, "/v1/intensity/current", &before)

	if err := srv.Refresh(testHistory(t, 21)); err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	getJSON(t, ts, "/healthz", &h)
	if h.Refits != 2 || h.HistorySamples != 21*288 {
		t.Errorf("after refresh: %+v", h)
	}
	var after pointResponse
	getJSON(t, ts, "/v1/intensity/current", &after)
	if after.TimeSeconds <= before.TimeSeconds {
		t.Error("refresh with longer history should advance 'now'")
	}
}

func TestRefreshConcurrentWithReads(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(ts.URL + "/v1/intensity/current")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 3; j++ {
			if err := srv.Refresh(testHistory(t, 14)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	// Generate some traffic so the request counters have data.
	for _, path := range []string{"/healthz", "/v1/intensity/current", "/v1/intensity/window?hours=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if _, err := metrics.LintText(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics is not valid text format: %v", err)
	}
	for _, want := range []string{
		`fairco2_signalserver_requests_total{endpoint="/healthz",code="200"}`,
		`fairco2_signalserver_request_seconds_count{endpoint="/v1/intensity/current"}`,
		"fairco2_signalserver_refits_total",
		"fairco2_signalserver_current_intensity_g_per_core_second",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	hist := testHistory(t, 14)
	cases := []Config{
		{HorizonSamples: 0, Budget: 1, MaxFanout: 16},
		{HorizonSamples: 1, Budget: 0, MaxFanout: 16},
		{HorizonSamples: 1, Budget: 1, MaxFanout: 1},
	}
	for i, cfg := range cases {
		cfg.Forecast = DefaultConfig().Forecast
		if _, err := New(hist, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil history")
	}
	short := timeseries.New(0, 300, make([]float64, 5))
	if _, err := New(short, DefaultConfig()); err == nil {
		t.Error("history too short to fit")
	}
	_ = units.Seconds(0)
}
