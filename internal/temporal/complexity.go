package temporal

// The paper compares three computational regimes (§5.1): the ground-truth
// Shapley value over N workloads, O(2^N); Temporal Shapley with the subset
// formulation, Eq. (6); and Temporal Shapley with the sorted closed form,
// polynomial in the split ratios. These estimators reproduce the paper's
// operation counts, including the 10,378,240-calculation figure for split
// ratios {10, 9, 8, 12} with the subset formulation.

// NaiveOps returns the operation count of hierarchical Temporal Shapley
// using the 2^M subset formulation (Eq. 6 without the O(N) workload term):
//
//	sum_i ( 2^{M_i} * prod_{j<=i} M_j )
func NaiveOps(splits []int) float64 {
	total := 0.0
	prod := 1.0
	for _, m := range splits {
		prod *= float64(m)
		total += pow2(m) * prod
	}
	return total
}

// ClosedFormOps returns the operation count of hierarchical Temporal
// Shapley with the sorted closed form:
//
//	sum_i ( M_i^2 * prod_{j<=i} M_j )
//
// (the paper's polynomial bound; the M_i^2 term is the sort-and-scan upper
// bound for one level).
func ClosedFormOps(splits []int) float64 {
	total := 0.0
	prod := 1.0
	for _, m := range splits {
		prod *= float64(m)
		total += float64(m) * float64(m) * prod
	}
	return total
}

// GroundTruthOps returns the coalition count 2^N of the exact ground-truth
// Shapley value over N workloads, as a float64 because the paper's
// motivating example (2 million VMs in the Azure 2017 trace) overflows any
// integer type.
func GroundTruthOps(nWorkloads int) float64 { return pow2(nWorkloads) }

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}
