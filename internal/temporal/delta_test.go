package temporal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/timeseries"
)

// Integer-valued demand keeps sums and peaks exact under intraperiod
// permutations, which is what makes "reshape one period, re-attribute one
// period" reachable: the period's resource-time and peak keep their exact
// bits, so every other share is bitwise-unchanged and skips.
func randomIntDemand(rng *rand.Rand, n int) *timeseries.Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(rng.Intn(8))
	}
	values[rng.Intn(n)] += 1
	return timeseries.New(0, 300, values)
}

func requireSeriesBits(t *testing.T, ctx string, got, want *timeseries.Series) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d != %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
			t.Fatalf("%s: sample %d: %v (%016x) != %v (%016x)", ctx, i,
				got.Values[i], math.Float64bits(got.Values[i]),
				want.Values[i], math.Float64bits(want.Values[i]))
		}
	}
}

// TestSignalDeltaDifferential drives SignalDelta through chained random
// updates — single-bin edits, multi-bin edits, intraperiod reshapes and
// reverts — and after every update demands the live signal be
// Float64bits-identical to a fresh IntensitySignal of the current demand.
func TestSignalDeltaDifferential(t *testing.T) {
	schedules := [][]int{{6, 2, 2}, {4, 5}, {8}, {3, 2, 2, 2}}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		splits := schedules[rng.Intn(len(schedules))]
		n := 1
		for _, m := range splits {
			n *= m
		}
		demand := randomIntDemand(rng, n)
		orig := demand.Clone()
		cfg := Config{SplitRatios: splits}
		const budget = 1e6

		d, err := IntensitySignalDelta(demand, budget, cfg)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		fresh, err := IntensitySignal(demand, budget, cfg)
		if err != nil {
			t.Fatalf("seed %d: fresh: %v", seed, err)
		}
		requireSeriesBits(t, "initial build", d.Intensity(), fresh)

		for step := 0; step < 5; step++ {
			next := d.Demand().Clone()
			switch step % 4 {
			case 0: // single-bin edit
				next.Values[rng.Intn(n)] = float64(rng.Intn(8))
			case 1: // multi-bin edit
				for j := 0; j <= rng.Intn(4); j++ {
					next.Values[rng.Intn(n)] = float64(rng.Intn(8))
				}
			case 2: // intraperiod reshape: permute one period's bins
				width := n / splits[0]
				lo := rng.Intn(splits[0]) * width
				rng.Shuffle(width, func(i, j int) {
					next.Values[lo+i], next.Values[lo+j] = next.Values[lo+j], next.Values[lo+i]
				})
			default: // revert to the original series
				copy(next.Values, orig.Values)
			}
			if integral(next) == 0 {
				next.Values[0] = 1
			}

			stats, err := d.Update(next)
			if err != nil {
				t.Fatalf("seed %d step %d: update: %v", seed, step, err)
			}
			if got := stats.PeriodsRecomputed + stats.PeriodsSkipped; got != d.Periods() {
				t.Fatalf("seed %d step %d: recomputed %d + skipped %d != periods %d",
					seed, step, stats.PeriodsRecomputed, stats.PeriodsSkipped, d.Periods())
			}
			fresh, err := IntensitySignal(next, budget, cfg)
			if err != nil {
				t.Fatalf("seed %d step %d: fresh: %v", seed, step, err)
			}
			requireSeriesBits(t, "delta vs fresh", d.Intensity(), fresh)
			requireSeriesBits(t, "owned demand", d.Demand(), next)
		}
	}
}

func integral(s *timeseries.Series) float64 {
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	return total
}

// TestSignalDeltaReshapeRecomputesOnePeriod pins the headline saving: a
// volume- and peak-preserving reshape inside one period re-attributes that
// period alone.
func TestSignalDeltaReshapeRecomputesOnePeriod(t *testing.T) {
	demand := timeseries.New(0, 300, []float64{
		1, 4, 2, 0, // period 0
		3, 3, 5, 1, // period 1
		0, 2, 2, 6, // period 2
	})
	d, err := IntensitySignalDelta(demand, 1e6, Config{SplitRatios: []int{3, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	next := demand.Clone()
	next.Values[4], next.Values[5], next.Values[6], next.Values[7] = 5, 1, 3, 3
	stats, err := d.Update(next)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeriodsRecomputed != 1 || stats.PeriodsSkipped != 2 {
		t.Errorf("reshape stats %+v, want 1 recomputed / 2 skipped", stats)
	}
	fresh, err := IntensitySignal(next, 1e6, Config{SplitRatios: []int{3, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	requireSeriesBits(t, "reshape", d.Intensity(), fresh)

	// A no-op update skips everything.
	stats, err = d.Update(next.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeriodsRecomputed != 0 || stats.PeriodsSkipped != 3 {
		t.Errorf("no-op stats %+v, want 0 recomputed / 3 skipped", stats)
	}
}

// TestSignalDeltaRevert pins the what-if workflow: apply a change, revert
// it, and the signal, demand and fingerprints are bitwise back.
func TestSignalDeltaRevert(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	demand := randomIntDemand(rng, 24)
	cfg := Config{SplitRatios: []int{4, 3, 2}}
	d, err := IntensitySignalDelta(demand, 5e5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Intensity().Clone()
	fps := append([]uint32(nil), d.PeriodFingerprints()...)

	next := demand.Clone()
	next.Values[7] += 3
	next.Values[20] = 0
	if _, err := d.Update(next); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Update(demand); err != nil {
		t.Fatal(err)
	}
	requireSeriesBits(t, "reverted intensity", d.Intensity(), before)
	requireSeriesBits(t, "reverted demand", d.Demand(), demand)
	for k, fp := range d.PeriodFingerprints() {
		if fp != fps[k] {
			t.Errorf("period %d fingerprint %08x != original %08x", k, fp, fps[k])
		}
	}
}

// TestSignalDeltaNaiveSubset cross-checks the delta engine under the
// exponential backend, which must agree with the closed form everywhere.
func TestSignalDeltaNaiveSubset(t *testing.T) {
	demand := timeseries.New(0, 60, []float64{2, 1, 0, 3, 1, 1})
	cfg := Config{SplitRatios: []int{3, 2}, Backend: NaiveSubset}
	d, err := IntensitySignalDelta(demand, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := demand.Clone()
	next.Values[0] = 5
	if _, err := d.Update(next); err != nil {
		t.Fatal(err)
	}
	fresh, err := IntensitySignal(next, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSeriesBits(t, "naive backend", d.Intensity(), fresh)
}

// TestSignalDeltaFlat covers the degenerate no-split schedule: one sample,
// one period, everything attributed to it.
func TestSignalDeltaFlat(t *testing.T) {
	demand := timeseries.New(0, 300, []float64{4})
	d, err := IntensitySignalDelta(demand, 1200, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Intensity().Values[0], 1200.0/(4*300); got != want {
		t.Fatalf("flat intensity %v, want %v", got, want)
	}
	next := timeseries.New(0, 300, []float64{2})
	stats, err := d.Update(next)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeriodsRecomputed != 1 {
		t.Errorf("flat update stats %+v", stats)
	}
	if got, want := d.Intensity().Values[0], 1200.0/(2*300); got != want {
		t.Fatalf("updated flat intensity %v, want %v", got, want)
	}
}

// TestSignalDeltaErrors pins validation failures and that every one of
// them leaves the wrapped state untouched.
func TestSignalDeltaErrors(t *testing.T) {
	demand := timeseries.New(0, 300, []float64{1, 2, 3, 4})
	cfg := Config{SplitRatios: []int{2, 2}}
	if _, err := IntensitySignalDelta(nil, 100, cfg); err == nil {
		t.Error("nil demand accepted")
	}
	if _, err := IntensitySignalDelta(demand, -1, cfg); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := IntensitySignalDelta(demand, 100, Config{SplitRatios: []int{3}}); err == nil {
		t.Error("mismatched split product accepted")
	}

	d, err := IntensitySignalDelta(demand, 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Intensity().Clone()
	beforeDemand := d.Demand().Clone()

	cases := []struct {
		name string
		next *timeseries.Series
		want error
	}{
		{"nil series", nil, ErrMisaligned},
		{"wrong length", timeseries.New(0, 300, []float64{1, 2}), ErrMisaligned},
		{"wrong start", timeseries.New(7, 300, []float64{1, 2, 3, 4}), ErrMisaligned},
		{"wrong step", timeseries.New(0, 60, []float64{1, 2, 3, 4}), ErrMisaligned},
		{"negative demand", timeseries.New(0, 300, []float64{1, -2, 3, 4}), nil},
		{"zero demand", timeseries.New(0, 300, []float64{0, 0, 0, 0}), nil},
	}
	for _, tc := range cases {
		_, err := d.Update(tc.next)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		requireSeriesBits(t, tc.name+" intensity preserved", d.Intensity(), before)
		requireSeriesBits(t, tc.name+" demand preserved", d.Demand(), beforeDemand)
	}
}

// TestSignalDeltaUpdateDoesNotAllocate is the temporal half of the
// zero-alloc pins, mirroring internal/stream's AllocsPerRun pattern behind
// the race_on/race_off build tags: steady-state updates run entirely
// through the preallocated arena and fingerprint buffer.
func TestSignalDeltaUpdateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the pin")
	}
	rng := rand.New(rand.NewSource(17))
	demand := randomIntDemand(rng, 96)
	cfg := Config{SplitRatios: []int{4, 4, 3, 2}}
	d, err := IntensitySignalDelta(demand, 1e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := demand.Clone()
	b := demand.Clone()
	b.Values[10], b.Values[13] = b.Values[13], b.Values[10] // reshape period 0
	b.Values[50] += 2                                       // and change period 2
	seriesPair := [2]*timeseries.Series{a, b}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		i++
		if _, err := d.Update(seriesPair[i%2]); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Update allocates %v times per run, want 0", avg)
	}
}

// TestIntensitySignalDeltaMatchesUnits double-checks the delta constructor
// against the package-level conservation property.
func TestIntensitySignalDeltaMatchesUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	demand := randomIntDemand(rng, 60)
	d, err := IntensitySignalDelta(demand, 1e6, Config{SplitRatios: []int{5, 4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AttributeUsage(d.Intensity(), demand)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 1e6, 1e-3, "delta budget conservation")
}
