package temporal

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fairco2/internal/checkpoint"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func TestCheckpointedSignalMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	demand := randomDemand(rng, 120)
	cfg := Config{SplitRatios: []int{6, 5, 4}, Parallelism: 2}
	plain, err := IntensitySignal(demand, 1e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 2}
	checked, err := IntensitySignalCheckpointed(context.Background(), demand, 1e6, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(checked.Values, plain.Values) {
		t.Fatal("checkpointed signal differs from plain signal")
	}
	// Rerunning against the completed snapshot recomputes nothing and must
	// reproduce the identical signal again.
	again, err := IntensitySignalCheckpointed(context.Background(), demand, 1e6, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Values, plain.Values) {
		t.Fatal("fully-resumed signal differs from plain signal")
	}
}

func TestCheckpointedSignalResumesAfterInterrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	demand := randomDemand(rng, 90)
	cfg := Config{SplitRatios: []int{9, 5, 2}, Parallelism: 2}
	plain, err := IntensitySignal(demand, 5e5, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt the first attempt immediately: the already-cancelled context
	// stops the sweep after at most the in-flight periods, which are flushed
	// to the snapshot.
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IntensitySignalCheckpointed(ctx, demand, 5e5, cfg, ck); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled signal: %v", err)
	}

	checked, err := IntensitySignalCheckpointed(context.Background(), demand, 5e5, cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(checked.Values, plain.Values) {
		t.Fatal("resumed signal differs from uninterrupted signal")
	}
}

func TestCheckpointedSignalRejectsDifferentDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	demand := randomDemand(rng, 60)
	cfg := Config{SplitRatios: []int{6, 5, 2}}
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 1}
	if _, err := IntensitySignalCheckpointed(context.Background(), demand, 1e6, cfg, ck); err != nil {
		t.Fatal(err)
	}
	other := timeseries.New(demand.Start, demand.Step, append([]float64(nil), demand.Values...))
	other.Values[7] += 1 // one sample differs -> different CRC -> different experiment
	if _, err := IntensitySignalCheckpointed(context.Background(), other, 1e6, cfg, ck); !errors.Is(err, checkpoint.ErrStateMismatch) {
		t.Fatalf("resume against modified demand: %v, want ErrStateMismatch", err)
	}
}

func TestCheckpointedSignalDisabledSpecFallsBack(t *testing.T) {
	demand := timeseries.New(0, 1, []float64{1, 3})
	plain, err := IntensitySignal(demand, 100, Config{SplitRatios: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := IntensitySignalCheckpointed(context.Background(), demand, 100, Config{SplitRatios: []int{2}}, checkpoint.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, plain.Values) {
		t.Fatal("disabled spec fallback differs")
	}
	// Invalid input still validates with a checkpoint spec enabled.
	if _, err := IntensitySignalCheckpointed(context.Background(), demand, units.GramsCO2e(-1), Config{SplitRatios: []int{2}}, checkpoint.Spec{Dir: t.TempDir()}); err == nil {
		t.Fatal("negative budget accepted")
	}
	// Zero budget and no splits take the cheap single-pass path.
	if _, err := IntensitySignalCheckpointed(context.Background(), demand, 0, Config{SplitRatios: []int{2}}, checkpoint.Spec{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	single := timeseries.New(0, 1, []float64{2})
	if _, err := IntensitySignalCheckpointed(context.Background(), single, 100, Config{}, checkpoint.Spec{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}
