package temporal

import (
	"errors"
	"fmt"
	"math"

	"fairco2/internal/checkpoint"
	"fairco2/internal/shapley"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Incremental delta re-attribution for the Temporal Shapley signal. A
// SignalDelta owns a built intensity signal plus, per top-level period, a
// CRC-32 fingerprint of the period's demand bins (the same
// checkpoint.Float64sCRC family the Shapley delta engine and the
// attribution cache key use) and the period's attributed carbon share.
// Update re-evaluates only the periods whose attribution can actually have
// moved.
//
// The coupling is subtler than it looks: every top-level share is
//
//	share_k = phi_k * q_k / sum_j(phi_j * q_j) * budget
//
// so a change inside ONE period moves the shared denominator and thereby
// every other period's share — a single-bin edit generally forces full
// re-attribution, and no delta engine can avoid that without changing the
// result. What a delta CAN skip, bit-for-bit safely, is any period whose
// demand bins are bitwise-unchanged AND whose recomputed share is
// bitwise-equal to its previous share: the sub-attribution below a period
// is a pure function of exactly those two inputs. That condition holds for
// the updates the attribution service actually replays — volume- and
// peak-preserving intraperiod reshapes (integer-valued demand), and reverts
// of a previous what-if — which re-attribute one period instead of all of
// them. Fingerprints are a fast reject only; equality is always confirmed
// by comparing the raw Float64 bits, so a CRC collision cannot corrupt the
// signal.
//
// A SignalDelta is not safe for concurrent use. Steady-state updates
// perform no heap allocation (the race_off AllocsPerRun test pins this):
// the recursion runs through a preallocated per-level arena and the
// fingerprints through a preallocated encode buffer.

// ErrMisaligned reports an update series that does not share the built
// signal's start, step and length.
var ErrMisaligned = errors.New("temporal: update series misaligned with the built signal")

// DeltaStats reports what one delta update did.
type DeltaStats struct {
	// PeriodsRecomputed counts top-level periods re-attributed;
	// PeriodsSkipped counts those proven bitwise-unchanged. They sum to
	// the schedule's top-level period count.
	PeriodsRecomputed int
	PeriodsSkipped    int
}

// SignalDelta is a Temporal Shapley intensity signal that supports
// O(changed-periods) re-attribution as the demand series evolves.
type SignalDelta struct {
	demand    *timeseries.Series // owned copy of the current demand
	intensity *timeseries.Series // owned, live result
	budget    float64
	cfg       Config
	arena     *attrArena

	m     int // top-level period count
	width int // samples per top-level period

	crcs   []uint32  // per-period demand fingerprints
	shares []float64 // per-period attributed carbon

	// Preallocated update scratch.
	newCRCs   []uint32
	newShares []float64
	changed   []bool
	crcBuf    []byte
}

// IntensitySignalDelta builds the intensity signal for the demand series
// (exactly IntensitySignal's result, bit for bit) and wraps it for delta
// re-attribution. The demand values are copied; the caller's series is not
// retained.
func IntensitySignalDelta(demand *timeseries.Series, budget units.GramsCO2e, cfg Config) (*SignalDelta, error) {
	if err := validateSignal(demand, budget, cfg); err != nil {
		return nil, err
	}
	m, width := 1, demand.Len()
	if len(cfg.SplitRatios) > 0 {
		m = cfg.SplitRatios[0]
		width = demand.Len() / m
	}
	d := &SignalDelta{
		demand:    demand.Clone(),
		intensity: timeseries.Zeros(demand.Start, demand.Step, demand.Len()),
		budget:    float64(budget),
		cfg:       cfg,
		arena:     newAttrArena(cfg.SplitRatios),
		m:         m,
		width:     width,
		crcs:      make([]uint32, m),
		shares:    make([]float64, m),
		newCRCs:   make([]uint32, m),
		newShares: make([]float64, m),
		changed:   make([]bool, m),
		crcBuf:    make([]byte, min(width, 8192)*8),
	}
	// The build runs the identical serial recursion IntensitySignal would,
	// so the wrapped signal starts bitwise-equal to a fresh one.
	a := attributor{demand: d.demand, backend: cfg.Backend, workers: 1, arena: d.arena}
	if err := a.attribute(0, d.demand.Len(), d.budget, cfg.SplitRatios, d.intensity.Values); err != nil {
		return nil, err
	}
	if err := d.topShares(d.demand.Values, d.shares); err != nil {
		return nil, err
	}
	for k := 0; k < m; k++ {
		d.crcs[k] = checkpoint.Float64sCRCUpdateBuf(0, d.demand.Values[k*width:(k+1)*width], d.crcBuf)
	}
	return d, nil
}

// Intensity returns the live intensity signal. Callers must treat it as
// read-only; updates mutate it in place.
func (d *SignalDelta) Intensity() *timeseries.Series { return d.intensity }

// Demand returns the owned demand series the signal currently reflects.
// Callers must treat it as read-only.
func (d *SignalDelta) Demand() *timeseries.Series { return d.demand }

// Periods returns the top-level period count.
func (d *SignalDelta) Periods() int { return d.m }

// PeriodFingerprints returns the live per-period demand CRCs. Callers must
// treat the slice as read-only.
func (d *SignalDelta) PeriodFingerprints() []uint32 { return d.crcs }

// topShares evaluates the top-level attribution over the given demand
// values into shares: exactly the arithmetic the recursion's first level
// performs, in the same order, so a share that comes out bitwise-equal
// proves the period's sub-attribution input did not move.
func (d *SignalDelta) topShares(values []float64, shares []float64) error {
	if len(d.cfg.SplitRatios) == 0 {
		shares[0] = d.budget
		return nil
	}
	peaks, qs := d.arena.peaks[0], d.arena.qs[0]
	step := float64(d.demand.Step)
	for k := 0; k < d.m; k++ {
		clo := k * d.width
		peak, q := 0.0, 0.0
		for i := clo; i < clo+d.width; i++ {
			v := values[i]
			if v > peak {
				peak = v
			}
			q += v
		}
		peaks[k] = peak
		qs[k] = q * step
	}
	var phi []float64
	var err error
	if d.cfg.Backend == NaiveSubset {
		phi, err = shapley.PeakGameNaive(peaks)
	} else {
		phi = d.arena.phi[0]
		err = shapley.PeakGameInto(peaks, phi, d.arena.idx[0])
	}
	if err != nil {
		return fmt.Errorf("temporal: level with %d periods: %w", d.m, err)
	}
	denom := 0.0
	for k := range phi {
		denom += phi[k] * qs[k]
	}
	if denom == 0 {
		return fmt.Errorf("temporal: internal error, zero attribution denominator over %d periods", d.m)
	}
	for k := 0; k < d.m; k++ {
		shares[k] = phi[k] * qs[k] / denom * d.budget
	}
	return nil
}

// Update transitions the signal to the new demand series, re-attributing
// only the top-level periods whose demand bins or carbon share moved at
// the bit level; afterwards Intensity() is Float64bits-identical to a
// fresh IntensitySignal of the new demand. The new series must align with
// the built one (same start, step and length) and satisfy the same
// validation IntensitySignal applies; on any validation error the wrapped
// state is left untouched.
func (d *SignalDelta) Update(newDemand *timeseries.Series) (DeltaStats, error) {
	if newDemand == nil {
		return DeltaStats{}, ErrMisaligned
	}
	if newDemand.Start != d.demand.Start || newDemand.Step != d.demand.Step || newDemand.Len() != d.demand.Len() {
		return DeltaStats{}, ErrMisaligned
	}
	if err := validateSignal(newDemand, units.GramsCO2e(d.budget), d.cfg); err != nil {
		return DeltaStats{}, err
	}

	// Detect per-period demand changes: CRC fast-reject, then a raw bit
	// comparison when the CRCs agree, so a collision cannot cause a skip.
	for k := 0; k < d.m; k++ {
		lo, hi := k*d.width, (k+1)*d.width
		nc := checkpoint.Float64sCRCUpdateBuf(0, newDemand.Values[lo:hi], d.crcBuf)
		d.newCRCs[k] = nc
		if nc != d.crcs[k] {
			d.changed[k] = true
			continue
		}
		d.changed[k] = false
		for i := lo; i < hi; i++ {
			if math.Float64bits(newDemand.Values[i]) != math.Float64bits(d.demand.Values[i]) {
				d.changed[k] = true
				break
			}
		}
	}
	if err := d.topShares(newDemand.Values, d.newShares); err != nil {
		// Validation passed, so the top level cannot fail; poisoning the
		// state here would otherwise be unrecoverable.
		return DeltaStats{}, err
	}

	var stats DeltaStats
	a := attributor{demand: d.demand, backend: d.cfg.Backend, workers: 1, arena: d.arena}
	var splits []int
	if len(d.cfg.SplitRatios) > 0 {
		splits = d.cfg.SplitRatios[1:]
	}
	for k := 0; k < d.m; k++ {
		if !d.changed[k] && math.Float64bits(d.newShares[k]) == math.Float64bits(d.shares[k]) {
			stats.PeriodsSkipped++
			continue
		}
		stats.PeriodsRecomputed++
		lo, hi := k*d.width, (k+1)*d.width
		copy(d.demand.Values[lo:hi], newDemand.Values[lo:hi])
		// Clear before re-attributing: the recursion only writes where it
		// assigns positive budget, and zero-share ranges must read zero.
		iv := d.intensity.Values
		for i := lo; i < hi; i++ {
			iv[i] = 0
		}
		if err := a.attribute(lo, hi, d.newShares[k], splits, iv); err != nil {
			return stats, err
		}
		d.crcs[k] = d.newCRCs[k]
		d.shares[k] = d.newShares[k]
	}
	return stats, nil
}
