package temporal

import (
	"math/rand"
	"testing"

	"fairco2/internal/units"
)

// TestIntensitySignalParallelDifferential pins the determinism contract of
// the Parallelism knob: top-level periods are independent sub-problems
// writing disjoint output ranges, so the signal must be bit-for-bit
// identical for every worker count, including the GOMAXPROCS default.
func TestIntensitySignalParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		splits := [][]int{
			{10, 9, 8},
			{12, 6},
			{72},
			{2, 4, 9},
		}[trial%4]
		n := 1
		for _, m := range splits {
			n *= m
		}
		demand := randomDemand(rng, n)
		budget := units.GramsCO2e(1e5 + rng.Float64()*1e6)
		serial, err := IntensitySignal(demand, budget, Config{SplitRatios: splits, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 7, 64} {
			par, err := IntensitySignal(demand, budget, Config{SplitRatios: splits, Parallelism: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range serial.Values {
				if par.Values[i] != serial.Values[i] {
					t.Fatalf("trial %d workers %d sample %d: parallel %v != serial %v",
						trial, workers, i, par.Values[i], serial.Values[i])
				}
			}
		}
	}
}

// TestIntensitySignalParallelSparseDemand exercises the zero-share early
// return under concurrency: whole top-level periods with zero demand must
// keep zero intensity for any worker count.
func TestIntensitySignalParallelSparseDemand(t *testing.T) {
	values := make([]float64, 24)
	// Only the second of four top-level periods carries demand.
	for i := 6; i < 12; i++ {
		values[i] = float64(1 + i%3)
	}
	demand := randomDemand(rand.New(rand.NewSource(1)), 24)
	copy(demand.Values, values)
	serial, err := IntensitySignal(demand, 500, Config{SplitRatios: []int{4, 6}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := IntensitySignal(demand, 500, Config{SplitRatios: []int{4, 6}, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Values {
		if par.Values[i] != serial.Values[i] {
			t.Fatalf("sample %d: parallel %v != serial %v", i, par.Values[i], serial.Values[i])
		}
		if (i < 6 || i >= 12) && par.Values[i] != 0 {
			t.Fatalf("zero-demand sample %d received intensity %v", i, par.Values[i])
		}
	}
}
