package temporal

import (
	"fmt"
	"sort"
)

// AutoSplits factorizes a sample count into a hierarchical split schedule
// with every level's fan-out at most maxFanout (coarse levels first, as
// the paper's 10*9*8*12 example). It greedily peels the largest usable
// divisors. A prime (or stubborn) residue above maxFanout ends up as a
// single oversized level — still correct, just costlier; callers that
// need strict bounds should pick their window lengths accordingly.
func AutoSplits(samples, maxFanout int) ([]int, error) {
	if samples < 1 {
		return nil, fmt.Errorf("temporal: sample count must be positive, got %d", samples)
	}
	if maxFanout < 2 {
		return nil, fmt.Errorf("temporal: max fan-out must be at least 2, got %d", maxFanout)
	}
	if samples == 1 {
		return []int{1}, nil
	}
	var splits []int
	rest := samples
	for rest > 1 {
		d := largestDivisorAtMost(rest, maxFanout)
		if d == 1 {
			// Prime residue above maxFanout: take it whole.
			splits = append(splits, rest)
			rest = 1
			break
		}
		splits = append(splits, d)
		rest /= d
	}
	// Coarsest-first ordering: descending fan-out reads like the paper's
	// 30d -> 3d -> 8h -> 1h -> 5min cascade.
	sort.Sort(sort.Reverse(sort.IntSlice(splits)))
	return splits, nil
}

func largestDivisorAtMost(n, bound int) int {
	best := 1
	for d := 2; d <= bound; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best
}
