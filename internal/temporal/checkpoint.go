package temporal

import (
	"context"
	"encoding/json"
	"fmt"

	"fairco2/internal/checkpoint"
	"fairco2/internal/shapley"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Checkpointed Temporal Shapley. The hierarchical attribution spends almost
// all of its time below the first level: once the top-level Shapley shares
// are fixed (an O(M log M) computation over M chunk peaks), each top-level
// period is an independent sub-problem writing a disjoint range of the
// intensity signal. A snapshot therefore records the completed top-level
// periods and their intensity ranges; a resumed run recomputes only the
// missing periods with the identical share, so the final signal is
// bitwise-identical to an uninterrupted run.

// periodState is the serialized progress of a signal computation.
type periodState struct {
	ConfigKey string      `json:"config_key"`
	Periods   int         `json:"periods"`
	Width     int         `json:"width"`
	Done      []int       `json:"done"`
	Values    [][]float64 `json:"values"`
}

// periodSweep is the live progress, implementing checkpoint.Resumable.
type periodSweep struct {
	configKey string
	width     int
	done      []bool
	intensity []float64
}

// Snapshot implements checkpoint.Resumable.
func (p *periodSweep) Snapshot() ([]byte, error) {
	st := periodState{ConfigKey: p.configKey, Periods: len(p.done), Width: p.width}
	for k, d := range p.done {
		if d {
			st.Done = append(st.Done, k)
			st.Values = append(st.Values, p.intensity[k*p.width:(k+1)*p.width])
		}
	}
	return json.Marshal(st)
}

// Restore implements checkpoint.Resumable.
func (p *periodSweep) Restore(payload []byte) error {
	var st periodState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: undecodable temporal state: %v", checkpoint.ErrCorruptCheckpoint, err)
	}
	if st.ConfigKey != p.configKey {
		return fmt.Errorf("%w: snapshot config %s, run config %s", checkpoint.ErrStateMismatch, st.ConfigKey, p.configKey)
	}
	if st.Periods != len(p.done) || st.Width != p.width || len(st.Done) != len(st.Values) {
		return fmt.Errorf("%w: inconsistent temporal state", checkpoint.ErrCorruptCheckpoint)
	}
	for i, k := range st.Done {
		if k < 0 || k >= len(p.done) || len(st.Values[i]) != p.width {
			return fmt.Errorf("%w: period %d out of shape", checkpoint.ErrCorruptCheckpoint, k)
		}
		p.done[k] = true
		copy(p.intensity[k*p.width:(k+1)*p.width], st.Values[i])
	}
	return nil
}

// signalConfigKey fingerprints everything the intensity signal depends on:
// the demand series (shape and a CRC over its sample bits), the budget, the
// split schedule and the backend. Parallelism is excluded — the signal is
// identical for any worker count.
func signalConfigKey(demand *timeseries.Series, budget units.GramsCO2e, cfg Config) string {
	return fmt.Sprintf("temporal/n=%d,start=%g,step=%g,crc=%08x,budget=%b,splits=%v,backend=%s",
		demand.Len(), float64(demand.Start), float64(demand.Step), checkpoint.Float64sCRC(demand.Values),
		float64(budget), cfg.SplitRatios, cfg.Backend)
}

// IntensitySignalCheckpointed is IntensitySignal with context cancellation
// and crash-safe checkpoint/resume over the top-level periods. With a
// disabled spec it falls back to the plain computation. The returned signal
// is bitwise-identical to IntensitySignal's for any interruption pattern.
func IntensitySignalCheckpointed(ctx context.Context, demand *timeseries.Series, budget units.GramsCO2e, cfg Config, ck checkpoint.Spec) (*timeseries.Series, error) {
	if !ck.Enabled() {
		return IntensitySignal(demand, budget, cfg)
	}
	if err := validateSignal(demand, budget, cfg); err != nil {
		return nil, err
	}
	// A flat or zero-budget signal is a single cheap pass; nothing worth
	// snapshotting.
	if len(cfg.SplitRatios) == 0 || budget == 0 {
		return IntensitySignal(demand, budget, cfg)
	}

	// First level, exactly as attributor.attribute computes it: chunk
	// peaks and resource-times, the peak-game Shapley value, and each
	// chunk's share of the budget.
	m := cfg.SplitRatios[0]
	width := demand.Len() / m
	peaks := make([]float64, m)
	qs := make([]float64, m)
	for k := 0; k < m; k++ {
		peak, q := 0.0, 0.0
		for i := k * width; i < (k+1)*width; i++ {
			v := demand.Values[i]
			if v > peak {
				peak = v
			}
			q += v
		}
		peaks[k] = peak
		qs[k] = q * float64(demand.Step)
	}
	var phi []float64
	var err error
	switch cfg.Backend {
	case NaiveSubset:
		phi, err = shapley.PeakGameNaive(peaks)
	default:
		phi, err = shapley.PeakGame(peaks)
	}
	if err != nil {
		return nil, fmt.Errorf("temporal: level with %d periods: %w", m, err)
	}
	denom := 0.0
	for k := range phi {
		denom += phi[k] * qs[k]
	}
	if denom == 0 {
		return nil, fmt.Errorf("temporal: internal error, positive budget %v over zero-demand series", budget)
	}

	intensity := make([]float64, demand.Len())
	sweep := &periodSweep{
		configKey: signalConfigKey(demand, budget, cfg),
		width:     width,
		done:      make([]bool, m),
		intensity: intensity,
	}
	store, err := checkpoint.Open(ck.Dir, "temporal-signal")
	if err != nil {
		return nil, err
	}
	if _, err := store.RestoreLatest(sweep); err != nil {
		return nil, err
	}
	err = checkpoint.RunUnits(ctx, checkpoint.RunConfig{
		Units:   m,
		Workers: cfg.Parallelism,
		Every:   ck.Every,
		Skip:    func(k int) bool { return sweep.done[k] },
		Run: func(k int) error {
			sub := attributor{demand: demand, backend: cfg.Backend, workers: 1}
			share := phi[k] * qs[k] / denom * float64(budget)
			return sub.attribute(k*width, (k+1)*width, share, cfg.SplitRatios[1:], intensity)
		},
		Complete: func(k int) {
			sweep.done[k] = true
			store.TouchAge()
		},
		Save:    func() error { return store.SaveResumable(sweep) },
		HoldDir: ck.Dir,
	})
	if err != nil {
		return nil, fmt.Errorf("temporal: checkpointed signal: %w", err)
	}
	return timeseries.New(demand.Start, demand.Step, intensity), nil
}
