// Package temporal implements Temporal Shapley (paper §5.1): demand-aware
// attribution of fixed carbon costs (embodied carbon and static operational
// carbon) across time. Each time period is a player in a peak game — its
// payoff is the peak resource demand inside the period — and the Shapley
// value of that game decides how much of the period's carbon budget each
// sub-period carries. Applying this hierarchically from coarse to fine
// granularity (e.g. 30 days -> 3 days -> 8 h -> 1 h -> 5 min with split
// ratios 10, 9, 8, 12) yields a dynamic embodied carbon intensity signal in
// gCO2e per resource-second at the finest granularity, at polynomial cost
// (Eq. 7's closed form) instead of the exponential cost of treating every
// workload as a player.
package temporal

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fairco2/internal/shapley"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Backend selects how each level's peak-game Shapley value is computed.
type Backend int

const (
	// ClosedForm uses the O(M log M) airport-game formula (Eq. 7).
	ClosedForm Backend = iota
	// NaiveSubset enumerates all 2^M coalitions (Eq. 4). It exists for
	// the ablation benchmark and as a cross-check; results are identical.
	NaiveSubset
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case ClosedForm:
		return "closed-form"
	case NaiveSubset:
		return "naive-subset"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Config parameterizes a Temporal Shapley attribution.
type Config struct {
	// SplitRatios lists the hierarchical fan-out at each level. Their
	// product must equal the number of samples in the demand series, so
	// the finest period is one sample. The paper's running example uses
	// {10, 9, 8, 12} over a 30-day, 5-minute series (8640 samples).
	SplitRatios []int
	// Backend selects the per-level solver (default ClosedForm).
	Backend Backend
	// Parallelism bounds how many top-level periods are attributed
	// concurrently: 0 means GOMAXPROCS, 1 keeps the serial recursion,
	// n > 1 uses n workers. The signal is identical for any value —
	// periods are independent sub-problems writing disjoint ranges of
	// the output, so parallelism never changes a single arithmetic
	// operation, only their interleaving.
	Parallelism int
}

// PaperSplits is the split schedule from the paper's Figure 4 walkthrough:
// 30 days -> 3 days -> 8 hours -> 1 hour -> 5 minutes.
func PaperSplits() []int { return []int{10, 9, 8, 12} }

// IntensitySignal attributes the carbon budget over the demand series and
// returns the resulting carbon-intensity signal: one value per demand
// sample, in gCO2e per resource-second, such that
//
//	sum_i intensity[i] * demand[i] * step == budget.
//
// The demand series must be non-negative with positive total resource-time.
func IntensitySignal(demand *timeseries.Series, budget units.GramsCO2e, cfg Config) (*timeseries.Series, error) {
	if err := validateSignal(demand, budget, cfg); err != nil {
		return nil, err
	}
	workers := cfg.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := attributor{demand: demand, backend: cfg.Backend, workers: workers}
	intensity := make([]float64, demand.Len())
	if err := a.attribute(0, demand.Len(), float64(budget), cfg.SplitRatios, intensity); err != nil {
		return nil, err
	}
	return timeseries.New(demand.Start, demand.Step, intensity), nil
}

// validateSignal checks the shared IntensitySignal arguments.
func validateSignal(demand *timeseries.Series, budget units.GramsCO2e, cfg Config) error {
	if demand == nil || demand.Len() == 0 {
		return errors.New("temporal: empty demand series")
	}
	if budget < 0 {
		return fmt.Errorf("temporal: negative carbon budget %v", budget)
	}
	product := 1
	for i, m := range cfg.SplitRatios {
		if m < 1 {
			return fmt.Errorf("temporal: split ratio %d at level %d must be >= 1", m, i)
		}
		if m > shapley.MaxExactPlayers && cfg.Backend == NaiveSubset {
			return fmt.Errorf("temporal: naive backend cannot handle split ratio %d (max %d)", m, shapley.MaxExactPlayers)
		}
		product *= m
	}
	if product != demand.Len() {
		return fmt.Errorf("temporal: split ratios multiply to %d but demand has %d samples", product, demand.Len())
	}
	for i, v := range demand.Values {
		if v < 0 {
			return fmt.Errorf("temporal: negative demand %v at sample %d", v, i)
		}
	}
	if demand.Integral() == 0 {
		return errors.New("temporal: demand series has zero total resource-time, nothing to attribute to")
	}
	return nil
}

type attributor struct {
	demand  *timeseries.Series
	backend Backend
	workers int        // top-level chunk concurrency; recursion below runs serial
	arena   *attrArena // optional preallocated per-level scratch; requires workers == 1
}

// attrArena preallocates the per-level scratch the attribution recursion
// needs (chunk peaks, resource-times, Shapley values and the solver's sort
// scratch), one set per split level, so a serial attributor can re-attribute
// ranges without heap allocation — the delta engine's hot path. The arena is
// single-walker state: it must not be shared across concurrent recursions.
type attrArena struct {
	peaks [][]float64
	qs    [][]float64
	phi   [][]float64
	idx   [][]int
}

func newAttrArena(splits []int) *attrArena {
	a := &attrArena{
		peaks: make([][]float64, len(splits)),
		qs:    make([][]float64, len(splits)),
		phi:   make([][]float64, len(splits)),
		idx:   make([][]int, len(splits)),
	}
	for d, m := range splits {
		a.peaks[d] = make([]float64, m)
		a.qs[d] = make([]float64, m)
		a.phi[d] = make([]float64, m)
		a.idx[d] = make([]int, m)
	}
	return a
}

// attribute divides budget over samples [lo, hi) of the demand series. At
// each level the range is cut into splits[0] equal chunks; chunk k's share
// is phi_k q_k / sum_j phi_j q_j where phi is the peak-game Shapley value
// over chunk peaks and q_k the chunk's resource-time (Eq. 5).
func (a *attributor) attribute(lo, hi int, budget float64, splits []int, intensity []float64) error {
	if budget == 0 {
		return nil // zero-demand range received a zero share; intensity stays 0
	}
	if len(splits) == 0 {
		// Finest granularity: a single sample per period.
		if hi-lo != 1 {
			return fmt.Errorf("temporal: internal error, %d samples left at finest level", hi-lo)
		}
		q := a.demand.Values[lo] * float64(a.demand.Step)
		if q == 0 {
			return fmt.Errorf("temporal: internal error, positive budget %v assigned to zero-demand sample %d", budget, lo)
		}
		intensity[lo] = budget / q
		return nil
	}

	m := splits[0]
	width := (hi - lo) / m
	var peaks, qs []float64
	if a.arena != nil {
		// Depth of this level in the schedule the arena was sized for:
		// splits shrinks by one per level, so the difference indexes it
		// even when the recursion entered below the top (delta applies).
		d := len(a.arena.peaks) - len(splits)
		peaks, qs = a.arena.peaks[d], a.arena.qs[d]
	} else {
		peaks = make([]float64, m)
		qs = make([]float64, m)
	}
	for k := 0; k < m; k++ {
		clo := lo + k*width
		peak, q := 0.0, 0.0
		for i := clo; i < clo+width; i++ {
			v := a.demand.Values[i]
			if v > peak {
				peak = v
			}
			q += v
		}
		peaks[k] = peak
		qs[k] = q * float64(a.demand.Step)
	}

	var phi []float64
	var err error
	switch {
	case a.backend == NaiveSubset:
		phi, err = shapley.PeakGameNaive(peaks)
	case a.arena != nil:
		// PeakGameInto is bitwise-identical to PeakGame (tied peaks
		// contribute zero-height increments, so sort-order differences on
		// ties cannot move a bit), so the arena path preserves the
		// attribution exactly.
		d := len(a.arena.peaks) - len(splits)
		phi = a.arena.phi[d]
		err = shapley.PeakGameInto(peaks, phi, a.arena.idx[d])
	default:
		phi, err = shapley.PeakGame(peaks)
	}
	if err != nil {
		return fmt.Errorf("temporal: level with %d periods: %w", m, err)
	}

	denom := 0.0
	for k := range phi {
		denom += phi[k] * qs[k]
	}
	if denom == 0 {
		return fmt.Errorf("temporal: internal error, positive budget %v over zero-demand range [%d, %d)", budget, lo, hi)
	}
	if workers := min(a.workers, m); workers > 1 {
		return a.fanOut(lo, width, budget, denom, phi, qs, workers, splits, intensity)
	}
	for k := 0; k < m; k++ {
		share := phi[k] * qs[k] / denom * budget
		if err := a.attribute(lo+k*width, lo+(k+1)*width, share, splits[1:], intensity); err != nil {
			return err
		}
	}
	return nil
}

// fanOut recurses into the level's chunks concurrently. Chunks are
// independent and write disjoint intensity ranges, so this never changes a
// single arithmetic operation, only their interleaving. Only the first
// level fans out: the sub-attributor is serial, keeping goroutine count
// bounded by the Parallelism knob rather than the tree's fan-out. It lives
// in its own function so the goroutine closure's captures don't force the
// serial recursion's locals onto the heap.
func (a *attributor) fanOut(lo, width int, budget, denom float64, phi, qs []float64, workers int, splits []int, intensity []float64) error {
	m := splits[0]
	sub := attributor{demand: a.demand, backend: a.backend, workers: 1}
	errs := make([]error, m)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := m * w / workers; k < m*(w+1)/workers; k++ {
				share := phi[k] * qs[k] / denom * budget
				errs[k] = sub.attribute(lo+k*width, lo+(k+1)*width, share, splits[1:], intensity)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AttributeUsage returns the carbon attributed to a workload whose resource
// usage over time is given by usage (same units as the demand the intensity
// signal was derived from), under the carbon-intensity signal: the integral
// of usage(t) * intensity(t). The two series must be aligned.
func AttributeUsage(intensity, usage *timeseries.Series) (units.GramsCO2e, error) {
	if intensity == nil || usage == nil {
		return 0, errors.New("temporal: nil series")
	}
	if intensity.Start != usage.Start || intensity.Step != usage.Step || intensity.Len() != usage.Len() {
		return 0, errors.New("temporal: intensity and usage series must be aligned")
	}
	total := 0.0
	for i := range usage.Values {
		total += usage.Values[i] * intensity.Values[i]
	}
	return units.GramsCO2e(total * float64(usage.Step)), nil
}

// FlatIntensity returns the demand-agnostic intensity signal of the RUP/SCI
// baseline: the budget spread uniformly over total resource-time, so every
// resource-second costs the same regardless of when it occurs.
func FlatIntensity(demand *timeseries.Series, budget units.GramsCO2e) (*timeseries.Series, error) {
	if demand == nil || demand.Len() == 0 {
		return nil, errors.New("temporal: empty demand series")
	}
	q := demand.Integral()
	if q <= 0 {
		return nil, errors.New("temporal: demand series has zero total resource-time")
	}
	rate := float64(budget) / q
	values := make([]float64, demand.Len())
	for i := range values {
		values[i] = rate
	}
	return timeseries.New(demand.Start, demand.Step, values), nil
}

// DemandProportionalIntensity returns the demand-proportional baseline
// signal evaluated in §7.1: intensity at each instant is directly
// proportional to demand, normalized so the budget is fully attributed.
func DemandProportionalIntensity(demand *timeseries.Series, budget units.GramsCO2e) (*timeseries.Series, error) {
	if demand == nil || demand.Len() == 0 {
		return nil, errors.New("temporal: empty demand series")
	}
	denom := 0.0
	for _, v := range demand.Values {
		if v < 0 {
			return nil, errors.New("temporal: negative demand")
		}
		denom += v * v
	}
	denom *= float64(demand.Step)
	if denom == 0 {
		return nil, errors.New("temporal: demand series has zero total resource-time")
	}
	values := make([]float64, demand.Len())
	for i, v := range demand.Values {
		values[i] = v / denom * float64(budget)
	}
	return timeseries.New(demand.Start, demand.Step, values), nil
}
