package temporal

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
)

// Pinned benchmarks for the Temporal Shapley hot loop, consumed by the CI
// bench-regression gate (scripts/benchguard.go): the paper-scale signal —
// 30 days of 5-minute samples under the Figure 4 split schedule — serial
// vs parallel. The input trace is seeded, so the gate's median comparison
// against results/bench_baseline.json sees a fixed workload.

func benchSignal(b *testing.B, parallelism int) {
	b.Helper()
	s, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{SplitRatios: PaperSplits(), Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IntensitySignal(s, 1e6, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntensitySignal(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchSignal(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { benchSignal(b, 0) })
}

// BenchmarkTemporalDelta measures the delta engine's workload: a volume-
// and peak-preserving reshape inside one top-level period, replayed
// through SignalDelta.Update versus a fresh IntensitySignal. The demand is
// integer-valued (exact sums under permutation), so the reshape
// re-attributes exactly one of the ten top-level periods and the measured
// ratio is the periods-skipped saving.
func BenchmarkTemporalDelta(b *testing.B) {
	splits := PaperSplits()
	n := 1
	for _, m := range splits {
		n *= m
	}
	rng := rand.New(rand.NewSource(31))
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(rng.Intn(96) + 1)
	}
	demand := timeseries.New(0, 300, values)
	cfg := Config{SplitRatios: splits, Parallelism: 1}

	// Two variants of period 0 that permute the same multiset of bins.
	width := n / splits[0]
	alt := demand.Clone()
	rng.Shuffle(width, func(i, j int) {
		alt.Values[i], alt.Values[j] = alt.Values[j], alt.Values[i]
	})
	pair := [2]*timeseries.Series{demand.Clone(), alt}

	b.Run("delta-reshape", func(b *testing.B) {
		d, err := IntensitySignalDelta(demand, 1e6, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats, err := d.Update(pair[i%2])
			if err != nil {
				b.Fatal(err)
			}
			if stats.PeriodsRecomputed > 1 {
				b.Fatalf("reshape recomputed %d periods", stats.PeriodsRecomputed)
			}
		}
	})

	b.Run("fresh-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IntensitySignal(pair[i%2], 1e6, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
