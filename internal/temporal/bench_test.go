package temporal

import (
	"fmt"
	"runtime"
	"testing"

	"fairco2/internal/trace"
)

// Pinned benchmarks for the Temporal Shapley hot loop, consumed by the CI
// bench-regression gate (scripts/benchguard.go): the paper-scale signal —
// 30 days of 5-minute samples under the Figure 4 split schedule — serial
// vs parallel. The input trace is seeded, so the gate's median comparison
// against results/bench_baseline.json sees a fixed workload.

func benchSignal(b *testing.B, parallelism int) {
	b.Helper()
	s, err := trace.GenerateAzureLike(trace.DefaultAzureLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{SplitRatios: PaperSplits(), Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IntensitySignal(s, 1e6, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntensitySignal(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchSignal(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { benchSignal(b, 0) })
}
