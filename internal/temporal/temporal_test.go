package temporal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

// attributedTotal integrates intensity*demand, which must reassemble the budget.
func attributedTotal(intensity, demand *timeseries.Series) float64 {
	total := 0.0
	for i := range demand.Values {
		total += intensity.Values[i] * demand.Values[i]
	}
	return total * float64(demand.Step)
}

func randomDemand(rng *rand.Rand, n int) *timeseries.Series {
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64() * 96
	}
	// Guarantee nonzero total demand.
	values[rng.Intn(n)] += 1
	return timeseries.New(0, 300, values)
}

func TestIntensitySignalConservesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	demand := randomDemand(rng, 60)
	cfg := Config{SplitRatios: []int{5, 4, 3}}
	sig, err := IntensitySignal(demand, 1e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, attributedTotal(sig, demand), 1e6, 1e-3, "budget conservation")
}

func TestIntensitySignalSingleLevel(t *testing.T) {
	// Two periods, peaks 1 and 3, equal resource-time per sample.
	demand := timeseries.New(0, 1, []float64{1, 3})
	sig, err := IntensitySignal(demand, 100, Config{SplitRatios: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	// Peak game with peaks (1,3): phi = (0.5, 2.5). q = (1, 3).
	// Shares: 0.5*1 and 2.5*3 -> 0.5/8 and 7.5/8 of the budget.
	// Intensities: (100*0.5/8)/1 = 6.25 and (100*7.5/8)/3 = 31.25.
	approx(t, sig.Values[0], 6.25, 1e-9, "low-demand period intensity")
	approx(t, sig.Values[1], 31.25, 1e-9, "high-demand period intensity")
}

func TestHigherDemandPeriodsGetHigherIntensity(t *testing.T) {
	// Monotone demand should produce monotone non-decreasing intensity.
	demand := timeseries.New(0, 1, []float64{1, 2, 4, 8})
	sig, err := IntensitySignal(demand, 1000, Config{SplitRatios: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < sig.Len(); i++ {
		if sig.Values[i] <= sig.Values[i-1] {
			t.Errorf("intensity not increasing with demand: %v", sig.Values)
		}
	}
}

func TestNaiveBackendMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	demand := randomDemand(rng, 48)
	closed, err := IntensitySignal(demand, 5000, Config{SplitRatios: []int{4, 4, 3}, Backend: ClosedForm})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := IntensitySignal(demand, 5000, Config{SplitRatios: []int{4, 4, 3}, Backend: NaiveSubset})
	if err != nil {
		t.Fatal(err)
	}
	for i := range closed.Values {
		approx(t, naive.Values[i], closed.Values[i], 1e-9, "backend equivalence")
	}
}

func TestZeroDemandPeriodsGetZeroIntensity(t *testing.T) {
	demand := timeseries.New(0, 1, []float64{0, 0, 5, 5})
	sig, err := IntensitySignal(demand, 100, Config{SplitRatios: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sig.Values[0] != 0 || sig.Values[1] != 0 {
		t.Errorf("zero-demand samples should carry zero intensity: %v", sig.Values)
	}
	approx(t, attributedTotal(sig, demand), 100, 1e-9, "budget still conserved")
}

func TestIntensitySignalErrors(t *testing.T) {
	demand := timeseries.New(0, 1, []float64{1, 2, 3, 4})
	cases := map[string]func() error{
		"nil demand": func() error {
			_, err := IntensitySignal(nil, 1, Config{SplitRatios: []int{1}})
			return err
		},
		"negative budget": func() error {
			_, err := IntensitySignal(demand, -1, Config{SplitRatios: []int{4}})
			return err
		},
		"bad split product": func() error {
			_, err := IntensitySignal(demand, 1, Config{SplitRatios: []int{3}})
			return err
		},
		"zero split": func() error {
			_, err := IntensitySignal(demand, 1, Config{SplitRatios: []int{0, 4}})
			return err
		},
		"negative demand": func() error {
			bad := timeseries.New(0, 1, []float64{1, -2})
			_, err := IntensitySignal(bad, 1, Config{SplitRatios: []int{2}})
			return err
		},
		"zero demand": func() error {
			zero := timeseries.New(0, 1, []float64{0, 0})
			_, err := IntensitySignal(zero, 1, Config{SplitRatios: []int{2}})
			return err
		},
		"naive too wide": func() error {
			wide := timeseries.Zeros(0, 1, 1<<25)
			_, err := IntensitySignal(wide, 1, Config{SplitRatios: []int{1 << 25}, Backend: NaiveSubset})
			return err
		},
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBudgetConservationProperty(t *testing.T) {
	f := func(seed int64, rawBudget float64) bool {
		budget := math.Mod(math.Abs(rawBudget), 1e9)
		if math.IsNaN(budget) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		demand := randomDemand(rng, 24)
		sig, err := IntensitySignal(demand, units.GramsCO2e(budget), Config{SplitRatios: []int{4, 3, 2}})
		if err != nil {
			return false
		}
		got := attributedTotal(sig, demand)
		return math.Abs(got-budget) <= 1e-6*(1+budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPaperSplitsOnThirtyDayTrace(t *testing.T) {
	// The paper's Figure 4 walkthrough: 30 days of 5-minute samples under
	// splits 10*9*8*12 = 8640.
	splits := PaperSplits()
	product := 1
	for _, m := range splits {
		product *= m
	}
	if product != 8640 {
		t.Fatalf("paper splits multiply to %d, want 8640", product)
	}
	rng := rand.New(rand.NewSource(3))
	// Diurnal demand: base + sine + noise.
	values := make([]float64, 8640)
	for i := range values {
		tod := float64(i%288) / 288
		values[i] = 1000 + 400*math.Sin(2*math.Pi*tod) + rng.Float64()*50
	}
	demand := timeseries.New(0, 300, values)
	sig, err := IntensitySignal(demand, 1e7, Config{SplitRatios: splits})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, attributedTotal(sig, demand), 1e7, 1e-1, "30-day budget conservation")
	// Intensity at peak-demand times should exceed intensity at troughs.
	peakIdx, troughIdx := 72, 216 // sin max at 6h, min at 18h of each day
	if sig.Values[peakIdx] <= sig.Values[troughIdx] {
		t.Errorf("peak intensity %v should exceed trough %v", sig.Values[peakIdx], sig.Values[troughIdx])
	}
}

func TestAttributeUsage(t *testing.T) {
	demand := timeseries.New(0, 1, []float64{2, 4})
	sig, err := IntensitySignal(demand, 60, Config{SplitRatios: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	// The full demand must be attributed the full budget.
	got, err := AttributeUsage(sig, demand)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 60, 1e-9, "full usage gets full budget")

	// A workload using half the demand at each instant gets half.
	half := demand.Scale(0.5)
	got, err = AttributeUsage(sig, half)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 30, 1e-9, "half usage gets half budget")
}

func TestAttributeUsageErrors(t *testing.T) {
	a := timeseries.New(0, 1, []float64{1})
	b := timeseries.New(5, 1, []float64{1})
	if _, err := AttributeUsage(nil, a); err == nil {
		t.Error("nil intensity")
	}
	if _, err := AttributeUsage(a, nil); err == nil {
		t.Error("nil usage")
	}
	if _, err := AttributeUsage(a, b); err == nil {
		t.Error("misaligned series")
	}
}

func TestFlatIntensity(t *testing.T) {
	demand := timeseries.New(0, 2, []float64{1, 3})
	sig, err := FlatIntensity(demand, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Total resource-time = (1+3)*2 = 8; rate = 10 everywhere.
	approx(t, sig.Values[0], 10, 1e-12, "flat rate")
	approx(t, sig.Values[1], 10, 1e-12, "flat rate")
	approx(t, attributedTotal(sig, demand), 80, 1e-9, "flat conservation")
	if _, err := FlatIntensity(timeseries.Zeros(0, 1, 3), 1); err == nil {
		t.Error("zero demand should error")
	}
	if _, err := FlatIntensity(nil, 1); err == nil {
		t.Error("nil demand should error")
	}
}

func TestDemandProportionalIntensity(t *testing.T) {
	demand := timeseries.New(0, 1, []float64{1, 3})
	sig, err := DemandProportionalIntensity(demand, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Intensity ratio equals demand ratio.
	approx(t, sig.Values[1]/sig.Values[0], 3, 1e-9, "proportionality")
	approx(t, attributedTotal(sig, demand), 100, 1e-9, "conservation")
	if _, err := DemandProportionalIntensity(timeseries.Zeros(0, 1, 2), 1); err == nil {
		t.Error("zero demand should error")
	}
	if _, err := DemandProportionalIntensity(nil, 1); err == nil {
		t.Error("nil demand should error")
	}
	bad := timeseries.New(0, 1, []float64{1, -1})
	if _, err := DemandProportionalIntensity(bad, 1); err == nil {
		t.Error("negative demand should error")
	}
}

func TestLongRunningOverAttribution(t *testing.T) {
	// Reproduces the §5.1 theoretical-limits analysis: K short workloads
	// all land in the first interval with peak 1; the remaining intervals
	// carry only long-running workloads at peak P << 1. Temporal Shapley
	// attributes the long workloads extra carbon relative to a uniform
	// per-workload split.
	const m = 10  // intervals
	const p = 0.1 // long-running demand level
	values := make([]float64, m)
	values[0] = 1
	for i := 1; i < m; i++ {
		values[i] = p
	}
	demand := timeseries.New(0, 1, values)
	sig, err := IntensitySignal(demand, 1, Config{SplitRatios: []int{m}})
	if err != nil {
		t.Fatal(err)
	}
	// Long-running usage: p across every interval.
	longUsage := timeseries.New(0, 1, make([]float64, m))
	for i := range longUsage.Values {
		longUsage.Values[i] = p
	}
	longShare, err := AttributeUsage(sig, longUsage)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth (workloads as players): interval 0 is always the peak
	// interval, so the peak game is additive in interval-0 demand. The
	// long-running workloads' fair share is their interval-0 demand, p.
	// Temporal Shapley must over-attribute them (the §5.1 limitation) and
	// consequently under-attribute the short-lived ones.
	if float64(longShare) <= p {
		t.Errorf("temporal share %v should exceed ground-truth share %v for span-everything workloads", longShare, p)
	}
	shortUsage := timeseries.New(0, 1, make([]float64, m))
	shortUsage.Values[0] = 1 - p
	shortShare, err := AttributeUsage(sig, shortUsage)
	if err != nil {
		t.Fatal(err)
	}
	if float64(shortShare) >= 1-p {
		t.Errorf("temporal share %v should fall below ground-truth share %v for short-lived workloads", shortShare, 1-p)
	}
	// Efficiency: the two groups together still receive the full budget.
	approx(t, float64(longShare+shortShare), 1, 1e-9, "group shares sum to budget")
}

func TestComplexityEstimates(t *testing.T) {
	splits := PaperSplits()
	naive := NaiveOps(splits)
	closed := ClosedFormOps(splits)
	if closed >= naive {
		t.Errorf("closed form ops %v should be far below naive %v", closed, naive)
	}
	// Eq. 6 for {10,9,8,12}: 2^10*10 + 2^9*90 + 2^8*720 + 2^12*8640.
	want := 1024.0*10 + 512*90 + 256*720 + 4096*8640
	approx(t, naive, want, 1, "Eq. 6 evaluation")
	// Ground truth for the Azure trace's ~2M VMs is astronomically larger.
	if !(GroundTruthOps(1000) > naive) {
		t.Error("ground truth ops should dwarf temporal ops")
	}
	if GroundTruthOps(2) != 4 {
		t.Error("2^2 = 4")
	}
}
