package temporal

import (
	"testing"
	"testing/quick"

	"fairco2/internal/timeseries"
)

func TestAutoSplitsKnownValues(t *testing.T) {
	cases := []struct {
		samples, maxFanout int
		wantProduct        int
	}{
		{8640, 16, 8640}, // the 30-day 5-minute trace
		{744, 31, 744},   // a 31-day month of hours
		{24, 24, 24},
		{1, 16, 1},
		{97, 16, 97}, // prime above the bound: one oversized level
	}
	for _, c := range cases {
		splits, err := AutoSplits(c.samples, c.maxFanout)
		if err != nil {
			t.Fatalf("AutoSplits(%d, %d): %v", c.samples, c.maxFanout, err)
		}
		product := 1
		for _, m := range splits {
			product *= m
		}
		if product != c.wantProduct {
			t.Errorf("AutoSplits(%d, %d) = %v, product %d", c.samples, c.maxFanout, splits, product)
		}
	}
}

func TestAutoSplitsRespectsBoundWhenComposite(t *testing.T) {
	splits, err := AutoSplits(8640, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range splits {
		if m > 16 {
			t.Errorf("split %d exceeds fan-out bound for a 16-smooth number", m)
		}
	}
	// Coarsest first (descending).
	for i := 1; i < len(splits); i++ {
		if splits[i] > splits[i-1] {
			t.Errorf("splits not descending: %v", splits)
		}
	}
}

func TestAutoSplitsProperty(t *testing.T) {
	f := func(rawN uint16, rawB uint8) bool {
		n := int(rawN)%5000 + 1
		bound := int(rawB)%30 + 2
		splits, err := AutoSplits(n, bound)
		if err != nil {
			return false
		}
		product := 1
		for _, m := range splits {
			if m < 1 {
				return false
			}
			product *= m
		}
		return product == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAutoSplitsErrors(t *testing.T) {
	if _, err := AutoSplits(0, 16); err == nil {
		t.Error("zero samples")
	}
	if _, err := AutoSplits(10, 1); err == nil {
		t.Error("fan-out below 2")
	}
}

func TestAutoSplitsDriveIntensitySignal(t *testing.T) {
	// End-to-end: a 744-hour month with auto splits conserves the budget.
	values := make([]float64, 744)
	for i := range values {
		values[i] = 50 + float64(i%24)*3
	}
	demand := timeseries.New(0, 3600, values)
	splits, err := AutoSplits(demand.Len(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := IntensitySignal(demand, 1e5, Config{SplitRatios: splits})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := range sig.Values {
		total += sig.Values[i] * demand.Values[i] * 3600
	}
	approx(t, total, 1e5, 1e-3, "auto-split budget conservation")
}
