package textplot

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should yield empty output")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("got %d glyphs", utf8.RuneCountInString(s))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Errorf("monotone input should span the glyph range: %q", s)
	}
}

func TestSparklineDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i % 100)
	}
	s := Sparkline(values, 40)
	if utf8.RuneCountInString(s) != 40 {
		t.Fatalf("got %d glyphs, want 40", utf8.RuneCountInString(s))
	}
	// Default width.
	if got := utf8.RuneCountInString(Sparkline(values, 0)); got != 80 {
		t.Fatalf("default width gave %d glyphs", got)
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 3)
	for _, r := range s {
		if r != '▁' {
			t.Errorf("constant input should render flat: %q", s)
		}
	}
}

func TestChart(t *testing.T) {
	values := []float64{0, 10, 20, 30, 20, 10, 0}
	out := Chart(values, 7, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d rows", len(lines))
	}
	if !strings.Contains(lines[0], "30") {
		t.Errorf("top row should carry the max label: %q", lines[0])
	}
	if !strings.Contains(lines[3], "0") {
		t.Errorf("bottom row should carry the min label: %q", lines[3])
	}
	stars := strings.Count(out, "*")
	if stars != 7 {
		t.Errorf("each column should have one mark, got %d", stars)
	}
	if Chart(nil, 10, 4) != "" {
		t.Error("empty input")
	}
	// Constant input must not divide by zero.
	if out := Chart([]float64{3, 3}, 2, 3); !strings.Contains(out, "*") {
		t.Error("constant chart should still mark values")
	}
}

func TestChartDefaults(t *testing.T) {
	values := make([]float64, 500)
	for i := range values {
		values[i] = float64(i)
	}
	out := Chart(values, 0, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("default height gave %d rows", len(lines))
	}
}
