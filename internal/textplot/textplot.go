// Package textplot renders time series as terminal graphics — sparklines
// and axis-labelled ASCII line charts — so the cmd/ harnesses can show the
// shapes of the paper's figures (intensity signals, duck curves, savings
// timelines) directly in the terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// sparkGlyphs are the eight block-element levels of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line sparkline, downsampling by
// mean to at most width glyphs (width <= 0 uses 80).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 80
	}
	binned := binMeans(values, width)
	lo, hi := minMax(binned)
	var b strings.Builder
	for _, v := range binned {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Chart renders values as a multi-row ASCII chart with a y-axis. height
// is the number of plot rows (<= 0 uses 8); width as in Sparkline.
func Chart(values []float64, width, height int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 8
	}
	binned := binMeans(values, width)
	lo, hi := minMax(binned)
	if hi == lo {
		hi = lo + 1
	}
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(" ", len(binned)))
	}
	for c, v := range binned {
		level := int((v - lo) / (hi - lo) * float64(height-1))
		rows[height-1-level][c] = '*'
	}
	var b strings.Builder
	for r, row := range rows {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%10.3g", lo)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	return b.String()
}

// binMeans reduces values to at most width bins by averaging.
func binMeans(values []float64, width int) []float64 {
	if len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
