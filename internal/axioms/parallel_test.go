package axioms

import (
	"testing"

	"fairco2/internal/attribution"
)

// The fairness axioms must survive parallel execution: the parallel exact
// solvers are bit-for-bit the serial ones, and the sharded sampled
// estimator — while a different draw than the serial stream — is still an
// unbiased Shapley estimate, so it keeps the exactly-preserved axioms
// (efficiency and linearity hold for any normalized rate method) and stays
// within sampling noise on the rest.

func TestGroundTruthParallelSatisfiesAllAxioms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-8
	report := CheckAll(attribution.GroundTruth{Parallelism: 4}, cfg)
	if !report.Satisfied() {
		for _, v := range report.Violations {
			t.Errorf("%v", v)
		}
	}
}

func TestTemporalShapleyParallelNearAxioms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-8
	m := attribution.TemporalShapley{Parallelism: 4}
	if vs := CheckEfficiency(m, cfg); len(vs) != 0 {
		t.Errorf("efficiency: %v", vs)
	}
	if vs := CheckSymmetry(m, cfg); len(vs) != 0 {
		t.Errorf("symmetry: %v", vs)
	}
	if vs := CheckLinearity(m, cfg); len(vs) != 0 {
		t.Errorf("linearity: %v", vs)
	}
}

func TestSampledShapleyParallelAxioms(t *testing.T) {
	// Efficiency and linearity are exact for the sharded estimator: the
	// estimate is normalized to the budget and scales linearly in it (the
	// same permutations are drawn for the same seed). Symmetry and the
	// null-player bound hold only up to sampling noise, so they get a
	// loose tolerance and enough samples to keep the noise below it.
	m := attribution.SampledShapley{Samples: 4000, Seed: 7, Parallelism: 4}

	exact := DefaultConfig()
	exact.Tolerance = 1e-8
	if vs := CheckEfficiency(m, exact); len(vs) != 0 {
		t.Errorf("efficiency: %v", vs)
	}
	if vs := CheckLinearity(m, exact); len(vs) != 0 {
		t.Errorf("linearity: %v", vs)
	}

	noisy := DefaultConfig()
	noisy.Instances = 5
	noisy.Tolerance = 0.1
	if vs := CheckSymmetry(m, noisy); len(vs) != 0 {
		t.Errorf("symmetry: %v", vs)
	}
	if vs := CheckNullPlayer(m, noisy); len(vs) != 0 {
		t.Errorf("null player: %v", vs)
	}
}
