package axioms

import (
	"strings"
	"testing"

	"fairco2/internal/attribution"
)

func TestGroundTruthSatisfiesAllAxioms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-8
	report := CheckAll(attribution.GroundTruth{}, cfg)
	if !report.Satisfied() {
		for _, v := range report.Violations {
			t.Errorf("%v", v)
		}
	}
	if report.Method != "ground-truth-shapley" {
		t.Errorf("method name %q", report.Method)
	}
}

func TestRUPViolatesNullPlayer(t *testing.T) {
	// RUP bills pure resource-time: the shadowed near-null workload pays
	// for its core-seconds even though it never drove capacity.
	cfg := DefaultConfig()
	violations := CheckNullPlayer(attribution.RUPBaseline{}, cfg)
	if len(violations) == 0 {
		t.Fatal("RUP should violate the null-player property")
	}
	for _, v := range violations {
		if v.Axiom != "null-player" {
			t.Errorf("unexpected axiom %q", v.Axiom)
		}
	}
	// But RUP does satisfy efficiency, symmetry and linearity.
	if vs := CheckEfficiency(attribution.RUPBaseline{}, cfg); len(vs) != 0 {
		t.Errorf("RUP efficiency: %v", vs)
	}
	if vs := CheckSymmetry(attribution.RUPBaseline{}, cfg); len(vs) != 0 {
		t.Errorf("RUP symmetry: %v", vs)
	}
	if vs := CheckLinearity(attribution.RUPBaseline{}, cfg); len(vs) != 0 {
		t.Errorf("RUP linearity: %v", vs)
	}
}

func TestTemporalShapleyNearAxioms(t *testing.T) {
	// Fair-CO2's approximation keeps efficiency, symmetry and linearity
	// exactly; it honours the null-player bound far better than RUP.
	cfg := DefaultConfig()
	cfg.Tolerance = 1e-8
	m := attribution.TemporalShapley{}
	if vs := CheckEfficiency(m, cfg); len(vs) != 0 {
		t.Errorf("efficiency: %v", vs)
	}
	if vs := CheckSymmetry(m, cfg); len(vs) != 0 {
		t.Errorf("symmetry: %v", vs)
	}
	if vs := CheckLinearity(m, cfg); len(vs) != 0 {
		t.Errorf("linearity: %v", vs)
	}
	fairNull := CheckNullPlayer(m, cfg)
	rupNull := CheckNullPlayer(attribution.RUPBaseline{}, cfg)
	if len(fairNull) >= len(rupNull) && len(rupNull) > 0 {
		worst := func(vs []Violation) float64 {
			m := 0.0
			for _, v := range vs {
				if v.Magnitude > m {
					m = v.Magnitude
				}
			}
			return m
		}
		if worst(fairNull) >= worst(rupNull) {
			t.Errorf("temporal shapley null-player magnitude %.5f should be below RUP %.5f",
				worst(fairNull), worst(rupNull))
		}
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Method: "x", Violations: []Violation{
		{Axiom: "efficiency", Magnitude: 0.5},
		{Axiom: "efficiency", Magnitude: 0.1},
		{Axiom: "symmetry", Magnitude: 0.2},
	}}
	if r.Satisfied() {
		t.Error("should not be satisfied")
	}
	counts := r.ByAxiom()
	if counts["efficiency"] != 2 || counts["symmetry"] != 1 {
		t.Errorf("counts %v", counts)
	}
	v := Violation{Axiom: "symmetry", Magnitude: 0.25, Detail: "twins differ"}
	if !strings.Contains(v.Error(), "symmetry") || !strings.Contains(v.Error(), "twins differ") {
		t.Errorf("Error() = %q", v.Error())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Instances: 0, Tolerance: 0, Budget: 1},
		{Instances: 1, Tolerance: -1, Budget: 1},
		{Instances: 1, Tolerance: 0, Budget: 0},
	}
	for i, cfg := range bad {
		if vs := CheckEfficiency(attribution.GroundTruth{}, cfg); len(vs) == 0 {
			t.Errorf("case %d: expected a violation for invalid config", i)
		}
		if vs := CheckSymmetry(attribution.GroundTruth{}, cfg); len(vs) == 0 {
			t.Errorf("case %d: symmetry", i)
		}
		if vs := CheckNullPlayer(attribution.GroundTruth{}, cfg); len(vs) == 0 {
			t.Errorf("case %d: null player", i)
		}
		if vs := CheckLinearity(attribution.GroundTruth{}, cfg); len(vs) == 0 {
			t.Errorf("case %d: linearity", i)
		}
	}
}
