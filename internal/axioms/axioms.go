// Package axioms turns §4's four Shapley fairness properties — efficiency,
// symmetry, null player, linearity — into executable checks against any
// schedule-attribution method. The ground truth satisfies all four by
// construction; the baselines fail in characteristic ways (RUP violates
// the null-player property because it bills pure resource-time even when
// the resource-time never moves the peak), and the checks quantify how
// closely an approximation like Temporal Shapley honours each property.
package axioms

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairco2/internal/attribution"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// Violation describes one failed check.
type Violation struct {
	Axiom string
	// Magnitude is the relative size of the violation (0 = satisfied).
	Magnitude float64
	Detail    string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("axioms: %s violated (magnitude %.4f): %s", v.Axiom, v.Magnitude, v.Detail)
}

// Report collects one method's results over randomized instances.
type Report struct {
	Method string
	// Violations lists failed checks; empty means all axioms held within
	// tolerance on every instance tested.
	Violations []Violation
}

// Config bounds the randomized checking.
type Config struct {
	// Instances is the number of random schedules per axiom.
	Instances int
	// Seed drives instance generation.
	Seed int64
	// Tolerance is the relative error treated as satisfied (exact
	// methods pass at 1e-9; approximations need looser bounds).
	Tolerance float64
	// Budget is the carbon attributed per instance.
	Budget units.GramsCO2e
}

// DefaultConfig checks 25 instances at near-exact tolerance.
func DefaultConfig() Config {
	return Config{Instances: 25, Seed: 1, Tolerance: 1e-9, Budget: 1e6}
}

func (c Config) validate() error {
	if c.Instances < 1 {
		return errors.New("axioms: need at least one instance")
	}
	if c.Tolerance < 0 {
		return errors.New("axioms: negative tolerance")
	}
	if c.Budget <= 0 {
		return errors.New("axioms: budget must be positive")
	}
	return nil
}

func generator() schedule.GeneratorConfig {
	cfg := schedule.DefaultGeneratorConfig()
	cfg.MaxWorkloads = 8
	return cfg
}

// CheckEfficiency verifies the full budget is attributed.
func CheckEfficiency(m attribution.Method, cfg Config) []Violation {
	if err := cfg.validate(); err != nil {
		return []Violation{{Axiom: "efficiency", Magnitude: math.Inf(1), Detail: err.Error()}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Violation
	for i := 0; i < cfg.Instances; i++ {
		s, err := schedule.Generate(generator(), rng)
		if err != nil {
			return []Violation{{Axiom: "efficiency", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		attr, err := m.Attribute(s, cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "efficiency", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		sum := 0.0
		for _, v := range attr {
			sum += v
		}
		if rel := math.Abs(sum-float64(cfg.Budget)) / float64(cfg.Budget); rel > cfg.Tolerance {
			out = append(out, Violation{
				Axiom:     "efficiency",
				Magnitude: rel,
				Detail:    fmt.Sprintf("instance %d attributed %.6g of %.6g", i, sum, float64(cfg.Budget)),
			})
		}
	}
	return out
}

// CheckSymmetry verifies identical workloads receive identical shares: a
// random schedule is augmented with an exact twin of one workload.
func CheckSymmetry(m attribution.Method, cfg Config) []Violation {
	if err := cfg.validate(); err != nil {
		return []Violation{{Axiom: "symmetry", Magnitude: math.Inf(1), Detail: err.Error()}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var out []Violation
	for i := 0; i < cfg.Instances; i++ {
		s, err := schedule.Generate(generator(), rng)
		if err != nil {
			return []Violation{{Axiom: "symmetry", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		twinOf := rng.Intn(len(s.Workloads))
		twin := s.Workloads[twinOf]
		twin.ID = len(s.Workloads)
		s.Workloads = append(s.Workloads, twin)
		attr, err := m.Attribute(s, cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "symmetry", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		a, b := attr[twinOf], attr[twin.ID]
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			continue
		}
		if rel := math.Abs(a-b) / scale; rel > cfg.Tolerance {
			out = append(out, Violation{
				Axiom:     "symmetry",
				Magnitude: rel,
				Detail:    fmt.Sprintf("instance %d: twins received %.6g and %.6g", i, a, b),
			})
		}
	}
	return out
}

// CheckNullPlayer verifies a workload whose resource-time never drives
// capacity is attributed (approximately) nothing beyond its true marginal.
// The construction is the long-running off-peak idler: a peak workload
// owns one slice with heavy demand, the near-null workload trickles a few
// cores through every other slice. Its exact Shapley share is tiny
// (capacity is set by the peak slice); any method billing materially more
// is charging resource-time that never moved the peak — the paper's §3.1
// complaint about resource-proportional accounting, as a check.
func CheckNullPlayer(m attribution.Method, cfg Config) []Violation {
	if err := cfg.validate(); err != nil {
		return []Violation{{Axiom: "null-player", Magnitude: math.Inf(1), Detail: err.Error()}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	var out []Violation
	for i := 0; i < cfg.Instances; i++ {
		slices := 6 + rng.Intn(5)
		peakSlice := rng.Intn(slices)
		s := &schedule.Schedule{
			Slices:        slices,
			SliceDuration: units.SecondsPerHour,
			Workloads: []schedule.Workload{
				{ID: 0, Cores: 96, Start: peakSlice, Duration: 1},
			},
		}
		// The idler fills every slice except the peak one... it must be
		// contiguous, so it takes the longer side of the window.
		var start, duration int
		if peakSlice >= slices-peakSlice-1 {
			start, duration = 0, peakSlice
		} else {
			start, duration = peakSlice+1, slices-peakSlice-1
		}
		if duration == 0 {
			continue
		}
		idler := schedule.Workload{ID: 1, Cores: 4, Start: start, Duration: duration}
		s.Workloads = append(s.Workloads, idler)

		exact, err := attribution.GroundTruth{}.Attribute(s, cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "null-player", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		attr, err := m.Attribute(s, cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "null-player", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		bound := 3*exact[idler.ID] + cfg.Tolerance*float64(cfg.Budget)
		if attr[idler.ID] > bound {
			out = append(out, Violation{
				Axiom:     "null-player",
				Magnitude: attr[idler.ID] / math.Max(exact[idler.ID], 1e-12),
				Detail: fmt.Sprintf("instance %d: off-peak idler billed %.6g, exact share %.6g",
					i, attr[idler.ID], exact[idler.ID]),
			})
		}
	}
	return out
}

// CheckLinearity verifies attribution is linear in the budget (the
// restricted linearity every rate-based method should satisfy).
func CheckLinearity(m attribution.Method, cfg Config) []Violation {
	if err := cfg.validate(); err != nil {
		return []Violation{{Axiom: "linearity", Magnitude: math.Inf(1), Detail: err.Error()}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	var out []Violation
	for i := 0; i < cfg.Instances; i++ {
		s, err := schedule.Generate(generator(), rng)
		if err != nil {
			return []Violation{{Axiom: "linearity", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		a, err := m.Attribute(s, cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "linearity", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		b, err := m.Attribute(s, 3*cfg.Budget)
		if err != nil {
			return []Violation{{Axiom: "linearity", Magnitude: math.Inf(1), Detail: err.Error()}}
		}
		for w := range a {
			if a[w] == 0 && b[w] == 0 {
				continue
			}
			scale := math.Max(math.Abs(3*a[w]), math.Abs(b[w]))
			if rel := math.Abs(b[w]-3*a[w]) / scale; rel > cfg.Tolerance {
				out = append(out, Violation{
					Axiom:     "linearity",
					Magnitude: rel,
					Detail:    fmt.Sprintf("instance %d workload %d: 3x budget gave %.6g, want %.6g", i, w, b[w], 3*a[w]),
				})
				break
			}
		}
	}
	return out
}

// CheckAll runs the four axioms and collects a report.
func CheckAll(m attribution.Method, cfg Config) Report {
	r := Report{Method: m.Name()}
	r.Violations = append(r.Violations, CheckEfficiency(m, cfg)...)
	r.Violations = append(r.Violations, CheckSymmetry(m, cfg)...)
	r.Violations = append(r.Violations, CheckNullPlayer(m, cfg)...)
	r.Violations = append(r.Violations, CheckLinearity(m, cfg)...)
	return r
}

// Satisfied reports whether all axioms held.
func (r Report) Satisfied() bool { return len(r.Violations) == 0 }

// ByAxiom counts violations per axiom.
func (r Report) ByAxiom() map[string]int {
	out := map[string]int{}
	for _, v := range r.Violations {
		out[v.Axiom]++
	}
	return out
}
