package cluster

import (
	"errors"
	"fmt"
	"sort"

	"fairco2/internal/units"
)

// DeferralPolicy configures carbon-aware admission: deferrable VMs may be
// delayed up to their slack to flatten the demand peak — which directly
// shrinks the minimum capacity the operator must provision and therefore
// the fleet's embodied carbon (§3's peak-pricing insight turned into a
// scheduler).
type DeferralPolicy struct {
	// MaxDelay is the furthest a deferrable VM may be pushed past its
	// requested arrival.
	MaxDelay units.Seconds
	// Slots is the number of candidate start offsets evaluated per VM
	// (evenly spaced over [0, MaxDelay]).
	Slots int
}

// DefaultDeferralPolicy allows up to 12 hours of delay over 16 slots.
func DefaultDeferralPolicy() DeferralPolicy {
	return DeferralPolicy{MaxDelay: 12 * units.SecondsPerHour, Slots: 16}
}

// ShiftResult reports the effect of carbon-aware deferral.
type ShiftResult struct {
	// VMs carries the shifted arrivals (same IDs, possibly later starts).
	VMs []VM
	// PeakBefore and PeakAfter are the aggregate demand peaks (cores).
	PeakBefore, PeakAfter float64
	// Deferred counts the VMs whose start moved.
	Deferred int
}

// ShiftDeferrable greedily re-times the deferrable VMs (ids in deferrable)
// to minimize the aggregate demand peak: VMs are processed in descending
// core order, and each is placed at the candidate offset minimizing the
// running peak. Non-deferrable VMs keep their arrivals. The greedy
// heuristic mirrors how batch schedulers exploit temporal flexibility to
// smooth peaks (§1: "batch workloads that allow temporal flexibility to
// smooth peak resource demand should be attributed less embodied carbon").
func ShiftDeferrable(vms []VM, deferrable map[int]bool, policy DeferralPolicy, step units.Seconds) (*ShiftResult, error) {
	if len(vms) == 0 {
		return nil, errors.New("cluster: no VMs")
	}
	if policy.MaxDelay < 0 {
		return nil, errors.New("cluster: negative max delay")
	}
	if policy.Slots < 1 {
		return nil, errors.New("cluster: need at least one candidate slot")
	}
	if step <= 0 {
		return nil, errors.New("cluster: step must be positive")
	}

	// Demand accumulator over the horizon (arrival window + max delay +
	// longest lifetime).
	horizon := units.Seconds(0)
	for _, vm := range vms {
		if end := vm.End() + policy.MaxDelay; end > horizon {
			horizon = end
		}
	}
	samples := int(float64(horizon)/float64(step)) + 1
	demand := make([]float64, samples)

	add := func(vm VM, start units.Seconds, sign float64) {
		lo := int(float64(start) / float64(step))
		hi := int(float64(start+vm.Lifetime) / float64(step))
		if hi >= samples {
			hi = samples - 1
		}
		for i := lo; i <= hi; i++ {
			demand[i] += sign * float64(vm.Cores)
		}
	}
	peakOver := func(lo, hi int) float64 {
		p := 0.0
		for i := lo; i <= hi && i < samples; i++ {
			if demand[i] > p {
				p = demand[i]
			}
		}
		return p
	}

	// Fixed VMs first.
	ordered := append([]VM(nil), vms...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Cores > ordered[j].Cores })
	for _, vm := range ordered {
		if !deferrable[vm.ID] {
			add(vm, vm.Arrival, 1)
		}
	}
	peakBefore := func() float64 {
		// Peak of the original (unshifted) schedule.
		orig := make([]float64, samples)
		for _, vm := range vms {
			lo := int(float64(vm.Arrival) / float64(step))
			hi := int(float64(vm.End()) / float64(step))
			if hi >= samples {
				hi = samples - 1
			}
			for i := lo; i <= hi; i++ {
				orig[i] += float64(vm.Cores)
			}
		}
		p := 0.0
		for _, v := range orig {
			if v > p {
				p = v
			}
		}
		return p
	}()

	shifted := make(map[int]units.Seconds, len(vms))
	deferred := 0
	for _, vm := range ordered {
		if !deferrable[vm.ID] {
			shifted[vm.ID] = vm.Arrival
			continue
		}
		bestStart := vm.Arrival
		bestPeak := -1.0
		for s := 0; s < policy.Slots; s++ {
			offset := units.Seconds(float64(policy.MaxDelay) * float64(s) / float64(max(policy.Slots-1, 1)))
			start := vm.Arrival + offset
			add(vm, start, 1)
			lo := int(float64(start) / float64(step))
			hi := int(float64(start+vm.Lifetime) / float64(step))
			p := peakOver(lo, hi)
			add(vm, start, -1)
			if bestPeak < 0 || p < bestPeak {
				bestPeak, bestStart = p, start
			}
		}
		add(vm, bestStart, 1)
		shifted[vm.ID] = bestStart
		if bestStart != vm.Arrival {
			deferred++
		}
	}

	out := make([]VM, len(vms))
	for i, vm := range vms {
		moved := vm
		start, ok := shifted[vm.ID]
		if !ok {
			return nil, fmt.Errorf("cluster: VM %d lost during shifting", vm.ID)
		}
		moved.Arrival = start
		out[i] = moved
	}
	peakAfter := 0.0
	for _, v := range demand {
		if v > peakAfter {
			peakAfter = v
		}
	}
	return &ShiftResult{
		VMs:        out,
		PeakBefore: peakBefore,
		PeakAfter:  peakAfter,
		Deferred:   deferred,
	}, nil
}
