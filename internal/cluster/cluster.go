// Package cluster simulates a datacenter cluster at VM granularity: VMs
// arrive over time, a first-fit scheduler places them onto nodes, and the
// simulator emits the telemetry Fair-CO2 consumes — the aggregate demand
// series (for Temporal Shapley), per-VM usage series (for attribution),
// and the provisioned-capacity peak that drives embodied carbon. It is the
// production-shaped substrate behind the paper's premise that VM-level
// telemetry "is already tracked in production datacenters" (§10).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fairco2/internal/timeseries"
	"fairco2/internal/trace"
	"fairco2/internal/units"
)

// VM is one virtual machine request.
type VM struct {
	ID       int
	Cores    int
	MemoryGB float64
	Arrival  units.Seconds
	Lifetime units.Seconds
}

// End returns the VM's departure time.
func (v VM) End() units.Seconds { return v.Arrival + v.Lifetime }

// NodeSpec is the capacity of one node.
type NodeSpec struct {
	Cores    int
	MemoryGB float64
}

// DefaultNodeSpec matches the reference server: 96 logical cores, 192 GB.
func DefaultNodeSpec() NodeSpec { return NodeSpec{Cores: 96, MemoryGB: 192} }

// Placement records where and when a VM ran.
type Placement struct {
	VM   int
	Node int
}

// Result is the simulation outcome.
type Result struct {
	// VMs are the simulated requests, sorted by arrival.
	VMs []VM
	// Placements[i] is the placement of VMs[i].
	Placements []Placement
	// NodesProvisioned is the total number of distinct nodes ever used —
	// the capacity the operator had to buy (embodied carbon driver).
	NodesProvisioned int
	// PeakConcurrentNodes is the maximum number of simultaneously busy
	// nodes.
	PeakConcurrentNodes int
	// Demand is the cluster's allocated-core series on the telemetry
	// grid.
	Demand *timeseries.Series
	step   units.Seconds
	end    units.Seconds
}

// Simulate places the VMs with an event-driven first-fit scheduler and
// samples telemetry every step seconds. VMs must have positive cores,
// memory within the node spec, non-negative arrival and positive lifetime.
func Simulate(vms []VM, spec NodeSpec, step units.Seconds) (*Result, error) {
	if len(vms) == 0 {
		return nil, errors.New("cluster: no VMs to simulate")
	}
	if spec.Cores < 1 || spec.MemoryGB <= 0 {
		return nil, fmt.Errorf("cluster: invalid node spec %+v", spec)
	}
	if step <= 0 {
		return nil, errors.New("cluster: telemetry step must be positive")
	}
	ordered := append([]VM(nil), vms...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	for i, vm := range ordered {
		switch {
		case vm.Cores < 1 || vm.Cores > spec.Cores:
			return nil, fmt.Errorf("cluster: VM %d requests %d cores (node has %d)", vm.ID, vm.Cores, spec.Cores)
		case vm.MemoryGB <= 0 || vm.MemoryGB > spec.MemoryGB:
			return nil, fmt.Errorf("cluster: VM %d requests %v GB (node has %v)", vm.ID, vm.MemoryGB, spec.MemoryGB)
		case vm.Arrival < 0:
			return nil, fmt.Errorf("cluster: VM %d has negative arrival", vm.ID)
		case vm.Lifetime <= 0:
			return nil, fmt.Errorf("cluster: VM %d has non-positive lifetime", vm.ID)
		}
		_ = i
	}

	type node struct {
		freeCores int
		freeMemGB float64
		busy      int // resident VM count
	}
	var nodes []node

	// Event-driven placement: process arrivals in order, releasing any
	// departures that happen first.
	type departure struct {
		at   units.Seconds
		node int
		vm   VM
	}
	var pending []departure // kept sorted by time (heap-free: small sims)
	release := func(until units.Seconds) {
		kept := pending[:0]
		for _, d := range pending {
			if d.at <= until {
				nodes[d.node].freeCores += d.vm.Cores
				nodes[d.node].freeMemGB += d.vm.MemoryGB
				nodes[d.node].busy--
			} else {
				kept = append(kept, d)
			}
		}
		pending = kept
	}

	placements := make([]Placement, len(ordered))
	end := units.Seconds(0)
	peakConcurrent := 0
	for i, vm := range ordered {
		release(vm.Arrival)
		target := -1
		for n := range nodes {
			if nodes[n].freeCores >= vm.Cores && nodes[n].freeMemGB >= vm.MemoryGB {
				target = n
				break
			}
		}
		if target < 0 {
			nodes = append(nodes, node{freeCores: spec.Cores, freeMemGB: spec.MemoryGB})
			target = len(nodes) - 1
		}
		nodes[target].freeCores -= vm.Cores
		nodes[target].freeMemGB -= vm.MemoryGB
		nodes[target].busy++
		placements[i] = Placement{VM: vm.ID, Node: target}
		pending = append(pending, departure{at: vm.End(), node: target, vm: vm})
		if vm.End() > end {
			end = vm.End()
		}
		busyNodes := 0
		for _, n := range nodes {
			if n.busy > 0 {
				busyNodes++
			}
		}
		if busyNodes > peakConcurrent {
			peakConcurrent = busyNodes
		}
	}

	res := &Result{
		VMs:                 ordered,
		Placements:          placements,
		NodesProvisioned:    len(nodes),
		PeakConcurrentNodes: peakConcurrent,
		step:                step,
		end:                 end,
	}
	res.Demand = res.sumUsage()
	return res, nil
}

// samples returns the telemetry grid length covering [0, end).
func (r *Result) samples() int {
	return int(math.Ceil(float64(r.end) / float64(r.step)))
}

// UsageOf returns VM id's allocated-core series on the telemetry grid.
// Partial overlap of grid cells is accounted fractionally, so integrals
// are exact.
func (r *Result) UsageOf(id int) (*timeseries.Series, error) {
	for _, vm := range r.VMs {
		if vm.ID != id {
			continue
		}
		s := timeseries.Zeros(0, r.step, r.samples())
		for i := range s.Values {
			cellStart := float64(r.step) * float64(i)
			cellEnd := cellStart + float64(r.step)
			lo := math.Max(cellStart, float64(vm.Arrival))
			hi := math.Min(cellEnd, float64(vm.End()))
			if hi > lo {
				s.Values[i] = float64(vm.Cores) * (hi - lo) / float64(r.step)
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("cluster: unknown VM id %d", id)
}

// sumUsage builds the aggregate demand series.
func (r *Result) sumUsage() *timeseries.Series {
	s := timeseries.Zeros(0, r.step, r.samples())
	for _, vm := range r.VMs {
		for i := range s.Values {
			cellStart := float64(r.step) * float64(i)
			cellEnd := cellStart + float64(r.step)
			lo := math.Max(cellStart, float64(vm.Arrival))
			hi := math.Min(cellEnd, float64(vm.End()))
			if hi > lo {
				s.Values[i] += float64(vm.Cores) * (hi - lo) / float64(r.step)
			}
		}
	}
	return s
}

// FleetConfig parameterizes random VM fleet generation.
type FleetConfig struct {
	// VMs is the fleet size.
	VMs int
	// Window is the arrival window; arrivals follow a diurnal rate.
	Window units.Seconds
	// CoreChoices are the allowed VM sizes.
	CoreChoices []int
	// MemPerCoreGB sizes memory from cores.
	MemPerCoreGB float64
	// Lifetimes samples VM durations.
	Lifetimes trace.LifetimeConfig
}

// DefaultFleetConfig returns a day-long fleet of mixed VM sizes.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		VMs:          200,
		Window:       units.SecondsPerDay,
		CoreChoices:  []int{2, 4, 8, 16, 32},
		MemPerCoreGB: 2,
		Lifetimes:    trace.DefaultLifetimeConfig(),
	}
}

// RandomFleet draws a fleet with diurnal arrivals (rate peaks mid-window).
func RandomFleet(cfg FleetConfig, rng *rand.Rand) ([]VM, error) {
	if cfg.VMs < 1 {
		return nil, errors.New("cluster: fleet needs at least one VM")
	}
	if cfg.Window <= 0 {
		return nil, errors.New("cluster: fleet window must be positive")
	}
	if len(cfg.CoreChoices) == 0 {
		return nil, errors.New("cluster: fleet needs core choices")
	}
	if cfg.MemPerCoreGB <= 0 {
		return nil, errors.New("cluster: memory per core must be positive")
	}
	if rng == nil {
		return nil, errors.New("cluster: nil rng")
	}
	lifetimes, err := trace.SampleLifetimes(cfg.Lifetimes, cfg.VMs, rng)
	if err != nil {
		return nil, err
	}
	vms := make([]VM, cfg.VMs)
	for i := range vms {
		// Diurnal arrival density via rejection sampling on
		// 1 + sin(2 pi t / window) shifted to peak mid-window.
		var at float64
		for {
			at = rng.Float64() * float64(cfg.Window)
			density := 0.5 + 0.5*math.Sin(2*math.Pi*at/float64(cfg.Window)-math.Pi/2)
			if rng.Float64() < 0.2+0.8*density {
				break
			}
		}
		cores := cfg.CoreChoices[rng.Intn(len(cfg.CoreChoices))]
		vms[i] = VM{
			ID:       i,
			Cores:    cores,
			MemoryGB: float64(cores) * cfg.MemPerCoreGB,
			Arrival:  units.Seconds(at),
			Lifetime: lifetimes[i] + 60, // at least a minute
		}
	}
	return vms, nil
}
