package cluster

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/temporal"
	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestSimulatePacksOntoOneNode(t *testing.T) {
	vms := []VM{
		{ID: 0, Cores: 32, MemoryGB: 64, Arrival: 0, Lifetime: 100},
		{ID: 1, Cores: 32, MemoryGB: 64, Arrival: 10, Lifetime: 100},
		{ID: 2, Cores: 32, MemoryGB: 64, Arrival: 20, Lifetime: 100},
	}
	res, err := Simulate(vms, DefaultNodeSpec(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesProvisioned != 1 {
		t.Errorf("NodesProvisioned = %d, want 1 (3 x 32 cores fit)", res.NodesProvisioned)
	}
	if res.PeakConcurrentNodes != 1 {
		t.Errorf("PeakConcurrentNodes = %d", res.PeakConcurrentNodes)
	}
}

func TestSimulateOpensSecondNodeWhenFull(t *testing.T) {
	vms := []VM{
		{ID: 0, Cores: 96, MemoryGB: 100, Arrival: 0, Lifetime: 100},
		{ID: 1, Cores: 8, MemoryGB: 16, Arrival: 10, Lifetime: 50},
	}
	res, err := Simulate(vms, DefaultNodeSpec(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesProvisioned != 2 {
		t.Errorf("NodesProvisioned = %d, want 2", res.NodesProvisioned)
	}
	if res.Placements[0].Node == res.Placements[1].Node {
		t.Error("second VM cannot share the saturated node")
	}
}

func TestSimulateReusesFreedCapacity(t *testing.T) {
	vms := []VM{
		{ID: 0, Cores: 96, MemoryGB: 100, Arrival: 0, Lifetime: 50},
		{ID: 1, Cores: 96, MemoryGB: 100, Arrival: 100, Lifetime: 50},
	}
	res, err := Simulate(vms, DefaultNodeSpec(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesProvisioned != 1 {
		t.Errorf("NodesProvisioned = %d, want 1 (second VM arrives after first departs)", res.NodesProvisioned)
	}
}

func TestDemandEqualsSumOfUsage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultFleetConfig()
	cfg.VMs = 60
	vms, err := RandomFleet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(vms, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, res.Demand.Len())
	for _, vm := range vms {
		u, err := res.UsageOf(vm.ID)
		if err != nil {
			t.Fatal(err)
		}
		if u.Len() != len(sum) {
			t.Fatal("usage grid mismatch")
		}
		for i, v := range u.Values {
			sum[i] += v
		}
	}
	for i := range sum {
		approx(t, res.Demand.Values[i], sum[i], 1e-9, "demand decomposition")
	}
}

func TestUsageIntegralMatchesCoreSeconds(t *testing.T) {
	vms := []VM{{ID: 7, Cores: 10, MemoryGB: 20, Arrival: 130, Lifetime: 1234}}
	res, err := Simulate(vms, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	u, err := res.UsageOf(7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, u.Integral(), 10*1234, 1e-6, "core-seconds via partial cells")
	if _, err := res.UsageOf(99); err == nil {
		t.Error("unknown VM should error")
	}
}

func TestSimulateErrors(t *testing.T) {
	good := []VM{{ID: 0, Cores: 8, MemoryGB: 16, Arrival: 0, Lifetime: 10}}
	if _, err := Simulate(nil, DefaultNodeSpec(), 1); err == nil {
		t.Error("no VMs")
	}
	if _, err := Simulate(good, NodeSpec{}, 1); err == nil {
		t.Error("bad spec")
	}
	if _, err := Simulate(good, DefaultNodeSpec(), 0); err == nil {
		t.Error("bad step")
	}
	bad := []VM{{ID: 0, Cores: 200, MemoryGB: 16, Arrival: 0, Lifetime: 10}}
	if _, err := Simulate(bad, DefaultNodeSpec(), 1); err == nil {
		t.Error("oversize cores")
	}
	bad = []VM{{ID: 0, Cores: 8, MemoryGB: 999, Arrival: 0, Lifetime: 10}}
	if _, err := Simulate(bad, DefaultNodeSpec(), 1); err == nil {
		t.Error("oversize memory")
	}
	bad = []VM{{ID: 0, Cores: 8, MemoryGB: 16, Arrival: -1, Lifetime: 10}}
	if _, err := Simulate(bad, DefaultNodeSpec(), 1); err == nil {
		t.Error("negative arrival")
	}
	bad = []VM{{ID: 0, Cores: 8, MemoryGB: 16, Arrival: 0, Lifetime: 0}}
	if _, err := Simulate(bad, DefaultNodeSpec(), 1); err == nil {
		t.Error("zero lifetime")
	}
}

func TestRandomFleetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultFleetConfig()
	vms, err := RandomFleet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != cfg.VMs {
		t.Fatalf("fleet size %d", len(vms))
	}
	coreSet := map[int]bool{}
	for _, c := range cfg.CoreChoices {
		coreSet[c] = true
	}
	for _, vm := range vms {
		if !coreSet[vm.Cores] {
			t.Fatalf("VM cores %d not in choices", vm.Cores)
		}
		if vm.Arrival < 0 || vm.Arrival > cfg.Window {
			t.Fatalf("arrival %v outside window", vm.Arrival)
		}
		if vm.Lifetime < 60 {
			t.Fatalf("lifetime %v below floor", vm.Lifetime)
		}
		approx(t, vm.MemoryGB, float64(vm.Cores)*cfg.MemPerCoreGB, 1e-12, "memory sizing")
	}
}

func TestRandomFleetErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(*FleetConfig){
		func(c *FleetConfig) { c.VMs = 0 },
		func(c *FleetConfig) { c.Window = 0 },
		func(c *FleetConfig) { c.CoreChoices = nil },
		func(c *FleetConfig) { c.MemPerCoreGB = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultFleetConfig()
		mutate(&cfg)
		if _, err := RandomFleet(cfg, rng); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := RandomFleet(DefaultFleetConfig(), nil); err == nil {
		t.Error("nil rng")
	}
}

func TestEndToEndTemporalAttribution(t *testing.T) {
	// The full pipeline the library exists for: simulate a fleet, derive
	// the cluster demand, attribute a day's embodied carbon with Temporal
	// Shapley, and price every VM — total must reassemble the budget.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultFleetConfig()
	cfg.VMs = 80
	vms, err := RandomFleet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(vms, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000.0
	sig, err := temporal.IntensitySignal(res.Demand, budget, temporal.Config{SplitRatios: []int{res.Demand.Len()}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, vm := range vms {
		u, err := res.UsageOf(vm.ID)
		if err != nil {
			t.Fatal(err)
		}
		c, err := temporal.AttributeUsage(sig, u)
		if err != nil {
			t.Fatal(err)
		}
		if c < 0 {
			t.Fatalf("negative attribution for VM %d", vm.ID)
		}
		total += float64(c)
	}
	approx(t, total, budget, 1e-6*budget, "fleet attribution reassembles budget")
	_ = units.Seconds(0)
}

func TestSimulateDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(4))
	rng2 := rand.New(rand.NewSource(4))
	cfg := DefaultFleetConfig()
	cfg.VMs = 30
	a, err := RandomFleet(cfg, rng1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomFleet(cfg, rng2)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Simulate(a, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(b, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if ra.NodesProvisioned != rb.NodesProvisioned {
		t.Error("simulation not deterministic")
	}
	for i := range ra.Placements {
		if ra.Placements[i] != rb.Placements[i] {
			t.Fatal("placements differ")
		}
	}
}
