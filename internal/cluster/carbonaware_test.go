package cluster

import (
	"math/rand"
	"testing"

	"fairco2/internal/units"
)

func TestShiftDeferrableFlattensPeak(t *testing.T) {
	// Three batch jobs all requested at the same moment; deferring two of
	// them serializes the demand and cuts the peak to one job's cores.
	vms := []VM{
		{ID: 0, Cores: 48, MemoryGB: 64, Arrival: 0, Lifetime: 3600},
		{ID: 1, Cores: 48, MemoryGB: 64, Arrival: 0, Lifetime: 3600},
		{ID: 2, Cores: 48, MemoryGB: 64, Arrival: 0, Lifetime: 3600},
	}
	res, err := ShiftDeferrable(vms, map[int]bool{0: true, 1: true, 2: true},
		DefaultDeferralPolicy(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBefore != 144 {
		t.Fatalf("PeakBefore = %v", res.PeakBefore)
	}
	if res.PeakAfter > 96 {
		t.Errorf("deferral should cut the 144-core peak, got %v", res.PeakAfter)
	}
	if res.Deferred < 1 {
		t.Error("some VMs should have moved")
	}
	// Delay bound respected.
	for i, vm := range res.VMs {
		if vm.Arrival < vms[i].Arrival || vm.Arrival > vms[i].Arrival+DefaultDeferralPolicy().MaxDelay {
			t.Fatalf("VM %d moved outside its slack: %v", vm.ID, vm.Arrival)
		}
		if vm.Lifetime != vms[i].Lifetime || vm.Cores != vms[i].Cores {
			t.Fatal("shifting must not change VM shape")
		}
	}
}

func TestShiftDeferrableKeepsFixedVMs(t *testing.T) {
	vms := []VM{
		{ID: 0, Cores: 48, MemoryGB: 64, Arrival: 100, Lifetime: 600},
		{ID: 1, Cores: 48, MemoryGB: 64, Arrival: 100, Lifetime: 600},
	}
	res, err := ShiftDeferrable(vms, map[int]bool{1: true}, DefaultDeferralPolicy(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMs[0].Arrival != 100 {
		t.Error("fixed VM must not move")
	}
}

func TestShiftDeferrableNeverWorsensPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		cfg := DefaultFleetConfig()
		cfg.VMs = 50
		vms, err := RandomFleet(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		deferrable := map[int]bool{}
		for _, vm := range vms {
			if vm.ID%2 == 0 {
				deferrable[vm.ID] = true
			}
		}
		res, err := ShiftDeferrable(vms, deferrable, DefaultDeferralPolicy(), 300)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy placement considers offset 0 for every VM, so the
		// shifted peak can never exceed the original.
		if res.PeakAfter > res.PeakBefore+1e-9 {
			t.Fatalf("trial %d: peak worsened %v -> %v", trial, res.PeakBefore, res.PeakAfter)
		}
	}
}

func TestShiftDeferrableReducesEmbodiedProvisioning(t *testing.T) {
	// End-to-end: peak shaving reduces provisioned nodes in simulation.
	vms := []VM{
		{ID: 0, Cores: 96, MemoryGB: 100, Arrival: 0, Lifetime: 3600},
		{ID: 1, Cores: 96, MemoryGB: 100, Arrival: 0, Lifetime: 3600},
		{ID: 2, Cores: 96, MemoryGB: 100, Arrival: 0, Lifetime: 3600},
	}
	before, err := Simulate(vms, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ShiftDeferrable(vms, map[int]bool{1: true, 2: true}, DefaultDeferralPolicy(), 300)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Simulate(res.VMs, DefaultNodeSpec(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if after.NodesProvisioned >= before.NodesProvisioned {
		t.Errorf("deferral should cut provisioning: %d -> %d", before.NodesProvisioned, after.NodesProvisioned)
	}
}

func TestShiftDeferrableErrors(t *testing.T) {
	good := []VM{{ID: 0, Cores: 8, MemoryGB: 16, Arrival: 0, Lifetime: 10}}
	if _, err := ShiftDeferrable(nil, nil, DefaultDeferralPolicy(), 300); err == nil {
		t.Error("no VMs")
	}
	if _, err := ShiftDeferrable(good, nil, DeferralPolicy{MaxDelay: -1, Slots: 4}, 300); err == nil {
		t.Error("negative delay")
	}
	if _, err := ShiftDeferrable(good, nil, DeferralPolicy{MaxDelay: 1, Slots: 0}, 300); err == nil {
		t.Error("no slots")
	}
	if _, err := ShiftDeferrable(good, nil, DefaultDeferralPolicy(), 0); err == nil {
		t.Error("bad step")
	}
	_ = units.Seconds(0)
}
