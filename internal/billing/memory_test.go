package billing

import (
	"testing"

	"fairco2/internal/timeseries"
)

func TestRecordMemoryPerResourceAttribution(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two tenants with identical core usage; one also hoards memory.
	cores := series(16, 16, 16, 16)
	if err := a.RecordUsage("lean", cores, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("hungry", cores, nil); err != nil {
		t.Fatal(err)
	}
	mem := timeseries.Zeros(0, 3600, 24)
	for i := 0; i < 4; i++ {
		mem.Values[i] = 150
	}
	if err := a.RecordMemory("hungry", mem); err != nil {
		t.Fatal(err)
	}
	statements, total, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Statement{}
	for _, s := range statements {
		byName[s.Tenant] = s
	}
	if byName["lean"].EmbodiedDRAM != 0 {
		t.Errorf("lean tenant recorded no memory but got DRAM share %v", byName["lean"].EmbodiedDRAM)
	}
	if byName["hungry"].EmbodiedDRAM <= 0 {
		t.Error("hungry tenant should carry the DRAM embodied carbon")
	}
	// Identical core usage: equal CPU-side shares.
	approx(t, float64(byName["lean"].EmbodiedCPU), float64(byName["hungry"].EmbodiedCPU), 1e-9, "equal CPU shares")
	// Component bookkeeping.
	for _, s := range statements {
		approx(t, float64(s.Embodied), float64(s.EmbodiedCPU+s.EmbodiedDRAM), 1e-12, "embodied split")
	}
	approx(t, float64(total.Embodied), float64(total.EmbodiedCPU+total.EmbodiedDRAM), 1e-9, "total embodied split")
	// DRAM is a large fraction of the reference server's footprint
	// (146.87 kg of ~453 kg), so the DRAM budget must be substantial.
	if float64(total.EmbodiedDRAM) < 0.2*float64(total.Embodied) {
		t.Errorf("DRAM share %v of %v implausibly small", total.EmbodiedDRAM, total.Embodied)
	}
}

func TestRecordMemoryDrivesProvisioning(t *testing.T) {
	// Memory can be the binding resource: 150 GB peak on a 192 GB node
	// is one node, 400 GB is three.
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("x", series(8), nil); err != nil {
		t.Fatal(err)
	}
	bigMem := timeseries.Zeros(0, 3600, 24)
	bigMem.Values[0] = 400
	if err := a.RecordMemory("x", bigMem); err != nil {
		t.Fatal(err)
	}
	_, totalBig, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RecordUsage("x", series(8), nil); err != nil {
		t.Fatal(err)
	}
	smallMem := timeseries.Zeros(0, 3600, 24)
	smallMem.Values[0] = 150
	if err := b.RecordMemory("x", smallMem); err != nil {
		t.Fatal(err)
	}
	_, totalSmall, err := b.Close()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(totalBig.Embodied)/float64(totalSmall.Embodied), 3, 1e-9,
		"memory-bound provisioning scales the embodied budget")
}

func TestRecordMemoryErrors(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RecordMemory("", series(1)); err == nil {
		t.Error("empty tenant")
	}
	if err := a.RecordMemory("x", nil); err == nil {
		t.Error("nil series")
	}
	wrong := timeseries.New(0, 60, make([]float64, 24))
	if err := a.RecordMemory("x", wrong); err == nil {
		t.Error("grid mismatch")
	}
	neg := series(0)
	neg.Values[1] = -3
	if err := a.RecordMemory("x", neg); err == nil {
		t.Error("negative memory")
	}
	// Memory-only tenants are registered but a period with zero core
	// usage cannot close.
	if err := a.RecordMemory("memonly", series(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Close(); err == nil {
		t.Error("zero core usage should error")
	}
}
