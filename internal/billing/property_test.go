package billing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/timeseries"
)

// Property-based invariants of the billing period over randomized tenant
// populations: conservation of every component, monotonicity in usage,
// and invariance to how telemetry is split across RecordUsage calls.

func randomAccountant(t *testing.T, seed int64, tenants int) (*Accountant, *rand.Rand) {
	t.Helper()
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < tenants; k++ {
		cores := timeseries.Zeros(0, 3600, 24)
		power := timeseries.Zeros(0, 3600, 24)
		for i := range cores.Values {
			if rng.Float64() < 0.7 {
				cores.Values[i] = float64(1 + rng.Intn(64))
				power.Values[i] = cores.Values[i] * (1 + 3*rng.Float64())
			}
		}
		name := fmt.Sprintf("t%d", k)
		if err := a.RecordUsage(name, cores, power); err != nil {
			t.Fatal(err)
		}
		if rng.Float64() < 0.5 {
			mem := timeseries.Zeros(0, 3600, 24)
			for i := range mem.Values {
				mem.Values[i] = rng.Float64() * 150
			}
			if err := a.RecordMemory(name, mem); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a, rng
}

func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, rawTenants uint8) bool {
		tenants := 1 + int(rawTenants)%10
		a, _ := randomAccountant(t, seed, tenants)
		statements, total, err := a.Close()
		if err != nil {
			// Zero-usage draws are legitimately rejected.
			return true
		}
		var emb, sta, dyn float64
		for _, s := range statements {
			if s.Embodied < 0 || s.Static < 0 || s.Dynamic < 0 {
				return false
			}
			emb += float64(s.Embodied)
			sta += float64(s.Static)
			dyn += float64(s.Dynamic)
		}
		ok := func(got, want float64) bool {
			return math.Abs(got-want) <= 1e-6*(1+want)
		}
		return ok(emb, float64(total.Embodied)) &&
			ok(sta, float64(total.Static)) &&
			ok(dyn, float64(total.Dynamic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertySplitRecordingInvariance(t *testing.T) {
	// Recording the same telemetry in one call or split across two calls
	// must produce identical statements.
	mkSeries := func(scale float64) *timeseries.Series {
		s := timeseries.Zeros(0, 3600, 24)
		for i := range s.Values {
			s.Values[i] = scale * float64(i%7)
		}
		return s
	}
	one, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := one.RecordUsage("x", mkSeries(10), mkSeries(2)); err != nil {
		t.Fatal(err)
	}
	if err := one.RecordUsage("anchor", mkSeries(5), nil); err != nil {
		t.Fatal(err)
	}
	two, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := two.RecordUsage("x", mkSeries(4), mkSeries(1)); err != nil {
		t.Fatal(err)
	}
	if err := two.RecordUsage("x", mkSeries(6), mkSeries(1)); err != nil {
		t.Fatal(err)
	}
	if err := two.RecordUsage("anchor", mkSeries(5), nil); err != nil {
		t.Fatal(err)
	}
	s1, t1, err := one.Close()
	if err != nil {
		t.Fatal(err)
	}
	s2, t2, err := two.Close()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(t1.Total()-t2.Total())) > 1e-9 {
		t.Errorf("totals differ: %v vs %v", t1.Total(), t2.Total())
	}
	for i := range s1 {
		if math.Abs(float64(s1[i].Total()-s2[i].Total())) > 1e-9 {
			t.Errorf("tenant %s differs: %v vs %v", s1[i].Tenant, s1[i].Total(), s2[i].Total())
		}
	}
}

func TestPropertyMoreUsageNeverCheaperFixed(t *testing.T) {
	// Scaling one tenant's usage up (holding others fixed, same peak
	// structure) must not lower its fixed-cost share.
	base, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	usage := series(8, 8, 8, 8)
	other := series(32, 16, 8, 4)
	if err := base.RecordUsage("a", usage, nil); err != nil {
		t.Fatal(err)
	}
	if err := base.RecordUsage("b", other, nil); err != nil {
		t.Fatal(err)
	}
	s1, _, err := base.Close()
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := bigger.RecordUsage("a", series(16, 16, 16, 16), nil); err != nil {
		t.Fatal(err)
	}
	if err := bigger.RecordUsage("b", other, nil); err != nil {
		t.Fatal(err)
	}
	s2, _, err := bigger.Close()
	if err != nil {
		t.Fatal(err)
	}
	if s2[0].Embodied < s1[0].Embodied {
		t.Errorf("doubling usage lowered the bill: %v -> %v", s1[0].Embodied, s2[0].Embodied)
	}
	_ = grid.Sweden
	_ = carbon.DefaultLifetime
}
