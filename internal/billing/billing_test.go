package billing

import (
	"math"
	"strings"
	"testing"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func testConfig() Config {
	return Config{
		Server:      carbon.NewReferenceServer(),
		Grid:        grid.California,
		PeriodStart: 0,
		Step:        3600,
		Samples:     24,
	}
}

func series(vals ...float64) *timeseries.Series {
	full := make([]float64, 24)
	copy(full, vals)
	return timeseries.New(0, 3600, full)
}

func TestAccountantBasicPeriod(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A: steady 8 cores all day. Tenant B: 64 cores during one
	// peak hour (hour 12).
	steady := timeseries.Zeros(0, 3600, 24)
	for i := range steady.Values {
		steady.Values[i] = 8
	}
	power := timeseries.Zeros(0, 3600, 24)
	for i := range power.Values {
		power.Values[i] = 40
	}
	if err := a.RecordUsage("steady", steady, power); err != nil {
		t.Fatal(err)
	}
	burst := timeseries.Zeros(0, 3600, 24)
	burst.Values[12] = 64
	burstPower := timeseries.Zeros(0, 3600, 24)
	burstPower.Values[12] = 200
	if err := a.RecordUsage("burst", burst, burstPower); err != nil {
		t.Fatal(err)
	}

	statements, total, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(statements) != 2 {
		t.Fatalf("got %d statements", len(statements))
	}
	// Conservation: per-tenant shares reassemble the totals.
	var emb, sta, dyn float64
	for _, s := range statements {
		emb += float64(s.Embodied)
		sta += float64(s.Static)
		dyn += float64(s.Dynamic)
		if s.Embodied < 0 || s.Static < 0 || s.Dynamic < 0 {
			t.Fatalf("negative component in %+v", s)
		}
	}
	approx(t, emb, float64(total.Embodied), 1e-9, "embodied conservation")
	approx(t, sta, float64(total.Static), 1e-9, "static conservation")
	approx(t, dyn, float64(total.Dynamic), 1e-9, "dynamic conservation")

	// The burst tenant used 1/3 the core-seconds of the steady tenant
	// (64 vs 192) but ran entirely at the peak, so its fixed-cost rate
	// per core-second must be much higher.
	bySize := map[string]Statement{}
	for _, s := range statements {
		bySize[s.Tenant] = s
	}
	steadyRate := float64(bySize["steady"].Embodied) / float64(bySize["steady"].CoreSeconds)
	burstRate := float64(bySize["burst"].Embodied) / float64(bySize["burst"].CoreSeconds)
	if burstRate <= steadyRate {
		t.Errorf("peak-hour tenant rate %v should exceed steady rate %v", burstRate, steadyRate)
	}

	// Dynamic carbon: metered energy at 230 gCO2e/kWh.
	wantSteadyDyn := float64(units.Emissions(units.Energy(40, 24*3600), 230))
	approx(t, float64(bySize["steady"].Dynamic), wantSteadyDyn, 1e-6, "metered dynamic carbon")
}

func TestAccumulatingRecords(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("x", series(4), nil); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("x", series(6), nil); err != nil {
		t.Fatal(err)
	}
	statements, _, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(statements[0].CoreSeconds), 10*3600, 1e-9, "accumulated usage")
	if got := a.Tenants(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Tenants = %v", got)
	}
}

func TestStatementTotalAndFormat(t *testing.T) {
	s := Statement{Tenant: "a", Embodied: 1, Static: 2, Dynamic: 3}
	if s.Total() != 6 {
		t.Error("total")
	}
	out := FormatStatements([]Statement{s}, Statement{Tenant: "TOTAL", Embodied: 1, Static: 2, Dynamic: 3})
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "tenant") {
		t.Errorf("format output:\n%s", out)
	}
	list := []Statement{{Tenant: "small", Dynamic: 1}, {Tenant: "big", Dynamic: 9}}
	SortBySize(list)
	if list[0].Tenant != "big" {
		t.Error("SortBySize")
	}
}

func TestNewAccountantErrors(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Server = nil },
		func(c *Config) { c.Server = &carbon.Server{} },
		func(c *Config) { c.Grid = nil },
		func(c *Config) { c.Step = 0 },
		func(c *Config) { c.Samples = 0 },
		func(c *Config) { c.Splits = []int{7} },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewAccountant(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRecordUsageErrors(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("", series(1), nil); err == nil {
		t.Error("empty tenant")
	}
	if err := a.RecordUsage("x", nil, nil); err == nil {
		t.Error("nil usage")
	}
	wrongGrid := timeseries.New(0, 60, make([]float64, 24))
	if err := a.RecordUsage("x", wrongGrid, nil); err == nil {
		t.Error("grid mismatch")
	}
	neg := series(1)
	neg.Values[3] = -1
	if err := a.RecordUsage("x", neg, nil); err == nil {
		t.Error("negative usage")
	}
	negP := series(0)
	negP.Values[2] = -5
	if err := a.RecordUsage("x", series(1), negP); err == nil {
		t.Error("negative power")
	}
	if err := a.RecordUsage("x", series(1), wrongGrid); err == nil {
		t.Error("power grid mismatch")
	}
}

func TestCloseErrors(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Close(); err == nil {
		t.Error("no tenants")
	}
	if err := a.RecordUsage("idle", series(0), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Close(); err == nil {
		t.Error("zero usage")
	}
}

func TestMultiNodeProvisioning(t *testing.T) {
	a, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Peak demand 200 cores -> 3 nodes of 96 logical cores.
	big := series(200)
	if err := a.RecordUsage("big", big, nil); err != nil {
		t.Fatal(err)
	}
	_, totalBig, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Compare against a single-node period: 3x capacity means 3x fixed
	// budget for identical usage shape.
	b, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RecordUsage("small", series(60), nil); err != nil {
		t.Fatal(err)
	}
	_, totalSmall, err := b.Close()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(totalBig.Embodied) / float64(totalSmall.Embodied)
	approx(t, ratio, 3, 1e-9, "fixed budget scales with provisioned nodes")
}

func TestTimeVaryingGridPricesDynamicEnergy(t *testing.T) {
	cfg := testConfig()
	// First half of the day clean, second half dirty.
	ciValues := make([]float64, 24)
	for i := range ciValues {
		if i < 12 {
			ciValues[i] = 50
		} else {
			ciValues[i] = 500
		}
	}
	cfg.Grid = grid.Trace{Series: timeseries.New(0, 3600, ciValues)}
	a, err := NewAccountant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := timeseries.Zeros(0, 3600, 24)
	dirty := timeseries.Zeros(0, 3600, 24)
	cleanP := timeseries.Zeros(0, 3600, 24)
	dirtyP := timeseries.Zeros(0, 3600, 24)
	clean.Values[3], cleanP.Values[3] = 8, 100
	dirty.Values[20], dirtyP.Values[20] = 8, 100
	if err := a.RecordUsage("clean", clean, cleanP); err != nil {
		t.Fatal(err)
	}
	if err := a.RecordUsage("dirty", dirty, dirtyP); err != nil {
		t.Fatal(err)
	}
	statements, _, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Statement{}
	for _, s := range statements {
		byName[s.Tenant] = s
	}
	if float64(byName["dirty"].Dynamic) < 9*float64(byName["clean"].Dynamic) {
		t.Errorf("identical energy on a 10x dirtier grid should cost ~10x: clean %v, dirty %v",
			byName["clean"].Dynamic, byName["dirty"].Dynamic)
	}
}
