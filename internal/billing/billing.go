// Package billing turns Fair-CO2's attribution machinery into the
// operator-facing workflow the paper motivates: tenants register, usage
// telemetry accumulates over a billing period, and at period close every
// tenant receives a carbon statement that separates embodied carbon
// (priced by the Temporal Shapley intensity signal), static-energy carbon
// (same signal family: fixed cost scaled by provisioned capacity), and
// dynamic-energy carbon (metered energy at the grid intensity of the
// moment it was consumed).
package billing

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"fairco2/internal/carbon"
	"fairco2/internal/grid"
	"fairco2/internal/temporal"
	"fairco2/internal/timeseries"
	"fairco2/internal/units"
)

// Accountant accumulates tenant telemetry for one billing period.
type Accountant struct {
	server *carbon.Server
	grid   grid.Signal
	// start/step/samples fix the period's telemetry grid.
	start, step units.Seconds
	samples     int
	// splits is the Temporal Shapley schedule over the period.
	splits []int

	// provider/region label the period's statements and charge metrics
	// (empty for the single-datacenter path).
	provider, region string

	coreUsage map[string]*timeseries.Series
	memUsage  map[string]*timeseries.Series
	dynPower  map[string]*timeseries.Series
	order     []string
	hasMemory bool
}

// Config parameterizes an Accountant.
type Config struct {
	// Server is the hardware model of the fleet's nodes.
	Server *carbon.Server
	// Grid is the operational carbon-intensity signal.
	Grid grid.Signal
	// PeriodStart and Step fix the telemetry grid.
	PeriodStart units.Seconds
	Step        units.Seconds
	// Samples is the number of telemetry samples in the period.
	Samples int
	// Splits optionally sets the Temporal Shapley hierarchy (product
	// must equal Samples); nil uses a single level.
	Splits []int
	// Provider and Region optionally tag the accountant's placement.
	// When Region is set, every statement carries the labels and charges
	// are additionally recorded on the region-labeled charge counter.
	// Pricing is unaffected: a region-tagged period bills every tenant
	// bitwise-identically to an untagged one.
	Provider string
	Region   string
}

// NewAccountant opens a billing period.
func NewAccountant(cfg Config) (*Accountant, error) {
	if cfg.Server == nil {
		return nil, errors.New("billing: nil server model")
	}
	if err := cfg.Server.Validate(); err != nil {
		return nil, err
	}
	if cfg.Grid == nil {
		return nil, errors.New("billing: nil grid signal")
	}
	if cfg.Step <= 0 || cfg.Samples < 1 {
		return nil, fmt.Errorf("billing: invalid grid (step %v, samples %d)", cfg.Step, cfg.Samples)
	}
	splits := cfg.Splits
	if len(splits) == 0 {
		// Hierarchical coarse-to-fine attribution by default, as in the
		// paper's Figure 4 cascade.
		var err error
		splits, err = temporal.AutoSplits(cfg.Samples, 16)
		if err != nil {
			return nil, err
		}
	}
	product := 1
	for _, m := range splits {
		product *= m
	}
	if product != cfg.Samples {
		return nil, fmt.Errorf("billing: splits multiply to %d, want %d samples", product, cfg.Samples)
	}
	if cfg.Region == "" && cfg.Provider != "" {
		return nil, errors.New("billing: provider label requires a region label")
	}
	return &Accountant{
		server:    cfg.Server,
		grid:      cfg.Grid,
		start:     cfg.PeriodStart,
		step:      cfg.Step,
		samples:   cfg.Samples,
		splits:    splits,
		provider:  cfg.Provider,
		region:    cfg.Region,
		coreUsage: map[string]*timeseries.Series{},
		memUsage:  map[string]*timeseries.Series{},
		dynPower:  map[string]*timeseries.Series{},
	}, nil
}

// RecordUsage adds a tenant's core-allocation and dynamic-power telemetry
// for the period. Repeated calls for the same tenant accumulate. Both
// series must be on the period grid; dynPower may be nil for idle tenants.
func (a *Accountant) RecordUsage(tenant string, cores, dynPower *timeseries.Series) error {
	if tenant == "" {
		return errors.New("billing: empty tenant name")
	}
	if cores == nil {
		return errors.New("billing: nil core-usage series")
	}
	if err := a.checkGrid(cores); err != nil {
		return fmt.Errorf("billing: tenant %s cores: %w", tenant, err)
	}
	for i, v := range cores.Values {
		if v < 0 {
			return fmt.Errorf("billing: tenant %s has negative core usage at sample %d", tenant, i)
		}
	}
	if dynPower != nil {
		if err := a.checkGrid(dynPower); err != nil {
			return fmt.Errorf("billing: tenant %s power: %w", tenant, err)
		}
		for i, v := range dynPower.Values {
			if v < 0 {
				return fmt.Errorf("billing: tenant %s has negative power at sample %d", tenant, i)
			}
		}
	}
	a.register(tenant)
	for i, v := range cores.Values {
		a.coreUsage[tenant].Values[i] += v
	}
	if dynPower != nil {
		for i, v := range dynPower.Values {
			a.dynPower[tenant].Values[i] += v
		}
	}
	return nil
}

// RecordMemory adds a tenant's DRAM-allocation telemetry (GB over time).
// When any tenant records memory, the period's DRAM embodied carbon is
// attributed through its own Temporal Shapley signal over the memory
// demand — the paper's per-resource accounting; otherwise all embodied
// carbon rides the core-demand signal.
func (a *Accountant) RecordMemory(tenant string, memGB *timeseries.Series) error {
	if tenant == "" {
		return errors.New("billing: empty tenant name")
	}
	if memGB == nil {
		return errors.New("billing: nil memory series")
	}
	if err := a.checkGrid(memGB); err != nil {
		return fmt.Errorf("billing: tenant %s memory: %w", tenant, err)
	}
	for i, v := range memGB.Values {
		if v < 0 {
			return fmt.Errorf("billing: tenant %s has negative memory usage at sample %d", tenant, i)
		}
	}
	a.register(tenant)
	for i, v := range memGB.Values {
		a.memUsage[tenant].Values[i] += v
	}
	a.hasMemory = true
	return nil
}

func (a *Accountant) register(tenant string) {
	if _, ok := a.coreUsage[tenant]; ok {
		return
	}
	a.coreUsage[tenant] = timeseries.Zeros(a.start, a.step, a.samples)
	a.memUsage[tenant] = timeseries.Zeros(a.start, a.step, a.samples)
	a.dynPower[tenant] = timeseries.Zeros(a.start, a.step, a.samples)
	a.order = append(a.order, tenant)
}

// Statement is one tenant's carbon bill for the period.
type Statement struct {
	Tenant string
	// Provider and Region carry the accountant's placement labels; empty
	// on the single-datacenter path.
	Provider string
	Region   string
	// Embodied is the Temporal Shapley share of amortized manufacturing
	// carbon (EmbodiedCPU + EmbodiedDRAM).
	Embodied units.GramsCO2e
	// EmbodiedCPU is the share attributed through the core-demand signal
	// (CPU, SSD and platform overheads).
	EmbodiedCPU units.GramsCO2e
	// EmbodiedDRAM is the share attributed through the memory-demand
	// signal; zero when no tenant recorded memory telemetry.
	EmbodiedDRAM units.GramsCO2e
	// Static is the Temporal Shapley share of static-energy carbon.
	Static units.GramsCO2e
	// Dynamic is metered dynamic energy priced at the instantaneous grid
	// intensity.
	Dynamic units.GramsCO2e
	// CoreSeconds is the tenant's total resource-time (for rate display).
	CoreSeconds units.CoreSeconds
}

// Total returns the statement's full footprint.
func (s Statement) Total() units.GramsCO2e { return s.Embodied + s.Static + s.Dynamic }

// Close prices the period and returns one statement per tenant (sorted by
// registration order) plus the period totals. The provisioned capacity is
// the peak aggregate demand rounded up to whole nodes, which sets both the
// embodied budget and the static-energy budget (§3's insight: peak demand
// is the minimum capacity that must exist).
func (a *Accountant) Close() ([]Statement, Statement, error) {
	closeStart := time.Now()
	if len(a.order) == 0 {
		return nil, Statement{}, errors.New("billing: no tenants recorded")
	}
	coreDemand := timeseries.Zeros(a.start, a.step, a.samples)
	memDemand := timeseries.Zeros(a.start, a.step, a.samples)
	for _, tenant := range a.order {
		for i, v := range a.coreUsage[tenant].Values {
			coreDemand.Values[i] += v
		}
		for i, v := range a.memUsage[tenant].Values {
			memDemand.Values[i] += v
		}
	}
	if coreDemand.Integral() <= 0 {
		return nil, Statement{}, errors.New("billing: period has zero usage")
	}

	// Provisioned capacity: peak demand in whole nodes, over whichever
	// resource binds.
	logicalCores := a.server.Cores * 2 // SMT-2
	nodes := ceilDiv(coreDemand.Peak(), float64(logicalCores))
	if a.hasMemory {
		if memNodes := ceilDiv(memDemand.Peak(), float64(a.server.MemoryGB)); memNodes > nodes {
			nodes = memNodes
		}
	}
	if nodes < 1 {
		nodes = 1
	}
	window := float64(a.step) * float64(a.samples)
	embodiedBudget := float64(nodes) * a.server.EmbodiedRate() * window
	staticEnergy := units.Energy(units.Watts(float64(nodes)*float64(a.server.StaticPower)), units.Seconds(window))
	staticBudget := float64(a.emissionsOverPeriod(staticEnergy))

	// Per-resource split (§3's per-resource embodied accounting): the
	// DRAM fraction of the node footprint rides the memory-demand signal
	// when memory telemetry exists.
	dramFrac := 0.0
	if a.hasMemory && memDemand.Integral() > 0 {
		shares, err := a.server.ResourceShares()
		if err != nil {
			return nil, Statement{}, err
		}
		dramFrac = float64(shares.DRAMPerGB) * float64(a.server.MemoryGB) / float64(a.server.TotalEmbodied())
	}
	cpuFixedBudget := embodiedBudget*(1-dramFrac) + staticBudget
	dramBudget := embodiedBudget * dramFrac

	coreSignal, err := temporal.IntensitySignal(coreDemand, units.GramsCO2e(cpuFixedBudget), temporal.Config{SplitRatios: a.splits})
	if err != nil {
		return nil, Statement{}, err
	}
	var memSignal *timeseries.Series
	if dramBudget > 0 {
		memSignal, err = temporal.IntensitySignal(memDemand, units.GramsCO2e(dramBudget), temporal.Config{SplitRatios: a.splits})
		if err != nil {
			return nil, Statement{}, err
		}
	}
	embodiedFracOfCore := embodiedBudget * (1 - dramFrac) / cpuFixedBudget

	statements := make([]Statement, 0, len(a.order))
	var total Statement
	total.Tenant = "TOTAL"
	total.Provider, total.Region = a.provider, a.region
	for _, tenant := range a.order {
		coreFixed, err := temporal.AttributeUsage(coreSignal, a.coreUsage[tenant])
		if err != nil {
			return nil, Statement{}, err
		}
		st := Statement{
			Tenant:      tenant,
			Provider:    a.provider,
			Region:      a.region,
			EmbodiedCPU: units.GramsCO2e(float64(coreFixed) * embodiedFracOfCore),
			Static:      units.GramsCO2e(float64(coreFixed) * (1 - embodiedFracOfCore)),
			CoreSeconds: units.CoreSeconds(a.coreUsage[tenant].Integral()),
		}
		if memSignal != nil {
			dram, err := temporal.AttributeUsage(memSignal, a.memUsage[tenant])
			if err != nil {
				return nil, Statement{}, err
			}
			st.EmbodiedDRAM = dram
		}
		st.Embodied = st.EmbodiedCPU + st.EmbodiedDRAM
		// Dynamic energy: integrate power x instantaneous grid CI.
		dyn := 0.0
		for i, p := range a.dynPower[tenant].Values {
			t := a.start + units.Seconds(float64(a.step)*(float64(i)+0.5))
			dyn += float64(units.Emissions(units.Energy(units.Watts(p), a.step), a.grid.At(t)))
		}
		st.Dynamic = units.GramsCO2e(dyn)
		statements = append(statements, st)
		total.Embodied += st.Embodied
		total.EmbodiedCPU += st.EmbodiedCPU
		total.EmbodiedDRAM += st.EmbodiedDRAM
		total.Static += st.Static
		total.Dynamic += st.Dynamic
		total.CoreSeconds += st.CoreSeconds
		recordCharge(st.Tenant, "embodied", st.Embodied)
		recordCharge(st.Tenant, "static", st.Static)
		recordCharge(st.Tenant, "dynamic", st.Dynamic)
		if a.region != "" {
			recordRegionCharge(a.region, st.Tenant, "embodied", st.Embodied)
			recordRegionCharge(a.region, st.Tenant, "static", st.Static)
			recordRegionCharge(a.region, st.Tenant, "dynamic", st.Dynamic)
		}
	}
	metricPeriodsClosed.Inc()
	metricCloseSeconds.Observe(time.Since(closeStart).Seconds())
	return statements, total, nil
}

func ceilDiv(x, unit float64) int {
	return int(math.Ceil(x / unit))
}

// emissionsOverPeriod prices an energy quantity at the period's
// time-averaged grid intensity.
func (a *Accountant) emissionsOverPeriod(e units.Joules) units.GramsCO2e {
	sum := 0.0
	for i := 0; i < a.samples; i++ {
		t := a.start + units.Seconds(float64(a.step)*(float64(i)+0.5))
		sum += float64(a.grid.At(t))
	}
	avg := units.CarbonIntensity(sum / float64(a.samples))
	return units.Emissions(e, avg)
}

func (a *Accountant) checkGrid(s *timeseries.Series) error {
	if s.Start != a.start || s.Step != a.step || s.Len() != a.samples {
		return fmt.Errorf("series grid (start %v, step %v, len %d) does not match period grid (start %v, step %v, len %d)",
			s.Start, s.Step, s.Len(), a.start, a.step, a.samples)
	}
	return nil
}

// Tenants returns the registered tenants in registration order.
func (a *Accountant) Tenants() []string { return append([]string(nil), a.order...) }

// FormatStatements renders statements as a table.
func FormatStatements(statements []Statement, total Statement) string {
	out := fmt.Sprintf("%-12s %12s %12s %12s %12s\n", "tenant", "embodied", "static", "dynamic", "total")
	rows := append(append([]Statement(nil), statements...), total)
	for _, s := range rows {
		out += fmt.Sprintf("%-12s %10.2f g %10.2f g %10.2f g %10.2f g\n",
			s.Tenant, float64(s.Embodied), float64(s.Static), float64(s.Dynamic), float64(s.Total()))
	}
	return out
}

// SortBySize orders statements by descending total footprint.
func SortBySize(statements []Statement) {
	sort.Slice(statements, func(i, j int) bool { return statements[i].Total() > statements[j].Total() })
}
