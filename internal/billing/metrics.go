package billing

import (
	"fairco2/internal/metrics"
	"fairco2/internal/units"
)

// Billing telemetry: cumulative charges by tenant and cost component, plus
// period-close counts and latency. The charge counter is the audit trail
// the exporter daemon publishes — a scraper sees every gram a tenant has
// ever been billed, monotonically.
var (
	metricPeriodsClosed = metrics.Default().NewCounter(
		"fairco2_billing_periods_closed_total",
		"Billing periods successfully priced and closed.")
	metricCharged = metrics.Default().NewCounterVec(
		"fairco2_billing_charged_gco2e_total",
		"Cumulative carbon charged at period close, by tenant and component (embodied, static, dynamic).",
		"tenant", "component")
	metricCloseSeconds = metrics.Default().NewHistogram(
		"fairco2_billing_close_seconds",
		"Wall-clock duration of pricing one billing period.",
		nil)
	// The region-labeled companion of the charge counter: only
	// region-tagged accountants (multi-region scenarios) record here, so
	// the single-datacenter exposition is unchanged.
	metricRegionCharged = metrics.Default().NewCounterVec(
		"fairco2_billing_region_charged_gco2e_total",
		"Cumulative carbon charged at period close, by region, tenant and component.",
		"region", "tenant", "component")
)

// recordCharge adds one statement component to the cumulative charge
// counter. Attribution components are non-negative by construction, but a
// counter panics on negative adds, so guard anyway: a pathological input
// must never crash the billing path.
func recordCharge(tenant, component string, amount units.GramsCO2e) {
	if amount > 0 {
		metricCharged.With(tenant, component).Add(float64(amount))
	}
}

// recordRegionCharge mirrors recordCharge on the region-labeled counter.
func recordRegionCharge(region, tenant, component string, amount units.GramsCO2e) {
	if amount > 0 {
		metricRegionCharged.With(region, tenant, component).Add(float64(amount))
	}
}
