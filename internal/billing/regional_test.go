package billing

import (
	"strings"
	"testing"

	"fairco2/internal/metrics"
	"fairco2/internal/timeseries"
)

// A region-tagged accountant prices every tenant bitwise-identically to an
// untagged one; the labels ride along on statements and metrics only.
func TestRegionalPeriodPricesIdentically(t *testing.T) {
	record := func(a *Accountant) {
		steady := timeseries.Zeros(0, 3600, 24)
		for i := range steady.Values {
			steady.Values[i] = 16
		}
		power := timeseries.Zeros(0, 3600, 24)
		for i := range power.Values {
			power.Values[i] = 80
		}
		if err := a.RecordUsage("steady", steady, power); err != nil {
			t.Fatal(err)
		}
		burst := timeseries.Zeros(0, 3600, 24)
		burst.Values[7] = 96
		if err := a.RecordUsage("burst", burst, nil); err != nil {
			t.Fatal(err)
		}
	}

	plain, err := NewAccountant(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	record(plain)
	wantStatements, wantTotal, err := plain.Close()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.Provider = "aurora"
	cfg.Region = "us-west"
	tagged, err := NewAccountant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	record(tagged)
	gotStatements, gotTotal, err := tagged.Close()
	if err != nil {
		t.Fatal(err)
	}

	if len(gotStatements) != len(wantStatements) {
		t.Fatalf("%d statements vs %d", len(gotStatements), len(wantStatements))
	}
	for i, got := range gotStatements {
		want := wantStatements[i]
		if got.Provider != "aurora" || got.Region != "us-west" {
			t.Errorf("statement %s labeled %s/%s", got.Tenant, got.Provider, got.Region)
		}
		if got.Embodied != want.Embodied || got.Static != want.Static ||
			got.Dynamic != want.Dynamic || got.CoreSeconds != want.CoreSeconds {
			t.Errorf("tenant %s priced differently under region tag: %+v vs %+v", got.Tenant, got, want)
		}
	}
	if gotTotal.Total() != wantTotal.Total() {
		t.Errorf("total %v tagged vs %v plain", gotTotal.Total(), wantTotal.Total())
	}
	if gotTotal.Region != "us-west" {
		t.Errorf("total labeled region %q", gotTotal.Region)
	}

	var sb strings.Builder
	if err := metrics.Default().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `fairco2_billing_region_charged_gco2e_total{region="us-west",tenant="steady",component="embodied"}`) {
		t.Error("region-labeled charge counter not exposed")
	}
}

func TestProviderLabelRequiresRegion(t *testing.T) {
	cfg := testConfig()
	cfg.Provider = "aurora"
	if _, err := NewAccountant(cfg); err == nil {
		t.Error("provider without region must error")
	}
}
