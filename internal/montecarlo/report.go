package montecarlo

import (
	"fmt"
	"sort"
	"strings"

	"fairco2/internal/stats"
	"fairco2/internal/workload"
)

// FormatFigure7 renders the dynamic-demand experiment in the layout of the
// paper's Figure 7: overall mean/worst deviations per method (panels a, e)
// and breakdowns by schedule length (b, f) and workload count (d, h).
func FormatFigure7(r *DemandResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — attribution fairness with dynamic demand (%d scenarios)\n", len(r.Trials))
	b.WriteString("\n(a) average deviation from ground truth, across all scenarios\n")
	writeMethodSummariesCI(&b, DemandMethods(),
		func(m string) stats.Summary { return r.Overall(m) },
		func(m string) []float64 { return r.Values(m, false) })
	b.WriteString("\n(e) worst-case (least fair single workload) deviation, across all scenarios\n")
	writeMethodSummariesCI(&b, DemandMethods(),
		func(m string) stats.Summary { return r.OverallWorst(m) },
		func(m string) []float64 { return r.Values(m, true) })

	b.WriteString("\n(b/f) mean deviation by number of time slices\n")
	writeBuckets(&b, DemandMethods(), "slices", func(m string) map[int]stats.Summary { return r.BySlices(m, false) })
	b.WriteString("\n(d/h) mean deviation by number of workloads\n")
	writeBuckets(&b, DemandMethods(), "workloads", func(m string) map[int]stats.Summary { return r.ByWorkloads(m, false) })
	return b.String()
}

// FormatFigure8 renders the colocation experiment in the layout of the
// paper's Figure 8.
func FormatFigure8(r *ColocationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — attribution fairness under interference (%d scenarios)\n", len(r.Trials))
	b.WriteString("\n(a) average deviation from ground truth, across all scenarios\n")
	writeMethodSummariesCI(&b, ColocationMethods(),
		func(m string) stats.Summary { return r.Overall(m) },
		func(m string) []float64 { return r.Values(m, false) })
	b.WriteString("\n(e) worst-case deviation, across all scenarios\n")
	writeMethodSummariesCI(&b, ColocationMethods(),
		func(m string) stats.Summary { return r.OverallWorst(m) },
		func(m string) []float64 { return r.Values(m, true) })

	b.WriteString("\n(b/f) mean deviation by historical sampling rate (partners sampled)\n")
	writeBuckets(&b, ColocationMethods(), "samples", func(m string) map[int]stats.Summary { return r.BySamples(m, false) })
	b.WriteString("\n(c/g) mean deviation by number of colocated workloads\n")
	writeBuckets(&b, ColocationMethods(), "workloads", func(m string) map[int]stats.Summary { return r.ByWorkloads(m, false) })
	b.WriteString("\n(d/h) mean deviation by grid carbon intensity (gCO2e/kWh band)\n")
	writeBuckets(&b, ColocationMethods(), "grid-ci", func(m string) map[int]stats.Summary { return r.ByGridCI(m, false) })
	return b.String()
}

// FormatFigure9 renders per-workload and per-partner deviation
// distributions (mean +/- p95) for each method — the textual equivalent of
// Figure 9's violin plots. Requires CollectPerWorkload.
func FormatFigure9(r *ColocationResult) string {
	var b strings.Builder
	b.WriteString("Figure 9 — deviation distributions by workload and by partner\n")
	for _, method := range ColocationMethods() {
		fmt.Fprintf(&b, "\n[%s] by workload (own deviation)\n", method)
		writeNameBuckets(&b, r.PerWorkloadDeviations(method))
		fmt.Fprintf(&b, "\n[%s] by partner (deviation of workloads paired with it)\n", method)
		writeNameBuckets(&b, r.PerPartnerDeviations(method))
	}
	return b.String()
}

func writeMethodSummariesCI(b *strings.Builder, methods []string, get func(string) stats.Summary, values func(string) []float64) {
	fmt.Fprintf(b, "  %-22s %8s %17s %8s %8s %8s\n", "method", "mean", "mean 95% CI", "median", "p95", "max")
	for _, m := range methods {
		s := get(m)
		ciStr := "n/a"
		if ci, err := stats.BootstrapMeanCI(values(m), 0.95, 400, 1); err == nil {
			ciStr = fmt.Sprintf("[%5.2f%%, %5.2f%%]", ci.Lo*100, ci.Hi*100)
		}
		fmt.Fprintf(b, "  %-22s %7.2f%% %17s %7.2f%% %7.2f%% %7.2f%%\n",
			m, s.Mean*100, ciStr, s.Median*100, s.P95*100, s.Max*100)
	}
}

func writeBuckets(b *strings.Builder, methods []string, label string, get func(string) map[int]stats.Summary) {
	perMethod := make(map[string]map[int]stats.Summary, len(methods))
	keySet := map[int]bool{}
	for _, m := range methods {
		perMethod[m] = get(m)
		for k := range perMethod[m] {
			keySet[k] = true
		}
	}
	keys := make([]int, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(b, "  %-10s", label)
	for _, m := range methods {
		fmt.Fprintf(b, " %22s", m)
	}
	b.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(b, "  %-10d", k)
		for _, m := range methods {
			s := perMethod[m][k]
			fmt.Fprintf(b, "   %7.2f%% (n=%5d)", s.Mean*100, s.N)
		}
		b.WriteString("\n")
	}
}

func writeNameBuckets(b *strings.Builder, m map[workload.Name][]float64) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, string(n))
	}
	sort.Strings(names)
	fmt.Fprintf(b, "  %-8s %8s %8s %8s %6s\n", "workload", "mean", "median", "p95", "n")
	for _, n := range names {
		s := stats.Summarize(m[workload.Name(n)])
		fmt.Fprintf(b, "  %-8s %7.2f%% %7.2f%% %7.2f%% %6d\n", n, s.Mean*100, s.Median*100, s.P95*100, s.N)
	}
}
