package montecarlo

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fairco2/internal/checkpoint"
	"fairco2/internal/workload"
)

// interruptSweep runs a partial checkpointed sweep that fails deterministically
// at trial failAt, leaving a snapshot of everything completed before the
// coordinator saw the error.
func interruptSweep[T any](t *testing.T, experiment, key string, total int, ck checkpoint.Spec, failAt int, run func(idx int) (T, error)) {
	t.Helper()
	boom := errors.New("injected trial failure")
	_, _, err := runSweep(context.Background(), experiment, key, total, 2, ck,
		func(idx int) (T, error) {
			if idx == failAt {
				var zero T
				return zero, boom
			}
			return run(idx)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("interrupted sweep: %v", err)
	}
}

func TestColocationResumeBitwiseIdentical(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.Trials = 30
	golden, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}

	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 4}
	interruptSweep(t, "mc-colocation", colocationConfigKey(cfg), cfg.Trials, ck, 17,
		func(idx int) (ColocationTrial, error) { return runColocationTrial(cfg, char, idx) })

	// Resume with a different worker count: scheduling must not affect
	// results, so the final sweep is still bitwise-identical to the golden.
	cfg.Workers = 3
	result, resumed, err := RunColocationCheckpointed(context.Background(), cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed == 0 || resumed >= cfg.Trials {
		t.Fatalf("resumed %d trials, want a strict partial resume", resumed)
	}
	if !reflect.DeepEqual(result.Trials, golden.Trials) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}

	var a, b bytes.Buffer
	if err := golden.WriteColocationCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := result.WriteColocationCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed CSV export not byte-for-byte identical")
	}
}

func TestDemandResumeBitwiseIdentical(t *testing.T) {
	cfg := smallDemandConfig()
	cfg.Trials = 24
	golden, err := RunDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 3}
	interruptSweep(t, "mc-demand", demandConfigKey(cfg), cfg.Trials, ck, 13,
		func(idx int) (DemandTrial, error) { return runDemandTrial(cfg, idx) })

	result, resumed, err := RunDemandCheckpointed(context.Background(), cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed == 0 || resumed >= cfg.Trials {
		t.Fatalf("resumed %d trials, want a strict partial resume", resumed)
	}
	if !reflect.DeepEqual(result.Trials, golden.Trials) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}
}

func TestResumeRejectsDifferentConfiguration(t *testing.T) {
	cfg := smallDemandConfig()
	cfg.Trials = 10
	ck := checkpoint.Spec{Dir: t.TempDir(), Every: 2}
	if _, _, err := RunDemandCheckpointed(context.Background(), cfg, ck); err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	if _, _, err := RunDemandCheckpointed(context.Background(), cfg, ck); !errors.Is(err, checkpoint.ErrStateMismatch) {
		t.Fatalf("resume with a different seed: %v, want ErrStateMismatch", err)
	}
}

func TestRunCheckpointedCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ccfg := smallColocationConfig()
	if _, _, err := RunColocationCheckpointed(ctx, ccfg, checkpoint.Spec{}); !errors.Is(err, context.Canceled) {
		t.Errorf("colocation without checkpoint: %v", err)
	}
	dcfg := smallDemandConfig()
	if _, _, err := RunDemandCheckpointed(ctx, dcfg, checkpoint.Spec{Dir: t.TempDir()}); !errors.Is(err, context.Canceled) {
		t.Errorf("demand with checkpoint: %v", err)
	}
}

func TestExportFilesMatchWriterOutput(t *testing.T) {
	cfg := smallDemandConfig()
	cfg.Trials = 10
	r, err := RunDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := r.WriteDemandCSV(&want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demand.csv")
	if err := r.ExportDemandCSVFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("file export differs from writer output")
	}
}

// TestExportFailureKeepsPreviousFile is the regression test for the old
// non-atomic export path: ExportPerWorkloadCSVFile fails when the run did not
// collect per-workload records, but only after emitting the CSV header — a
// direct os.Create implementation would have already truncated the
// destination and left a header-only stub behind. The atomic path must leave
// the previous file byte-for-byte untouched.
func TestExportFailureKeepsPreviousFile(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.Trials = 5 // CollectPerWorkload off: per-workload export will fail
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "per_workload.csv")
	previous := []byte("trial,workload,partner\n0,NBODY,CH\n")
	if err := os.WriteFile(path, previous, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := r.ExportPerWorkloadCSVFile(path); err == nil {
		t.Fatal("per-workload export without collection succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, previous) {
		t.Fatalf("failed export overwrote the destination: %q", got)
	}
}
