package montecarlo

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"fairco2/internal/checkpoint"
	"fairco2/internal/workload"
)

// The checkpointed sweep runners. Both Monte Carlo experiments are
// embarrassingly parallel over trials, and every trial derives its RNG from
// the experiment seed and the trial index — so a snapshot only needs the
// set of completed trial indices and their results, and a resumed sweep
// recomputes exactly the missing trials. The final result is byte-for-byte
// identical to an uninterrupted run: trial values round-trip exactly
// through JSON (encoding/json emits the shortest float64 representation
// that decodes to the same bits), and aggregation happens only at the end,
// in index order, on the fully populated slice.

// sweepState is the serialized progress of a sweep: the completed trial
// indices and, parallel to them, the completed trials.
type sweepState[T any] struct {
	Experiment string `json:"experiment"`
	ConfigKey  string `json:"config_key"`
	Total      int    `json:"total"`
	Done       []int  `json:"done"`
	Trials     []T    `json:"trials"`
}

// sweep is the live progress of a run, implementing checkpoint.Resumable.
type sweep[T any] struct {
	experiment string
	configKey  string
	done       []bool
	trials     []T
}

func newSweep[T any](experiment, configKey string, total int) *sweep[T] {
	return &sweep[T]{
		experiment: experiment,
		configKey:  configKey,
		done:       make([]bool, total),
		trials:     make([]T, total),
	}
}

// Snapshot implements checkpoint.Resumable.
func (s *sweep[T]) Snapshot() ([]byte, error) {
	st := sweepState[T]{Experiment: s.experiment, ConfigKey: s.configKey, Total: len(s.done)}
	for i, d := range s.done {
		if d {
			st.Done = append(st.Done, i)
			st.Trials = append(st.Trials, s.trials[i])
		}
	}
	return json.Marshal(st)
}

// Restore implements checkpoint.Resumable.
func (s *sweep[T]) Restore(payload []byte) error {
	var st sweepState[T]
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: undecodable sweep state: %v", checkpoint.ErrCorruptCheckpoint, err)
	}
	if st.Experiment != s.experiment {
		return fmt.Errorf("%w: snapshot is a %q run, this is %q", checkpoint.ErrStateMismatch, st.Experiment, s.experiment)
	}
	if st.ConfigKey != s.configKey {
		return fmt.Errorf("%w: snapshot config %s, run config %s", checkpoint.ErrStateMismatch, st.ConfigKey, s.configKey)
	}
	if st.Total != len(s.done) || len(st.Done) != len(st.Trials) {
		return fmt.Errorf("%w: inconsistent sweep state", checkpoint.ErrCorruptCheckpoint)
	}
	for k, i := range st.Done {
		if i < 0 || i >= len(s.done) {
			return fmt.Errorf("%w: trial index %d out of range", checkpoint.ErrCorruptCheckpoint, i)
		}
		s.done[i] = true
		s.trials[i] = st.Trials[k]
	}
	return nil
}

// resumedCount returns how many trials a restored snapshot provided.
func (s *sweep[T]) resumedCount() int {
	n := 0
	for _, d := range s.done {
		if d {
			n++
		}
	}
	return n
}

// runSweep executes trials 0..total-1 on a worker pool with optional
// checkpointing, honoring ctx between trials. It returns the full trial
// slice and the number of trials recovered from a snapshot.
func runSweep[T any](ctx context.Context, experiment, configKey string, total, workers int, ck checkpoint.Spec, run func(idx int) (T, error)) ([]T, int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sw := newSweep[T](experiment, configKey, total)
	var store *checkpoint.Store
	resumed := 0
	if ck.Enabled() {
		var err error
		store, err = checkpoint.Open(ck.Dir, experiment)
		if err != nil {
			return nil, 0, err
		}
		if ok, err := store.RestoreLatest(sw); err != nil {
			return nil, 0, err
		} else if ok {
			resumed = sw.resumedCount()
		}
	}
	rc := checkpoint.RunConfig{
		Units:   total,
		Workers: workers,
		Every:   ck.Every,
		Skip:    func(i int) bool { return sw.done[i] },
		Run: func(i int) error {
			t, err := run(i)
			if err != nil {
				return err
			}
			sw.trials[i] = t
			return nil
		},
		Complete: func(i int) {
			sw.done[i] = true
			if store != nil {
				store.TouchAge()
			}
		},
	}
	if store != nil {
		rc.Save = func() error { return store.SaveResumable(sw) }
		rc.HoldDir = ck.Dir
	}
	if err := checkpoint.RunUnits(ctx, rc); err != nil {
		return nil, resumed, fmt.Errorf("montecarlo: %s sweep: %w", experiment, err)
	}
	return sw.trials, resumed, nil
}

// colocationConfigKey fingerprints every configuration field that changes
// trial results. Workers is deliberately excluded: the trial pool size only
// changes scheduling, never a result, so a sweep may resume with different
// parallelism. ShapleyParallelism IS included — the sampled ground-truth
// estimators shard their sample budget by worker count, so different
// settings are different (equally valid) experiments.
func colocationConfigKey(cfg ColocationConfig) string {
	return fmt.Sprintf("coloc/trials=%d,seed=%d,wl=[%d,%d],ci=[%g,%g],samples=[%d,%d],gt=%d,shapley-par=%d,perwl=%t,cap=%d,draws=%d",
		cfg.Trials, cfg.Seed, cfg.MinWorkloads, cfg.MaxWorkloads, cfg.MinGridCI, cfg.MaxGridCI,
		cfg.MinSamples, cfg.MaxSamples, cfg.GroundTruthSamples, cfg.ShapleyParallelism,
		cfg.CollectPerWorkload, cfg.NodeCapacity, cfg.FactorDraws)
}

// demandConfigKey is colocationConfigKey's analogue for the demand sweep.
func demandConfigKey(cfg DemandConfig) string {
	return fmt.Sprintf("demand/trials=%d,seed=%d,gen=%+v,budget=%g",
		cfg.Trials, cfg.Seed, cfg.Generator, float64(cfg.Budget))
}

// RunColocationCheckpointed is RunColocation with context cancellation and
// crash-safe checkpoint/resume. On SIGINT-style cancellation it finishes
// in-flight trials, flushes a final snapshot and returns an error wrapping
// ctx.Err(); rerunning with the same configuration and checkpoint
// directory resumes exactly where it stopped and produces a result
// bitwise-identical to an uninterrupted run. The second return value is
// the number of trials recovered from the snapshot.
func RunColocationCheckpointed(ctx context.Context, cfg ColocationConfig, ck checkpoint.Spec) (*ColocationResult, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		return nil, 0, err
	}
	if cfg.MaxSamples > len(char.Profiles) {
		return nil, 0, fmt.Errorf("montecarlo: max samples %d exceeds suite size %d", cfg.MaxSamples, len(char.Profiles))
	}
	trials, resumed, err := runSweep(ctx, "mc-colocation", colocationConfigKey(cfg), cfg.Trials, cfg.Workers, ck,
		func(idx int) (ColocationTrial, error) { return runColocationTrial(cfg, char, idx) })
	if err != nil {
		return nil, resumed, err
	}
	return &ColocationResult{Config: cfg, Trials: trials}, resumed, nil
}

// RunDemandCheckpointed is RunDemand with context cancellation and
// crash-safe checkpoint/resume; see RunColocationCheckpointed.
func RunDemandCheckpointed(ctx context.Context, cfg DemandConfig, ck checkpoint.Spec) (*DemandResult, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	trials, resumed, err := runSweep(ctx, "mc-demand", demandConfigKey(cfg), cfg.Trials, cfg.Workers, ck,
		func(idx int) (DemandTrial, error) { return runDemandTrial(cfg, idx) })
	if err != nil {
		return nil, resumed, err
	}
	return &DemandResult{Config: cfg, Trials: trials}, resumed, nil
}
