package montecarlo

import (
	"strings"
	"testing"

	"fairco2/internal/schedule"
)

func smallDemandConfig() DemandConfig {
	cfg := DefaultDemandConfig()
	cfg.Trials = 60
	cfg.Generator.MaxWorkloads = 10
	return cfg
}

func smallColocationConfig() ColocationConfig {
	cfg := DefaultColocationConfig()
	cfg.Trials = 60
	cfg.MaxWorkloads = 20
	cfg.GroundTruthSamples = 400
	return cfg
}

func TestRunDemandReproducesFigure7Ordering(t *testing.T) {
	r, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 60 {
		t.Fatalf("got %d trials", len(r.Trials))
	}
	rup := r.Overall(MethodRUP).Mean
	dp := r.Overall(MethodDemand).Mean
	fair := r.Overall(MethodFairCO2).Mean
	t.Logf("Figure 7a: RUP %.1f%%, demand-prop %.1f%%, Fair-CO2 %.1f%%", rup*100, dp*100, fair*100)
	if !(fair < dp && dp < rup) {
		t.Errorf("method ordering violated: fair %v, demand %v, rup %v", fair, dp, rup)
	}
	// Worst-case ordering too (Figure 7e).
	if !(r.OverallWorst(MethodFairCO2).Mean < r.OverallWorst(MethodRUP).Mean) {
		t.Error("worst-case ordering violated")
	}
}

func TestRunDemandDeterministic(t *testing.T) {
	a, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		for _, m := range DemandMethods() {
			if a.Trials[i].MeanDev[m] != b.Trials[i].MeanDev[m] {
				t.Fatalf("trial %d method %s not reproducible", i, m)
			}
		}
	}
}

func TestRunDemandBuckets(t *testing.T) {
	r, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	bySlices := r.BySlices(MethodRUP, false)
	gen := r.Config.Generator
	total := 0
	for k, s := range bySlices {
		if k < gen.MinSlices || k > gen.MaxSlices {
			t.Errorf("slice bucket %d outside generator bounds", k)
		}
		total += s.N
	}
	if total != len(r.Trials) {
		t.Errorf("slice buckets cover %d trials, want %d", total, len(r.Trials))
	}
	byW := r.ByWorkloads(MethodFairCO2, true)
	if len(byW) == 0 {
		t.Error("no workload buckets")
	}
	keys := SortedKeys(byW)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Error("SortedKeys not ascending")
		}
	}
}

func TestRunDemandErrors(t *testing.T) {
	cfg := smallDemandConfig()
	cfg.Trials = 0
	if _, err := RunDemand(cfg); err == nil {
		t.Error("zero trials should error")
	}
	cfg = smallDemandConfig()
	cfg.Budget = 0
	if _, err := RunDemand(cfg); err == nil {
		t.Error("zero budget should error")
	}
	cfg = smallDemandConfig()
	cfg.Generator = schedule.GeneratorConfig{}
	if _, err := RunDemand(cfg); err == nil {
		t.Error("invalid generator should error")
	}
}

func TestRunColocationReproducesFigure8(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.CollectPerWorkload = true
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rup := r.Overall(MethodRUP).Mean
	fair := r.Overall(MethodFairCO2).Mean
	t.Logf("Figure 8a: RUP %.2f%%, Fair-CO2 %.2f%%", rup*100, fair*100)
	if fair >= rup {
		t.Errorf("Fair-CO2 %v should beat RUP %v", fair, rup)
	}
	rupWorst := r.OverallWorst(MethodRUP).Mean
	fairWorst := r.OverallWorst(MethodFairCO2).Mean
	t.Logf("Figure 8e: worst RUP %.2f%%, Fair-CO2 %.2f%%", rupWorst*100, fairWorst*100)
	if fairWorst >= rupWorst {
		t.Error("worst-case ordering violated")
	}
	// Paper shape: Fair-CO2's advantage should be a multiple, not marginal.
	if rup/fair < 2 {
		t.Errorf("expected Fair-CO2 to be at least 2x fairer; got RUP %v vs Fair %v", rup, fair)
	}
}

func TestColocationScenarioShapes(t *testing.T) {
	cfg := smallColocationConfig()
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, trial := range r.Trials {
		if trial.N%2 != 0 {
			t.Fatalf("trial %d has odd size %d", i, trial.N)
		}
		if trial.N < cfg.MinWorkloads || trial.N > cfg.MaxWorkloads+1 {
			t.Fatalf("trial %d size %d outside bounds", i, trial.N)
		}
		if trial.GridCI < cfg.MinGridCI || trial.GridCI > cfg.MaxGridCI {
			t.Fatalf("trial %d grid CI %v outside bounds", i, trial.GridCI)
		}
		if trial.Samples < cfg.MinSamples || trial.Samples > cfg.MaxSamples {
			t.Fatalf("trial %d samples %d outside bounds", i, trial.Samples)
		}
	}
}

func TestColocationBucketsAndFigure9(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.CollectPerWorkload = true
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bySamples := r.BySamples(MethodFairCO2, false)
	if len(bySamples) < 3 {
		t.Errorf("expected several sampling buckets, got %d", len(bySamples))
	}
	byCI := r.ByGridCI(MethodRUP, true)
	if len(byCI) == 0 {
		t.Error("no grid CI buckets")
	}
	perW := r.PerWorkloadDeviations(MethodFairCO2)
	if len(perW) < 5 {
		t.Errorf("expected many workloads in Figure 9 data, got %d", len(perW))
	}
	perP := r.PerPartnerDeviations(MethodRUP)
	if len(perP) < 5 {
		t.Errorf("expected many partners in Figure 9 data, got %d", len(perP))
	}
	// Without collection the maps are empty.
	r2, err := RunColocation(smallColocationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.PerWorkloadDeviations(MethodRUP)) != 0 {
		t.Error("per-workload data should be absent without CollectPerWorkload")
	}
}

func TestColocationConfigValidate(t *testing.T) {
	bad := []func(*ColocationConfig){
		func(c *ColocationConfig) { c.Trials = 0 },
		func(c *ColocationConfig) { c.MinWorkloads = 1 },
		func(c *ColocationConfig) { c.MaxWorkloads = 2; c.MinWorkloads = 4 },
		func(c *ColocationConfig) { c.MinGridCI = -1 },
		func(c *ColocationConfig) { c.MaxGridCI = 0; c.MinGridCI = 10 },
		func(c *ColocationConfig) { c.MinSamples = 0 },
		func(c *ColocationConfig) { c.MaxSamples = 0 },
		func(c *ColocationConfig) { c.GroundTruthSamples = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultColocationConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	cfg := DefaultColocationConfig()
	cfg.MaxSamples = 99
	if _, err := RunColocation(cfg); err == nil {
		t.Error("max samples above suite size should error")
	}
}

func TestRunColocationKWayCapacity(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.Trials = 30
	cfg.MaxWorkloads = 12
	cfg.NodeCapacity = 3
	cfg.FactorDraws = 300
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rup := r.Overall(MethodRUP).Mean
	fair := r.Overall(MethodFairCO2).Mean
	t.Logf("capacity-3 MC: RUP %.2f%%, Fair-CO2 %.2f%%", rup*100, fair*100)
	if fair >= rup {
		t.Errorf("Fair-CO2 %v should beat RUP %v at capacity 3", fair, rup)
	}
}

func TestColocationConfigCapacityValidation(t *testing.T) {
	cfg := DefaultColocationConfig()
	cfg.NodeCapacity = 1
	if err := cfg.Validate(); err == nil {
		t.Error("capacity 1 should be rejected")
	}
	cfg = DefaultColocationConfig()
	cfg.NodeCapacity = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative capacity should be rejected")
	}
	cfg = DefaultColocationConfig()
	cfg.NodeCapacity = 3
	cfg.FactorDraws = 0
	if err := cfg.Validate(); err == nil {
		t.Error("k-way without factor draws should be rejected")
	}
}

func TestRunDemandPropagatesTrialErrors(t *testing.T) {
	// Schedules beyond the exact Shapley player limit must surface as an
	// error from the harness, not a hang or a silent skip.
	cfg := smallDemandConfig()
	cfg.Trials = 40
	cfg.Generator.MaxWorkloads = 40
	cfg.Generator.MinSlices, cfg.Generator.MaxSlices = 9, 9
	cfg.Generator.MaxConcurrent = 5
	cfg.Generator.MinConcurrent = 5
	cfg.Generator.MinDuration, cfg.Generator.MaxDuration = 1, 1
	if _, err := RunDemand(cfg); err == nil {
		t.Error("expected ground-truth player-limit error to propagate")
	}
}

func TestReportFormatting(t *testing.T) {
	dr, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	f7 := FormatFigure7(dr)
	for _, want := range []string{"Figure 7", "(a)", "(e)", "rup-baseline", "fair-co2", "slices"} {
		if !strings.Contains(f7, want) {
			t.Errorf("Figure 7 report missing %q", want)
		}
	}
	cfg := smallColocationConfig()
	cfg.Trials = 30
	cfg.CollectPerWorkload = true
	cr, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f8 := FormatFigure8(cr)
	for _, want := range []string{"Figure 8", "sampling rate", "grid carbon intensity"} {
		if !strings.Contains(f8, want) {
			t.Errorf("Figure 8 report missing %q", want)
		}
	}
	f9 := FormatFigure9(cr)
	for _, want := range []string{"Figure 9", "by partner", "NBODY"} {
		if !strings.Contains(f9, want) {
			t.Errorf("Figure 9 report missing %q", want)
		}
	}
}
