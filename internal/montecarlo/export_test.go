package montecarlo

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestWriteDemandCSV(t *testing.T) {
	r, err := RunDemand(smallDemandConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteDemandCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(r.Trials)+1 {
		t.Fatalf("%d rows for %d trials", len(records), len(r.Trials))
	}
	if records[0][0] != "trial" || len(records[0]) != 3+2*len(DemandMethods()) {
		t.Fatalf("header %v", records[0])
	}
	// Spot-check one value round-trips.
	v, err := strconv.ParseFloat(records[1][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != r.Trials[0].MeanDev[DemandMethods()[0]] {
		t.Errorf("value %v != %v", v, r.Trials[0].MeanDev[DemandMethods()[0]])
	}
}

func TestWriteColocationCSV(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.Trials = 20
	cfg.CollectPerWorkload = true
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteColocationCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 21 {
		t.Fatalf("%d rows", len(records))
	}

	var per bytes.Buffer
	if err := r.WritePerWorkloadCSV(&per); err != nil {
		t.Fatal(err)
	}
	perRecords, err := csv.NewReader(&per).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1
	for _, trial := range r.Trials {
		wantRows += len(trial.PerWorkload)
	}
	if len(perRecords) != wantRows {
		t.Fatalf("per-workload rows %d, want %d", len(perRecords), wantRows)
	}
}

func TestWritePerWorkloadCSVWithoutCollection(t *testing.T) {
	cfg := smallColocationConfig()
	cfg.Trials = 5
	r, err := RunColocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WritePerWorkloadCSV(&buf); err == nil {
		t.Error("expected error without CollectPerWorkload")
	}
}
