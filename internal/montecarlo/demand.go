// Package montecarlo implements the paper's two Monte Carlo evaluation
// harnesses (§6.3): randomized dynamic-demand schedules (Figure 7) and
// randomized colocation scenarios (Figures 8 and 9). Trials run on a
// worker pool; every trial derives its RNG from the experiment seed and
// the trial index, so results are reproducible regardless of scheduling.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"fairco2/internal/attribution"
	"fairco2/internal/checkpoint"
	"fairco2/internal/schedule"
	"fairco2/internal/stats"
	"fairco2/internal/units"
)

// Method names used in result maps.
const (
	MethodRUP     = "rup-baseline"
	MethodDemand  = "demand-proportional"
	MethodFairCO2 = "fair-co2"
)

// DemandConfig parameterizes the dynamic-demand experiment.
type DemandConfig struct {
	// Trials is the number of random schedules (paper: 10,000).
	Trials int
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Seed makes the experiment reproducible.
	Seed int64
	// Generator configures random schedules.
	Generator schedule.GeneratorConfig
	// Budget is the embodied carbon attributed per schedule; only the
	// relative deviations matter, so any positive value works.
	Budget units.GramsCO2e
}

// DefaultDemandConfig returns a laptop-scale configuration (500 trials,
// up to 14 workloads); raise Trials and Generator.MaxWorkloads for paper
// scale.
func DefaultDemandConfig() DemandConfig {
	return DemandConfig{
		Trials:    500,
		Seed:      1,
		Generator: schedule.DefaultGeneratorConfig(),
		Budget:    1e6,
	}
}

// DemandTrial is the outcome of one random schedule.
type DemandTrial struct {
	// Slices and Workloads describe the generated schedule.
	Slices    int
	Workloads int
	// MeanDev and WorstDev map method name to that scenario's average and
	// maximum per-workload deviation from the ground truth.
	MeanDev  map[string]float64
	WorstDev map[string]float64
}

// DemandResult aggregates all trials.
type DemandResult struct {
	Config DemandConfig
	Trials []DemandTrial
}

// Validate checks the configuration.
func (c DemandConfig) Validate() error {
	if c.Trials < 1 {
		return errors.New("montecarlo: need at least one trial")
	}
	if err := c.Generator.Validate(); err != nil {
		return err
	}
	if c.Budget <= 0 {
		return errors.New("montecarlo: budget must be positive")
	}
	return nil
}

// RunDemand executes the dynamic-demand Monte Carlo experiment. It is
// RunDemandCheckpointed without cancellation or checkpointing.
func RunDemand(cfg DemandConfig) (*DemandResult, error) {
	r, _, err := RunDemandCheckpointed(context.Background(), cfg, checkpoint.Spec{})
	return r, err
}

func runDemandTrial(cfg DemandConfig, idx int) (DemandTrial, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*1_000_003))
	s, err := schedule.Generate(cfg.Generator, rng)
	if err != nil {
		return DemandTrial{}, fmt.Errorf("montecarlo: trial %d: %w", idx, err)
	}
	gt, err := attribution.GroundTruth{}.Attribute(s, cfg.Budget)
	if err != nil {
		return DemandTrial{}, fmt.Errorf("montecarlo: trial %d ground truth: %w", idx, err)
	}
	methods := map[string]attribution.Method{
		MethodRUP:     attribution.RUPBaseline{},
		MethodDemand:  attribution.DemandProportional{},
		MethodFairCO2: attribution.TemporalShapley{},
	}
	trial := DemandTrial{
		Slices:    s.Slices,
		Workloads: len(s.Workloads),
		MeanDev:   make(map[string]float64, len(methods)),
		WorstDev:  make(map[string]float64, len(methods)),
	}
	for name, m := range methods {
		attr, err := m.Attribute(s, cfg.Budget)
		if err != nil {
			return DemandTrial{}, fmt.Errorf("montecarlo: trial %d %s: %w", idx, name, err)
		}
		mean, err := attribution.MeanDeviation(gt, attr)
		if err != nil {
			return DemandTrial{}, err
		}
		worst, err := attribution.WorstDeviation(gt, attr)
		if err != nil {
			return DemandTrial{}, err
		}
		trial.MeanDev[name] = mean
		trial.WorstDev[name] = worst
	}
	return trial, nil
}

// DemandMethods lists the method names present in demand results, in
// presentation order.
func DemandMethods() []string { return []string{MethodRUP, MethodDemand, MethodFairCO2} }

// Values returns a method's raw per-scenario deviations (mean or worst),
// for custom statistics such as bootstrap confidence intervals.
func (r *DemandResult) Values(method string, worst bool) []float64 {
	return r.collect(method, worst, func(DemandTrial) bool { return true })
}

// Overall summarizes a method's per-scenario mean deviations (Figure 7a).
func (r *DemandResult) Overall(method string) stats.Summary {
	return stats.Summarize(r.collect(method, false, func(DemandTrial) bool { return true }))
}

// OverallWorst summarizes a method's per-scenario worst-case deviations
// (Figure 7e).
func (r *DemandResult) OverallWorst(method string) stats.Summary {
	return stats.Summarize(r.collect(method, true, func(DemandTrial) bool { return true }))
}

// BySlices buckets a method's deviations by schedule length (Figure 7b/f).
func (r *DemandResult) BySlices(method string, worst bool) map[int]stats.Summary {
	return r.bucket(method, worst, func(t DemandTrial) int { return t.Slices })
}

// ByWorkloads buckets a method's deviations by workload count (Figure 7d/h).
func (r *DemandResult) ByWorkloads(method string, worst bool) map[int]stats.Summary {
	return r.bucket(method, worst, func(t DemandTrial) int { return t.Workloads })
}

func (r *DemandResult) collect(method string, worst bool, keep func(DemandTrial) bool) []float64 {
	var out []float64
	for _, t := range r.Trials {
		if !keep(t) {
			continue
		}
		if worst {
			out = append(out, t.WorstDev[method])
		} else {
			out = append(out, t.MeanDev[method])
		}
	}
	return out
}

func (r *DemandResult) bucket(method string, worst bool, key func(DemandTrial) int) map[int]stats.Summary {
	groups := map[int][]float64{}
	for _, t := range r.Trials {
		v := t.MeanDev[method]
		if worst {
			v = t.WorstDev[method]
		}
		k := key(t)
		groups[k] = append(groups[k], v)
	}
	out := make(map[int]stats.Summary, len(groups))
	for k, vs := range groups {
		out[k] = stats.Summarize(vs)
	}
	return out
}

// SortedKeys returns the bucket keys of a summary map in ascending order.
func SortedKeys(m map[int]stats.Summary) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
