package montecarlo

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fairco2/internal/checkpoint"
)

// WriteDemandCSV exports one row per trial of the dynamic-demand
// experiment — the analogue of the paper artifact's stored simulation
// results, for external plotting.
func (r *DemandResult) WriteDemandCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"trial", "slices", "workloads"}
	for _, m := range DemandMethods() {
		header = append(header, m+"_mean_dev", m+"_worst_dev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, trial := range r.Trials {
		rec := []string{
			strconv.Itoa(i),
			strconv.Itoa(trial.Slices),
			strconv.Itoa(trial.Workloads),
		}
		for _, m := range DemandMethods() {
			rec = append(rec,
				formatFloat(trial.MeanDev[m]),
				formatFloat(trial.WorstDev[m]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteColocationCSV exports one row per trial of the colocation
// experiment.
func (r *ColocationResult) WriteColocationCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"trial", "workloads", "grid_ci", "samples"}
	for _, m := range ColocationMethods() {
		header = append(header, m+"_mean_dev", m+"_worst_dev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, trial := range r.Trials {
		rec := []string{
			strconv.Itoa(i),
			strconv.Itoa(trial.N),
			formatFloat(trial.GridCI),
			strconv.Itoa(trial.Samples),
		}
		for _, m := range ColocationMethods() {
			rec = append(rec,
				formatFloat(trial.MeanDev[m]),
				formatFloat(trial.WorstDev[m]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerWorkloadCSV exports the Figure 9 per-workload records (requires
// CollectPerWorkload).
func (r *ColocationResult) WritePerWorkloadCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"trial", "workload", "partner"}
	for _, m := range ColocationMethods() {
		header = append(header, m+"_dev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	wrote := false
	for i, trial := range r.Trials {
		for _, o := range trial.PerWorkload {
			rec := []string{strconv.Itoa(i), string(o.Workload), string(o.Partner)}
			for _, m := range ColocationMethods() {
				rec = append(rec, formatFloat(o.Dev[m]))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
			wrote = true
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if !wrote {
		return fmt.Errorf("montecarlo: no per-workload records (run with CollectPerWorkload)")
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// The file-based exports write atomically — temp file in the destination
// directory, fsync, rename — so a crash or SIGKILL mid-export never leaves
// a truncated CSV where a previous (or partial) result file was expected:
// the destination either keeps its old content or receives the complete new
// file. These are what the CLIs use for -out.

// ExportDemandCSVFile atomically writes WriteDemandCSV's output to path.
func (r *DemandResult) ExportDemandCSVFile(path string) error {
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error { return r.WriteDemandCSV(w) })
}

// ExportColocationCSVFile atomically writes WriteColocationCSV's output to
// path.
func (r *ColocationResult) ExportColocationCSVFile(path string) error {
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error { return r.WriteColocationCSV(w) })
}

// ExportPerWorkloadCSVFile atomically writes WritePerWorkloadCSV's output
// to path (requires CollectPerWorkload).
func (r *ColocationResult) ExportPerWorkloadCSVFile(path string) error {
	return checkpoint.WriteFileAtomic(path, func(w io.Writer) error { return r.WritePerWorkloadCSV(w) })
}
