package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"fairco2/internal/attribution"
	"fairco2/internal/checkpoint"
	"fairco2/internal/colocation"
	"fairco2/internal/stats"
	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// ColocationConfig parameterizes the colocation-scenario experiment
// (paper: 10,000 scenarios of 4-100 workloads, grid CI 0-1000 gCO2e/kWh,
// historical sampling 1-15 partners).
type ColocationConfig struct {
	// Trials is the number of random scenarios.
	Trials int
	// Workers bounds parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Seed makes the experiment reproducible.
	Seed int64
	// MinWorkloads and MaxWorkloads bound scenario sizes; sizes are drawn
	// uniformly and rounded down to even so every workload is paired.
	MinWorkloads, MaxWorkloads int
	// MinGridCI and MaxGridCI bound the per-scenario grid carbon
	// intensity in gCO2e/kWh.
	MinGridCI, MaxGridCI float64
	// MinSamples and MaxSamples bound the per-scenario historical
	// sampling rate (number of partners conditioning each profile).
	MinSamples, MaxSamples int
	// GroundTruthSamples is the permutation sample count for scenarios
	// too large for exact enumeration.
	GroundTruthSamples int
	// ShapleyParallelism shards each trial's ground-truth permutation
	// samples across workers (see colocation.GroundTruthConfig). The
	// default 0 keeps the serial estimator — trials already run
	// concurrently, so inner parallelism only helps when Trials is
	// small relative to the core count.
	ShapleyParallelism int
	// CollectPerWorkload retains per-workload deviations and partner
	// identities for the Figure 9 distributions (costs memory).
	CollectPerWorkload bool
	// NodeCapacity is the number of tenants per node; 0 or 2 gives the
	// paper's pairwise setting, higher values use the k-way extension
	// (historical factors then come from GroupedFactors with
	// FactorDraws random colocations per workload).
	NodeCapacity int
	// FactorDraws is the history size for k-way factors (capacity > 2).
	FactorDraws int
}

// DefaultColocationConfig returns a laptop-scale configuration (500
// scenarios, up to 40 workloads); raise Trials/MaxWorkloads for paper
// scale.
func DefaultColocationConfig() ColocationConfig {
	return ColocationConfig{
		Trials:             500,
		Seed:               1,
		MinWorkloads:       4,
		MaxWorkloads:       40,
		MinGridCI:          0,
		MaxGridCI:          1000,
		MinSamples:         1,
		MaxSamples:         15,
		GroundTruthSamples: 1500,
	}
}

// Validate checks the configuration.
func (c ColocationConfig) Validate() error {
	switch {
	case c.Trials < 1:
		return errors.New("montecarlo: need at least one trial")
	case c.MinWorkloads < 2 || c.MaxWorkloads < c.MinWorkloads:
		return errors.New("montecarlo: invalid workload bounds")
	case c.MinGridCI < 0 || c.MaxGridCI < c.MinGridCI:
		return errors.New("montecarlo: invalid grid CI bounds")
	case c.MinSamples < 1 || c.MaxSamples < c.MinSamples:
		return errors.New("montecarlo: invalid sampling bounds")
	case c.GroundTruthSamples < 1:
		return errors.New("montecarlo: ground-truth samples must be positive")
	case c.NodeCapacity < 0 || c.NodeCapacity == 1:
		return errors.New("montecarlo: node capacity must be 0 (pairwise) or >= 2")
	case c.NodeCapacity > 2 && c.FactorDraws < 1:
		return errors.New("montecarlo: k-way capacity needs positive factor draws")
	}
	return nil
}

// WorkloadOutcome records one workload's deviation in one scenario, for the
// Figure 9 per-workload and per-partner distributions.
type WorkloadOutcome struct {
	// Workload and Partner are suite workload names; Partner is empty for
	// an unpaired (odd tail) workload.
	Workload workload.Name
	Partner  workload.Name
	// Dev maps method name to this workload's relative deviation.
	Dev map[string]float64
}

// ColocationTrial is the outcome of one random scenario.
type ColocationTrial struct {
	N       int
	GridCI  float64
	Samples int
	// MeanDev and WorstDev map method name to scenario-level deviations.
	MeanDev  map[string]float64
	WorstDev map[string]float64
	// PerWorkload is populated when CollectPerWorkload is set.
	PerWorkload []WorkloadOutcome
}

// ColocationResult aggregates all trials.
type ColocationResult struct {
	Config ColocationConfig
	Trials []ColocationTrial
}

// ColocationMethods lists the method names present in colocation results.
func ColocationMethods() []string { return []string{MethodRUP, MethodFairCO2} }

// RunColocation executes the colocation Monte Carlo experiment. It is
// RunColocationCheckpointed without cancellation or checkpointing.
func RunColocation(cfg ColocationConfig) (*ColocationResult, error) {
	r, _, err := RunColocationCheckpointed(context.Background(), cfg, checkpoint.Spec{})
	return r, err
}

func runColocationTrial(cfg ColocationConfig, char *workload.Characterization, idx int) (ColocationTrial, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*1_000_003))
	n := cfg.MinWorkloads + rng.Intn(cfg.MaxWorkloads-cfg.MinWorkloads+1)
	if n%2 != 0 {
		n++ // keep every workload paired, as in the paper's pair scenarios
	}
	ci := cfg.MinGridCI + rng.Float64()*(cfg.MaxGridCI-cfg.MinGridCI)
	samples := cfg.MinSamples + rng.Intn(cfg.MaxSamples-cfg.MinSamples+1)

	env, err := colocation.NewEnvironment(units.CarbonIntensity(ci), char)
	if err != nil {
		return ColocationTrial{}, err
	}
	scen, err := colocation.NewRandomScenario(env, n, rng)
	if err != nil {
		return ColocationTrial{}, err
	}
	gtCfg := colocation.DefaultGroundTruthConfig(rng)
	gtCfg.Samples = cfg.GroundTruthSamples
	gtCfg.Parallelism = cfg.ShapleyParallelism

	var gt, rup, fair []float64
	if cfg.NodeCapacity > 2 {
		// In k-way mode the pairwise sampling-rate axis is replaced by
		// FactorDraws (random historical colocations per factor); the
		// trial's Samples field still records the drawn rate for
		// bucketing but does not alter the factors.
		gt, err = colocation.GroundTruthGrouped(scen, cfg.NodeCapacity, gtCfg)
		if err != nil {
			return ColocationTrial{}, fmt.Errorf("montecarlo: trial %d grouped ground truth: %w", idx, err)
		}
		rup, err = colocation.RUPGrouped(scen, cfg.NodeCapacity)
		if err != nil {
			return ColocationTrial{}, err
		}
		var factors []colocation.Factor
		factors, err = colocation.GroupedFactors(scen, cfg.NodeCapacity, cfg.FactorDraws, rng)
		if err != nil {
			return ColocationTrial{}, err
		}
		fair, err = colocation.FairCO2Grouped(scen, cfg.NodeCapacity, factors)
		if err != nil {
			return ColocationTrial{}, err
		}
	} else {
		gt, err = colocation.GroundTruth(scen, gtCfg)
		if err != nil {
			return ColocationTrial{}, fmt.Errorf("montecarlo: trial %d ground truth: %w", idx, err)
		}
		rup, err = colocation.RUP(scen)
		if err != nil {
			return ColocationTrial{}, err
		}
		var factors []colocation.Factor
		factors, err = colocation.SampledHistoryFactors(scen, samples, rng)
		if err != nil {
			return ColocationTrial{}, err
		}
		fair, err = colocation.FairCO2(scen, factors)
		if err != nil {
			return ColocationTrial{}, err
		}
	}

	trial := ColocationTrial{
		N:       n,
		GridCI:  ci,
		Samples: samples,
		MeanDev: map[string]float64{}, WorstDev: map[string]float64{},
	}
	attrs := map[string][]float64{MethodRUP: rup, MethodFairCO2: fair}
	for name, attr := range attrs {
		mean, err := attribution.MeanDeviation(gt, attr)
		if err != nil {
			return ColocationTrial{}, err
		}
		worst, err := attribution.WorstDeviation(gt, attr)
		if err != nil {
			return ColocationTrial{}, err
		}
		trial.MeanDev[name] = mean
		trial.WorstDev[name] = worst
	}
	if cfg.CollectPerWorkload {
		rupDevs, err := attribution.Deviations(gt, rup)
		if err != nil {
			return ColocationTrial{}, err
		}
		fairDevs, err := attribution.Deviations(gt, fair)
		if err != nil {
			return ColocationTrial{}, err
		}
		trial.PerWorkload = make([]WorkloadOutcome, n)
		for k := 0; k < n; k++ {
			out := WorkloadOutcome{
				Workload: char.Profiles[scen.Members[k]].Name,
				Dev: map[string]float64{
					MethodRUP:     rupDevs[k],
					MethodFairCO2: fairDevs[k],
				},
			}
			if p := scen.PartnerOf(k); p >= 0 {
				out.Partner = char.Profiles[scen.Members[p]].Name
			}
			trial.PerWorkload[k] = out
		}
	}
	return trial, nil
}

// Values returns a method's raw per-scenario deviations (mean or worst).
func (r *ColocationResult) Values(method string, worst bool) []float64 {
	return r.collect(method, worst, nil)
}

// Overall summarizes a method's scenario-mean deviations (Figure 8a).
func (r *ColocationResult) Overall(method string) stats.Summary {
	return stats.Summarize(r.collect(method, false, nil))
}

// OverallWorst summarizes a method's scenario-worst deviations (Figure 8e).
func (r *ColocationResult) OverallWorst(method string) stats.Summary {
	return stats.Summarize(r.collect(method, true, nil))
}

// BySamples buckets deviations by historical sampling rate (Figure 8b/f).
func (r *ColocationResult) BySamples(method string, worst bool) map[int]stats.Summary {
	return r.bucket(method, worst, func(t ColocationTrial) int { return t.Samples })
}

// ByWorkloads buckets deviations by scenario size (Figure 8c/g), grouping
// sizes into buckets of width 10 to keep panels readable.
func (r *ColocationResult) ByWorkloads(method string, worst bool) map[int]stats.Summary {
	return r.bucket(method, worst, func(t ColocationTrial) int { return (t.N / 10) * 10 })
}

// ByGridCI buckets deviations by grid carbon intensity in 200-gCO2e/kWh
// bands (Figure 8d/h).
func (r *ColocationResult) ByGridCI(method string, worst bool) map[int]stats.Summary {
	return r.bucket(method, worst, func(t ColocationTrial) int { return int(t.GridCI/200) * 200 })
}

// PerWorkloadDeviations collects every per-workload deviation of a method,
// grouped by the workload's own name (Figure 9 top row).
func (r *ColocationResult) PerWorkloadDeviations(method string) map[workload.Name][]float64 {
	out := map[workload.Name][]float64{}
	for _, t := range r.Trials {
		for _, o := range t.PerWorkload {
			out[o.Workload] = append(out[o.Workload], o.Dev[method])
		}
	}
	return out
}

// PerPartnerDeviations collects every per-workload deviation of a method,
// grouped by the partner's name (Figure 9 bottom row).
func (r *ColocationResult) PerPartnerDeviations(method string) map[workload.Name][]float64 {
	out := map[workload.Name][]float64{}
	for _, t := range r.Trials {
		for _, o := range t.PerWorkload {
			if o.Partner == "" {
				continue
			}
			out[o.Partner] = append(out[o.Partner], o.Dev[method])
		}
	}
	return out
}

func (r *ColocationResult) collect(method string, worst bool, keep func(ColocationTrial) bool) []float64 {
	var out []float64
	for _, t := range r.Trials {
		if keep != nil && !keep(t) {
			continue
		}
		if worst {
			out = append(out, t.WorstDev[method])
		} else {
			out = append(out, t.MeanDev[method])
		}
	}
	return out
}

func (r *ColocationResult) bucket(method string, worst bool, key func(ColocationTrial) int) map[int]stats.Summary {
	groups := map[int][]float64{}
	for _, t := range r.Trials {
		v := t.MeanDev[method]
		if worst {
			v = t.WorstDev[method]
		}
		groups[key(t)] = append(groups[key(t)], v)
	}
	out := make(map[int]stats.Summary, len(groups))
	for k, vs := range groups {
		out[k] = stats.Summarize(vs)
	}
	return out
}
