package colocation

import (
	"math"
	"math/rand"
	"testing"
)

func TestRUPGroupedCapacityTwoMatchesRUP(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(41))
	s, err := NewRandomScenario(env, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	pairwise, err := RUP(s)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := RUPGrouped(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairwise {
		approx(t, grouped[i], pairwise[i], 1e-9*pairwise[i], "capacity-2 RUP matches pairwise")
	}
}

func TestRUPGroupedConservation(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(42))
	for _, capacity := range []int{2, 3, 4} {
		s, err := NewRandomScenario(env, 9, rng)
		if err != nil {
			t.Fatal(err)
		}
		attr, err := RUPGrouped(s, capacity)
		if err != nil {
			t.Fatal(err)
		}
		total, err := s.TotalCarbonGrouped(capacity)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, sum(attr), total, 1e-6*total, "grouped RUP conservation")
	}
}

func TestFairCO2GroupedConservationAndFairness(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(43))
	const capacity = 3
	var rupDev, fairDev float64
	var count int
	for trial := 0; trial < 8; trial++ {
		s, err := NewRandomScenario(env, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := GroundTruthGrouped(s, capacity, GroundTruthConfig{ExactThreshold: 7})
		if err != nil {
			t.Fatal(err)
		}
		rup, err := RUPGrouped(s, capacity)
		if err != nil {
			t.Fatal(err)
		}
		factors, err := GroupedFactors(s, capacity, 800, rng)
		if err != nil {
			t.Fatal(err)
		}
		fair, err := FairCO2Grouped(s, capacity, factors)
		if err != nil {
			t.Fatal(err)
		}
		total, err := s.TotalCarbonGrouped(capacity)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, sum(fair), total, 1e-6*total, "grouped FairCO2 conservation")
		for i := range gt {
			rupDev += math.Abs(rup[i]-gt[i]) / gt[i]
			fairDev += math.Abs(fair[i]-gt[i]) / gt[i]
			count++
		}
	}
	rupDev /= float64(count)
	fairDev /= float64(count)
	t.Logf("capacity-3 mean deviation: RUP %.2f%%, FairCO2 %.2f%%", rupDev*100, fairDev*100)
	if fairDev >= rupDev {
		t.Errorf("FairCO2 should stay fairer under denser packing: %v vs %v", fairDev, rupDev)
	}
}

func TestGroupedMethodErrors(t *testing.T) {
	env := testEnv(t, 250)
	s := &Scenario{Env: env, Members: []int{0, 1, 2, 3}}
	if _, err := RUPGrouped(s, 0); err == nil {
		t.Error("capacity 0")
	}
	bad := &Scenario{Env: env, Members: []int{0}}
	if _, err := RUPGrouped(bad, 2); err == nil {
		t.Error("invalid scenario")
	}
	if _, err := FairCO2Grouped(s, 2, nil); err == nil {
		t.Error("factor count mismatch")
	}
	if _, err := FairCO2Grouped(s, 2, make([]Factor, 4)); err == nil {
		t.Error("zero factors")
	}
	if _, err := GroupedFactors(bad, 2, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid scenario for factors")
	}
	if _, err := GroupedFactors(s, 2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad draws")
	}
}
