// Package colocation implements the paper's colocation attribution problem
// (§6.3, Figures 8-9): sets of workloads run pairwise on identical
// servers, interference couples their runtimes and energies, and each
// attribution method divides every node's embodied carbon, static-energy
// carbon, and dynamic-energy carbon between the two tenants.
//
// Three methods are provided:
//
//   - GroundTruth: the Shapley value of the ordered arrival game. Across a
//     permutation, an arriving workload either opens a node (paying its
//     solo cost) or joins the open node (paying the pair cost minus the
//     partner's solo cost, i.e. its own colocated cost plus the
//     interference it inflicts). Averaging marginals over permutations
//     explores all counterfactual pairings, which is exactly the paper's
//     ground truth. Attributions are normalized to the actual scenario
//     total so all methods divide the same quantity.
//   - RUP: the Resource Utilization Proportional baseline (§3) — fixed
//     costs proportional to allocation-time, dynamic energy by own
//     metered (colocated) consumption.
//   - FairCO2: the interference-aware adjustment (§5.2) using historical
//     alpha/beta profiles.
package colocation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairco2/internal/carbon"
	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// Environment fixes the hardware and grid context of a scenario.
type Environment struct {
	// Server is the node model; every workload occupies half a node.
	Server *carbon.Server
	// GridCI converts energy to operational carbon.
	GridCI units.CarbonIntensity
	// Char is the pairwise characterization of the workload suite.
	Char *workload.Characterization
}

// NewEnvironment builds an environment over the reference server.
func NewEnvironment(ci units.CarbonIntensity, char *workload.Characterization) (*Environment, error) {
	if char == nil {
		return nil, errors.New("colocation: nil characterization")
	}
	if ci < 0 {
		return nil, fmt.Errorf("colocation: negative grid carbon intensity %v", ci)
	}
	srv := carbon.NewReferenceServer()
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	return &Environment{Server: srv, GridCI: ci, Char: char}, nil
}

// FixedRate returns the fixed carbon cost of keeping one node provisioned,
// in gCO2e per second: amortized embodied carbon plus static-power
// operational carbon.
func (e *Environment) FixedRate() float64 {
	staticPerSecond := units.Emissions(units.Energy(e.Server.StaticPower, 1), e.GridCI)
	return e.Server.EmbodiedRate() + float64(staticPerSecond)
}

// SoloCost returns the carbon of suite workload w running alone on a node.
func (e *Environment) SoloCost(w int) float64 {
	p := e.Char.Profiles[w]
	fixed := e.FixedRate() * float64(p.IsolatedRuntime)
	dyn := float64(units.Emissions(p.IsolatedDynEnergy(), e.GridCI))
	return fixed + dyn
}

// PairCost returns the carbon of a node hosting suite workloads a and b:
// the node stays provisioned until the slower (interference-inflated)
// tenant finishes, and both tenants' colocated dynamic energies count.
func (e *Environment) PairCost(a, b int) float64 {
	ta := float64(e.Char.ColocatedRuntimeOf(a, b))
	tb := float64(e.Char.ColocatedRuntimeOf(b, a))
	occupancy := math.Max(ta, tb)
	fixed := e.FixedRate() * occupancy
	dyn := float64(units.Emissions(e.Char.ColocatedDynEnergyOf(a, b)+e.Char.ColocatedDynEnergyOf(b, a), e.GridCI))
	return fixed + dyn
}

// Scenario is one colocation instance: a multiset of suite workloads and
// the actual pairing they ran under. With an odd count, the last member
// runs alone.
type Scenario struct {
	Env *Environment
	// Members[k] is the suite index of scenario workload k. The actual
	// pairing is consecutive: (0,1), (2,3), ...
	Members []int
}

// NewRandomScenario draws n workloads uniformly from the suite. Because
// members are drawn independently, consecutive pairing is a uniform random
// pairing.
func NewRandomScenario(env *Environment, n int, rng *rand.Rand) (*Scenario, error) {
	if env == nil {
		return nil, errors.New("colocation: nil environment")
	}
	if n < 2 {
		return nil, fmt.Errorf("colocation: scenario needs at least 2 workloads, got %d", n)
	}
	if rng == nil {
		return nil, errors.New("colocation: nil rng")
	}
	members := make([]int, n)
	for i := range members {
		members[i] = rng.Intn(len(env.Char.Profiles))
	}
	return &Scenario{Env: env, Members: members}, nil
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if s.Env == nil {
		return errors.New("colocation: scenario without environment")
	}
	if len(s.Members) < 2 {
		return errors.New("colocation: scenario needs at least 2 workloads")
	}
	for k, w := range s.Members {
		if w < 0 || w >= len(s.Env.Char.Profiles) {
			return fmt.Errorf("colocation: member %d has suite index %d out of range", k, w)
		}
	}
	return nil
}

// N returns the number of workloads in the scenario.
func (s *Scenario) N() int { return len(s.Members) }

// PartnerOf returns the scenario position paired with position k under the
// actual pairing, or -1 when k runs alone (odd tail).
func (s *Scenario) PartnerOf(k int) int {
	if k%2 == 0 {
		if k+1 < len(s.Members) {
			return k + 1
		}
		return -1
	}
	return k - 1
}

// TotalCarbon returns the carbon of the scenario under the actual pairing.
func (s *Scenario) TotalCarbon() float64 {
	total := 0.0
	for k := 0; k < len(s.Members); k += 2 {
		if k+1 < len(s.Members) {
			total += s.Env.PairCost(s.Members[k], s.Members[k+1])
		} else {
			total += s.Env.SoloCost(s.Members[k])
		}
	}
	return total
}
