package colocation

import (
	"math"
	"math/rand"
	"testing"
)

func TestGroupCostReducesToPairAndSolo(t *testing.T) {
	env := testEnv(t, 250)
	solo, err := env.GroupCost([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, solo, env.SoloCost(3), 1e-9, "singleton group = solo cost")
	pair, err := env.GroupCost([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pair, env.PairCost(3, 7), 1e-9, "two-member group = pair cost")
}

func TestGroupCostErrors(t *testing.T) {
	env := testEnv(t, 250)
	if _, err := env.GroupCost(nil); err == nil {
		t.Error("empty group")
	}
	if _, err := env.GroupCost([]int{99}); err == nil {
		t.Error("out of range")
	}
}

func TestTotalCarbonGroupedCapacityTwoMatchesPairwise(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(31))
	s, err := NewRandomScenario(env, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := s.TotalCarbonGrouped(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, grouped, s.TotalCarbon(), 1e-9, "capacity 2 = pairwise total")
	if _, err := s.TotalCarbonGrouped(0); err == nil {
		t.Error("capacity 0")
	}
}

func TestGroundTruthGroupedCapacityTwoMatchesPairwise(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(32))
	s, err := NewRandomScenario(env, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	pairwise, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := GroundTruthGrouped(s, 2, GroundTruthConfig{ExactThreshold: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairwise {
		approx(t, grouped[i], pairwise[i], 1e-6*pairwise[i], "capacity-2 grouped matches pairwise GT")
	}
}

func TestGroundTruthGroupedEfficiencyAtHigherCapacity(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(33))
	s, err := NewRandomScenario(env, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, capacity := range []int{3, 4, 6} {
		gt, err := GroundTruthGrouped(s, capacity, GroundTruthConfig{ExactThreshold: 7})
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		total, err := s.TotalCarbonGrouped(capacity)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range gt {
			if v <= 0 {
				t.Fatalf("capacity %d: non-positive attribution", capacity)
			}
			sum += v
		}
		approx(t, sum, total, 1e-6*total, "grouped efficiency")
	}
}

func TestGroundTruthGroupedSampledPath(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(34))
	s, err := NewRandomScenario(env, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruthGrouped(s, 3, GroundTruthConfig{ExactThreshold: 7, Samples: 1500, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 12 {
		t.Fatalf("got %d attributions", len(gt))
	}
	if _, err := GroundTruthGrouped(s, 3, GroundTruthConfig{ExactThreshold: 7}); err == nil {
		t.Error("sampling needed without rng should error")
	}
	if _, err := GroundTruthGrouped(s, 0, GroundTruthConfig{ExactThreshold: 7}); err == nil {
		t.Error("capacity 0")
	}
	bad := &Scenario{Env: env, Members: []int{0}}
	if _, err := GroundTruthGrouped(bad, 2, GroundTruthConfig{ExactThreshold: 7}); err == nil {
		t.Error("invalid scenario")
	}
}

func TestDenserPackingAmortizesFixedCosts(t *testing.T) {
	// For mild workloads, packing 4 per node must cost less carbon than
	// 2 per node: fixed costs amortize over more tenants.
	env := testEnv(t, 250)
	pg10, err := env.Char.Index("PG-10")
	if err != nil {
		t.Fatal(err)
	}
	members := []int{pg10, pg10, pg10, pg10, pg10, pg10, pg10, pg10}
	s := &Scenario{Env: env, Members: members}
	two, err := s.TotalCarbonGrouped(2)
	if err != nil {
		t.Fatal(err)
	}
	four, err := s.TotalCarbonGrouped(4)
	if err != nil {
		t.Fatal(err)
	}
	if four >= two {
		t.Errorf("denser packing of mild tenants should save carbon: cap4 %v vs cap2 %v", four, two)
	}
}

func TestHistoricalFactorGrouped(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(35))
	f, err := env.HistoricalFactorGrouped(2, 4, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.Value <= 0 || f.Samples != 500 {
		t.Errorf("factor %+v", f)
	}
	// At capacity 1 every arrival opens a node: factor = solo cost.
	solo, err := env.HistoricalFactorGrouped(2, 1, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(solo.Value-env.SoloCost(2)) > 1e-9 {
		t.Errorf("capacity-1 factor %v should equal solo cost %v", solo.Value, env.SoloCost(2))
	}
	if _, err := env.HistoricalFactorGrouped(-1, 2, 10, rng); err == nil {
		t.Error("bad workload")
	}
	if _, err := env.HistoricalFactorGrouped(2, 0, 10, rng); err == nil {
		t.Error("bad capacity")
	}
	if _, err := env.HistoricalFactorGrouped(2, 2, 0, rng); err == nil {
		t.Error("bad draws")
	}
	if _, err := env.HistoricalFactorGrouped(2, 2, 10, nil); err == nil {
		t.Error("nil rng")
	}
}
