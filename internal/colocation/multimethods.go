package colocation

import (
	"fmt"
	"math"
	"math/rand"

	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// Attribution methods generalized to capacity-k nodes. Capacity 2
// reproduces the paper's pairwise methods; higher capacities extend the
// evaluation to denser packing.

// groupOf returns the suite indices of scenario position k's node under
// consecutive packing, and k's offset within it.
func (s *Scenario) groupOf(pos, capacity int) ([]int, int) {
	lo := (pos / capacity) * capacity
	hi := lo + capacity
	if hi > len(s.Members) {
		hi = len(s.Members)
	}
	return s.Members[lo:hi], pos - lo
}

// memberRuntimeAndEnergy returns scenario position pos's k-way colocated
// runtime and dynamic energy under the actual grouping.
func (s *Scenario) memberRuntimeAndEnergy(pos, capacity int) (float64, units.Joules) {
	group, offset := s.groupOf(pos, capacity)
	victim := s.Env.Char.Profiles[group[offset]]
	aggressors := make([]*workload.Profile, 0, len(group)-1)
	for i, w := range group {
		if i != offset {
			aggressors = append(aggressors, s.Env.Char.Profiles[w])
		}
	}
	rt := float64(workload.ColocatedRuntimeMulti(victim, aggressors))
	energy := workload.ColocatedDynEnergyMulti(victim, aggressors)
	return rt, energy
}

// RUPGrouped is the RUP baseline on capacity-k nodes: cluster fixed carbon
// attributed by allocation-time (k-way colocated runtime), dynamic energy
// by own metered consumption.
func RUPGrouped(s *Scenario, capacity int) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("colocation: capacity must be positive, got %d", capacity)
	}
	n := s.N()
	runtimes := make([]float64, n)
	energies := make([]units.Joules, n)
	sumRuntime := 0.0
	for pos := 0; pos < n; pos++ {
		rt, e := s.memberRuntimeAndEnergy(pos, capacity)
		runtimes[pos], energies[pos] = rt, e
		sumRuntime += rt
	}
	totalFixed := 0.0
	for lo := 0; lo < n; lo += capacity {
		hi := lo + capacity
		if hi > n {
			hi = n
		}
		occupancy := 0.0
		for pos := lo; pos < hi; pos++ {
			occupancy = math.Max(occupancy, runtimes[pos])
		}
		totalFixed += s.Env.FixedRate() * occupancy
	}
	if sumRuntime <= 0 {
		return nil, fmt.Errorf("colocation: zero total runtime")
	}
	attr := make([]float64, n)
	for pos := 0; pos < n; pos++ {
		attr[pos] = totalFixed*runtimes[pos]/sumRuntime +
			float64(units.Emissions(energies[pos], s.Env.GridCI))
	}
	return attr, nil
}

// FairCO2Grouped is the interference-aware attribution on capacity-k
// nodes: historical capacity-aware factors normalized to the actual
// grouped total.
func FairCO2Grouped(s *Scenario, capacity int, factors []Factor) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(factors) != s.N() {
		return nil, fmt.Errorf("colocation: %d factors for %d workloads", len(factors), s.N())
	}
	total, err := s.TotalCarbonGrouped(capacity)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for pos, f := range factors {
		if f.Value <= 0 {
			return nil, fmt.Errorf("colocation: non-positive factor for workload %d", pos)
		}
		sum += f.Value
	}
	attr := make([]float64, s.N())
	scale := total / sum
	for pos, f := range factors {
		attr[pos] = f.Value * scale
	}
	return attr, nil
}

// GroupedFactors estimates capacity-aware factors for every scenario
// member from random historical colocations.
func GroupedFactors(s *Scenario, capacity, draws int, rng *rand.Rand) ([]Factor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Cache per suite workload: scenarios repeat members.
	cache := map[int]Factor{}
	factors := make([]Factor, s.N())
	for pos, w := range s.Members {
		f, ok := cache[w]
		if !ok {
			var err error
			f, err = s.Env.HistoricalFactorGrouped(w, capacity, draws, rng)
			if err != nil {
				return nil, err
			}
			cache[w] = f
		}
		factors[pos] = f
	}
	return factors, nil
}
