package colocation

import (
	"math"
	"math/rand"
	"testing"

	"fairco2/internal/units"
	"fairco2/internal/workload"
)

func testEnv(t *testing.T, ci float64) *Environment {
	t.Helper()
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(units.CarbonIntensity(ci), char)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestNewEnvironmentErrors(t *testing.T) {
	if _, err := NewEnvironment(100, nil); err == nil {
		t.Error("nil characterization")
	}
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnvironment(-1, char); err == nil {
		t.Error("negative CI")
	}
}

func TestFixedRatePositiveAndCIMonotone(t *testing.T) {
	lo := testEnv(t, 0)
	hi := testEnv(t, 500)
	if lo.FixedRate() <= 0 {
		t.Error("fixed rate must be positive even at zero CI (embodied)")
	}
	if hi.FixedRate() <= lo.FixedRate() {
		t.Error("fixed rate should grow with grid CI (static energy)")
	}
}

func TestSoloAndPairCost(t *testing.T) {
	env := testEnv(t, 300)
	a, err := env.Char.Index(workload.NBODY)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Char.Index(workload.CH)
	if err != nil {
		t.Fatal(err)
	}
	solo := env.SoloCost(a)
	if solo <= 0 {
		t.Fatal("solo cost must be positive")
	}
	pair := env.PairCost(a, b)
	if pair <= solo {
		t.Error("pair cost should exceed one solo cost")
	}
	// Colocation amortizes fixed costs for mild pairs (extreme
	// interference like NBODY+CH can erase the benefit, which is the
	// point of Figure 2).
	wc, err := env.Char.Index(workload.WC)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := env.Char.Index(workload.PG10)
	if err != nil {
		t.Fatal(err)
	}
	if env.PairCost(wc, pg) >= env.SoloCost(wc)+env.SoloCost(pg) {
		t.Error("mild colocation should be cheaper than two isolated nodes")
	}
	// Symmetry of the pair cost.
	approx(t, env.PairCost(a, b), env.PairCost(b, a), 1e-9, "pair cost symmetric")
}

func TestScenarioBasics(t *testing.T) {
	env := testEnv(t, 200)
	rng := rand.New(rand.NewSource(1))
	s, err := NewRandomScenario(env, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 6 {
		t.Errorf("N = %d", s.N())
	}
	if s.PartnerOf(0) != 1 || s.PartnerOf(1) != 0 || s.PartnerOf(4) != 5 {
		t.Error("pairing layout wrong")
	}
	if s.TotalCarbon() <= 0 {
		t.Error("total carbon must be positive")
	}
}

func TestScenarioOddTail(t *testing.T) {
	env := testEnv(t, 200)
	s := &Scenario{Env: env, Members: []int{0, 1, 2}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.PartnerOf(2) != -1 {
		t.Error("odd tail should be solo")
	}
	want := env.PairCost(0, 1) + env.SoloCost(2)
	approx(t, s.TotalCarbon(), want, 1e-9, "odd-tail total")
}

func TestScenarioErrors(t *testing.T) {
	env := testEnv(t, 200)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandomScenario(nil, 4, rng); err == nil {
		t.Error("nil env")
	}
	if _, err := NewRandomScenario(env, 1, rng); err == nil {
		t.Error("too few workloads")
	}
	if _, err := NewRandomScenario(env, 4, nil); err == nil {
		t.Error("nil rng")
	}
	bad := &Scenario{Env: env, Members: []int{0, 99}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range member")
	}
	if err := (&Scenario{Env: nil, Members: []int{0, 1}}).Validate(); err == nil {
		t.Error("nil env in scenario")
	}
	if err := (&Scenario{Env: env, Members: []int{0}}).Validate(); err == nil {
		t.Error("single member")
	}
}

func TestGroundTruthEfficiency(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		s, err := NewRandomScenario(env, 4+2*rng.Intn(2), rng)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := GroundTruth(s, DefaultGroundTruthConfig(rng))
		if err != nil {
			t.Fatal(err)
		}
		approx(t, sum(gt), s.TotalCarbon(), 1e-6*s.TotalCarbon(), "ground truth sums to total")
		for i, v := range gt {
			if v <= 0 {
				t.Errorf("trial %d: non-positive attribution %v for workload %d", trial, v, i)
			}
		}
	}
}

func TestGroundTruthSampledMatchesExact(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(3))
	s, err := NewRandomScenario(env, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 0, Samples: 30000, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if rel := math.Abs(sampled[i]-exact[i]) / exact[i]; rel > 0.05 {
			t.Errorf("workload %d: sampled %v vs exact %v (rel %v)", i, sampled[i], exact[i], rel)
		}
	}
}

func TestGroundTruthSymmetry(t *testing.T) {
	// Two identical workloads paired together must receive identical
	// attributions.
	env := testEnv(t, 250)
	s := &Scenario{Env: env, Members: []int{3, 3, 5, 5}}
	gt, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, gt[0], gt[1], 1e-9, "identical pair members")
	approx(t, gt[2], gt[3], 1e-9, "identical pair members")
}

func TestGroundTruthErrors(t *testing.T) {
	env := testEnv(t, 250)
	s := &Scenario{Env: env, Members: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}}
	if _, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7, Samples: 0}); err == nil {
		t.Error("sampling needed but samples=0")
	}
	if _, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7, Samples: 10, Rng: nil}); err == nil {
		t.Error("sampling needed but rng nil")
	}
	bad := &Scenario{Env: env, Members: []int{0}}
	if _, err := GroundTruth(bad, DefaultGroundTruthConfig(nil)); err == nil {
		t.Error("invalid scenario")
	}
}

func TestRUPEfficiency(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		s, err := NewRandomScenario(env, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		attr, err := RUP(s)
		if err != nil {
			t.Fatal(err)
		}
		// RUP fully attributes dynamic energy but spreads fixed carbon by
		// allocation-time across the cluster, so its total matches the
		// scenario total.
		approx(t, sum(attr), s.TotalCarbon(), 1e-6*s.TotalCarbon(), "RUP sums to total")
	}
}

func TestRUPChargesVictims(t *testing.T) {
	// NBODY paired with CH is slowed 87%; RUP charges NBODY for that
	// extra occupancy, so NBODY's attribution with CH must exceed its
	// attribution when paired with a gentle partner (PG-10).
	env := testEnv(t, 250)
	char := env.Char
	nbody, _ := char.Index(workload.NBODY)
	ch, _ := char.Index(workload.CH)
	pg10, _ := char.Index(workload.PG10)

	withCH := &Scenario{Env: env, Members: []int{nbody, ch}}
	withPG := &Scenario{Env: env, Members: []int{nbody, pg10}}
	a, err := RUP(withCH)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RUP(withPG)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] <= b[0] {
		t.Errorf("RUP should charge NBODY more next to CH (%v) than next to PG-10 (%v)", a[0], b[0])
	}
}

func TestFairCO2Efficiency(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		s, err := NewRandomScenario(env, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		factors, err := FullHistoryFactors(s)
		if err != nil {
			t.Fatal(err)
		}
		attr, err := FairCO2(s, factors)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, sum(attr), s.TotalCarbon(), 1e-6*s.TotalCarbon(), "FairCO2 sums to total")
	}
}

func TestFairCO2CloserToGroundTruthThanRUP(t *testing.T) {
	// The paper's headline colocation result (Figure 8a): Fair-CO2's mean
	// deviation from the ground truth is far below RUP's.
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(6))
	var rupDev, fairDev float64
	var count int
	for trial := 0; trial < 30; trial++ {
		s, err := NewRandomScenario(env, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		gt, err := GroundTruth(s, DefaultGroundTruthConfig(rng))
		if err != nil {
			t.Fatal(err)
		}
		rup, err := RUP(s)
		if err != nil {
			t.Fatal(err)
		}
		factors, err := FullHistoryFactors(s)
		if err != nil {
			t.Fatal(err)
		}
		fair, err := FairCO2(s, factors)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gt {
			rupDev += math.Abs(rup[i]-gt[i]) / gt[i]
			fairDev += math.Abs(fair[i]-gt[i]) / gt[i]
			count++
		}
	}
	rupDev /= float64(count)
	fairDev /= float64(count)
	if fairDev >= rupDev {
		t.Errorf("FairCO2 mean deviation %.4f should be below RUP %.4f", fairDev, rupDev)
	}
	t.Logf("mean deviation: RUP %.2f%%, FairCO2 %.2f%%", rupDev*100, fairDev*100)
}

func TestFairCO2Errors(t *testing.T) {
	env := testEnv(t, 250)
	s := &Scenario{Env: env, Members: []int{0, 1}}
	if _, err := FairCO2(s, nil); err == nil {
		t.Error("profile count mismatch")
	}
	bad := &Scenario{Env: env, Members: []int{0}}
	if _, err := FairCO2(bad, nil); err == nil {
		t.Error("invalid scenario")
	}
	if _, err := RUP(bad); err == nil {
		t.Error("RUP invalid scenario")
	}
	if _, err := FullHistoryFactors(bad); err == nil {
		t.Error("FullHistoryFactors invalid scenario")
	}
}

func TestSampledHistoryFactors(t *testing.T) {
	env := testEnv(t, 250)
	rng := rand.New(rand.NewSource(7))
	s, err := NewRandomScenario(env, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	factors, err := SampledHistoryFactors(s, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(factors) != 6 {
		t.Fatalf("got %d factors", len(factors))
	}
	for _, f := range factors {
		if f.Samples != 3 {
			t.Errorf("factor used %d samples, want 3", f.Samples)
		}
	}
	// Attribution with sampled profiles still conserves the total.
	attr, err := FairCO2(s, factors)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum(attr), s.TotalCarbon(), 1e-6*s.TotalCarbon(), "sampled-profile conservation")

	if _, err := SampledHistoryFactors(s, 0, rng); err == nil {
		t.Error("k=0 should error")
	}
	bad := &Scenario{Env: env, Members: []int{0}}
	if _, err := SampledHistoryFactors(bad, 1, rng); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestFairCO2OddTail(t *testing.T) {
	env := testEnv(t, 250)
	s := &Scenario{Env: env, Members: []int{2, 4, 6}}
	factors, err := FullHistoryFactors(s)
	if err != nil {
		t.Fatal(err)
	}
	attr, err := FairCO2(s, factors)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sum(attr), s.TotalCarbon(), 1e-6*s.TotalCarbon(), "odd-tail conservation")
}
