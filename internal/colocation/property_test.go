package colocation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// Property-based tests on the colocation game's invariants, run over
// randomized scenarios, grid intensities, and sampling rates.

func TestPropertyAllMethodsConserveTotal(t *testing.T) {
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, rawCI float64, rawN uint8) bool {
		ci := math.Mod(math.Abs(rawCI), 1000)
		n := 4 + int(rawN)%12
		if n%2 != 0 {
			n++
		}
		env, err := NewEnvironment(units.CarbonIntensity(ci), char)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		s, err := NewRandomScenario(env, n, rng)
		if err != nil {
			return false
		}
		total := s.TotalCarbon()
		gt, err := GroundTruth(s, DefaultGroundTruthConfig(rng))
		if err != nil {
			return false
		}
		rup, err := RUP(s)
		if err != nil {
			return false
		}
		factors, err := FullHistoryFactors(s)
		if err != nil {
			return false
		}
		fair, err := FairCO2(s, factors)
		if err != nil {
			return false
		}
		for _, attr := range [][]float64{gt, rup, fair} {
			sum := 0.0
			for _, v := range attr {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-total) > 1e-6*total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFairCO2PartnerInvariance(t *testing.T) {
	// Fair-CO2's defining property (Figure 9): a workload's attribution
	// rate does not depend on which partner it drew, only on the
	// scenario total. Build two scenarios identical except for one
	// workload's partner and compare the target's share of the total.
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(250, char)
	if err != nil {
		t.Fatal(err)
	}
	nbody, _ := char.Index(workload.NBODY)
	ch, _ := char.Index(workload.CH)
	pg10, _ := char.Index(workload.PG10)
	sa, _ := char.Index(workload.SA)
	wc, _ := char.Index(workload.WC)

	withCH := &Scenario{Env: env, Members: []int{nbody, ch, sa, wc}}
	withPG := &Scenario{Env: env, Members: []int{nbody, pg10, sa, wc}}

	share := func(s *Scenario) float64 {
		factors, err := FullHistoryFactors(s)
		if err != nil {
			t.Fatal(err)
		}
		attr, err := FairCO2(s, factors)
		if err != nil {
			t.Fatal(err)
		}
		return attr[0] / s.TotalCarbon()
	}
	rupShare := func(s *Scenario) float64 {
		attr, err := RUP(s)
		if err != nil {
			t.Fatal(err)
		}
		return attr[0] / s.TotalCarbon()
	}
	fairDelta := math.Abs(share(withCH) - share(withPG))
	rupDelta := math.Abs(rupShare(withCH) - rupShare(withPG))
	t.Logf("NBODY share shift when partner changes CH->PG-10: FairCO2 %.4f, RUP %.4f", fairDelta, rupDelta)
	// Fair-CO2's share shift comes only from the different denominator;
	// RUP additionally charges NBODY its partner-inflated runtime.
	if fairDelta >= rupDelta {
		t.Errorf("FairCO2 partner sensitivity %v should be far below RUP %v", fairDelta, rupDelta)
	}
}

func TestPropertyGroundTruthSymmetricScenarios(t *testing.T) {
	// A scenario of identical workloads must attribute identically to
	// every member, for any suite workload and grid intensity.
	char, err := workload.Characterize(workload.Suite())
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawW uint8, rawCI float64) bool {
		w := int(rawW) % len(char.Profiles)
		ci := math.Mod(math.Abs(rawCI), 1000)
		env, err := NewEnvironment(units.CarbonIntensity(ci), char)
		if err != nil {
			return false
		}
		s := &Scenario{Env: env, Members: []int{w, w, w, w}}
		gt, err := GroundTruth(s, GroundTruthConfig{ExactThreshold: 7})
		if err != nil {
			return false
		}
		for _, v := range gt[1:] {
			if math.Abs(v-gt[0]) > 1e-9*gt[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
