package colocation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairco2/internal/interference"
	"fairco2/internal/shapley"
	"fairco2/internal/units"
)

// GroundTruthConfig controls the ordered-game Shapley computation.
type GroundTruthConfig struct {
	// ExactThreshold is the largest scenario for which all n!
	// permutations are enumerated; larger scenarios are sampled.
	ExactThreshold int
	// Samples is the permutation sample count above the threshold.
	Samples int
	// Rng drives permutation sampling; required when sampling occurs.
	Rng *rand.Rand
	// Parallelism shards permutation samples across workers. 0 or 1
	// keeps the serial estimator; n > 1 uses n workers seeded from one
	// draw of Rng (deterministic for a fixed Rng state and worker
	// count); negative means GOMAXPROCS.
	Parallelism int
}

// DefaultGroundTruthConfig enumerates scenarios up to 7 workloads exactly
// and samples 2000 permutations beyond that.
func DefaultGroundTruthConfig(rng *rand.Rand) GroundTruthConfig {
	return GroundTruthConfig{ExactThreshold: 7, Samples: 2000, Rng: rng}
}

// GroundTruth computes the ground-truth Shapley attribution of the
// scenario's carbon. Marginal contributions follow the arrival game
// described in the package comment; the result is normalized so it sums to
// the actual scenario total (all methods divide the same footprint).
func GroundTruth(s *Scenario, cfg GroundTruthConfig) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.N()
	marginals := func(perm []int, out []float64) {
		open := -1
		for _, pos := range perm {
			if open < 0 {
				out[pos] = s.Env.SoloCost(s.Members[pos])
				open = pos
			} else {
				out[pos] = s.Env.PairCost(s.Members[open], s.Members[pos]) - s.Env.SoloCost(s.Members[open])
				open = -1
			}
		}
	}
	var phi []float64
	var err error
	if n <= cfg.ExactThreshold && n <= shapley.MaxExactOrderedPlayers {
		phi, err = shapley.ExactOrdered(n, marginals)
	} else {
		if cfg.Samples < 1 {
			return nil, fmt.Errorf("colocation: scenario of %d workloads needs sampling, but Samples = %d", n, cfg.Samples)
		}
		if cfg.Rng == nil {
			return nil, errors.New("colocation: sampling ground truth requires an rng")
		}
		if cfg.Parallelism == 0 || cfg.Parallelism == 1 {
			phi, err = shapley.SampledOrdered(n, marginals, cfg.Samples, cfg.Rng)
		} else {
			// The closure only writes the caller's out slice, so every
			// worker can share it; one draw advances Rng exactly once
			// regardless of worker count.
			phi, err = shapley.SampledOrderedParallel(n,
				func() shapley.OrderedMarginals { return marginals },
				cfg.Samples, cfg.Rng.Int63(), cfg.Parallelism)
		}
	}
	if err != nil {
		return nil, err
	}
	// Normalize to the actual pairing's total. The raw Shapley total is
	// the permutation-averaged footprint, which differs from the realized
	// pairing's footprint; rescaling keeps every method attributing the
	// same quantity so deviations measure distribution, not totals.
	sum := 0.0
	for _, v := range phi {
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("colocation: ground truth attributed non-positive total")
	}
	scale := s.TotalCarbon() / sum
	for i := range phi {
		phi[i] *= scale
	}
	return phi, nil
}

// RUP computes the Resource Utilization Proportional baseline (§3): the
// cluster's fixed carbon (embodied + static energy) is attributed
// proportional to each workload's allocation-time — its colocated runtime,
// since all workloads hold identical half-node allocations — and each
// workload is attributed its own metered dynamic energy. A workload slowed
// by its neighbour therefore inherits extra fixed carbon and extra energy,
// which is precisely the unfairness Figure 2 demonstrates.
func RUP(s *Scenario) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.N()
	runtimes := make([]float64, n)
	totalFixed := 0.0
	sumRuntime := 0.0
	for k := 0; k < n; k += 2 {
		if k+1 < n {
			a, b := s.Members[k], s.Members[k+1]
			runtimes[k] = float64(s.Env.Char.ColocatedRuntimeOf(a, b))
			runtimes[k+1] = float64(s.Env.Char.ColocatedRuntimeOf(b, a))
			totalFixed += s.Env.FixedRate() * math.Max(runtimes[k], runtimes[k+1])
		} else {
			runtimes[k] = float64(s.Env.Char.Profiles[s.Members[k]].IsolatedRuntime)
			totalFixed += s.Env.FixedRate() * runtimes[k]
		}
	}
	for _, t := range runtimes {
		sumRuntime += t
	}
	if sumRuntime <= 0 {
		return nil, errors.New("colocation: zero total runtime")
	}
	attr := make([]float64, n)
	for k := 0; k < n; k++ {
		attr[k] = totalFixed * runtimes[k] / sumRuntime
		attr[k] += float64(units.Emissions(s.dynEnergyOf(k), s.Env.GridCI))
	}
	return attr, nil
}

// dynEnergyOf returns scenario workload k's metered dynamic energy under
// the actual pairing.
func (s *Scenario) dynEnergyOf(k int) units.Joules {
	partner := s.PartnerOf(k)
	if partner < 0 {
		return s.Env.Char.Profiles[s.Members[k]].IsolatedDynEnergy()
	}
	return s.Env.Char.ColocatedDynEnergyOf(s.Members[k], s.Members[partner])
}

// Factor is a workload's Fair-CO2 attribution factor, the §5.2 historical
// summary of its expected marginal carbon: when a workload enters a node,
// its marginal contribution is its own (interference-inflated) cost plus
// the change it induces in its partner. Fair-CO2 estimates that marginal
// from historical colocations instead of the actual partner, which removes
// partner luck from the attribution:
//
//	factor = 1/2 solo + 1/2 mean over historical partners j of
//	         (PairCost(j, w) - SoloCost(j))
//
// — a workload is an opener (paying its solo cost) in half of all arrival
// orders and a joiner (paying its historical joiner marginal) in the other
// half. Within a node, the actual node carbon is split proportional to the
// tenants' factors, so every node's footprint is fully attributed.
type Factor struct {
	// Value is the expected marginal carbon in gCO2e.
	Value float64
	// Samples is the number of historical partners behind the estimate.
	Samples int
}

// HistoricalFactor computes suite workload w's factor from the given
// historical partners (suite indices).
func (e *Environment) HistoricalFactor(w int, partners []int) (Factor, error) {
	if w < 0 || w >= len(e.Char.Profiles) {
		return Factor{}, fmt.Errorf("colocation: workload index %d out of range", w)
	}
	if len(partners) == 0 {
		return Factor{}, errors.New("colocation: need at least one historical partner")
	}
	joiner := 0.0
	for _, j := range partners {
		if j < 0 || j >= len(e.Char.Profiles) {
			return Factor{}, fmt.Errorf("colocation: partner index %d out of range", j)
		}
		joiner += e.PairCost(j, w) - e.SoloCost(j)
	}
	joiner /= float64(len(partners))
	return Factor{
		Value:   0.5*e.SoloCost(w) + 0.5*joiner,
		Samples: len(partners),
	}, nil
}

// FairCO2 computes the interference-aware attribution (§5.2): every
// workload is attributed its historical factor, rescaled so the cluster's
// realized carbon is fully attributed (the efficiency property holds at
// cluster level). Normalizing across the cluster rather than per node is
// what "virtually eliminates the effects of different workloads on their
// partner workloads" (Figure 9): a workload's share depends on its own
// history, not on which neighbour it happened to draw — partner luck only
// enters through the cluster total, a 1/n effect. factors[k] belongs to
// scenario workload k.
func FairCO2(s *Scenario, factors []Factor) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.N()
	if len(factors) != n {
		return nil, fmt.Errorf("colocation: %d factors for %d workloads", len(factors), n)
	}
	sum := 0.0
	for k, f := range factors {
		if f.Value <= 0 {
			return nil, fmt.Errorf("colocation: non-positive factor for workload %d", k)
		}
		sum += f.Value
	}
	scale := s.TotalCarbon() / sum
	attr := make([]float64, n)
	for k, f := range factors {
		attr[k] = f.Value * scale
	}
	return attr, nil
}

// FullHistoryFactors computes every scenario workload's factor from the
// complete characterization (100% sampling rate).
func FullHistoryFactors(s *Scenario) ([]Factor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	all := make([]int, len(s.Env.Char.Profiles))
	for j := range all {
		all[j] = j
	}
	factors := make([]Factor, s.N())
	for k, w := range s.Members {
		f, err := s.Env.HistoricalFactor(w, all)
		if err != nil {
			return nil, err
		}
		factors[k] = f
	}
	return factors, nil
}

// SampledHistoryFactors computes each scenario workload's factor from k
// randomly drawn historical partners (the Figure 8b/f sampling-rate axis).
func SampledHistoryFactors(s *Scenario, k int, rng *rand.Rand) ([]Factor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	factors := make([]Factor, s.N())
	for pos, w := range s.Members {
		partners, err := interference.HistoricalSample(s.Env.Char, w, k, rng)
		if err != nil {
			return nil, err
		}
		f, err := s.Env.HistoricalFactor(w, partners)
		if err != nil {
			return nil, err
		}
		factors[pos] = f
	}
	return factors, nil
}
