package colocation

import (
	"fmt"
	"math/rand"

	"fairco2/internal/shapley"
	"fairco2/internal/units"
	"fairco2/internal/workload"
)

// k-way colocation: nodes host up to `capacity` tenants, interference sums
// across co-tenants (workload.SlowdownMulti). capacity=2 reproduces the
// paper's pairwise setting exactly. This extends the evaluation to the
// denser packing production schedulers actually use.

// GroupCost returns the carbon of one node hosting the given suite
// workloads simultaneously: fixed costs until the slowest
// (interference-inflated) tenant finishes, plus every tenant's colocated
// dynamic energy.
func (e *Environment) GroupCost(members []int) (float64, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("colocation: empty group")
	}
	profiles := make([]*workload.Profile, len(members))
	for i, w := range members {
		if w < 0 || w >= len(e.Char.Profiles) {
			return 0, fmt.Errorf("colocation: suite index %d out of range", w)
		}
		profiles[i] = e.Char.Profiles[w]
	}
	occupancy := 0.0
	dynEnergy := units.Joules(0)
	for i, victim := range profiles {
		aggressors := make([]*workload.Profile, 0, len(profiles)-1)
		for j, a := range profiles {
			if j != i {
				aggressors = append(aggressors, a)
			}
		}
		rt := float64(workload.ColocatedRuntimeMulti(victim, aggressors))
		if rt > occupancy {
			occupancy = rt
		}
		dynEnergy += workload.ColocatedDynEnergyMulti(victim, aggressors)
	}
	fixed := e.FixedRate() * occupancy
	return fixed + float64(units.Emissions(dynEnergy, e.GridCI)), nil
}

// TotalCarbonGrouped returns the scenario's carbon when members are packed
// consecutively into nodes of the given capacity.
func (s *Scenario) TotalCarbonGrouped(capacity int) (float64, error) {
	if capacity < 1 {
		return 0, fmt.Errorf("colocation: capacity must be positive, got %d", capacity)
	}
	total := 0.0
	for lo := 0; lo < len(s.Members); lo += capacity {
		hi := lo + capacity
		if hi > len(s.Members) {
			hi = len(s.Members)
		}
		cost, err := s.Env.GroupCost(s.Members[lo:hi])
		if err != nil {
			return 0, err
		}
		total += cost
	}
	return total, nil
}

// GroundTruthGrouped computes the arrival-game Shapley attribution with
// nodes of the given capacity: an arriving workload joins the open node
// until it is full, contributing the group-cost delta; attributions are
// normalized to the actual consecutive packing's total.
func GroundTruthGrouped(s *Scenario, capacity int, cfg GroundTruthConfig) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("colocation: capacity must be positive, got %d", capacity)
	}
	n := s.N()
	marginals := func(perm []int, out []float64) {
		var open []int // suite indices of the open node's tenants
		prevCost := 0.0
		for _, pos := range perm {
			open = append(open, s.Members[pos])
			cost, err := s.Env.GroupCost(open)
			if err != nil {
				// Member indices were validated; GroupCost cannot fail here.
				panic(err)
			}
			out[pos] = cost - prevCost
			if len(open) == capacity {
				open = open[:0]
				prevCost = 0
			} else {
				prevCost = cost
			}
		}
	}
	var phi []float64
	var err error
	if n <= cfg.ExactThreshold && n <= shapley.MaxExactOrderedPlayers {
		phi, err = shapley.ExactOrdered(n, marginals)
	} else {
		if cfg.Samples < 1 || cfg.Rng == nil {
			return nil, fmt.Errorf("colocation: scenario of %d workloads needs sampling configuration", n)
		}
		if cfg.Parallelism == 0 || cfg.Parallelism == 1 {
			phi, err = shapley.SampledOrdered(n, marginals, cfg.Samples, cfg.Rng)
		} else {
			// Per-invocation locals only, so workers can share the closure.
			phi, err = shapley.SampledOrderedParallel(n,
				func() shapley.OrderedMarginals { return marginals },
				cfg.Samples, cfg.Rng.Int63(), cfg.Parallelism)
		}
	}
	if err != nil {
		return nil, err
	}
	total, err := s.TotalCarbonGrouped(capacity)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for _, v := range phi {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("colocation: grouped ground truth attributed non-positive total")
	}
	scale := total / sum
	for i := range phi {
		phi[i] *= scale
	}
	return phi, nil
}

// HistoricalFactorGrouped estimates a workload's Fair-CO2 factor for
// capacity-k nodes: the average marginal over arrival positions 1..k,
// estimated from historical partners drawn with the given rng.
func (e *Environment) HistoricalFactorGrouped(w, capacity, draws int, rng *rand.Rand) (Factor, error) {
	if w < 0 || w >= len(e.Char.Profiles) {
		return Factor{}, fmt.Errorf("colocation: workload index %d out of range", w)
	}
	if capacity < 1 {
		return Factor{}, fmt.Errorf("colocation: capacity must be positive")
	}
	if draws < 1 {
		return Factor{}, fmt.Errorf("colocation: need at least one draw")
	}
	if rng == nil {
		return Factor{}, fmt.Errorf("colocation: nil rng")
	}
	nSuite := len(e.Char.Profiles)
	total := 0.0
	for d := 0; d < draws; d++ {
		// Uniform arrival position within a node.
		pos := rng.Intn(capacity)
		group := make([]int, 0, pos+1)
		for i := 0; i < pos; i++ {
			group = append(group, rng.Intn(nSuite))
		}
		before := 0.0
		if len(group) > 0 {
			var err error
			before, err = e.GroupCost(group)
			if err != nil {
				return Factor{}, err
			}
		}
		after, err := e.GroupCost(append(group, w))
		if err != nil {
			return Factor{}, err
		}
		total += after - before
	}
	return Factor{Value: total / float64(draws), Samples: draws}, nil
}
