// Package attrserver is the online serving layer over the attribution
// engines: a long-lived HTTP service that answers per-tenant attribution,
// share and billing queries against a configured fleet schedule, without
// re-running a batch sweep per question.
//
// The handlers are thin; the substrate does the work:
//
//   - A sharded in-memory result cache (cache.go) keyed by the same
//     config-fingerprint machinery the checkpointed sweeps use
//     (internal/checkpoint CRC fingerprints over the schedule, budget,
//     method and period). Shards carry independent RW locks, LRU lists and
//     byte budgets; entry TTL is tied to the staleness of the live signal
//     the result was priced against (internal/livesignal's degradation
//     ladder), so a result never outlives the signal that justified it.
//   - Request coalescing (coalesce.go): a stdlib-only singleflight group.
//     N concurrent queries for the same (tenant-set, period, config) key
//     trigger exactly one Shapley computation on the parallel engine; the
//     rest wait for the shared result.
//   - Batched evaluation (batch.go): queries arriving within a small
//     window for the same period are merged into one attribution call —
//     one computation prices every tenant in the window, and the result
//     fans back out to each waiter.
//
// Everything is observable: fairco2_attrserver_{requests_total,
// cache_hits_total, cache_misses_total, cache_evictions_total,
// coalesced_total, computations_total, batch_size, inflight} via
// internal/metrics, plus /metrics and /healthz endpoints.
package attrserver
