package attrserver

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"fairco2/internal/livesignal"
)

// Streaming endpoints: when Config.Stream is set, the server exposes the
// windowed streaming engine's per-window Temporal Shapley results next to
// the batch query endpoints. Stream results are pushed by the engine as
// the watermark closes windows, so the handlers only read retained state —
// no computation happens on the request path. Freshness is communicated
// through Cache-Control max-age picked from the result's pricing quality
// on the livesignal ladder: fresh (and static/empty) results live a full
// CacheTTL, stale results only what remains of the staleness bound, and
// degraded results the short DegradedTTL so recovery is re-checked quickly.

// streamWindowJSON is the wire shape of one streamed window result.
type streamWindowJSON struct {
	Index           int64      `json:"index"`
	StartSeconds    float64    `json:"start_seconds"`
	EndSeconds      float64    `json:"end_seconds"`
	BudgetGrams     float64    `json:"budget_gco2e"`
	Signal          signalJSON `json:"signal"`
	Revision        int        `json:"revision"`
	Events          int        `json:"events"`
	LateEvents      int        `json:"late_events"`
	CloseLagSeconds float64    `json:"close_lag_seconds"`
	EmittedAt       time.Time  `json:"emitted_at"`
	Intensity       []float64  `json:"intensity_g_per_core_second"`
}

// streamStatsJSON is the wire shape of the engine counters.
type streamStatsJSON struct {
	Events              uint64    `json:"events"`
	LateEvents          uint64    `json:"late_events"`
	DroppedEvents       uint64    `json:"dropped_events"`
	WindowsClosed       uint64    `json:"windows_closed"`
	Reemissions         uint64    `json:"reemissions"`
	WatermarkSeconds    float64   `json:"watermark_seconds"`
	MaxEventTimeSeconds float64   `json:"max_event_time_seconds"`
	OpenWindows         int       `json:"open_windows"`
	LatestWindow        int64     `json:"latest_window"`
	CloseLagSeconds     []float64 `json:"close_lag_seconds_p50_p90_p99,omitempty"`
}

// streamTTL maps a window result's pricing quality to the max-age the
// response may be cached for, following the livesignal ladder.
func (s *Server) streamTTL(quality string, age time.Duration) time.Duration {
	switch quality {
	case livesignal.QualityStale.String():
		remaining := s.cfg.SignalMaxStale - age
		if remaining > s.cfg.CacheTTL {
			remaining = s.cfg.CacheTTL
		}
		if remaining < time.Second {
			remaining = time.Second
		}
		return remaining
	case livesignal.QualityDegraded.String():
		return s.cfg.DegradedTTL
	default: // fresh, static, empty
		return s.cfg.CacheTTL
	}
}

// handleStreamWindow serves one retained window result: the latest by
// default, or the one named by ?index=N.
func (s *Server) handleStreamWindow(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cfg.Stream.Latest()
	if raw := r.URL.Query().Get("index"); raw != "" && raw != "latest" {
		idx, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || idx < 0 {
			writeError(w, http.StatusBadRequest, errors.New("attrserver: index must be \"latest\" or a non-negative integer"))
			return
		}
		res, ok = s.cfg.Stream.Window(idx)
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("attrserver: window not retained (not closed yet, or evicted from the result ring)"))
		return
	}
	ttl := s.streamTTL(res.Quality, res.SignalAge)
	w.Header().Set("Cache-Control", "max-age="+strconv.Itoa(int(ttl.Seconds())))
	writeJSON(w, http.StatusOK, streamWindowJSON{
		Index:           res.Index,
		StartSeconds:    float64(res.Start),
		EndSeconds:      float64(res.End),
		BudgetGrams:     res.Budget,
		Signal:          signalJSON{Quality: res.Quality, Intensity: res.SignalIntensity},
		Revision:        res.Revision,
		Events:          res.Events,
		LateEvents:      res.Late,
		CloseLagSeconds: float64(res.CloseLag),
		EmittedAt:       res.EmittedAt,
		Intensity:       res.Intensity,
	})
}

// handleStreamStats serves the engine counters and close-lag percentiles.
func (s *Server) handleStreamStats(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Stream.Stats()
	out := streamStatsJSON{
		Events:              st.Events,
		LateEvents:          st.Late,
		DroppedEvents:       st.Dropped,
		WindowsClosed:       st.WindowsClosed,
		Reemissions:         st.Reemissions,
		WatermarkSeconds:    float64(st.Watermark),
		MaxEventTimeSeconds: float64(st.MaxEventTime),
		OpenWindows:         st.OpenWindows,
		LatestWindow:        st.LatestWindow,
	}
	if qs := s.cfg.Stream.CloseLagQuantiles(0.5, 0.9, 0.99); qs != nil {
		out.CloseLagSeconds = make([]float64, len(qs))
		for i, q := range qs {
			out.CloseLagSeconds[i] = float64(q)
		}
	}
	writeJSON(w, http.StatusOK, out)
}
