package attrserver

import (
	"context"
	"sync"
	"time"
)

// batcher merges queries arriving within a small window for the same key
// into one computation and fans the result back out. The first query for a
// key opens a batch and arms the window timer; queries landing before the
// timer fires join the batch (counted as coalesced). When the window
// closes, the batch executes through a singleflight group, so a batch
// whose key is already being computed — opened after the previous batch
// fired but before its computation finished — attaches to the in-flight
// execution instead of starting a second one.
type batcher struct {
	window  time.Duration
	flights *flightGroup
	inst    *Instruments

	mu      sync.Mutex
	pending map[string]*pendingBatch
}

type pendingBatch struct {
	done chan struct{}
	val  any
	err  error
	size int
}

func newBatcher(window time.Duration, inst *Instruments) *batcher {
	return &batcher{
		window: window,
		// A batch attaching to an in-flight computation coalesces its
		// opener too — the joiners were already counted on entry.
		flights: newFlightGroup(func() { inst.Coalesced.Inc() }),
		inst:    inst,
		pending: map[string]*pendingBatch{},
	}
}

// Do resolves key through the batch window + singleflight stack. Waiting
// is bounded by ctx; the computation, once started, is not.
func (b *batcher) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	b.mu.Lock()
	if p, ok := b.pending[key]; ok {
		p.size++
		b.mu.Unlock()
		b.inst.Coalesced.Inc()
		return p.wait(ctx)
	}
	p := &pendingBatch{done: make(chan struct{}), size: 1}
	b.pending[key] = p
	b.mu.Unlock()

	time.AfterFunc(b.window, func() { b.fire(key, p, fn) })
	return p.wait(ctx)
}

// fire closes the batch and executes it. The batch is removed from pending
// first, so late queries open a fresh batch that the singleflight layer
// will attach to this execution if it is still running.
func (b *batcher) fire(key string, p *pendingBatch, fn func() (any, error)) {
	b.mu.Lock()
	delete(b.pending, key)
	size := p.size
	b.mu.Unlock()

	b.inst.BatchSize.Observe(float64(size))
	v, err := b.flights.Do(context.Background(), key, fn)
	p.val, p.err = v, err
	close(p.done)
}

func (p *pendingBatch) wait(ctx context.Context) (any, error) {
	select {
	case <-p.done:
		return p.val, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
