package attrserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fairco2/internal/metrics"
)

// fakeClock is a mutable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestCache(totalBytes int64, shards int, clock *fakeClock) (*resultCache, *Instruments) {
	inst := NewInstruments(metrics.NewRegistry())
	return newResultCache(totalBytes, shards, clock.Now, inst), inst
}

func TestCacheHitMissAndTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	c, inst := newTestCache(1<<20, 4, clock)

	if _, ok := c.get("k"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.put("k", "v", 100, time.Minute)
	v, ok := c.get("k")
	if !ok || v.(string) != "v" {
		t.Fatalf("get after put = (%v, %v), want (v, true)", v, ok)
	}
	clock.Advance(59 * time.Second)
	if _, ok := c.get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clock.Advance(2 * time.Second)
	if _, ok := c.get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if got := inst.CacheHits.Value(); got != 2 {
		t.Errorf("hits = %v, want 2", got)
	}
	if got := inst.CacheMisses.Value(); got != 2 {
		t.Errorf("misses = %v, want 2", got)
	}
	// The expired entry was dropped and counted as an eviction.
	if got := inst.CacheEvictions.Value(); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	if entries, bytes := c.stats(); entries != 0 || bytes != 0 {
		t.Errorf("stats after expiry = (%d, %d), want (0, 0)", entries, bytes)
	}
}

func TestCacheLRUEvictionUnderByteBudget(t *testing.T) {
	clock := newFakeClock()
	// One shard with a 300-byte budget: three 100-byte entries fit, the
	// fourth evicts the least recently used.
	c, inst := newTestCache(300, 1, clock)
	for _, k := range []string{"a", "b", "c"} {
		c.put(k, k, 100, time.Hour)
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("d", "d", 100, time.Hour)

	if _, ok := c.get("b"); ok {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if got := inst.CacheEvictions.Value(); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	if entries, bytes := c.stats(); entries != 3 || bytes != 300 {
		t.Errorf("stats = (%d, %d), want (3, 300)", entries, bytes)
	}
}

func TestCacheReplaceAndOversizedAndZeroTTL(t *testing.T) {
	clock := newFakeClock()
	c, _ := newTestCache(300, 1, clock)

	c.put("k", "old", 100, time.Hour)
	c.put("k", "new", 200, time.Hour)
	v, ok := c.get("k")
	if !ok || v.(string) != "new" {
		t.Fatalf("replaced entry = (%v, %v), want (new, true)", v, ok)
	}
	if entries, bytes := c.stats(); entries != 1 || bytes != 200 {
		t.Errorf("stats after replace = (%d, %d), want (1, 200)", entries, bytes)
	}

	// An entry larger than a whole shard is not cached (and evicts nothing).
	c.put("huge", "x", 301, time.Hour)
	if _, ok := c.get("huge"); ok {
		t.Error("oversized entry was cached")
	}
	if _, ok := c.get("k"); !ok {
		t.Error("oversized put evicted an unrelated entry")
	}

	// Non-positive TTLs mean "do not cache".
	c.put("transient", "x", 10, 0)
	if _, ok := c.get("transient"); ok {
		t.Error("zero-TTL entry was cached")
	}
}

func TestCacheShardRoundingAndSpread(t *testing.T) {
	clock := newFakeClock()
	c, _ := newTestCache(1<<20, 5, clock) // rounds up to 8 shards
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	// Many keys must not all land in one shard.
	for i := 0; i < 256; i++ {
		c.put(fmt.Sprintf("key-%d", i), i, 64, time.Hour)
	}
	used := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		if len(sh.items) > 0 {
			used++
		}
		sh.mu.RUnlock()
	}
	if used < 2 {
		t.Errorf("256 keys landed in %d shard(s); FNV routing is broken", used)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	clock := newFakeClock()
	c, _ := newTestCache(4<<10, 4, clock)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", i%16)
				if i%3 == 0 {
					c.put(key, i, 64, time.Hour)
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	entries, bytes := c.stats()
	if entries < 0 || bytes < 0 || bytes > 4<<10 {
		t.Errorf("stats after concurrent churn = (%d, %d): accounting drifted", entries, bytes)
	}
}
