package attrserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fairco2/internal/attribution"
	"fairco2/internal/schedule"
	"fairco2/internal/shapley"
	"fairco2/internal/temporal"
	"fairco2/internal/units"
)

// The POST /v1/demand/delta endpoint answers "what if tenant i demanded
// X instead?" queries — and optionally commits them — through the
// incremental delta engines rather than full recomputation:
//
//   - shapley.DeltaTable keeps the exact coalition-value table warm and
//     re-evaluates only the coalitions containing the changed tenant
//     (2^n - 2^(n-1) of 2^n for one tenant), serving ground-truth Shapley.
//   - temporal.SignalDelta keeps the Fair-CO2 intensity signal warm and
//     re-attributes only top-level periods whose demand or share moved,
//     serving fair-co2.
//
// Both engines guarantee bitwise identity with a fresh rebuild, so a
// delta answer is indistinguishable from the full computation the GET
// endpoints would run — the differential tests pin this. A commit swaps
// the server's schedule snapshot and patches the result cache under the
// new fingerprint with answers derived from the already-patched engines,
// so the next full-window GET for any standard method is a cache hit
// instead of an eviction-triggered recomputation.

// deltaEngine owns a mutable clone of the serving schedule plus the two
// incremental engines kept consistent with it. All mutation happens under
// mu; what-if queries apply, answer, and revert while holding it.
type deltaEngine struct {
	mu     sync.Mutex
	budget units.GramsCO2e
	par    int
	sched  *schedule.Schedule    // owned clone, mutated by applies
	sig    *temporal.SignalDelta // full-window Fair-CO2 intensity
	dt     *shapley.DeltaTable   // nil when the schedule exceeds shapley.MaxExactPlayers
}

// cloneSchedule deep-copies a schedule so engine mutations never alias
// the caller's (or a served snapshot's) workload slice.
func cloneSchedule(s *schedule.Schedule) *schedule.Schedule {
	c := *s
	c.Workloads = append([]schedule.Workload(nil), s.Workloads...)
	return &c
}

// newDeltaEngine builds the engines against the initial schedule. The
// temporal signal uses the same single-level split TemporalShapley
// defaults to, so its intensity matches the fair-co2 GET path bitwise;
// the Shapley table is built only when exact enumeration is feasible.
func newDeltaEngine(src *schedule.Schedule, budget units.GramsCO2e, par int) (*deltaEngine, error) {
	e := &deltaEngine{budget: budget, par: par, sched: cloneSchedule(src)}
	sig, err := temporal.IntensitySignalDelta(e.sched.Demand(), budget, temporal.Config{SplitRatios: []int{e.sched.Slices}})
	if err != nil {
		return nil, fmt.Errorf("attrserver: building delta signal: %w", err)
	}
	e.sig = sig
	if n := len(e.sched.Workloads); n <= shapley.MaxExactPlayers {
		dt, err := shapley.NewDeltaTableIncremental(n, e.game, par)
		if err != nil {
			return nil, fmt.Errorf("attrserver: building delta table: %w", err)
		}
		e.dt = dt
	}
	return e, nil
}

// game returns a fresh incremental coalition-peak game over the engine's
// current schedule; delta applies re-evaluate affected coalitions with it.
func (e *deltaEngine) game() (add, remove func(int), value func() float64) {
	return attribution.DemandPeakGame(e.sched)
}

// applyLocked installs workload w (replacing the one with its ID) and
// patches both engines through their delta paths. On error the schedule
// and engines are rolled back to the pre-call state. Callers hold e.mu.
func (e *deltaEngine) applyLocked(w schedule.Workload) (temporal.DeltaStats, shapley.DeltaStats, error) {
	old := e.sched.Workloads[w.ID]
	e.sched.Workloads[w.ID] = w
	tstats, err := e.sig.Update(e.sched.Demand())
	if err != nil {
		e.sched.Workloads[w.ID] = old
		return temporal.DeltaStats{}, shapley.DeltaStats{}, err
	}
	var sstats shapley.DeltaStats
	if e.dt != nil {
		sstats, err = e.dt.ApplyIncremental(1<<uint(w.ID), e.game, e.par)
		if err != nil {
			e.sched.Workloads[w.ID] = old
			if _, rerr := e.sig.Update(e.sched.Demand()); rerr != nil {
				err = errors.Join(err, rerr)
			}
			return temporal.DeltaStats{}, shapley.DeltaStats{}, err
		}
	}
	return tstats, sstats, nil
}

// answerLocked derives a full-window answer for a standard method from
// the patched engines. It is bitwise-identical to what compute() would
// produce for the same schedule under static pricing: the full-window
// prorated budget equals the configured budget exactly, the delta table
// equals a fresh coalition table, and the delta signal equals a fresh
// intensity signal. Callers hold e.mu.
func (e *deltaEngine) answerLocked(method string, now time.Time) (*answer, error) {
	var grams []float64
	var err error
	switch method {
	case MethodFairCO2:
		grams, err = attribution.AttributeByIntensity(e.sched, e.sig.Intensity())
	case MethodGroundTruth:
		var phi []float64
		phi, err = shapley.ExactFromTable(len(e.sched.Workloads), e.dt.Table())
		if err == nil {
			grams, err = attribution.NormalizeShares(phi, e.budget)
		}
	case MethodRUP:
		grams, err = attribution.RUPBaseline{}.Attribute(e.sched, e.budget)
	case MethodDemandProportional:
		grams, err = attribution.DemandProportional{}.Attribute(e.sched, e.budget)
	default:
		return nil, fmt.Errorf("attrserver: delta endpoint does not serve method %q", method)
	}
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(e.sched.Workloads))
	for i := range ids {
		ids[i] = i
	}
	return &answer{
		Method:     method,
		Start:      0,
		End:        e.sched.Slices,
		Budget:     float64(e.budget),
		Quality:    "static",
		ComputedAt: now,
		IDs:        ids,
		Grams:      grams,
	}, nil
}

// deltaRequest is the POST /v1/demand/delta body. Tenant selects the
// workload; nil fields keep their current values, so a body setting only
// cores models a pure demand change. Commit makes the change the serving
// schedule; otherwise it is a what-if and the server state is untouched.
type deltaRequest struct {
	Tenant   int    `json:"tenant"`
	Cores    *int   `json:"cores,omitempty"`
	Start    *int   `json:"start,omitempty"`
	Duration *int   `json:"duration,omitempty"`
	Method   string `json:"method,omitempty"`
	Commit   bool   `json:"commit,omitempty"`
}

type deltaWorkloadJSON struct {
	ID       int `json:"id"`
	Cores    int `json:"cores"`
	Start    int `json:"start"`
	Duration int `json:"duration"`
}

// deltaStatsJSON surfaces how much work the delta engines actually did —
// the observable counterpart of the fairco2_shapley_delta_* metrics.
type deltaStatsJSON struct {
	ShapleyBlocksRecomputed int `json:"shapley_blocks_recomputed"`
	ShapleyBlocksSkipped    int `json:"shapley_blocks_skipped"`
	ShapleyCoalitions       int `json:"shapley_coalitions_reevaluated"`
	PeriodsRecomputed       int `json:"temporal_periods_recomputed"`
	PeriodsSkipped          int `json:"temporal_periods_skipped"`
}

type deltaResponse struct {
	Method      string            `json:"method"`
	Period      periodJSON        `json:"period"`
	BudgetGrams float64           `json:"budget_gco2e"`
	Committed   bool              `json:"committed"`
	Fingerprint string            `json:"config_fingerprint"`
	Workload    deltaWorkloadJSON `json:"workload"`
	Attribution []workloadGrams   `json:"workloads"`
	Delta       deltaStatsJSON    `json:"delta"`
	ComputedAt  time.Time         `json:"computed_at"`
}

// handleDemandDelta decodes, applies, and renders a delta query.
func (s *Server) handleDemandDelta(w http.ResponseWriter, r *http.Request) {
	var req deltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("attrserver: decoding delta request: %w", err))
		return
	}
	resp, code, err := s.applyDelta(req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyDelta validates the requested change, patches the engines, answers
// over the full window, and either reverts (what-if) or commits. The
// returned int is the HTTP status to use when err is non-nil.
func (s *Server) applyDelta(req deltaRequest) (*deltaResponse, int, error) {
	method := req.Method
	if method == "" {
		method = MethodFairCO2
	}
	e := s.delta
	e.mu.Lock()
	defer e.mu.Unlock()

	if req.Tenant < 0 || req.Tenant >= len(e.sched.Workloads) {
		return nil, http.StatusBadRequest, fmt.Errorf("attrserver: tenant %d is not a workload ID in [0, %d)", req.Tenant, len(e.sched.Workloads))
	}
	if method == MethodGroundTruth && e.dt == nil {
		return nil, http.StatusBadRequest, fmt.Errorf("attrserver: ground-truth delta needs at most %d workloads, schedule has %d", shapley.MaxExactPlayers, len(e.sched.Workloads))
	}
	old := e.sched.Workloads[req.Tenant]
	mod := old
	if req.Cores != nil {
		mod.Cores = *req.Cores
	}
	if req.Start != nil {
		mod.Start = *req.Start
	}
	if req.Duration != nil {
		mod.Duration = *req.Duration
	}
	trial := cloneSchedule(e.sched)
	trial.Workloads[req.Tenant] = mod
	if err := trial.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}

	tstats, sstats, err := e.applyLocked(mod)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	ans, err := e.answerLocked(method, s.cfg.Now())
	if err != nil {
		if _, _, rerr := e.applyLocked(old); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return nil, http.StatusBadRequest, err
	}
	fp := configFingerprint(e.sched, s.cfg.Budget)
	if req.Commit {
		s.commitLocked(e, fp, method, ans)
	} else if _, _, rerr := e.applyLocked(old); rerr != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("attrserver: reverting what-if: %w", rerr)
	}

	resp := &deltaResponse{
		Method:      ans.Method,
		Period:      periodJSON{Start: ans.Start, End: ans.End},
		BudgetGrams: ans.Budget,
		Committed:   req.Commit,
		Fingerprint: fmt.Sprintf("%08x", fp),
		Workload:    deltaWorkloadJSON{ID: mod.ID, Cores: mod.Cores, Start: mod.Start, Duration: mod.Duration},
		Attribution: tenantGrams(querySpec{tenant: -1}, ans),
		Delta: deltaStatsJSON{
			ShapleyBlocksRecomputed: sstats.BlocksRecomputed,
			ShapleyBlocksSkipped:    sstats.BlocksSkipped,
			ShapleyCoalitions:       sstats.Coalitions,
			PeriodsRecomputed:       tstats.PeriodsRecomputed,
			PeriodsSkipped:          tstats.PeriodsSkipped,
		},
		ComputedAt: ans.ComputedAt,
	}
	return resp, 0, nil
}

// commitLocked publishes the engine's (already patched) schedule as the
// serving snapshot and patches the result cache under the new fingerprint
// with full-window answers for every standard method, all derived from
// the delta engines. Under static pricing those entries are
// bitwise-identical to what compute() would produce, so subsequent GETs
// hit the cache with zero recomputation; under live pricing budgets are
// signal-driven per query, so warming is skipped and queries recompute.
// Callers hold e.mu.
func (s *Server) commitLocked(e *deltaEngine, fp uint32, method string, ans *answer) {
	sched := cloneSchedule(e.sched)
	s.state.Store(&schedState{sched: sched, fp: fp})
	if s.cfg.Feed != nil {
		return
	}
	warm := map[string]*answer{method: ans}
	for _, m := range []string{MethodFairCO2, MethodGroundTruth, MethodRUP, MethodDemandProportional} {
		if _, ok := warm[m]; ok {
			continue
		}
		if m == MethodGroundTruth && e.dt == nil {
			continue
		}
		if a, err := e.answerLocked(m, s.cfg.Now()); err == nil {
			warm[m] = a
		}
	}
	for m, a := range warm {
		key := querySpec{method: m, start: 0, end: sched.Slices, tenant: -1}.cacheKey(fp)
		s.cache.put(key, a, a.sizeBytes(key), s.cfg.CacheTTL)
	}
}
