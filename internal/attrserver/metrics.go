package attrserver

import "fairco2/internal/metrics"

// batchSizeBuckets covers the fan-out a batch window realistically gathers:
// from the solitary query to a thundering herd.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Instruments are the serving-layer metrics for one Server. Every family
// carries a leading `replica` label so several replicas — the cluster
// proxy's normal deployment, and any multi-replica test — can share one
// registry without aliasing each other's counters; the fields here are
// the children (or curried views) already bound to this Server's replica
// value. Families are registered get-or-create, so the second replica on
// a registry reuses the first one's families.
type Instruments struct {
	// Requests counts finished HTTP requests by endpoint and status code
	// (fairco2_attrserver_requests_total{replica,endpoint,code}).
	Requests metrics.CurriedCounterVec
	// CacheHits / CacheMisses count result-cache lookups on the query path.
	CacheHits   *metrics.Counter
	CacheMisses *metrics.Counter
	// CacheEvictions counts entries dropped by the byte-budget LRU or by
	// TTL expiry.
	CacheEvictions *metrics.Counter
	// Coalesced counts queries served by a computation they did not
	// trigger: joins of a pending batch plus batches that attached to an
	// already-in-flight computation.
	Coalesced *metrics.Counter
	// Computations counts underlying attribution computations by method —
	// the denominator that proves coalescing works, and, summed across
	// replicas, that cluster routing never computes one query twice
	// (fairco2_attrserver_computations_total{replica,method}).
	Computations metrics.CurriedCounterVec
	// BatchSize observes how many queries each fired batch fanned out to
	// (an in-flight computation may serve several batches).
	BatchSize *metrics.Histogram
	// Inflight gauges HTTP requests currently being served.
	Inflight *metrics.Gauge
}

// NewInstruments registers the serving-layer metrics on reg for the
// default replica "0" — the single-process deployment.
func NewInstruments(reg *metrics.Registry) *Instruments {
	return NewReplicaInstruments(reg, "0")
}

// NewReplicaInstruments registers (or joins) the serving-layer metric
// families on reg and binds their children to the given replica label.
func NewReplicaInstruments(reg *metrics.Registry, replica string) *Instruments {
	return &Instruments{
		Requests: reg.GetOrNewCounterVec(
			"fairco2_attrserver_requests_total",
			"Attribution-service HTTP requests finished, by replica, endpoint and status code.",
			"replica", "endpoint", "code").Curry(replica),
		CacheHits: reg.GetOrNewCounterVec(
			"fairco2_attrserver_cache_hits_total",
			"Result-cache lookups answered from the cache.",
			"replica").With(replica),
		CacheMisses: reg.GetOrNewCounterVec(
			"fairco2_attrserver_cache_misses_total",
			"Result-cache lookups that missed (expired or never computed).",
			"replica").With(replica),
		CacheEvictions: reg.GetOrNewCounterVec(
			"fairco2_attrserver_cache_evictions_total",
			"Result-cache entries evicted by the byte-budget LRU or TTL expiry.",
			"replica").With(replica),
		Coalesced: reg.GetOrNewCounterVec(
			"fairco2_attrserver_coalesced_total",
			"Queries served by a computation they did not trigger (batch joins + in-flight shares).",
			"replica").With(replica),
		Computations: reg.GetOrNewCounterVec(
			"fairco2_attrserver_computations_total",
			"Underlying attribution computations executed, by replica and method.",
			"replica", "method").Curry(replica),
		BatchSize: reg.GetOrNewHistogramVec(
			"fairco2_attrserver_batch_size",
			"Queries fanned out together per fired batch.",
			batchSizeBuckets,
			"replica").With(replica),
		Inflight: reg.GetOrNewGaugeVec(
			"fairco2_attrserver_inflight",
			"HTTP requests currently in flight.",
			"replica").With(replica),
	}
}
