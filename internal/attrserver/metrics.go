package attrserver

import "fairco2/internal/metrics"

// batchSizeBuckets covers the fan-out a batch window realistically gathers:
// from the solitary query to a thundering herd.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Instruments are the serving-layer metrics. Create them once per registry
// (the daemon uses metrics.Default(); tests use a fresh registry) and hand
// them to New.
type Instruments struct {
	// Requests counts finished HTTP requests by endpoint and status code
	// (fairco2_attrserver_requests_total).
	Requests metrics.CounterVec
	// CacheHits / CacheMisses count result-cache lookups on the query path.
	CacheHits   *metrics.Counter
	CacheMisses *metrics.Counter
	// CacheEvictions counts entries dropped by the byte-budget LRU or by
	// TTL expiry.
	CacheEvictions *metrics.Counter
	// Coalesced counts queries served by a computation they did not
	// trigger: joins of a pending batch plus batches that attached to an
	// already-in-flight computation.
	Coalesced *metrics.Counter
	// Computations counts underlying attribution computations by method —
	// the denominator that proves coalescing works.
	Computations metrics.CounterVec
	// BatchSize observes how many queries each fired batch fanned out to
	// (an in-flight computation may serve several batches).
	BatchSize *metrics.Histogram
	// Inflight gauges HTTP requests currently being served.
	Inflight *metrics.Gauge
}

// NewInstruments registers the serving-layer metrics on reg.
func NewInstruments(reg *metrics.Registry) *Instruments {
	return &Instruments{
		Requests: reg.NewCounterVec(
			"fairco2_attrserver_requests_total",
			"Attribution-service HTTP requests finished, by endpoint and status code.",
			"endpoint", "code"),
		CacheHits: reg.NewCounter(
			"fairco2_attrserver_cache_hits_total",
			"Result-cache lookups answered from the cache."),
		CacheMisses: reg.NewCounter(
			"fairco2_attrserver_cache_misses_total",
			"Result-cache lookups that missed (expired or never computed)."),
		CacheEvictions: reg.NewCounter(
			"fairco2_attrserver_cache_evictions_total",
			"Result-cache entries evicted by the byte-budget LRU or TTL expiry."),
		Coalesced: reg.NewCounter(
			"fairco2_attrserver_coalesced_total",
			"Queries served by a computation they did not trigger (batch joins + in-flight shares)."),
		Computations: reg.NewCounterVec(
			"fairco2_attrserver_computations_total",
			"Underlying attribution computations executed, by method.",
			"method"),
		BatchSize: reg.NewHistogram(
			"fairco2_attrserver_batch_size",
			"Queries fanned out together per fired batch.",
			batchSizeBuckets),
		Inflight: reg.NewGauge(
			"fairco2_attrserver_inflight",
			"HTTP requests currently in flight."),
	}
}
