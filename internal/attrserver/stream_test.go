package attrserver

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fairco2/internal/livesignal"
	"fairco2/internal/stream"
	"fairco2/internal/units"
)

// newStreamEngine builds a small engine and closes its first two windows:
// 1-second bins, 6-bin windows, one late correction landing in window 0.
func newStreamEngine(t *testing.T, mutate func(*stream.Config)) *stream.Engine {
	t.Helper()
	cfg := stream.Config{
		Step:            1,
		SplitRatios:     []int{3, 2},
		BudgetPerWindow: 600,
		MaxDelay:        4,
		AllowedLateness: 12,
		MaxResults:      8,
		Parallelism:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := stream.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ { // closes windows 0 and 1 (watermark reaches 12)
		if err := e.Ingest(stream.Event{Time: units.Seconds(i), Cores: float64(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ingest(stream.Event{Time: 3, Cores: 99}); err != nil { // late into window 0
		t.Fatal(err)
	}
	return e
}

func TestStreamWindowEndpoint(t *testing.T) {
	eng := newStreamEngine(t, nil)
	s, _ := newTestServer(t, nil, func(c *Config) { c.Stream = eng })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var latest streamWindowJSON
	if code := getJSON(t, ts.URL+"/v1/stream/window", &latest); code != http.StatusOK {
		t.Fatalf("latest window status %d", code)
	}
	if latest.Index != 1 || len(latest.Intensity) != 6 {
		t.Fatalf("latest = %+v", latest)
	}

	var w0 streamWindowJSON
	if code := getJSON(t, ts.URL+"/v1/stream/window?index=0", &w0); code != http.StatusOK {
		t.Fatal("window 0 not served")
	}
	if w0.Index != 0 || w0.Revision != 1 || w0.LateEvents != 1 {
		t.Fatalf("window 0 missing its late correction: %+v", w0)
	}
	if w0.StartSeconds != 0 || w0.EndSeconds != 6 || w0.BudgetGrams != 600 {
		t.Fatalf("window 0 bounds/budget: %+v", w0)
	}
	if w0.Signal.Quality != "static" {
		t.Fatalf("quality = %q, want static", w0.Signal.Quality)
	}

	// The static-budget result advertises the full CacheTTL.
	resp, err := http.Get(ts.URL + "/v1/stream/window?index=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := "max-age=" + strconv.Itoa(int(DefaultConfig().CacheTTL.Seconds()))
	if cc := resp.Header.Get("Cache-Control"); cc != want {
		t.Errorf("Cache-Control = %q, want %q", cc, want)
	}

	for _, bad := range []string{"?index=-1", "?index=abc"} {
		if code := getJSON(t, ts.URL+"/v1/stream/window"+bad, nil); code != http.StatusBadRequest {
			t.Errorf("index %q status %d, want 400", bad, code)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/stream/window?index=7", nil); code != http.StatusNotFound {
		t.Error("unretained window did not 404")
	}
}

func TestStreamStatsEndpoint(t *testing.T) {
	eng := newStreamEngine(t, nil)
	s, _ := newTestServer(t, nil, func(c *Config) { c.Stream = eng })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st streamStatsJSON
	if code := getJSON(t, ts.URL+"/v1/stream/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Events != 18 || st.LateEvents != 1 || st.WindowsClosed != 2 || st.Reemissions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LatestWindow != 1 || st.WatermarkSeconds != 12 {
		t.Fatalf("frontier wrong: %+v", st)
	}
	if len(st.CloseLagSeconds) != 3 {
		t.Fatalf("expected 3 close-lag percentiles, got %v", st.CloseLagSeconds)
	}
}

func TestStreamEndpointsAbsentWithoutEngine(t *testing.T) {
	s, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/v1/stream/window", nil); code != http.StatusNotFound {
		t.Errorf("stream route registered without an engine: status %d", code)
	}
}

// failingSource always errors, driving a feed straight to degraded.
type failingSource struct{}

func (failingSource) Current() (float64, error) { return 0, errors.New("down") }

func TestStreamTTLFollowsQualityLadder(t *testing.T) {
	// Degraded pricing advertises the short DegradedTTL.
	feed := livesignal.NewFeed(failingSource{}, livesignal.FeedConfig{}, nil)
	eng := newStreamEngine(t, func(c *stream.Config) { c.Feed = feed })
	s, _ := newTestServer(t, nil, func(c *Config) { c.Stream = eng })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream/window")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := "max-age=" + strconv.Itoa(int(DefaultConfig().DegradedTTL.Seconds()))
	if cc := resp.Header.Get("Cache-Control"); cc != want {
		t.Errorf("degraded Cache-Control = %q, want %q", cc, want)
	}

	// The ladder arithmetic itself: stale results get only what remains of
	// the staleness bound, floored at one second.
	srv, _ := newTestServer(t, nil, nil)
	stale := livesignal.QualityStale.String()
	if ttl := srv.streamTTL(stale, srv.cfg.SignalMaxStale-10*time.Second); ttl != 10*time.Second {
		t.Errorf("stale TTL = %v, want 10s", ttl)
	}
	if ttl := srv.streamTTL(stale, srv.cfg.SignalMaxStale+time.Minute); ttl != time.Second {
		t.Errorf("expired-stale TTL = %v, want the 1s floor", ttl)
	}
	if ttl := srv.streamTTL(stale, 0); ttl != srv.cfg.CacheTTL {
		t.Errorf("barely-stale TTL = %v, want capped at CacheTTL %v", ttl, srv.cfg.CacheTTL)
	}
	if ttl := srv.streamTTL("fresh", 0); ttl != srv.cfg.CacheTTL {
		t.Errorf("fresh TTL = %v, want CacheTTL", ttl)
	}
}

func TestStreamEndpointsAreInstrumented(t *testing.T) {
	eng := newStreamEngine(t, nil)
	s, _ := newTestServer(t, nil, func(c *Config) { c.Stream = eng })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/v1/stream/window", nil); code != http.StatusOK {
		t.Fatal("window fetch failed")
	}
	body := scrape(t, ts.URL+"/metrics")
	if !strings.Contains(body, `endpoint="stream-window"`) {
		t.Error("stream-window requests not counted in the endpoint metric")
	}
}
