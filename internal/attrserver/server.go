package attrserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fairco2/internal/attribution"
	"fairco2/internal/livesignal"
	"fairco2/internal/metrics"
	"fairco2/internal/multiregion"
	"fairco2/internal/schedule"
	"fairco2/internal/stream"
	"fairco2/internal/units"
)

// Config parameterizes the attribution query service. Schedule and Budget
// are required; zero values elsewhere select the defaults below.
type Config struct {
	// Schedule is the fleet schedule queries attribute over.
	Schedule *schedule.Schedule
	// Budget is the embodied budget over the whole schedule window; a
	// queried period prices its time-proportional slice of it (unless a
	// live signal is configured, below).
	Budget units.GramsCO2e
	// Parallelism is forwarded to the Shapley engines (0 auto, 1 serial).
	Parallelism int
	// EnableDelta serves POST /v1/demand/delta: what-if and committed
	// single-tenant demand updates answered by the incremental delta
	// engines (shapley.DeltaTable, temporal.SignalDelta) instead of full
	// recomputation. DefaultConfig turns it on; a zero-value Config leaves
	// it off, so embedding callers opt in explicitly.
	EnableDelta bool

	// CacheBytes bounds the result cache (default 8 MiB).
	CacheBytes int64
	// CacheShards is rounded up to a power of two (default 16).
	CacheShards int
	// CacheTTL is the lifetime of a result priced against a fresh signal,
	// or any result when no signal is configured (default 5m).
	CacheTTL time.Duration
	// DegradedTTL is the lifetime of a result priced while the signal was
	// degraded — short, so recovery is picked up quickly (default 15s).
	DegradedTTL time.Duration
	// BatchWindow is how long the first query for a key waits to gather a
	// batch before computing (default 5ms; 0 computes immediately, with
	// coalescing still folding concurrent identical queries together).
	BatchWindow time.Duration
	// QueryTimeout bounds each query endpoint request (default 30s).
	QueryTimeout time.Duration
	// PricePerTonne converts attributed grams to the billing endpoint's
	// dollars, in USD per tonne CO2e (default 100).
	PricePerTonne float64

	// Feed, when set, prices queried periods against the live embodied
	// intensity (budget = intensity x the period's resource-seconds) and
	// ties cache TTLs to the signal's staleness ladder. When nil, the
	// static Budget is prorated by period length.
	Feed *livesignal.Feed
	// Stream, when set, exposes the windowed streaming engine's retained
	// per-window results under /v1/stream/; response freshness follows
	// each result's pricing quality on the livesignal ladder.
	Stream *stream.Engine
	// SignalMaxStale mirrors the feed's staleness bound: a result priced
	// against a stale sample never outlives what remains of it (default
	// livesignal.DefaultMaxStale).
	SignalMaxStale time.Duration

	// Scenario, when set, exposes the multi-region scenario endpoints:
	// GET /v1/regions (discovered providers, fleets and grid calibration)
	// and GET /v1/placement/whatif (cross-region placement Pareto front).
	// Discovery is seeded, so equal seeds serve byte-identical answers.
	Scenario *multiregion.Scenario

	// Replica labels this server's metric families, so several replicas
	// of a cluster can share one registry without aliasing counters
	// (default "0"). It is a metrics identity only; routing identity
	// lives in the cluster layer.
	Replica string

	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
	// Methods overrides or extends the attribution method set keyed by
	// query name; mainly for tests (gated methods). Defaults to the four
	// standard methods built with Parallelism.
	Methods map[string]attribution.Method
}

// DefaultConfig returns the serving defaults; the caller fills Schedule
// and Budget.
func DefaultConfig() Config {
	return Config{
		EnableDelta:    true,
		CacheBytes:     8 << 20,
		CacheShards:    16,
		CacheTTL:       5 * time.Minute,
		DegradedTTL:    15 * time.Second,
		BatchWindow:    5 * time.Millisecond,
		QueryTimeout:   30 * time.Second,
		PricePerTonne:  100,
		SignalMaxStale: livesignal.DefaultMaxStale,
	}
}

// withDefaults fills zero-valued knobs from DefaultConfig.
func withDefaults(cfg Config) Config {
	def := DefaultConfig()
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	if cfg.CacheShards == 0 {
		cfg.CacheShards = def.CacheShards
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = def.CacheTTL
	}
	if cfg.DegradedTTL == 0 {
		cfg.DegradedTTL = def.DegradedTTL
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = def.QueryTimeout
	}
	if cfg.PricePerTonne == 0 {
		cfg.PricePerTonne = def.PricePerTonne
	}
	if cfg.SignalMaxStale == 0 {
		cfg.SignalMaxStale = def.SignalMaxStale
	}
	if cfg.Replica == "" {
		cfg.Replica = "0"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

func (cfg Config) validate() error {
	switch {
	case cfg.Schedule == nil:
		return errors.New("attrserver: nil schedule")
	case cfg.Budget <= 0:
		return errors.New("attrserver: budget must be positive")
	case cfg.CacheBytes < 0, cfg.CacheShards < 0:
		return errors.New("attrserver: cache knobs must be non-negative")
	case cfg.CacheTTL < 0, cfg.DegradedTTL < 0, cfg.BatchWindow < 0, cfg.QueryTimeout < 0:
		return errors.New("attrserver: durations must be non-negative")
	case cfg.PricePerTonne < 0:
		return errors.New("attrserver: price must be non-negative")
	}
	return cfg.Schedule.Validate()
}

// Health statuses reported by /healthz. Cluster probers parse the status
// field, so the strings are part of the wire contract: an "ok" replica is
// routable, a "warming" one is alive but still replaying missed commits
// (excluded from rings until it reports ok), and a "draining" one answers
// 503 so probers evict it ahead of shutdown.
const (
	HealthOK       = "ok"
	HealthWarming  = "warming"
	HealthDraining = "draining"
)

// Server answers attribution, share and billing queries over one
// configured schedule.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	inst    *Instruments
	cache   *resultCache
	batch   *batcher
	methods map[string]attribution.Method
	state   atomic.Pointer[schedState]
	health  atomic.Value // string; empty = HealthOK
	delta   *deltaEngine // nil unless Config.EnableDelta
	started time.Time
}

// schedState is the servable schedule and its cache fingerprint, swapped
// atomically when a delta commit lands. Queries load one snapshot and use
// it throughout, so a concurrent commit never mixes old and new state
// within a single answer; results computed against a superseded snapshot
// are cached under the superseded fingerprint and simply age out.
type schedState struct {
	sched *schedule.Schedule
	fp    uint32
}

// snapshot returns the current schedule state.
func (s *Server) snapshot() *schedState { return s.state.Load() }

// New builds a Server and registers its instruments on reg.
func New(cfg Config, reg *metrics.Registry) (*Server, error) {
	cfg = withDefaults(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inst := NewReplicaInstruments(reg, cfg.Replica)
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		inst:    inst,
		cache:   newResultCache(cfg.CacheBytes, cfg.CacheShards, cfg.Now, inst),
		batch:   newBatcher(cfg.BatchWindow, inst),
		started: cfg.Now(),
		methods: map[string]attribution.Method{
			MethodGroundTruth:        attribution.GroundTruth{Parallelism: cfg.Parallelism},
			MethodRUP:                attribution.RUPBaseline{},
			MethodDemandProportional: attribution.DemandProportional{},
			MethodFairCO2:            attribution.TemporalShapley{Parallelism: cfg.Parallelism},
		},
	}
	for name, m := range cfg.Methods {
		s.methods[name] = m
	}
	s.state.Store(&schedState{sched: cfg.Schedule, fp: configFingerprint(cfg.Schedule, cfg.Budget)})
	if cfg.EnableDelta {
		d, err := newDeltaEngine(cfg.Schedule, cfg.Budget, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		s.delta = d
	}
	return s, nil
}

// answer is one computed result: every workload active in the queried
// period, priced under the period budget. It is the cache value; tenant
// filtering happens at render time so one entry serves every tenant.
type answer struct {
	Method     string
	Start, End int
	Budget     float64
	Intensity  float64 // signal intensity the budget derives from (0 = static)
	Quality    string  // fresh | stale | degraded | static
	ComputedAt time.Time
	IDs        []int     // original workload IDs active in the period
	Grams      []float64 // attribution per IDs entry; sums to Budget
}

// sizeBytes estimates the entry's cache footprint: key, strings, the two
// parallel slices, and fixed struct overhead.
func (a *answer) sizeBytes(key string) int64 {
	const fixed = 160
	return int64(len(key)+len(a.Method)+len(a.Quality)) + int64(len(a.IDs))*24 + fixed
}

// resolve answers a query through the cache, then the batch/coalesce
// stack. Waiting is bounded by ctx; a computation, once started, always
// finishes and fills the cache.
func (s *Server) resolve(ctx context.Context, q querySpec) (*answer, error) {
	st := s.snapshot()
	key := q.cacheKey(st.fp)
	if v, ok := s.cache.get(key); ok {
		return v.(*answer), nil
	}
	v, err := s.batch.Do(ctx, key, func() (any, error) { return s.compute(st, q, key) })
	if err != nil {
		return nil, err
	}
	return v.(*answer), nil
}

// compute runs one attribution over the queried period and caches it.
func (s *Server) compute(st *schedState, q querySpec, key string) (*answer, error) {
	s.inst.Computations.With(q.method).Inc()
	sub, ids, err := subSchedule(st.sched, q.start, q.end)
	if err != nil {
		return nil, err
	}
	budget, intensity, quality, ttl := s.budgetFor(st, sub, q.start, q.end)
	grams, err := s.methods[q.method].Attribute(sub, budget)
	if err != nil {
		return nil, fmt.Errorf("attrserver: %s over period %d:%d: %w", q.method, q.start, q.end, err)
	}
	ans := &answer{
		Method:     q.method,
		Start:      q.start,
		End:        q.end,
		Budget:     float64(budget),
		Intensity:  intensity,
		Quality:    quality,
		ComputedAt: s.cfg.Now(),
		IDs:        ids,
		Grams:      grams,
	}
	s.cache.put(key, ans, ans.sizeBytes(key), ttl)
	return ans, nil
}

// budgetFor prices a period and picks the TTL its result may live for.
// Static mode prorates the configured budget by period length. Signal mode
// prices the period's resource-seconds at the live intensity and walks the
// degradation ladder: fresh samples get the full TTL, stale samples only
// what remains of the staleness bound, and degraded service falls back to
// the prorated budget with a short TTL so recovery is picked up quickly.
func (s *Server) budgetFor(st *schedState, sub *schedule.Schedule, start, end int) (budget units.GramsCO2e, intensity float64, quality string, ttl time.Duration) {
	prorated := units.GramsCO2e(float64(s.cfg.Budget) * float64(end-start) / float64(st.sched.Slices))
	if s.cfg.Feed == nil {
		return prorated, 0, "static", s.cfg.CacheTTL
	}
	sample, err := s.cfg.Feed.Intensity()
	if err != nil || sample.Quality == livesignal.QualityDegraded {
		return prorated, 0, livesignal.QualityDegraded.String(), s.cfg.DegradedTTL
	}
	budget = units.GramsCO2e(sample.Intensity * float64(sub.TotalCoreSeconds()))
	ttl = s.cfg.CacheTTL
	if sample.Quality == livesignal.QualityStale {
		if remaining := s.cfg.SignalMaxStale - sample.Age; remaining < ttl {
			ttl = remaining
		}
		if ttl < time.Second {
			ttl = time.Second
		}
	}
	return budget, sample.Intensity, sample.Quality.String(), ttl
}

// Handler returns the service routes: the three query endpoints, the
// metrics exposition and a health endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/attribution", s.queryHandler("attribution", renderAttribution))
	mux.Handle("GET /v1/share", s.queryHandler("share", renderShare))
	mux.Handle("GET /v1/billing", s.queryHandler("billing", renderBilling))
	if s.delta != nil {
		mux.Handle("POST /v1/demand/delta", s.instrument("demand-delta", http.HandlerFunc(s.handleDemandDelta)))
	}
	mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /metrics", s.instrument("metrics", s.reg.Handler()))
	if s.cfg.Stream != nil {
		mux.Handle("GET /v1/stream/window", s.instrument("stream-window", http.HandlerFunc(s.handleStreamWindow)))
		mux.Handle("GET /v1/stream/stats", s.instrument("stream-stats", http.HandlerFunc(s.handleStreamStats)))
	}
	if s.cfg.Scenario != nil {
		mux.Handle("GET /v1/regions", s.instrument("regions", http.HandlerFunc(s.handleRegions)))
		mux.Handle("GET /v1/placement/whatif", s.instrument("placement-whatif", http.HandlerFunc(s.handlePlacementWhatif)))
	}
	return mux
}

// instrument wraps a handler with the in-flight gauge and the per-endpoint
// request/status counter.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inst.Inflight.Inc()
		defer s.inst.Inflight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		s.inst.Requests.With(endpoint, strconv.Itoa(rec.code)).Inc()
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// queryHandler parses, resolves under the endpoint timeout, and renders.
func (s *Server) queryHandler(endpoint string, render func(*Server, querySpec, *answer) any) http.Handler {
	return s.instrument(endpoint, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := s.parseQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		ans, err := s.resolve(ctx, q)
		if err != nil {
			switch {
			case errors.Is(err, errEmptyPeriod):
				writeError(w, http.StatusBadRequest, err)
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				writeError(w, http.StatusGatewayTimeout, err)
			default:
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, render(s, q, ans))
	}))
}

// SetHealthStatus publishes the readiness the health endpoint reports —
// HealthOK, HealthWarming or HealthDraining. The cluster layer drives it
// through the Warming catch-up and graceful-drain lifecycles.
func (s *Server) SetHealthStatus(status string) { s.health.Store(status) }

// HealthStatus is the currently published readiness.
func (s *Server) HealthStatus() string {
	if v, ok := s.health.Load().(string); ok && v != "" {
		return v
	}
	return HealthOK
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.stats()
	st := s.snapshot()
	status := s.HealthStatus()
	code := http.StatusOK
	if status == HealthDraining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":             status,
		"uptime_seconds":     s.cfg.Now().Sub(s.started).Seconds(),
		"config_fingerprint": fmt.Sprintf("%08x", st.fp),
		"delta_enabled":      s.delta != nil,
		"schedule": map[string]any{
			"slices":    st.sched.Slices,
			"workloads": len(st.sched.Workloads),
		},
		"cache": map[string]any{
			"entries": entries,
			"bytes":   bytes,
		},
	})
}

// Response shapes. Field names are the wire contract documented in README.

type periodJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

type signalJSON struct {
	Quality   string  `json:"quality"`
	Intensity float64 `json:"intensity_g_per_core_second"`
}

type queryResponse struct {
	Method      string     `json:"method"`
	Period      periodJSON `json:"period"`
	BudgetGrams float64    `json:"budget_gco2e"`
	Signal      signalJSON `json:"signal"`
	ComputedAt  time.Time  `json:"computed_at"`
	// Exactly one of the following is set, by endpoint.
	Attribution []workloadGrams `json:"workloads,omitempty"`
	Shares      []workloadShare `json:"shares,omitempty"`
	Billing     *billingJSON    `json:"billing,omitempty"`
}

type workloadGrams struct {
	ID    int     `json:"id"`
	Grams float64 `json:"gco2e"`
}

type workloadShare struct {
	ID    int     `json:"id"`
	Share float64 `json:"share"`
}

type billingJSON struct {
	PricePerTonne float64       `json:"price_per_tonne_usd"`
	Lines         []billingLine `json:"lines"`
}

type billingLine struct {
	ID    int     `json:"id"`
	Grams float64 `json:"gco2e"`
	USD   float64 `json:"usd"`
}

// header fills the response fields every endpoint shares.
func header(a *answer) queryResponse {
	return queryResponse{
		Method:      a.Method,
		Period:      periodJSON{Start: a.Start, End: a.End},
		BudgetGrams: a.Budget,
		Signal:      signalJSON{Quality: a.Quality, Intensity: a.Intensity},
		ComputedAt:  a.ComputedAt,
	}
}

// tenantGrams selects the (id, grams) pairs the query asked for: one
// tenant (0 grams when it does not run in the period) or all of them.
func tenantGrams(q querySpec, a *answer) []workloadGrams {
	if q.tenant >= 0 {
		out := []workloadGrams{{ID: q.tenant}}
		for i, id := range a.IDs {
			if id == q.tenant {
				out[0].Grams = a.Grams[i]
			}
		}
		return out
	}
	out := make([]workloadGrams, len(a.IDs))
	for i, id := range a.IDs {
		out[i] = workloadGrams{ID: id, Grams: a.Grams[i]}
	}
	return out
}

func renderAttribution(s *Server, q querySpec, a *answer) any {
	resp := header(a)
	resp.Attribution = tenantGrams(q, a)
	return resp
}

func renderShare(s *Server, q querySpec, a *answer) any {
	total := 0.0
	for _, g := range a.Grams {
		total += g
	}
	resp := header(a)
	for _, wg := range tenantGrams(q, a) {
		share := 0.0
		if total > 0 {
			share = wg.Grams / total
		}
		resp.Shares = append(resp.Shares, workloadShare{ID: wg.ID, Share: share})
	}
	return resp
}

func renderBilling(s *Server, q querySpec, a *answer) any {
	resp := header(a)
	bill := &billingJSON{PricePerTonne: s.cfg.PricePerTonne}
	for _, wg := range tenantGrams(q, a) {
		bill.Lines = append(bill.Lines, billingLine{
			ID:    wg.ID,
			Grams: wg.Grams,
			USD:   wg.Grams / 1e6 * s.cfg.PricePerTonne,
		})
	}
	resp.Billing = bill
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
