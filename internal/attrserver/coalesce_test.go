package attrserver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupSharesOneExecution(t *testing.T) {
	var dups, calls atomic.Int64
	g := newFlightGroup(func() { dups.Add(1) })

	const n = 16
	release := make(chan struct{})
	fn := func() (any, error) {
		calls.Add(1)
		<-release
		return "shared", nil
	}

	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Do(context.Background(), "k", fn)
		}(i)
	}
	// Every non-leader registers as a dup before blocking, so this poll
	// converges exactly when all n callers have attached.
	deadline := time.Now().Add(5 * time.Second)
	for dups.Load() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("dups = %d after 5s, want %d", dups.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	for i := range results {
		if errs[i] != nil || results[i].(string) != "shared" {
			t.Errorf("caller %d got (%v, %v), want (shared, nil)", i, results[i], errs[i])
		}
	}
}

func TestFlightGroupKeysAreIndependent(t *testing.T) {
	var calls atomic.Int64
	g := newFlightGroup(nil)
	fn := func() (any, error) { return calls.Add(1), nil }
	if _, err := g.Do(context.Background(), "a", fn); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Do(context.Background(), "b", fn); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("distinct keys shared an execution: %d calls, want 2", got)
	}
}

func TestFlightGroupSequentialCallsRecompute(t *testing.T) {
	var calls atomic.Int64
	g := newFlightGroup(nil)
	fn := func() (any, error) { return calls.Add(1), nil }
	v1, _ := g.Do(context.Background(), "k", fn)
	v2, _ := g.Do(context.Background(), "k", fn)
	if v1.(int64) != 1 || v2.(int64) != 2 {
		t.Errorf("sequential calls got %v, %v; want 1, 2 (no stale sharing)", v1, v2)
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	g := newFlightGroup(nil)
	boom := errors.New("boom")
	if _, err := g.Do(context.Background(), "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestFlightGroupWaiterHonorsContext(t *testing.T) {
	var dups atomic.Int64
	g := newFlightGroup(func() { dups.Add(1) })
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = g.Do(context.Background(), "k", func() (any, error) {
			<-release
			return "late", nil
		})
	}()
	<-started
	// Wait for the leader's flight to be registered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		_, inflight := g.calls["k"]
		g.mu.Unlock()
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader flight never registered")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter got %v, want context.Canceled", err)
	}
	close(release)
}
