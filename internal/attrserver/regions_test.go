package attrserver

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"fairco2/internal/metrics"
	"fairco2/internal/multiregion"
	"fairco2/internal/schedule"
)

func newRegionServer(t *testing.T, seed int64) *httptest.Server {
	t.Helper()
	mcfg := multiregion.DefaultConfig()
	mcfg.Schedule.MaxWorkloads = 10
	sc, err := multiregion.Discover(mcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.Generate(schedule.DefaultGeneratorConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Schedule = sched
	cfg.Budget = 1e6
	cfg.Scenario = sc
	srv, err := New(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// Two servers discovered from the same seed must serve byte-identical
// region and placement answers — the endpoint-level determinism the issue
// pins down.
func TestRegionEndpointsSeedStable(t *testing.T) {
	a := newRegionServer(t, 77)
	b := newRegionServer(t, 77)
	for _, path := range []string{"/v1/regions", "/v1/placement/whatif", "/v1/placement/whatif?max_moves=3"} {
		codeA, bodyA := fetch(t, a.URL+path)
		codeB, bodyB := fetch(t, b.URL+path)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: status %d / %d", path, codeA, codeB)
		}
		if string(bodyA) != string(bodyB) {
			t.Errorf("%s: responses differ across equal-seed servers", path)
		}
	}
	c := newRegionServer(t, 78)
	_, bodyA := fetch(t, a.URL+"/v1/regions")
	_, bodyC := fetch(t, c.URL+"/v1/regions")
	if string(bodyA) == string(bodyC) {
		t.Error("different seeds must discover different scenarios")
	}
}

func TestRegionsEndpointShape(t *testing.T) {
	ts := newRegionServer(t, 5)
	code, body := fetch(t, ts.URL+"/v1/regions")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Seed    int64 `json:"seed"`
		Regions []struct {
			Provider     string  `json:"provider"`
			Region       string  `json:"region"`
			PUE          float64 `json:"pue"`
			MeanCI       float64 `json:"mean_intensity_g_per_kwh"`
			LogicalCores int     `json:"logical_cores"`
			Budget       float64 `json:"budget_gco2e"`
			Tenants      int     `json:"tenants"`
			Fleet        []struct {
				Class string `json:"class"`
				Count int    `json:"count"`
			} `json:"fleet"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != 5 {
		t.Errorf("seed = %d", resp.Seed)
	}
	if len(resp.Regions) != 8 {
		t.Fatalf("%d regions, want 8", len(resp.Regions))
	}
	for _, r := range resp.Regions {
		if r.Provider == "" || r.Region == "" || r.PUE < 1 || r.MeanCI <= 0 ||
			r.LogicalCores <= 0 || r.Budget <= 0 || r.Tenants == 0 || len(r.Fleet) != 2 {
			t.Errorf("malformed region entry: %+v", r)
		}
	}
}

func TestPlacementWhatifEndpoint(t *testing.T) {
	ts := newRegionServer(t, 5)
	code, body := fetch(t, ts.URL+"/v1/placement/whatif")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Baseline float64 `json:"baseline_gco2e"`
		Front    []struct {
			Moves  int     `json:"moves"`
			Total  float64 `json:"total_gco2e"`
			Saving float64 `json:"saving_gco2e"`
			Plan   []struct {
				Tenant string `json:"tenant"`
				From   string `json:"from"`
				To     string `json:"to"`
			} `json:"plan"`
		} `json:"front"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Front) < 2 {
		t.Fatalf("front has %d points", len(resp.Front))
	}
	if resp.Front[0].Moves != 0 || resp.Front[0].Total != resp.Baseline {
		t.Errorf("front must start at the zero-move baseline: %+v", resp.Front[0])
	}
	for k := 1; k < len(resp.Front); k++ {
		p := resp.Front[k]
		if p.Total >= resp.Front[k-1].Total {
			t.Errorf("front not strictly improving at %d", k)
		}
		if len(p.Plan) != p.Moves {
			t.Errorf("point %d has %d plan entries", p.Moves, len(p.Plan))
		}
	}

	// max_moves caps the front.
	code, body = fetch(t, ts.URL+"/v1/placement/whatif?max_moves=1")
	if code != http.StatusOK {
		t.Fatalf("capped status %d", code)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Front) != 2 {
		t.Errorf("capped front has %d points, want 2", len(resp.Front))
	}

	for _, bad := range []string{"max_moves=-1", "max_moves=abc"} {
		if code, _ := fetch(t, ts.URL+"/v1/placement/whatif?"+bad); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}
}

// Without a scenario the region routes must not exist.
func TestRegionEndpointsGated(t *testing.T) {
	sched, err := schedule.Generate(schedule.DefaultGeneratorConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Schedule = sched
	cfg.Budget = 1e6
	srv, err := New(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := fetch(t, ts.URL+"/v1/regions"); code != http.StatusNotFound {
		t.Errorf("/v1/regions without scenario: status %d, want 404", code)
	}
}
