package attrserver

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"fairco2/internal/attribution"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// postDelta posts a delta request body and decodes the response (into a
// deltaResponse on 2xx, a map otherwise), returning the status code.
func postDelta(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/demand/delta", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding delta response: %v", err)
		}
	}
	return resp.StatusCode
}

func intp(v int) *int { return &v }

// directAttribution computes the full-window attribution for a method
// name the way the server's compute path does, on an explicit schedule.
func directAttribution(t *testing.T, method string, s *schedule.Schedule, budget units.GramsCO2e) []float64 {
	t.Helper()
	methods := map[string]attribution.Method{
		MethodGroundTruth:        attribution.GroundTruth{Parallelism: 1},
		MethodRUP:                attribution.RUPBaseline{},
		MethodDemandProportional: attribution.DemandProportional{},
		MethodFairCO2:            attribution.TemporalShapley{Parallelism: 1},
	}
	grams, err := methods[method].Attribute(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	return grams
}

func requireGramsBits(t *testing.T, label string, want []float64, got []workloadGrams) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d workloads, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != i {
			t.Fatalf("%s: workload %d has ID %d", label, i, got[i].ID)
		}
		if math.Float64bits(got[i].Grams) != math.Float64bits(want[i]) {
			t.Fatalf("%s: workload %d got %v (%#x), want %v (%#x)", label, i,
				got[i].Grams, math.Float64bits(got[i].Grams), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestDeltaWhatIfMatchesFreshComputation pins the endpoint's core
// contract: a what-if answer is bitwise-identical to a fresh full-window
// attribution over the modified schedule, for every standard method.
func TestDeltaWhatIfMatchesFreshComputation(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.EnableDelta = true })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	modified := testSchedule(t)
	modified.Workloads[1].Cores = 40
	if err := modified.Validate(); err != nil {
		t.Fatal(err)
	}

	for _, method := range []string{MethodFairCO2, MethodGroundTruth, MethodRUP, MethodDemandProportional} {
		var resp deltaResponse
		code := postDelta(t, ts.URL, deltaRequest{Tenant: 1, Cores: intp(40), Method: method}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", method, code)
		}
		if resp.Committed {
			t.Fatalf("%s: what-if reported committed", method)
		}
		want := directAttribution(t, method, modified, 1000)
		requireGramsBits(t, method, want, resp.Attribution)
		if resp.BudgetGrams != 1000 {
			t.Fatalf("%s: budget %v, want full window 1000", method, resp.BudgetGrams)
		}
	}
}

// TestDeltaStatsCounts checks the reported delta work: one changed
// tenant out of n=4 affects exactly 2^4 - 2^3 = 8 coalitions, and the
// temporal period counters cover the top level.
func TestDeltaStatsCounts(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.EnableDelta = true })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var resp deltaResponse
	if code := postDelta(t, ts.URL, deltaRequest{Tenant: 2, Cores: intp(9)}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Delta.ShapleyCoalitions != 8 {
		t.Fatalf("coalitions re-evaluated = %d, want 8", resp.Delta.ShapleyCoalitions)
	}
	if got := resp.Delta.ShapleyBlocksRecomputed + resp.Delta.ShapleyBlocksSkipped; got != 16 {
		t.Fatalf("shapley blocks sum to %d, want 16", got)
	}
	if got := resp.Delta.PeriodsRecomputed + resp.Delta.PeriodsSkipped; got != 8 {
		t.Fatalf("temporal periods sum to %d, want 8 (one per slice)", got)
	}
}

// TestDeltaWhatIfLeavesStateIntact verifies the revert path: after a
// what-if, GET answers and the config fingerprint are those of the
// original schedule, and a repeated what-if returns identical bits.
func TestDeltaWhatIfLeavesStateIntact(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.EnableDelta = true })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		Fingerprint string `json:"config_fingerprint"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	before := health.Fingerprint

	var first, second deltaResponse
	req := deltaRequest{Tenant: 0, Cores: intp(3), Duration: intp(5), Method: MethodGroundTruth}
	if code := postDelta(t, ts.URL, req, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := postDelta(t, ts.URL, req, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i := range first.Attribution {
		if math.Float64bits(first.Attribution[i].Grams) != math.Float64bits(second.Attribution[i].Grams) {
			t.Fatalf("repeated what-if diverged at workload %d", i)
		}
	}

	getJSON(t, ts.URL+"/healthz", &health)
	if health.Fingerprint != before {
		t.Fatalf("what-if moved the fingerprint %s -> %s", before, health.Fingerprint)
	}
	var q queryResponse
	getJSON(t, ts.URL+"/v1/attribution?method=ground-truth", &q)
	want := directAttribution(t, MethodGroundTruth, testSchedule(t), 1000)
	requireGramsBits(t, "post-what-if GET", want, q.Attribution)
}

// TestDeltaCommitSwapsStateAndWarmsCache verifies a commit: the serving
// schedule changes, the fingerprint moves, and the full-window cache is
// patched for every standard method so the next GETs recompute nothing.
func TestDeltaCommitSwapsStateAndWarmsCache(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.EnableDelta = true })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health struct {
		Fingerprint string `json:"config_fingerprint"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	before := health.Fingerprint

	var resp deltaResponse
	req := deltaRequest{Tenant: 3, Cores: intp(48), Method: MethodFairCO2, Commit: true}
	if code := postDelta(t, ts.URL, req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Committed {
		t.Fatal("commit not acknowledged")
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Fingerprint == before {
		t.Fatal("commit did not move the fingerprint")
	}
	if health.Fingerprint != resp.Fingerprint {
		t.Fatalf("healthz fingerprint %s, delta response %s", health.Fingerprint, resp.Fingerprint)
	}

	committed := testSchedule(t)
	committed.Workloads[3].Cores = 48

	comps := func(m string) float64 { return srv.inst.Computations.With(m).Value() }
	for _, method := range []string{MethodFairCO2, MethodGroundTruth, MethodRUP, MethodDemandProportional} {
		n := comps(method)
		var q queryResponse
		getJSON(t, ts.URL+"/v1/attribution?method="+method, &q)
		if got := comps(method); got != n {
			t.Fatalf("%s: full-window GET after commit recomputed (%v -> %v), want cache hit", method, n, got)
		}
		want := directAttribution(t, method, committed, 1000)
		requireGramsBits(t, method+" after commit", want, q.Attribution)
	}

	// Sub-window queries were not warmed: they must recompute against the
	// committed schedule, not serve stale pre-commit entries.
	var q queryResponse
	getJSON(t, ts.URL+"/v1/attribution?method=rup&period=0:4", &q)
	sub, _, err := subSchedule(committed, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := directAttribution(t, MethodRUP, sub, units.GramsCO2e(1000*4.0/8.0))
	requireGramsBits(t, "sub-window after commit", want, q.Attribution)
}

// TestDeltaValidation exercises the 4xx paths, checking each rejected
// request leaves the engine and serving state untouched.
func TestDeltaValidation(t *testing.T) {
	srv, _ := newTestServer(t, nil, func(c *Config) { c.EnableDelta = true })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  deltaRequest
	}{
		{"tenant out of range", deltaRequest{Tenant: 7, Cores: intp(2)}},
		{"negative tenant", deltaRequest{Tenant: -1, Cores: intp(2)}},
		{"zero cores", deltaRequest{Tenant: 0, Cores: intp(0)}},
		{"zero duration", deltaRequest{Tenant: 0, Duration: intp(0)}},
		{"runs past window", deltaRequest{Tenant: 0, Start: intp(6), Duration: intp(4)}},
		{"unknown method", deltaRequest{Tenant: 0, Cores: intp(2), Method: "nope"}},
	}
	for _, tc := range cases {
		var errBody map[string]string
		if code := postDelta(t, ts.URL, tc.req, &errBody); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if errBody["error"] == "" {
			t.Fatalf("%s: empty error body", tc.name)
		}
	}

	var q queryResponse
	getJSON(t, ts.URL+"/v1/attribution?method=ground-truth", &q)
	want := directAttribution(t, MethodGroundTruth, testSchedule(t), 1000)
	requireGramsBits(t, "after rejected deltas", want, q.Attribution)

	// Malformed JSON is a 400, not a decode panic or 500.
	resp, err := http.Post(ts.URL+"/v1/demand/delta", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestDeltaDisabled checks the zero-value Config leaves the endpoint off.
func TestDeltaDisabled(t *testing.T) {
	srv, _ := newTestServer(t, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/demand/delta", "application/json", bytes.NewReader([]byte(`{"tenant":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled delta endpoint: status %d, want 404", resp.StatusCode)
	}
	var health struct {
		DeltaEnabled bool `json:"delta_enabled"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.DeltaEnabled {
		t.Fatal("healthz reports delta enabled on a zero-value config")
	}
}
