package attrserver

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairco2/internal/attribution"
	"fairco2/internal/schedule"
	"fairco2/internal/units"
)

// gatedMethod blocks inside Attribute until released, so a test can hold a
// computation open while concurrent queries pile up, then observe exactly
// how many computations the pile-up cost.
type gatedMethod struct {
	inner   attribution.Method
	started chan struct{} // closed when the first Attribute call begins
	release chan struct{} // Attribute blocks until this closes
	once    sync.Once
	calls   atomic.Int64
}

func newGatedMethod(inner attribution.Method) *gatedMethod {
	return &gatedMethod{
		inner:   inner,
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gatedMethod) Name() string { return "gated" }

func (g *gatedMethod) Attribute(s *schedule.Schedule, budget units.GramsCO2e) ([]float64, error) {
	g.calls.Add(1)
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.inner.Attribute(s, budget)
}

// metricValue extracts one sample from Prometheus exposition text by its
// exact series name (including any label set).
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q: %v", series, val, err)
		}
		return f
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// TestConcurrentIdenticalQueriesCoalesceToOneComputation is the service's
// load acceptance test: M concurrent identical queries cost exactly one
// Shapley computation, and a follow-up identical query costs zero.
func TestConcurrentIdenticalQueriesCoalesceToOneComputation(t *testing.T) {
	gated := newGatedMethod(attribution.GroundTruth{Parallelism: 1})
	srv, _ := newTestServer(t, nil, func(c *Config) {
		c.BatchWindow = 2 * time.Millisecond
		c.Methods = map[string]attribution.Method{"gated": gated}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/attribution?method=gated&period=0:6"

	const m = 24
	bodies := make([]string, m)
	codes := make([]int, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i], codes[i] = string(b), resp.StatusCode
		}(i)
	}

	// The gate holds the single computation open while the other queries
	// arrive. Every late query counts toward coalesced_total the moment it
	// attaches (batch join or in-flight attach), so this poll converges
	// exactly when all m queries share the one computation.
	<-gated.started
	deadline := time.Now().Add(10 * time.Second)
	for srv.inst.Coalesced.Value() != m-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %v after 10s, want %d", srv.inst.Coalesced.Value(), m-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gated.release)
	wg.Wait()

	for i := 0; i < m; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("query %d: status %d\n%s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("query %d body differs from query 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := gated.calls.Load(); got != 1 {
		t.Fatalf("underlying method ran %d times, want 1", got)
	}

	// Assert through the exposition, as external monitoring would see it.
	text := scrape(t, ts.URL+"/metrics")
	if got := metricValue(t, text, `fairco2_attrserver_computations_total{replica="0",method="gated"}`); got != 1 {
		t.Errorf("computations_total = %v, want 1", got)
	}
	if got := metricValue(t, text, `fairco2_attrserver_coalesced_total{replica="0"}`); got != m-1 {
		t.Errorf("coalesced_total = %v, want %d", got, m-1)
	}
	if got := metricValue(t, text, `fairco2_attrserver_cache_misses_total{replica="0"}`); got != m {
		t.Errorf("cache_misses_total = %v, want %d (every query raced the empty cache)", got, m)
	}

	// A repeat query is a pure cache hit: zero additional computations.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit query: status %d", resp.StatusCode)
	}
	text = scrape(t, ts.URL+"/metrics")
	if got := metricValue(t, text, `fairco2_attrserver_computations_total{replica="0",method="gated"}`); got != 1 {
		t.Errorf("computations_total after cache hit = %v, want still 1", got)
	}
	if got := metricValue(t, text, `fairco2_attrserver_cache_hits_total{replica="0"}`); got != 1 {
		t.Errorf("cache_hits_total = %v, want 1", got)
	}
	if got := gated.calls.Load(); got != 1 {
		t.Fatalf("cache-hit query re-ran the method: %d calls", got)
	}
}

// TestConcurrentMixedTenantsShareOneComputation checks the merge property
// the tenant-free cache key buys: different tenants querying the same
// period ride one attribution call.
func TestConcurrentMixedTenantsShareOneComputation(t *testing.T) {
	gated := newGatedMethod(attribution.GroundTruth{Parallelism: 1})
	srv, _ := newTestServer(t, nil, func(c *Config) {
		c.BatchWindow = 2 * time.Millisecond
		c.Methods = map[string]attribution.Method{"gated": gated}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const perTenant = 3
	tenants := []string{"0", "1", "2", "3"}
	total := perTenant * len(tenants)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/v1/attribution?method=gated&period=0:6&tenant=" + tenant)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tenant %s: status %d", tenant, resp.StatusCode)
				}
			}(tenant)
		}
	}
	<-gated.started
	deadline := time.Now().Add(10 * time.Second)
	for srv.inst.Coalesced.Value() != float64(total-1) {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %v after 10s, want %d", srv.inst.Coalesced.Value(), total-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gated.release)
	wg.Wait()
	if got := gated.calls.Load(); got != 1 {
		t.Fatalf("mixed-tenant queries ran %d computations, want 1", got)
	}
}

// scrape fetches a URL and returns its body as text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
