package attrserver

import (
	"context"
	"sync"
)

// flightGroup is a stdlib-only singleflight: concurrent Do calls with the
// same key share one execution of fn. The execution runs in its own
// goroutine, so a caller abandoning its wait (context timeout) never
// cancels the computation for the others — the result still lands in the
// cache for the next query.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flight
	// onDup, when set, is invoked once for every caller that attached to
	// an already-in-flight execution instead of starting its own.
	onDup func()
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup(onDup func()) *flightGroup {
	return &flightGroup{calls: map[string]*flight{}, onDup: onDup}
}

// Do executes fn once per key among concurrent callers and returns the
// shared result. Waiting is bounded by ctx; the execution itself is not.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if fl, ok := g.calls[key]; ok {
		g.mu.Unlock()
		if g.onDup != nil {
			g.onDup()
		}
		return fl.wait(ctx)
	}
	fl := &flight{done: make(chan struct{})}
	g.calls[key] = fl
	g.mu.Unlock()

	go func() {
		v, err := fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		fl.val, fl.err = v, err
		close(fl.done)
	}()
	return fl.wait(ctx)
}

func (fl *flight) wait(ctx context.Context) (any, error) {
	select {
	case <-fl.done:
		return fl.val, fl.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
