package attrserver

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairco2/internal/metrics"
)

func newTestBatcher(window time.Duration) (*batcher, *Instruments) {
	inst := NewInstruments(metrics.NewRegistry())
	return newBatcher(window, inst), inst
}

func TestBatcherMergesWindowedQueries(t *testing.T) {
	b, inst := newTestBatcher(300 * time.Millisecond)
	var calls atomic.Int64
	fn := func() (any, error) { return calls.Add(1), nil }

	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Do(context.Background(), "k", fn)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1 (all queries inside one window)", got)
	}
	for i, v := range results {
		if v.(int64) != 1 {
			t.Errorf("caller %d got %v, want the shared result", i, v)
		}
	}
	if got := inst.Coalesced.Value(); got != n-1 {
		t.Errorf("coalesced = %v, want %d", got, n-1)
	}
}

func TestBatcherZeroWindowComputesImmediately(t *testing.T) {
	b, _ := newTestBatcher(0)
	var calls atomic.Int64
	fn := func() (any, error) { return calls.Add(1), nil }

	// Sequential queries with a zero window each compute: batching is off,
	// and nothing is in flight to attach to.
	if v, _ := b.Do(context.Background(), "k", fn); v.(int64) != 1 {
		t.Fatalf("first call got %v, want 1", v)
	}
	if v, _ := b.Do(context.Background(), "k", fn); v.(int64) != 2 {
		t.Fatalf("second call got %v, want 2", v)
	}
}

func TestBatcherSecondGenerationAttachesToInflightComputation(t *testing.T) {
	b, inst := newTestBatcher(10 * time.Millisecond)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (any, error) {
		calls.Add(1)
		close(started)
		<-release
		return "slow", nil
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if v, err := b.Do(context.Background(), "k", fn); err != nil || v.(string) != "slow" {
			t.Errorf("first generation got (%v, %v)", v, err)
		}
	}()
	<-started // the first batch fired and its computation is now blocked

	go func() {
		defer wg.Done()
		// This query opens a second batch (the first already fired); when
		// its window closes it must attach to the in-flight computation
		// instead of starting a second one.
		if v, err := b.Do(context.Background(), "k", fn); err != nil || v.(string) != "slow" {
			t.Errorf("second generation got (%v, %v)", v, err)
		}
	}()
	// The second batch counts as coalesced at its singleflight join, which
	// happens before the gate releases — poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for inst.Coalesced.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %v after 5s, want 1", inst.Coalesced.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
}

func TestBatcherKeysBatchIndependently(t *testing.T) {
	b, _ := newTestBatcher(50 * time.Millisecond)
	var calls atomic.Int64
	fn := func() (any, error) { return calls.Add(1), nil }
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			if _, err := b.Do(context.Background(), key, fn); err != nil {
				t.Error(err)
			}
		}(key)
	}
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Errorf("distinct keys executed %d computations, want 2", got)
	}
}

func TestBatcherWaiterHonorsContext(t *testing.T) {
	b, _ := newTestBatcher(time.Hour) // window never fires within the test
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Do(ctx, "k", func() (any, error) { return nil, nil }); err == nil {
		t.Fatal("cancelled waiter returned nil error")
	}
}
